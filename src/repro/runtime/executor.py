"""Stateless, thread-safe module execution (the deployable runtime call path).

:class:`Executor` is the one-call execution front door: bind it to a
:class:`~repro.compiler.module.CompiledModule` and a :class:`Device`, then
call it with the graph inputs — positionally in graph input order, as one
dict, or as keyword arguments — and get the outputs back.  Every call builds
its own tensor map, so one executor can serve many threads concurrently, and
module parameters are mapped in as read-only views: an in-place kernel or a
caller mutating a returned tensor raises instead of silently corrupting the
module's weights across runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.module import CompiledModule
from .ndarray import Device, DeviceLike, NDArray, device as as_device

__all__ = ["Executor", "ExecutionResult", "InputSpec"]


@dataclass(frozen=True)
class InputSpec:
    """Name, shape and dtype of one graph input the caller must provide."""

    name: str
    shape: Optional[Tuple[int, ...]]
    dtype: str

    def __str__(self) -> str:
        shape = "?" if self.shape is None else str(tuple(self.shape))
        return f"{self.name}: {shape} {self.dtype}"


@dataclass
class ExecutionResult:
    """Outputs plus the simulated-latency accounting of one execution."""

    outputs: List[np.ndarray]
    total_time: float                       #: simulated end-to-end seconds
    per_kernel: List[Tuple[str, float]]     #: (kernel name, seconds)
    tensors: Dict[str, np.ndarray]          #: full tensor map of the run


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class Executor:
    """Stateless callable executor over a compiled module.

    ``outputs = executor({"data": x})`` or ``executor(x)`` (positional, in
    graph input order) or ``executor(data=x)``.  Outputs are a list of
    :class:`NDArray` on the executor's device, one per graph output.
    """

    def __init__(self, module: CompiledModule, device: Optional[DeviceLike] = None):
        self.module = module
        if device is None:
            self.device = Device(module.target.device_type, 0)
        else:
            self.device = as_device(device)
        # Read-only views: the tensor map never aliases the module's writable
        # parameter arrays (defensive copy-on-write — a write attempt raises,
        # and callers copy explicitly if they need a mutable tensor).
        self._param_views = {name: _readonly_view(value)
                             for name, value in module.params.items()}
        self._input_names = [n.name for n in module.graph.input_nodes]
        self._specs = [InputSpec(n.name, tuple(n.shape) if n.shape else None,
                                 n.dtype)
                       for n in module.graph.input_nodes
                       if n.name not in module.params]

    # ------------------------------------------------------------------ inputs
    @property
    def input_specs(self) -> List[InputSpec]:
        """The non-parameter graph inputs a call must provide."""
        return list(self._specs)

    @property
    def input_names(self) -> List[str]:
        return [spec.name for spec in self._specs]

    def describe_inputs(self) -> str:
        return "; ".join(str(spec) for spec in self._specs) or "(none)"

    @staticmethod
    def _as_numpy(value) -> np.ndarray:
        if isinstance(value, NDArray):
            return value.asnumpy()
        return np.asarray(value)

    def _validate(self, inputs: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        known = set(self._input_names)
        unknown = sorted(set(inputs) - known)
        if unknown:
            raise ValueError(
                f"Unknown graph input(s) {unknown} passed to executor of "
                f"{self.module!r}; expected inputs: {self.describe_inputs()}")
        missing = [spec for spec in self._specs if spec.name not in inputs]
        if missing:
            raise ValueError(
                "Missing graph input(s) " +
                ", ".join(f"{s.name!r}" for s in missing) +
                f"; expected inputs: {self.describe_inputs()}")
        return inputs

    # ------------------------------------------------------------------ execution
    def _execute(self, inputs: Dict[str, np.ndarray]) -> ExecutionResult:
        """Run the kernels over a fresh tensor map (no instance state)."""
        tensors: Dict[str, np.ndarray] = {}
        for node in self.module.graph.input_nodes:
            if node.name in inputs:
                tensors[node.name] = self._as_numpy(inputs[node.name])
            elif node.name in self._param_views:
                tensors[node.name] = self._param_views[node.name]
            else:
                raise ValueError(
                    f"Graph input {node.name!r} has not been set; "
                    f"expected inputs: {self.describe_inputs()}")
        total_time = 0.0
        per_kernel: List[Tuple[str, float]] = []
        for kernel in self.module.kernels:
            kernel.run(tensors)
            total_time += kernel.time_seconds
            per_kernel.append((kernel.name, kernel.time_seconds))
        outputs = [tensors[node.name] for node in self.module.graph.outputs]
        return ExecutionResult(outputs, total_time, per_kernel, tensors)

    def run(self, inputs: Dict[str, np.ndarray]) -> ExecutionResult:
        """Validated execution returning outputs plus timing accounting."""
        return self._execute(self._validate(dict(inputs)))

    def __call__(self, *args, **kwargs) -> List[NDArray]:
        """Execute the graph; returns one :class:`NDArray` per graph output.

        Accepts a single dict of inputs, positional arrays in graph input
        order (the order of :attr:`input_specs`), keyword arrays, or a mix of
        positional and keyword.
        """
        inputs: Dict[str, np.ndarray] = {}
        if len(args) == 1 and isinstance(args[0], dict) and not kwargs:
            inputs = dict(args[0])
        elif args:
            if len(args) > len(self._specs):
                raise ValueError(
                    f"Too many positional inputs: got {len(args)}, the graph "
                    f"takes {len(self._specs)}: {self.describe_inputs()}")
            inputs = {spec.name: value
                      for spec, value in zip(self._specs, args)}
            overlap = sorted(set(inputs) & set(kwargs))
            if overlap:
                raise ValueError(f"Input(s) {overlap} given both positionally "
                                 f"and by name")
            inputs.update(kwargs)
        else:
            inputs = dict(kwargs)
        result = self.run(inputs)
        return [NDArray(value, self.device) for value in result.outputs]
