"""ML-based cost models (paper Section 5.2, Figure 13, Table 1).

Two models are provided, mirroring the paper's design space:

* :class:`GradientBoostedTrees` — the default: gradient-boosted regression
  trees over loop-program features, trained with either a squared-error or a
  pairwise **rank** objective (the paper's choice, since the explorer only
  needs the relative order of candidates).  XGBoost itself is unavailable
  offline, so the trees and the boosting loop are implemented here.
* :class:`NeuralCostModel` — a small multi-layer perceptron standing in for
  the TreeRNN alternative the paper evaluates (similar quality, slower).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees", "NeuralCostModel", "rank_correlation"]


class RegressionTree:
    """A CART-style regression tree fitted to (features, residuals)."""

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 2,
                 max_thresholds: int = 8):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.tree_: Optional[dict] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.tree_ = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> dict:
        node = {"value": float(np.mean(y)) if len(y) else 0.0}
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf \
                or float(np.var(y)) < 1e-12:
            return node
        best = self._best_split(x, y)
        if best is None:
            return node
        feature, threshold, mask = best
        node.update({
            "feature": feature,
            "threshold": threshold,
            "left": self._build(x[mask], y[mask], depth + 1),
            "right": self._build(x[~mask], y[~mask], depth + 1),
        })
        return node

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        n_samples, n_features = x.shape
        base_error = float(np.sum((y - y.mean()) ** 2))
        best_gain = 1e-9
        best = None
        for feature in range(n_features):
            column = x[:, feature]
            unique = np.unique(column)
            if len(unique) < 2:
                continue
            if len(unique) > self.max_thresholds:
                candidates = np.quantile(unique,
                                         np.linspace(0.1, 0.9, self.max_thresholds))
            else:
                candidates = (unique[:-1] + unique[1:]) / 2.0
            for threshold in candidates:
                mask = column <= threshold
                left, right = y[mask], y[~mask]
                if len(left) < self.min_samples_leaf or len(right) < self.min_samples_leaf:
                    continue
                error = float(np.sum((left - left.mean()) ** 2)
                              + np.sum((right - right.mean()) ** 2))
                gain = base_error - error
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            return np.zeros(len(x))
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self.tree_
            while "feature" in node:
                node = node["left"] if row[node["feature"]] <= node["threshold"] \
                    else node["right"]
            out[i] = node["value"]
        return out


class GradientBoostedTrees:
    """Gradient tree boosting with squared-error or pairwise rank objectives."""

    def __init__(self, num_rounds: int = 40, learning_rate: float = 0.15,
                 max_depth: int = 4, loss: str = "rank", num_pairs: int = 4,
                 seed: int = 0):
        if loss not in ("reg", "rank"):
            raise ValueError("loss must be 'reg' or 'rank'")
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.loss = loss
        self.num_pairs = num_pairs
        self.rng = np.random.default_rng(seed)
        self.trees: List[RegressionTree] = []
        self.base_score = 0.0

    # -- training ----------------------------------------------------------------
    def fit(self, features: np.ndarray, throughputs: np.ndarray) -> "GradientBoostedTrees":
        """Fit the model.  ``throughputs`` are scores where larger is better
        (the tuner passes normalised 1/time)."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(throughputs, dtype=np.float64)
        self.trees = []
        self.base_score = float(np.mean(y)) if len(y) else 0.0
        if len(y) < 4:
            return self
        pred = np.full(len(y), self.base_score)
        for _ in range(self.num_rounds):
            gradient = self._negative_gradient(y, pred)
            tree = RegressionTree(max_depth=self.max_depth)
            tree.fit(x, gradient)
            update = tree.predict(x)
            pred += self.learning_rate * update
            self.trees.append(tree)
        return self

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        if self.loss == "reg":
            return y - pred
        # Pairwise logistic rank loss (LambdaRank-style, unweighted): for a
        # pair (i, j) with y_i > y_j the loss is log(1 + exp(pred_j - pred_i)).
        grad = np.zeros_like(pred)
        n = len(y)
        for i in range(n):
            for _ in range(self.num_pairs):
                j = int(self.rng.integers(0, n))
                if i == j or y[i] == y[j]:
                    continue
                if y[i] > y[j]:
                    better, worse = i, j
                else:
                    better, worse = j, i
                margin = pred[better] - pred[worse]
                weight = 1.0 / (1.0 + math.exp(margin))
                grad[better] += weight
                grad[worse] -= weight
        return grad

    # -- inference ----------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        pred = np.full(len(x), self.base_score)
        for tree in self.trees:
            pred += self.learning_rate * tree.predict(x)
        return pred


class NeuralCostModel:
    """A small MLP trained on loop-program features (TreeRNN stand-in)."""

    def __init__(self, hidden: int = 32, epochs: int = 150, learning_rate: float = 1e-2,
                 seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.rng = np.random.default_rng(seed)
        self._weights: Optional[Tuple[np.ndarray, ...]] = None
        self._norm: Tuple[np.ndarray, np.ndarray] = (np.zeros(1), np.ones(1))

    def fit(self, features: np.ndarray, throughputs: np.ndarray) -> "NeuralCostModel":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(throughputs, dtype=np.float64)
        if len(y) < 4:
            self._weights = None
            return self
        mean, std = x.mean(axis=0), x.std(axis=0) + 1e-8
        self._norm = (mean, std)
        xn = (x - mean) / std
        n_features = x.shape[1]
        w1 = self.rng.normal(0, 0.3, size=(n_features, self.hidden))
        b1 = np.zeros(self.hidden)
        w2 = self.rng.normal(0, 0.3, size=(self.hidden, 1))
        b2 = np.zeros(1)
        lr = self.learning_rate
        target = (y - y.mean()) / (y.std() + 1e-8)
        for _ in range(self.epochs):
            hidden = np.tanh(xn @ w1 + b1)
            out = (hidden @ w2 + b2).ravel()
            err = out - target
            grad_out = 2 * err[:, None] / len(y)
            grad_w2 = hidden.T @ grad_out
            grad_b2 = grad_out.sum(axis=0)
            grad_hidden = grad_out @ w2.T * (1 - hidden ** 2)
            grad_w1 = xn.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            w1 -= lr * grad_w1
            b1 -= lr * grad_b1
            w2 -= lr * grad_w2
            b2 -= lr * grad_b2
        self._weights = (w1, b1, w2, b2)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if self._weights is None:
            return np.zeros(len(x))
        mean, std = self._norm
        xn = (x - mean) / std
        w1, b1, w2, b2 = self._weights
        hidden = np.tanh(xn @ w1 + b1)
        return (hidden @ w2 + b2).ravel()


def rank_correlation(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Spearman rank correlation between predicted and actual scores."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if len(predicted) < 2:
        return 0.0
    pred_rank = np.argsort(np.argsort(predicted)).astype(np.float64)
    act_rank = np.argsort(np.argsort(actual)).astype(np.float64)
    pred_rank -= pred_rank.mean()
    act_rank -= act_rank.mean()
    denom = np.sqrt((pred_rank ** 2).sum() * (act_rank ** 2).sum())
    if denom == 0:
        return 0.0
    return float((pred_rank * act_rank).sum() / denom)
