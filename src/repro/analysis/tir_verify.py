"""TIR (loop-program) verifier — the static-analysis layer's low-level half.

:func:`verify_func` certifies a lowered :class:`~repro.tir.stmt.LoweredFunc`
using the same interval machinery that powers feature extraction
(:func:`repro.tir.analysis._compile_bounds` and its ``_bounds_*`` arithmetic):

* **def-before-use** — every loop variable appearing in an index, extent or
  condition is bound by an enclosing loop, and every buffer accessed is a
  function argument or a recorded allocation;
* **static out-of-bounds detection** — per-dimension interval analysis of
  every load/store index, refined by the guard conditions the lowering
  emits for imperfect splits (``IfThenElse``) and by padding ``Select``
  conditions, so guarded accesses are *not* false positives.  A
  per-dimension overflow falls back to bounding the flattened row-major
  offset — fused flat loop axes legitimately step across row boundaries
  (``y = f // W``, ``x = f % W``), and after storage flattening only the
  flat offset determines memory safety;
* **parallel-hazard detection** — ``parallel``/``vectorize``-annotated
  loops must carry no cross-iteration dependence: a store whose indices do
  not depend on the loop variable is a write-write race (the classic
  parallelized-reduction bug), and a loop-invariant read of a buffer
  written in the same loop body whose region overlaps the written region
  is a read-after-write race.

Thread-bound and virtual-thread loops are exempt from the hazard check:
their cooperative semantics are synchronised by barriers, which this
IR-level analysis does not model.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..te.expr import (
    Add,
    And,
    Cast,
    Div,
    EQ,
    Expr,
    FloatImm,
    FloorDiv,
    GE,
    GT,
    IntImm,
    LE,
    LT,
    Max,
    Min,
    Mod,
    Select,
    Sub,
    Mul,
    Var,
    expr_children,
)
from ..tir.analysis import (
    _bounds_add,
    _bounds_div,
    _bounds_floordiv,
    _bounds_max,
    _bounds_min,
    _bounds_mod,
    _bounds_mul,
    _bounds_sub,
    _compile_bounds,
)
from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Buffer,
    BufferLoad,
    BufferStore,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
)
from .errors import OutOfBoundsError, ParallelHazardError, UseBeforeDefError

__all__ = ["verify_func"]

#: interval for values the analysis cannot bound (e.g. loaded data)
_UNBOUNDED = (-math.inf, math.inf)

_BINOP_BOUNDS = {
    Add: _bounds_add, Sub: _bounds_sub, Mul: _bounds_mul, Div: _bounds_div,
    FloorDiv: _bounds_floordiv, Mod: _bounds_mod, Min: _bounds_min,
    Max: _bounds_max,
}

#: loop kinds whose iterations run concurrently without synchronisation
_HAZARD_KINDS = (ForKind.PARALLEL, ForKind.VECTORIZED)

Interval = Tuple[float, float]


def _safe_floor(value: float) -> float:
    """``math.floor`` that passes infinities through."""
    return value if math.isinf(value) else math.floor(value)


def _iv_scale(interval: Interval, coeff: float) -> Interval:
    """Scale an interval by a constant (0 * inf == 0 here)."""
    if coeff == 0:
        return (0.0, 0.0)
    lo, hi = interval[0] * coeff, interval[1] * coeff
    return (lo, hi) if coeff > 0 else (hi, lo)


def _iv_add(left: Interval, right: Interval) -> Interval:
    return (left[0] + right[0], left[1] + right[1])


class _Access:
    """One buffer access collected under a concurrent loop."""

    __slots__ = ("buffer", "indices", "env", "guard_vars")

    def __init__(self, buffer: Buffer, indices: Sequence[Expr],
                 env: Dict[Var, Interval], guard_vars: Set[Var]):
        self.buffer = buffer
        self.indices = list(indices)
        self.env = env
        self.guard_vars = guard_vars


class _TIRVerifier:
    def __init__(self, func: LoweredFunc, pass_name: Optional[str] = None):
        self.func = func
        self.pass_name = pass_name
        # id -> (expr, free vars): the expr reference keeps ids stable
        self._free_cache: Dict[int, Tuple[Expr, Tuple[Var, ...]]] = {}

    # ------------------------------------------------------------------ errors
    def _oob(self, message: str, node: str) -> OutOfBoundsError:
        return OutOfBoundsError(f"{message} in {self.func.name!r}",
                                node=node, pass_name=self.pass_name)

    def _undef(self, message: str, node: str) -> UseBeforeDefError:
        return UseBeforeDefError(f"{message} in {self.func.name!r}",
                                 node=node, pass_name=self.pass_name)

    # ------------------------------------------------------------- intervals
    def free_vars(self, expr: Expr) -> Tuple[Var, ...]:
        cached = self._free_cache.get(id(expr))
        if cached is None or cached[0] is not expr:
            free, _program = _compile_bounds(expr)
            cached = (expr, tuple(free))
            self._free_cache[id(expr)] = cached
        return cached[1]

    def _linearize(self, expr: Expr, constraints: Dict[str, Interval],
                   terms: Dict[str, List], scale: float) -> float:
        """Accumulate ``scale * expr`` into the linear form ``terms`` (a map
        ``repr(atom) -> [coefficient, atom]``) and return the constant part.

        Affine structure (``+``, ``-``, ``*`` by a constant) is distributed
        so that syntactically identical atoms cancel exactly — this is what
        makes compacted-buffer indices of the form ``idx - offset`` (emitted
        by ``BufferBinding.rebase``) evaluate to their true narrow range
        instead of the naive interval difference.  A sub-expression that a
        guard constrains is kept opaque so the refinement stays applicable.
        """
        if isinstance(expr, (IntImm, FloatImm)):
            return scale * expr.value
        if repr(expr) not in constraints:
            if isinstance(expr, Add):
                return (self._linearize(expr.a, constraints, terms, scale)
                        + self._linearize(expr.b, constraints, terms, scale))
            if isinstance(expr, Sub):
                return (self._linearize(expr.a, constraints, terms, scale)
                        + self._linearize(expr.b, constraints, terms, -scale))
            if isinstance(expr, Mul):
                if isinstance(expr.a, (IntImm, FloatImm)):
                    return self._linearize(expr.b, constraints, terms,
                                           scale * expr.a.value)
                if isinstance(expr.b, (IntImm, FloatImm)):
                    return self._linearize(expr.a, constraints, terms,
                                           scale * expr.b.value)
            if isinstance(expr, Cast):
                return self._linearize(expr.value, constraints, terms, scale)
        entry = terms.get(repr(expr))
        if entry is None:
            terms[repr(expr)] = [scale, expr]
        else:
            entry[0] += scale
        return 0.0

    def bounds(self, expr: Expr, env: Dict[Var, Interval],
               constraints: Dict[str, Interval]) -> Interval:
        """Interval of ``expr`` under loop ranges ``env``, refined by the
        guard ``constraints``, via the linear normal form."""
        terms: Dict[str, List] = {}
        const = self._linearize(expr, constraints, terms, 1.0)
        const += self._recombine(terms, constraints)
        low = high = const
        pair_low, pair_high = self._pair_bounds(terms, env, constraints)
        low += pair_low
        high += pair_high
        for coeff, atom in terms.values():
            atom_low, atom_high = self._atom_bounds(atom, env, constraints)
            if coeff == 0:
                continue  # cancelled — evaluated anyway for def-before-use
            low += min(coeff * atom_low, coeff * atom_high)
            high += max(coeff * atom_low, coeff * atom_high)
        if constraints:
            refined = constraints.get(repr(expr))
            if refined is not None:
                clipped = (max(low, refined[0]), min(high, refined[1]))
                if clipped[0] > clipped[1]:  # contradictory: path unreachable
                    return refined
                low, high = clipped
        return (low, high)

    def _congruence(self, expr: Expr, modulus: float
                    ) -> Optional[Tuple[int, int]]:
        """Prove ``expr ≡ r (mod g)`` from its linear form, where ``g`` is
        the gcd of the modulus and every term coefficient.  Returns
        ``(g, r)`` with ``0 <= r < g``, or ``None`` when the form has
        non-integer parts.  ``g == modulus`` means ``expr % modulus`` is the
        exact constant ``r``."""
        if modulus <= 0 or not float(modulus).is_integer():
            return None
        terms: Dict[str, List] = {}
        const = self._linearize(expr, {}, terms, 1.0)
        if not float(const).is_integer():
            return None
        g = int(modulus)
        for coeff, _atom in terms.values():
            if not float(coeff).is_integer():
                return None
            g = math.gcd(g, int(abs(coeff)))
        return g, int(const) % g if g else 0

    def _residue(self, expr: Expr, modulus: float) -> Optional[float]:
        """``expr % modulus`` as an exact constant when the linear form of
        ``expr`` proves it, else ``None``."""
        congruence = self._congruence(expr, modulus)
        if congruence is None or congruence[0] != int(modulus):
            return None
        return float(congruence[1])

    def _recombine(self, terms: Dict[str, List],
                   constraints: Dict[str, Interval]) -> float:
        """Apply the exact identity ``t*K*(a//K) + t*(a%K) == t*a`` to the
        linear form: matched quotient/remainder atoms over the same numerator
        are replaced by the numerator itself, re-linearized.  This recovers
        the correlation between the row and column indices of a flattened
        fused loop axis (``y = f // W``, ``x = f % W``), which a flat-offset
        bound needs to be tight.  Returns the constant part contributed by
        the re-linearized numerators."""
        div_atoms: Dict[Tuple[str, float], List[List]] = {}
        mod_atoms: Dict[Tuple[str, float], List[List]] = {}
        for entry in list(terms.values()):
            atom = entry[1]
            if (isinstance(atom, (FloorDiv, Mod))
                    and isinstance(atom.b, (IntImm, FloatImm))
                    and atom.b.value > 0):
                key = (repr(atom.a), atom.b.value)
                group = div_atoms if isinstance(atom, FloorDiv) else mod_atoms
                group.setdefault(key, []).append(entry)
        const = 0.0
        for key, div_entries in div_atoms.items():
            mod_entries = mod_atoms.get(key)
            if not mod_entries:
                continue
            modulus = key[1]
            for div_entry in div_entries:
                for mod_entry in mod_entries:
                    quotient_share = div_entry[0] / modulus
                    if quotient_share == 0 or mod_entry[0] == 0:
                        continue
                    if (quotient_share > 0) != (mod_entry[0] > 0):
                        continue
                    transfer = math.copysign(
                        min(abs(quotient_share), abs(mod_entry[0])),
                        quotient_share)
                    div_entry[0] -= transfer * modulus
                    mod_entry[0] -= transfer
                    const += self._linearize(mod_entry[1].a, constraints,
                                             terms, transfer)
        return const

    def _pair_bounds(self, terms: Dict[str, List],
                     env: Dict[Var, Interval],
                     constraints: Dict[str, Interval]) -> Interval:
        """Consume matched ``+a//K / -b//K`` (and ``%K``) term pairs from the
        linear form, bounding each pair through the *difference* of its
        numerators instead of the difference of its own intervals.

        The compacted-buffer indices the lowering emits have exactly this
        shape — ``(base + inner) // K - base // K`` — whose numerator
        difference cancels linearly to the small ``inner`` range, while the
        naive interval difference spans the whole buffer.
        """
        groups: Dict[Tuple[type, float], List[List]] = {}
        for entry in terms.values():
            atom = entry[1]
            if (isinstance(atom, (FloorDiv, Mod))
                    and isinstance(atom.b, (IntImm, FloatImm))
                    and atom.b.value > 0):
                groups.setdefault((type(atom), atom.b.value), []).append(entry)
        # First match pos/neg pairs within each (kind, K) group and pool the
        # transferred weight per *numerator pair*, so a ``//K`` pair and a
        # ``%K`` pair over the same (a, b) are bounded jointly below.
        pairs: Dict[Tuple[str, str, float], Dict] = {}
        for (kind, modulus), entries in groups.items():
            positive = [e for e in entries if e[0] > 0]
            negative = [e for e in entries if e[0] < 0]
            for pos in positive:
                for neg in negative:
                    transfer = min(pos[0], -neg[0])
                    if transfer <= 0:
                        continue
                    key = (repr(pos[1].a), repr(neg[1].a), modulus)
                    rec = pairs.setdefault(
                        key, {"a": pos[1].a, "b": neg[1].a,
                              "div": 0.0, "mod": 0.0})
                    rec["div" if kind is FloorDiv else "mod"] += transfer
                    pos[0] -= transfer
                    neg[0] += transfer
        low = high = 0.0
        for (_ra, _rb, modulus), rec in pairs.items():
            delta = Sub(rec["a"], rec["b"])
            delta_low, delta_high = self.bounds(delta, env, constraints)
            residue = self._residue(delta, modulus)
            if delta_low == 0 and delta_high == 0:
                residue = 0  # numerators provably equal pointwise
            # Partial congruences refine the residue windows: b ≡ rb
            # (mod gb) pins b % K inside [rb, K - gb + rb], likewise for a.
            gb, rb = self._congruence(rec["b"], modulus) or (1, 0)
            ga, ra = self._congruence(rec["a"], modulus) or (1, 0)
            # Q bounds the quotient difference, via the pointwise identity
            # q = a//K - b//K == (b%K + delta) // K.
            if residue == 0:
                quot = (delta_low / modulus, delta_high / modulus)
            else:
                quot = (_safe_floor((rb + delta_low) / modulus),
                        _safe_floor((modulus - gb + rb + delta_high)
                                    / modulus))
            # M bounds the mod difference a%K - b%K == delta - K*q.
            if residue is not None:
                # delta == K*m + residue pointwise, so the mod difference
                # is residue or residue - K exactly
                moddiff = ((residue - modulus, residue)
                           if residue else (0.0, 0.0))
            elif quot[0] == quot[1] and not math.isinf(quot[0]):
                # the quotient difference is a known constant, so the mod
                # difference is exactly delta - K*q
                moddiff = (delta_low - modulus * quot[0],
                           delta_high - modulus * quot[0])
            else:
                moddiff = (max(delta_low - modulus * quot[1],
                               ra - (modulus - gb + rb)),
                           min(delta_high - modulus * quot[0],
                               modulus - ga + ra - rb))
            tq, tm = rec["div"], rec["mod"]
            # The pair contributes V = tq*q + tm*m with m == delta - K*q
            # pointwise.  Two sound bounds, intersected: the direct form
            # tq*Q + tm*M, and the substituted form tm*D + (tq - tm*K)*Q,
            # which is *exact* when tq == tm*K (flattened row/col indices
            # of a compacted tile recombine to the plain fused offset).
            direct = _iv_add(_iv_scale(quot, tq), _iv_scale(moddiff, tm))
            subst = _iv_add(_iv_scale((delta_low, delta_high), tm),
                            _iv_scale(quot, tq - tm * modulus))
            low += max(direct[0], subst[0])
            high += min(direct[1], subst[1])
        return (low, high)

    def _atom_bounds(self, expr: Expr, env: Dict[Var, Interval],
                     constraints: Dict[str, Interval]) -> Interval:
        """Structural interval of one non-affine atom; children re-enter the
        linear :meth:`bounds` so cancellation still applies below e.g. a
        ``floordiv``."""
        if isinstance(expr, Var):
            interval = env.get(expr)
            if interval is None:
                raise self._undef(
                    f"variable {expr.name!r} used before any enclosing loop "
                    f"defines it", node=expr.name)
        elif isinstance(expr, (IntImm, FloatImm)):
            interval = (expr.value, expr.value)
        elif isinstance(expr, BufferLoad):
            interval = _UNBOUNDED  # data-dependent value
        elif isinstance(expr, Select):
            then_cons = self._refine(expr.condition, env, constraints)
            t = self.bounds(expr.true_value, env, then_cons)
            f = self.bounds(expr.false_value, env, constraints)
            interval = (min(t[0], f[0]), max(t[1], f[1]))
        elif isinstance(expr, Cast):
            interval = self.bounds(expr.value, env, constraints)
        elif (isinstance(expr, Mod)
              and isinstance(expr.b, (IntImm, FloatImm))
              and (congruence := self._congruence(expr.a, expr.b.value))
              is not None):
            # the numerator is ≡ r (mod g) for g dividing the modulus, so
            # the mod stays in that congruence class: tile offsets that step
            # by a fixed factor never reach the last g-1 slots
            modulus = expr.b.value
            g, r = congruence
            interval = (r, modulus - g + r) if g else (0, modulus - 1)
            numerator = self.bounds(expr.a, env, constraints)
            if not (math.isinf(numerator[0]) or math.isinf(numerator[1])):
                structural = _bounds_mod(numerator, (modulus, modulus))
                interval = (max(interval[0], structural[0]),
                            min(interval[1], structural[1]))
        else:
            handler = _BINOP_BOUNDS.get(type(expr))
            if handler is not None:
                interval = handler(self.bounds(expr.a, env, constraints),
                                   self.bounds(expr.b, env, constraints))
            else:
                children = expr_children(expr)
                if not children:
                    interval = (0, 0)
                else:
                    parts = [self.bounds(c, env, constraints) for c in children]
                    interval = (min(p[0] for p in parts),
                                max(p[1] for p in parts))
        if constraints:
            refined = constraints.get(repr(expr))
            if refined is not None:
                low = max(interval[0], refined[0])
                high = min(interval[1], refined[1])
                if low > high:     # contradictory guard: path unreachable
                    return refined
                interval = (low, high)
        return interval

    def _refine(self, condition: Expr, env: Dict[Var, Interval],
                constraints: Dict[str, Interval]) -> Dict[str, Interval]:
        """Constraints implied by ``condition`` holding, merged over the
        current set.  Conservative: only conjunctions of comparisons narrow
        anything; other predicates contribute nothing."""
        merged = dict(constraints)

        def narrow(key: str, low: float, high: float) -> None:
            old = merged.get(key, _UNBOUNDED)
            merged[key] = (max(old[0], low), min(old[1], high))

        def walk(cond: Expr) -> None:
            if isinstance(cond, And):
                walk(cond.a)
                walk(cond.b)
                return
            if not isinstance(cond, (LT, LE, GT, GE, EQ)):
                return
            a_bounds = self.bounds(cond.a, env, constraints)
            b_bounds = self.bounds(cond.b, env, constraints)
            if isinstance(cond, LT):
                narrow(repr(cond.a), -math.inf, b_bounds[1] - 1)
                narrow(repr(cond.b), a_bounds[0] + 1, math.inf)
            elif isinstance(cond, LE):
                narrow(repr(cond.a), -math.inf, b_bounds[1])
                narrow(repr(cond.b), a_bounds[0], math.inf)
            elif isinstance(cond, GT):
                narrow(repr(cond.a), b_bounds[0] + 1, math.inf)
                narrow(repr(cond.b), -math.inf, a_bounds[1] - 1)
            elif isinstance(cond, GE):
                narrow(repr(cond.a), b_bounds[0], math.inf)
                narrow(repr(cond.b), -math.inf, a_bounds[1])
            else:  # EQ
                narrow(repr(cond.a), b_bounds[0], b_bounds[1])
                narrow(repr(cond.b), a_bounds[0], a_bounds[1])

        walk(condition)
        return merged

    # ------------------------------------------------------------ access check
    def check_access(self, buffer: Buffer, indices: Sequence[Expr],
                     env: Dict[Var, Interval],
                     constraints: Dict[str, Interval],
                     defined: Set[int], *, is_store: bool,
                     tile: Optional[Sequence[int]] = None) -> None:
        kind = "store to" if is_store else "load from"
        if buffer.uid not in defined:
            raise self._undef(
                f"{kind} buffer {buffer.name!r} which is neither an argument "
                f"nor an allocation of the function", node=buffer.name)
        if len(indices) != len(buffer.shape):
            raise self._oob(
                f"{kind} {buffer.name!r} uses {len(indices)} indices for a "
                f"{len(buffer.shape)}-dimensional buffer", node=buffer.name)
        violation = None
        for dim, index in enumerate(indices):
            low, high = self.bounds(index, env, constraints)
            span = (tile[dim] if tile is not None and dim < len(tile) else 1)
            low_int = math.ceil(low)
            high_int = math.floor(high) + span - 1
            if low_int < 0 or high_int > buffer.shape[dim] - 1:
                violation = (dim, low_int, high_int)
                break
        if violation is None:
            return
        # A per-dimension overflow may still be a legal access: fused flat
        # loop axes tile the row-major address space, so an index pair like
        # (f // W, f % W + i) can step past a row end while staying inside
        # the allocation.  Verify the flattened offset instead — this is the
        # semantics storage flattening gives the buffer.
        strides = []
        stride = 1
        for extent in reversed(buffer.shape):
            strides.append(stride)
            stride *= extent
        strides.reverse()
        flat: Optional[Expr] = None
        for index, dim_stride in zip(indices, strides):
            term = index if dim_stride == 1 else Mul(index, IntImm(dim_stride))
            flat = term if flat is None else Add(flat, term)
        flat_low, flat_high = self.bounds(flat, env, constraints)
        tile_extra = 0
        if tile is not None:
            tile_extra = sum((tile[dim] - 1) * strides[dim]
                             for dim in range(min(len(tile), len(strides))))
        if (math.ceil(flat_low) < 0
                or math.floor(flat_high) + tile_extra > buffer.size - 1):
            dim, low_int, high_int = violation
            raise self._oob(
                f"{kind} {buffer.name!r} dimension {dim} spans "
                f"[{low_int}, {high_int}] but the extent is "
                f"{buffer.shape[dim]}, and the flattened offset "
                f"[{math.ceil(flat_low)}, {math.floor(flat_high) + tile_extra}]"
                f" escapes the allocation of {buffer.size} elements",
                node=buffer.name)

    def check_expr(self, expr: Expr, env: Dict[Var, Interval],
                   constraints: Dict[str, Interval], defined: Set[int]) -> None:
        """Find and bounds-check every buffer load inside a value expression,
        threading Select conditions into the refinement set."""
        if isinstance(expr, BufferLoad):
            self.check_access(expr.buffer, expr.indices, env, constraints,
                              defined, is_store=False)
            return
        if isinstance(expr, Select):
            self.check_expr(expr.condition, env, constraints, defined)
            then_cons = self._refine(expr.condition, env, constraints)
            self.check_expr(expr.true_value, env, then_cons, defined)
            self.check_expr(expr.false_value, env, constraints, defined)
            return
        for child in expr_children(expr):
            self.check_expr(child, env, constraints, defined)

    # --------------------------------------------------------------- traversal
    def verify(self) -> None:
        defined = {b.uid for b in self.func.args}
        defined.update(b.uid for b in self.func.allocations)
        self.visit(self.func.body, {}, {}, defined)

    def visit(self, stmt: Stmt, env: Dict[Var, Interval],
              constraints: Dict[str, Interval], defined: Set[int]) -> None:
        if isinstance(stmt, SeqStmt):
            for child in stmt.stmts:
                self.visit(child, env, constraints, defined)
        elif isinstance(stmt, For):
            min_bounds = self.bounds(stmt.min, env, constraints)
            extent_bounds = self.bounds(stmt.extent, env, constraints)
            inner_env = dict(env)
            inner_env[stmt.loop_var] = (min_bounds[0],
                                        min_bounds[1] + extent_bounds[1] - 1)
            if stmt.kind in _HAZARD_KINDS and extent_bounds[1] > 1:
                self.check_hazards(stmt, inner_env)
            self.visit(stmt.body, inner_env, constraints, defined)
        elif isinstance(stmt, IfThenElse):
            self.check_expr(stmt.condition, env, constraints, defined)
            then_cons = self._refine(stmt.condition, env, constraints)
            self.visit(stmt.then_body, env, then_cons, defined)
            if stmt.else_body is not None:
                self.visit(stmt.else_body, env, constraints, defined)
        elif isinstance(stmt, BufferStore):
            self.check_access(stmt.buffer, stmt.indices, env, constraints,
                              defined, is_store=True)
            self.check_expr(stmt.value, env, constraints, defined)
        elif isinstance(stmt, Allocate):
            inner = set(defined)
            inner.add(stmt.buffer.uid)
            self.visit(stmt.body, env, constraints, inner)
        elif isinstance(stmt, AttrStmt):
            self.visit(stmt.body, env, constraints, defined)
        elif isinstance(stmt, Evaluate):
            self.check_expr(stmt.expr, env, constraints, defined)
        elif isinstance(stmt, IntrinsicStmt):
            self.check_intrinsic(stmt, env, constraints, defined)
        # Barrier / DepPush / DepPop carry no accesses.

    def check_intrinsic(self, stmt: IntrinsicStmt, env: Dict[Var, Interval],
                        constraints: Dict[str, Interval],
                        defined: Set[int]) -> None:
        tiles = _intrin_tiles(stmt)
        for buffer, offsets, tile in zip(stmt.inputs, stmt.input_offsets,
                                         tiles[:-1]):
            self.check_access(buffer, offsets, env, constraints, defined,
                              is_store=False, tile=tile)
        self.check_access(stmt.output, stmt.output_offset, env, constraints,
                          defined, is_store=True, tile=tiles[-1])

    # ----------------------------------------------------------------- hazards
    def check_hazards(self, loop: For, env: Dict[Var, Interval]) -> None:
        """Race check for one parallel/vectorized loop."""
        var = loop.loop_var
        stores: List[_Access] = []
        loads: List[_Access] = []
        self._collect_accesses(loop.body, dict(env), set(), stores, loads)

        stored_buffers: Dict[int, List[_Access]] = {}
        for store in stores:
            stored_buffers.setdefault(store.buffer.uid, []).append(store)

        for store in stores:
            if var in self._access_vars(store) or var in store.guard_vars:
                continue
            raise ParallelHazardError(
                f"{loop.kind} loop over {var.name!r} writes "
                f"{store.buffer.name!r} at indices independent of the loop "
                f"variable — every iteration races on the same elements "
                f"(e.g. a parallelized reduction) in {self.func.name!r}",
                node=store.buffer.name, pass_name=self.pass_name)

        for load in loads:
            writers = stored_buffers.get(load.buffer.uid)
            if not writers:
                continue
            if var in self._access_vars(load) or var in load.guard_vars:
                continue
            for store in writers:
                if self._regions_overlap(load, store):
                    raise ParallelHazardError(
                        f"{loop.kind} loop over {var.name!r} reads "
                        f"{load.buffer.name!r} at loop-invariant indices "
                        f"while other iterations write an overlapping "
                        f"region (cross-iteration read-after-write) in "
                        f"{self.func.name!r}",
                        node=load.buffer.name, pass_name=self.pass_name)

    def _access_vars(self, access: _Access) -> Set[Var]:
        result: Set[Var] = set()
        for index in access.indices:
            result.update(self.free_vars(index))
        return result

    def _regions_overlap(self, a: _Access, b: _Access) -> bool:
        for index_a, index_b in zip(a.indices, b.indices):
            try:
                low_a, high_a = self.bounds(index_a, a.env, {})
                low_b, high_b = self.bounds(index_b, b.env, {})
            except UseBeforeDefError:
                return True  # cannot prove disjoint: assume overlap
            if high_a < low_b or high_b < low_a:
                return False
        return True

    def _collect_accesses(self, stmt: Stmt, env: Dict[Var, Interval],
                          guard_vars: Set[Var], stores: List[_Access],
                          loads: List[_Access]) -> None:
        if isinstance(stmt, SeqStmt):
            for child in stmt.stmts:
                self._collect_accesses(child, env, guard_vars, stores, loads)
        elif isinstance(stmt, For):
            inner_env = dict(env)
            try:
                min_bounds = self.bounds(stmt.min, env, {})
                extent_high = self.bounds(stmt.extent, env, {})[1]
            except UseBeforeDefError:
                min_bounds, extent_high = _UNBOUNDED, math.inf
            inner_env[stmt.loop_var] = (min_bounds[0],
                                        min_bounds[1] + extent_high - 1)
            self._collect_accesses(stmt.body, inner_env, guard_vars,
                                   stores, loads)
        elif isinstance(stmt, IfThenElse):
            inner_guards = guard_vars | set(self.free_vars(stmt.condition))
            self._collect_accesses(stmt.then_body, env, inner_guards,
                                   stores, loads)
            if stmt.else_body is not None:
                self._collect_accesses(stmt.else_body, env, inner_guards,
                                       stores, loads)
        elif isinstance(stmt, BufferStore):
            stores.append(_Access(stmt.buffer, stmt.indices, env, guard_vars))
            self._collect_loads(stmt.value, env, guard_vars, loads)
        elif isinstance(stmt, (Allocate, AttrStmt)):
            self._collect_accesses(stmt.body, env, guard_vars, stores, loads)
        elif isinstance(stmt, Evaluate):
            self._collect_loads(stmt.expr, env, guard_vars, loads)
        elif isinstance(stmt, IntrinsicStmt):
            # Offsets stand in for the whole tile: the hazard tests only
            # need loop-var dependence and coarse region bounds, for which
            # the tile's start corner is a sound proxy at offset granularity.
            stores.append(_Access(stmt.output, stmt.output_offset,
                                  env, guard_vars))
            for buffer, offsets in zip(stmt.inputs, stmt.input_offsets):
                loads.append(_Access(buffer, offsets, env, guard_vars))

    def _collect_loads(self, expr: Expr, env: Dict[Var, Interval],
                       guard_vars: Set[Var], loads: List[_Access]) -> None:
        if isinstance(expr, BufferLoad):
            loads.append(_Access(expr.buffer, expr.indices, env, guard_vars))
        for child in expr_children(expr):
            self._collect_loads(child, env, guard_vars, loads)


def _intrin_tiles(stmt: IntrinsicStmt) -> List[Optional[Tuple[int, ...]]]:
    """Per-operand tile shapes of an intrinsic call (inputs then output),
    ``None`` when the intrinsic does not declare them."""
    intrin = stmt.intrin
    tiles: List[Optional[Tuple[int, ...]]] = []
    declared = getattr(intrin, "inputs", None) or []
    for position in range(len(stmt.inputs)):
        if position < len(declared):
            try:
                tiles.append(tuple(declared[position].shape_values()))
                continue
            except Exception:
                pass
        tiles.append(None)
    output_shape = getattr(intrin, "output_shape", None)
    tiles.append(tuple(int(s) for s in output_shape)
                 if output_shape is not None else None)
    return tiles


def verify_func(func: LoweredFunc, *, pass_name: Optional[str] = None) -> None:
    """Verify one lowered function; raises a typed
    :class:`~repro.analysis.errors.TIRVerifierError` on the first violation.
    """
    _TIRVerifier(func, pass_name=pass_name).verify()
