"""Figure 15: per-operator GPU comparison on Table 2 workloads.

Relative speedup of TVM (and TVM with pre-transformed Winograd, "TVM PT")
over cuDNN for the ResNet-18 conv2d operators, and over MXNet's handcrafted
kernels for the MobileNet depthwise operators, on the simulated Titan X.
"""

import pytest

from common import emit_summary, get_target, print_series, tvm_conv_time
from repro import te, tir
from repro.baselines import CUDNN_PROFILE, MXNET_KERNEL_PROFILE, VendorLibrary
from repro.topi.schedules import gpu as gpu_sched
from repro.topi.winograd import winograd_conv2d_pretransformed
from repro.workloads import MOBILENET_DEPTHWISE_WORKLOADS, RESNET_CONV_WORKLOADS


def _winograd_time(workload, target) -> float:
    """Time of the Winograd pre-transformed implementation (3x3 s1 only)."""
    data, weight_t, b_mat, a_mat, out = winograd_conv2d_pretransformed(
        1, workload.in_channels, workload.height, workload.width,
        workload.out_channels, padding=workload.padding)
    schedule = gpu_sched.schedule_injective_gpu(out)
    func = tir.lower(schedule, [data, weight_t, b_mat, a_mat, out],
                     name=f"winograd_{workload.name}")
    return target.model.estimate(tir.extract_features(func))


def _evaluate():
    target = get_target("cuda")
    cudnn = VendorLibrary(CUDNN_PROFILE, target)
    mxnet = VendorLibrary(MXNET_KERNEL_PROFILE, target)
    conv_rows = []
    for workload in RESNET_CONV_WORKLOADS:
        baseline = cudnn.conv2d_time(1, workload.in_channels, workload.height,
                                     workload.width, workload.out_channels,
                                     workload.kernel, workload.stride,
                                     workload.padding)
        tvm_time = tvm_conv_time(workload, "cuda")
        entry = {"cuDNN": 1.0, "TVM": baseline / tvm_time}
        if workload.kernel == 3 and workload.stride == 1:
            entry["TVM PT"] = baseline / _winograd_time(workload, target)
        conv_rows.append((workload.name, entry))
    dw_rows = []
    for workload in MOBILENET_DEPTHWISE_WORKLOADS:
        baseline = mxnet.conv2d_time(1, workload.channels, workload.height,
                                     workload.width, workload.channels,
                                     workload.kernel, workload.stride,
                                     workload.padding, depthwise=True)
        tvm_time = tvm_conv_time(workload, "cuda", depthwise=True)
        dw_rows.append((workload.name, {"MX kernel": 1.0, "TVM": baseline / tvm_time}))
    return conv_rows, dw_rows


def test_fig15_gpu_operator_speedups(benchmark):
    conv_rows, dw_rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 15 (top): conv2d relative speedup vs cuDNN", conv_rows,
                 unit="x")
    print_series("Figure 15 (bottom): depthwise conv2d speedup vs MXNet kernels",
                 dw_rows, unit="x")
    conv_speedups = [e["TVM"] for _n, e in conv_rows]
    dw_speedups = [e["TVM"] for _n, e in dw_rows]
    import numpy as np

    benchmark.extra_info["conv_geomean_speedup"] = round(
        float(np.exp(np.mean(np.log(conv_speedups)))), 2)
    emit_summary("fig15_gpu_ops", {
        "conv_geomean_speedup_vs_cudnn": round(
            float(np.exp(np.mean(np.log(conv_speedups)))), 3),
        "dw_geomean_speedup_vs_mxnet": round(
            float(np.exp(np.mean(np.log(dw_speedups)))), 3)})
    # TVM should be competitive with cuDNN on most layers (paper: better on
    # the majority) and clearly ahead of the handcrafted depthwise kernels.
    assert sum(s > 0.6 for s in conv_speedups) >= len(conv_speedups) * 0.7
    assert all(s > 1.0 for s in dw_speedups)
