"""Winograd F(2x2, 3x3) convolution with pre-transformed weights.

This is the "TVM PT" series in Figure 15: 3x3 unit-stride convolutions whose
weights are pre-transformed offline, so inference only performs the input
transform, a batched element-wise GEMM over the 4x4 Winograd domain, and the
output transform.  The declaration below expresses all three stages in the
tensor expression language so the lowered program carries the correct
(reduced) multiplication count and memory traffic.
"""

from __future__ import annotations

from typing import Tuple

from .. import te
from .nn import pad

__all__ = ["winograd_conv2d_pretransformed"]


def winograd_conv2d_pretransformed(batch: int, in_channels: int, height: int,
                                   width: int, out_channels: int,
                                   padding: int = 1,
                                   name: str = "winograd_conv2d"
                                   ) -> Tuple[te.Tensor, ...]:
    """Declare Winograd F(2x2,3x3) convolution with pre-transformed weights.

    Returns ``(data, transformed_weight, B, A, output)`` placeholders/tensors.
    ``B`` (4x4) and ``A`` (4x2) are the constant Winograd transform matrices,
    passed in as inputs so the transforms stay inside the affine expression
    language.
    """
    out_h = height + 2 * padding - 2
    out_w = width + 2 * padding - 2
    tiles_h = (out_h + 1) // 2
    tiles_w = (out_w + 1) // 2

    data = te.placeholder((batch, in_channels, height, width), name=f"{name}_data")
    weight_t = te.placeholder((out_channels, in_channels, 4, 4),
                              name=f"{name}_weight_t")
    b_mat = te.placeholder((4, 4), name=f"{name}_B")
    a_mat = te.placeholder((4, 2), name=f"{name}_A")

    padded = pad(data, (0, 0, padding, padding), (0, 0, padding, padding),
                 name=f"{name}_pad")

    # Input transform: V = B^T d B per 4x4 tile.
    ra = te.reduce_axis((0, 4), name="ra")
    rb = te.reduce_axis((0, 4), name="rb")
    v = te.compute(
        (batch, in_channels, tiles_h, tiles_w, 4, 4),
        lambda n, c, ty, tx, e, f: te.sum(
            b_mat[ra, e] * padded[n, c, ty * 2 + ra, tx * 2 + rb] * b_mat[rb, f],
            axis=[ra, rb]),
        name=f"{name}_input_transform")

    # Batched GEMM over the Winograd domain (the dominant cost).
    rc = te.reduce_axis((0, in_channels), name="rc")
    m = te.compute(
        (batch, out_channels, tiles_h, tiles_w, 4, 4),
        lambda n, k, ty, tx, e, f: te.sum(
            weight_t[k, rc, e, f] * v[n, rc, ty, tx, e, f], axis=rc),
        name=f"{name}_batched_gemm")

    # Output transform: Y = A^T M A, scattered back to the output layout.
    re = te.reduce_axis((0, 4), name="re")
    rf = te.reduce_axis((0, 4), name="rf")
    out = te.compute(
        (batch, out_channels, out_h, out_w),
        lambda n, k, y, x: te.sum(
            a_mat[re, y % 2] * m[n, k, y // 2, x // 2, re, rf] * a_mat[rf, x % 2],
            axis=[re, rf]),
        name=name)
    return data, weight_t, b_mat, a_mat, out
