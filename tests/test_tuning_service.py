"""Tests for the distributed tuning service: the framed socket protocol,
the server lifecycle, global measurement dedup, cross-session transfer and
pretrained cost models, the database writer lock, and bit-identity of
serviced sessions with local tuning."""

import json
import math
import os
import socket
import threading

import numpy as np
import pytest

import repro
from repro import autotvm
from repro.autotvm import (
    DatabaseWriteConflictError,
    GradientBoostedTrees,
    TuningDatabase,
    TuningOptions,
)
from repro.autotvm.database import TuningLogEntry
from repro.autotvm.service import (
    MSG,
    ServiceClient,
    ServiceDedupMeasurer,
    ServiceProtocolError,
    TuningService,
    connect,
    schedule_zoo,
    trials_to_target,
)
from repro.autotvm.service.protocol import recv_frame, send_frame
from repro.graph.ir import Graph, Node
from repro.graph.ops import OP_REGISTRY
from repro.hardware import cuda


def conv_graph(ci=16, hw=16, co=16, kernel=3, stride=1, padding=1):
    data = Node("null", "data")
    data.shape = (1, ci, hw, hw)
    data.dtype = "float32"
    weight = Node("null", "weight")
    weight.shape = (co, ci, kernel, kernel)
    weight.dtype = "float32"
    conv = Node("conv2d", "conv", [data, weight],
                {"strides": stride, "padding": padding})
    conv.dtype = "float32"
    conv.shape = OP_REGISTRY["conv2d"].infer_shape(
        [data.shape, weight.shape], conv.attrs)
    return Graph([conv])


def fingerprint(report):
    return {r.task_name: (r.best_config.index, r.estimate, tuple(r.curve))
            for r in report}


# ---------------------------------------------------------------------------
# Protocol framing
# ---------------------------------------------------------------------------

class TestProtocol:
    def _pair(self):
        server, client = socket.socketpair()
        return server, client

    def test_roundtrip_preserves_tuples_and_inf(self):
        a, b = self._pair()
        try:
            payload = {"args": (1, (3, "x")), "time": float("inf"),
                       "none": None, "flag": True,
                       "exact": 1.0038308959125683e-05}
            send_frame(a, MSG.PUSH, payload)
            kind, decoded = recv_frame(b)
            assert kind == MSG.PUSH
            assert decoded["args"] == (1, (3, "x"))
            assert math.isinf(decoded["time"])
            assert decoded["none"] is None
            assert decoded["flag"] is True
            # float repr round-trips bit-exactly through JSON
            assert decoded["exact"] == 1.0038308959125683e-05
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"XXXX" + bytes(5))
            with pytest.raises(ServiceProtocolError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_truncated_frame_raises_connection_error(self):
        a, b = self._pair()
        try:
            send_frame(a, MSG.HELLO, {"pid": 1})
            a.close()
            recv_frame(b)               # the complete frame still arrives
            with pytest.raises(ConnectionError):
                recv_frame(b)
        finally:
            b.close()


# ---------------------------------------------------------------------------
# Server lifecycle
# ---------------------------------------------------------------------------

class TestServerLifecycle:
    def test_start_stop_leaves_no_threads(self):
        before = set(threading.enumerate())
        service = TuningService().start()
        with connect(service.address) as client:
            assert client.stats()["connections"] == 1
        service.stop()
        leaked = [t for t in threading.enumerate()
                  if t not in before and t.is_alive()]
        assert leaked == []

    def test_stop_is_idempotent_and_address_gated(self):
        service = TuningService()
        with pytest.raises(RuntimeError, match="not running"):
            service.address
        service.start()
        addr = service.address
        assert addr.startswith("127.0.0.1:")
        service.stop()
        service.stop()

    def test_client_shutdown_request_stops_accepting(self):
        service = TuningService().start()
        try:
            with connect(service.address) as client:
                client.shutdown_service()
            # the accept loop notices the stop flag within its timeout tick
            service._accept_thread.join(timeout=5.0)
            assert not service._accept_thread.is_alive()
        finally:
            service.stop()

    def test_context_manager(self):
        with TuningService() as service:
            assert service.port is not None
        assert service.port is None


# ---------------------------------------------------------------------------
# Trial store: dedup lookup/push
# ---------------------------------------------------------------------------

class TestTrialStore:
    def test_lookup_miss_then_hit(self):
        with TuningService() as service, connect(service.address) as client:
            key = ("conv2d_(x)", "cuda", 7)
            assert client.lookup([key]) == [None]
            assert client.push_trials([{"task": key[0], "target": key[1],
                                        "config_index": key[2],
                                        "time": 1.5e-5, "error": None}]) == 1
            hit, = client.lookup([key])
            assert hit == {"time": 1.5e-5, "error": None}
            stats = client.stats()
            assert stats["dedup_hits"] == 1
            assert stats["trials_stored"] == 1

    def test_first_measurement_wins(self):
        with TuningService() as service, connect(service.address) as client:
            rec = {"task": "t", "target": "cuda", "config_index": 0,
                   "time": 2.0, "error": None}
            assert client.push_trials([rec]) == 1
            assert client.push_trials([dict(rec, time=1.0)]) == 0
            hit, = client.lookup([("t", "cuda", 0)])
            assert hit["time"] == 2.0

    def test_failed_measurements_are_deduped_too(self):
        with TuningService() as service, connect(service.address) as client:
            client.push_trials([{"task": "t", "target": "cuda",
                                 "config_index": 3, "time": float("inf"),
                                 "error": "boom"}])
            hit, = client.lookup([("t", "cuda", 3)])
            assert math.isinf(hit["time"]) and hit["error"] == "boom"


# ---------------------------------------------------------------------------
# Best store: record/best/warm entries
# ---------------------------------------------------------------------------

class TestBestStore:
    def _entry(self, name="conv2d_(a)", time=1e-5, features=None, index=4):
        return TuningLogEntry(name, "cuda", index, {"k": [1, 2]}, time,
                              features=features)

    def test_record_and_best_for(self):
        with TuningService() as service, connect(service.address) as client:
            assert client.best_for("conv2d_(a)", "cuda") is None
            assert client.record_best(self._entry(time=2e-5))
            assert client.record_best(self._entry(time=1e-5, index=9))
            best = client.best_for("conv2d_(a)", "cuda")
            assert best.config_index == 9 and best.mean_time == 1e-5

    def test_warm_entries_filter_operator_and_keep_features(self):
        with TuningService() as service, connect(service.address) as client:
            client.record_best(self._entry("conv2d_(a)",
                                           features=[1.0, 2.0, 3.0]))
            client.record_best(self._entry("dense_(b)"))
            entries = client.warm_entries("conv2d", "cuda")
            assert [e.task_name for e in entries] == ["conv2d_(a)"]
            assert entries[0].features == [1.0, 2.0, 3.0]
            assert client.warm_entries("depthwise_conv2d") == []


# ---------------------------------------------------------------------------
# Pretrained cost models
# ---------------------------------------------------------------------------

class TestPretrainedModel:
    def test_gbt_spec_roundtrip_predicts_identically(self):
        rng = np.random.default_rng(0)
        x = rng.random((64, 12))
        y = rng.random(64)
        model = GradientBoostedTrees(seed=0)
        model.fit(x, y)
        clone = GradientBoostedTrees.from_spec(
            json.loads(json.dumps(model.to_spec())))
        np.testing.assert_array_equal(model.predict(x), clone.predict(x))

    def test_service_pretrains_from_database(self):
        db = TuningDatabase()
        rng = np.random.default_rng(1)
        for i in range(10):
            db.add(TuningLogEntry(f"conv2d_({i})", "cuda", i, {},
                                  1e-5 * (1 + i),
                                  features=list(rng.random(6))))
        with TuningService(database=db) as service:
            assert service.stats()["pretrained_models"] == 1
            with connect(service.address) as client:
                model = client.pretrained_model("conv2d", "cuda")
                assert model is not None
                assert model.predict(rng.random((3, 6))).shape == (3,)
                assert client.pretrained_model("dense", "cuda") is None

    def test_too_few_entries_skip_pretraining(self):
        db = TuningDatabase()
        for i in range(3):
            db.add(TuningLogEntry(f"conv2d_({i})", "cuda", i, {}, 1e-5,
                                  features=[1.0, 2.0]))
        with TuningService(database=db) as service:
            assert service.stats()["pretrained_models"] == 0


# ---------------------------------------------------------------------------
# Dedup measurer
# ---------------------------------------------------------------------------

class TestServiceDedupMeasurer:
    def test_hits_skip_base_measurer(self):
        task, = autotvm.extract_tasks(conv_graph(), cuda())
        base = autotvm.LocalMeasurer(number=2, seed=0)
        with TuningService() as service, connect(service.address) as client:
            measurer = ServiceDedupMeasurer(base, client)
            inputs = [autotvm.MeasureInput(task, task.config_space.get(i))
                      for i in range(4)]
            first = measurer.measure(inputs)
            assert measurer.dedup_hits == 0
            assert base.num_measured == 4
            second = measurer.measure(inputs)
            assert measurer.dedup_hits == 4
            assert base.num_measured == 4          # nothing measured again
            assert [r.mean_time for r in second] == \
                [r.mean_time for r in first]


# ---------------------------------------------------------------------------
# Sessions against a service
# ---------------------------------------------------------------------------

class TestServicedSessions:
    OPTS = dict(trials=12, seed=0, batch_size=4)

    def test_solo_session_is_bit_identical(self):
        autotvm.clear_eval_caches()
        solo = repro.autotune(conv_graph(), target=cuda(),
                              options=TuningOptions(**self.OPTS))
        with TuningService() as service:
            autotvm.clear_eval_caches()
            serviced = repro.autotune(
                conv_graph(), target=cuda(),
                options=TuningOptions(service=service.address, **self.OPTS))
            assert fingerprint(serviced) == fingerprint(solo)
            assert serviced.service_stats["dedup_hits"] == 0
            assert serviced.service_stats["bests_recorded"] == 1

    def test_second_session_dedups_every_measurement(self):
        with TuningService() as service:
            first = repro.autotune(
                conv_graph(), target=cuda(),
                options=TuningOptions(service=service.address, **self.OPTS))
            second = repro.autotune(
                conv_graph(), target=cuda(),
                options=TuningOptions(service=service.address,
                                      warm_start=False, **self.OPTS))
            assert fingerprint(second) == fingerprint(first)
            result, = second.results
            assert result.dedup_hits == result.trials > 0

    def test_concurrent_sessions_match_solo_and_dedup(self):
        autotvm.clear_eval_caches()
        opts = dict(self.OPTS, warm_start=False)
        solo = repro.autotune(conv_graph(), target=cuda(),
                              options=TuningOptions(**opts))
        reports = {}
        with TuningService() as service:
            def run(name, delay):
                if delay:
                    # stagger so the late session finds trials to reuse
                    threading.Event().wait(delay)
                reports[name] = repro.autotune(
                    conv_graph(), target=cuda(),
                    options=TuningOptions(service=service.address, **opts))

            threads = [threading.Thread(target=run, args=("a", 0.0)),
                       threading.Thread(target=run, args=("b", 0.2))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = service.stats()
        assert fingerprint(reports["a"]) == fingerprint(solo)
        assert fingerprint(reports["b"]) == fingerprint(solo)
        total = sum(r.trials for r in reports["b"])
        assert stats["dedup_hits"] >= total // 4

    def test_transfer_from_accumulated_database(self, tmp_path):
        db_path = str(tmp_path / "tuning.jsonl")
        with TuningService(db_path=db_path) as service:
            for co in (16, 24, 32, 40, 48, 56, 64, 72):
                repro.autotune(conv_graph(co=co), target=cuda(),
                               options=TuningOptions(
                                   service=service.address, **self.OPTS))
        # restarting on the accumulated log pretrains a conv2d model
        with TuningService(db_path=db_path) as service:
            assert service.stats()["pretrained_models"] >= 1
            autotvm.clear_eval_caches()
            warm = repro.autotune(
                conv_graph(co=96), target=cuda(),
                options=TuningOptions(service=service.address, **self.OPTS))
            result, = warm.results
            assert result.pretrained
            assert result.warm_samples > 0

    def test_bad_service_value_fails_loudly(self):
        with pytest.raises(TypeError, match="TuningOptions.service"):
            repro.autotune(conv_graph(), target=cuda(),
                           options=TuningOptions(service=123, **self.OPTS))


# ---------------------------------------------------------------------------
# schedule_zoo driver
# ---------------------------------------------------------------------------

class TestScheduleZoo:
    def test_trials_to_target(self):
        assert trials_to_target([3.0, 2.0, 1.0], 1.0) == 3
        assert trials_to_target([3.0, 1.04, 1.0], 1.0) == 2   # within 5%
        assert trials_to_target([3.0, 2.0], 1.0) is None
        assert trials_to_target([], 1.0) is None
        assert trials_to_target([1.0], float("inf")) is None

    def test_schedule_zoo_smoke(self, tmp_path):
        out = str(tmp_path / "BENCH_tuning.json")
        doc = schedule_zoo(models=("dqn",), target="cuda", trials=6,
                           output_path=out)
        assert doc["workloads"], "dqn should contribute conv workloads"
        for row in doc["workloads"]:
            assert row["seconds_per_trial"] > 0
            assert 1 <= row["trials_to_target"] <= row["trials"]
        assert doc["service_stats"]["bests_recorded"] == len(doc["workloads"])
        with open(out, encoding="utf-8") as handle:
            assert json.load(handle)["workloads"] == doc["workloads"]


# ---------------------------------------------------------------------------
# Database writer safety
# ---------------------------------------------------------------------------

class TestDatabaseWriterLock:
    def test_two_writers_conflict(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        entry = TuningLogEntry("conv2d_(a)", "cuda", 0, {}, 1e-5)
        first = TuningDatabase(path)
        first.add(entry)
        second = TuningDatabase(path)
        with pytest.raises(DatabaseWriteConflictError, match="tuning service"):
            second.add(TuningLogEntry("conv2d_(b)", "cuda", 0, {}, 1e-5))
        first.close()
        # once the holder releases, the second writer proceeds
        second.add(TuningLogEntry("conv2d_(b)", "cuda", 0, {}, 1e-5))
        second.close()

    def test_lock_released_on_close_and_reload(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        with TuningDatabase(path) as db:
            db.add(TuningLogEntry("conv2d_(a)", "cuda", 1, {}, 1e-5))
        reread = TuningDatabase(path)
        assert len(reread) == 1
        reread.add(TuningLogEntry("conv2d_(a)", "cuda", 2, {}, 2e-5))
        reread.close()

    def test_compact_is_atomic_and_fsynced(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        db = TuningDatabase(path)
        for i in range(5):
            db.add(TuningLogEntry("conv2d_(a)", "cuda", 0, {}, 1e-5 / (i + 1)))
        db.compact()
        db.close()
        with open(path, encoding="utf-8") as handle:
            lines = [l for l in handle if l.strip()]
        assert len(lines) == 1
        assert not [p for p in os.listdir(tmp_path)
                    if p.startswith("db.jsonl.tmp")]
