"""Operator registry for the computational graph.

Each operator declares its fusion pattern (Section 3's four categories:
injective, reduction, complex-out-fusable, opaque), a shape inference rule,
a NumPy compute function (the functional semantics used by the graph
runtime), and a FLOP estimate used by performance reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..topi import reference as ref

__all__ = ["OpPattern", "OpSpec", "OP_REGISTRY", "register_op"]


class OpPattern:
    """Fusion categories from Section 3."""

    INJECTIVE = "injective"
    REDUCTION = "reduction"
    COMPLEX_OUT_FUSABLE = "complex_out_fusable"
    OPAQUE = "opaque"


ShapeList = List[Tuple[int, ...]]


@dataclass
class OpSpec:
    """Metadata and implementations for one graph operator."""

    name: str
    pattern: str
    infer_shape: Callable[[ShapeList, Dict], Tuple[int, ...]]
    compute: Callable[..., np.ndarray]
    flops: Callable[[ShapeList, Tuple[int, ...], Dict], float]


OP_REGISTRY: Dict[str, OpSpec] = {}


def register_op(name: str, pattern: str, infer_shape, compute, flops=None) -> OpSpec:
    spec = OpSpec(name, pattern, infer_shape, compute,
                  flops or (lambda ins, out, attrs: float(np.prod(out))))
    OP_REGISTRY[name] = spec
    return spec


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# ---------------------------------------------------------------------------
# Shape inference helpers
# ---------------------------------------------------------------------------

def _conv2d_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    (n, c, h, w), (oc, _ic, kh, kw) = ins[0], ins[1]
    sh, sw = _pair(attrs.get("strides", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    return (n, oc, (h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)


def _depthwise_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    (n, c, h, w), (_c, _m, kh, kw) = ins[0], ins[1]
    sh, sw = _pair(attrs.get("strides", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    return (n, c, (h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)


def _conv2d_transpose_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    (n, c, h, w), (_ic, oc, kh, kw) = ins[0], ins[1]
    sh, sw = _pair(attrs.get("strides", 1))
    ph, pw = _pair(attrs.get("padding", 0))
    return (n, oc, (h - 1) * sh - 2 * ph + kh, (w - 1) * sw - 2 * pw + kw)


def _dense_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    (batch, _in), (out_dim, _in2) = ins[0], ins[1]
    return (batch, out_dim)


def _same_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    return tuple(ins[0])


def _pool_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    n, c, h, w = ins[0]
    kh, kw = _pair(attrs.get("pool_size", 2))
    sh, sw = _pair(attrs.get("strides", 2))
    ph, pw = _pair(attrs.get("padding", 0))
    return (n, c, (h + 2 * ph - kh) // sh + 1, (w + 2 * pw - kw) // sw + 1)


def _flatten_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    shape = ins[0]
    inner = 1
    for dim in shape[1:]:
        inner *= dim
    return (shape[0], inner)


def _global_pool_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    n, c, _h, _w = ins[0]
    return (n, c)


def _reshape_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    return tuple(attrs["newshape"])


def _concat_shape(ins: ShapeList, attrs: Dict) -> Tuple[int, ...]:
    axis = int(attrs.get("axis", 1))
    out = list(ins[0])
    out[axis] = sum(s[axis] for s in ins)
    return tuple(out)


# ---------------------------------------------------------------------------
# FLOP estimates for the heavy operators
# ---------------------------------------------------------------------------

def _conv2d_flops(ins: ShapeList, out: Tuple[int, ...], attrs: Dict) -> float:
    _n, _oc, oh, ow = out
    oc = out[1]
    _, ic, kh, kw = ins[1]
    return 2.0 * out[0] * oc * oh * ow * ic * kh * kw


def _depthwise_flops(ins: ShapeList, out: Tuple[int, ...], attrs: Dict) -> float:
    n, c, oh, ow = out
    _, _, kh, kw = ins[1]
    return 2.0 * n * c * oh * ow * kh * kw


def _dense_flops(ins: ShapeList, out: Tuple[int, ...], attrs: Dict) -> float:
    batch, out_dim = out
    in_dim = ins[0][1]
    return 2.0 * batch * out_dim * in_dim


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

register_op("conv2d", OpPattern.COMPLEX_OUT_FUSABLE, _conv2d_shape,
            lambda data, weight, attrs: ref.conv2d_nchw(
                data, weight, attrs.get("strides", 1), attrs.get("padding", 0)),
            _conv2d_flops)

register_op("depthwise_conv2d", OpPattern.COMPLEX_OUT_FUSABLE, _depthwise_shape,
            lambda data, weight, attrs: ref.depthwise_conv2d_nchw(
                data, weight, attrs.get("strides", 1), attrs.get("padding", 0)),
            _depthwise_flops)

register_op("conv2d_transpose", OpPattern.COMPLEX_OUT_FUSABLE, _conv2d_transpose_shape,
            lambda data, weight, attrs: ref.conv2d_transpose_nchw(
                data, weight, attrs.get("strides", 1), attrs.get("padding", 0)),
            lambda ins, out, attrs: 2.0 * float(np.prod(out)) * ins[1][0]
            * ins[1][2] * ins[1][3])

register_op("dense", OpPattern.COMPLEX_OUT_FUSABLE, _dense_shape,
            lambda data, weight, attrs: ref.dense(data, weight), _dense_flops)

register_op("bias_add", OpPattern.INJECTIVE, _same_shape,
            lambda data, bias, attrs: ref.bias_add(data, bias)
            if data.ndim == 4 else data + bias)

register_op("relu", OpPattern.INJECTIVE, _same_shape,
            lambda data, attrs: ref.relu(data))

register_op("leaky_relu", OpPattern.INJECTIVE, _same_shape,
            lambda data, attrs: ref.leaky_relu(data, attrs.get("alpha", 0.2)))

register_op("sigmoid", OpPattern.INJECTIVE, _same_shape,
            lambda data, attrs: ref.sigmoid(data))

register_op("tanh", OpPattern.INJECTIVE, _same_shape,
            lambda data, attrs: ref.tanh(data))

register_op("add", OpPattern.INJECTIVE, _same_shape,
            lambda lhs, rhs, attrs: lhs + rhs)

register_op("multiply", OpPattern.INJECTIVE, _same_shape,
            lambda lhs, rhs, attrs: lhs * rhs)

register_op("batch_norm", OpPattern.INJECTIVE, _same_shape,
            lambda data, gamma, beta, mean, var, attrs: ref.batch_norm_inference(
                data, gamma, beta, mean, var, attrs.get("epsilon", 1e-5)))

register_op("softmax", OpPattern.OPAQUE, _same_shape,
            lambda data, attrs: ref.softmax(data))

register_op("flatten", OpPattern.INJECTIVE, _flatten_shape,
            lambda data, attrs: ref.flatten(data))

register_op("reshape", OpPattern.INJECTIVE, _reshape_shape,
            lambda data, attrs: data.reshape(attrs["newshape"]))

register_op("concatenate", OpPattern.INJECTIVE, _concat_shape,
            lambda *args: np.concatenate(args[:-1], axis=int(args[-1].get("axis", 1))))

register_op("max_pool2d", OpPattern.REDUCTION, _pool_shape,
            lambda data, attrs: ref.max_pool2d(data, attrs.get("pool_size", 2),
                                               attrs.get("strides", 2),
                                               attrs.get("padding", 0)))

register_op("avg_pool2d", OpPattern.REDUCTION, _pool_shape,
            lambda data, attrs: ref.avg_pool2d(data, attrs.get("pool_size", 2),
                                               attrs.get("strides", 2),
                                               attrs.get("padding", 0)))

register_op("global_avg_pool2d", OpPattern.REDUCTION, _global_pool_shape,
            lambda data, attrs: ref.global_avg_pool2d(data))

register_op("dropout", OpPattern.INJECTIVE, _same_shape,
            lambda data, attrs: data)  # identity at inference time
