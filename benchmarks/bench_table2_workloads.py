"""Table 2: conv2d / depthwise-conv2d operator configurations.

Regenerates the table of single-kernel workloads (all ResNet-18 conv2d
operators and all MobileNet depthwise operators) and checks the shapes match
the networks in the model zoo.
"""

import pytest

from common import build_model, emit_summary
from repro.workloads import (
    MOBILENET_DEPTHWISE_WORKLOADS,
    RESNET_CONV_WORKLOADS,
    all_workloads,
)


def _resnet_conv_shapes():
    graph, _params, shapes = build_model("resnet-18")
    graph.infer_shapes(shapes)
    found = set()
    for node in graph.op_nodes:
        if node.op != "conv2d":
            continue
        (_n, ic, h, _w) = node.inputs[0].shape
        (oc, _ic, k, _k) = node.inputs[1].shape
        stride = node.attrs.get("strides", 1)
        stride = stride if isinstance(stride, int) else stride[0]
        found.add((h, ic, oc, k, stride))
    return found


def _mobilenet_depthwise_shapes():
    graph, _params, shapes = build_model("mobilenet")
    graph.infer_shapes(shapes)
    found = set()
    for node in graph.op_nodes:
        if node.op != "depthwise_conv2d":
            continue
        (_n, c, h, _w) = node.inputs[0].shape
        (_c, _m, k, _k) = node.inputs[1].shape
        stride = node.attrs.get("strides", 1)
        stride = stride if isinstance(stride, int) else stride[0]
        found.add((h, c, k, stride))
    return found


def test_table2_workloads(benchmark):
    table = benchmark.pedantic(all_workloads, rounds=1, iterations=1)
    print("\n=== Table 2: operator configurations ===")
    print(f"{'name':5s} {'op':18s} {'H,W':>9s} {'IC':>5s} {'OC':>5s} {'K':>3s} {'S':>3s} {'GFLOPs':>8s}")
    for workload in RESNET_CONV_WORKLOADS:
        print(f"{workload.name:5s} {'conv2d':18s} {workload.height:4d},{workload.width:<4d}"
              f" {workload.in_channels:5d} {workload.out_channels:5d}"
              f" {workload.kernel:3d} {workload.stride:3d} {workload.gflops:8.3f}")
    for workload in MOBILENET_DEPTHWISE_WORKLOADS:
        print(f"{workload.name:5s} {'depthwise conv2d':18s} {workload.height:4d},{workload.width:<4d}"
              f" {workload.channels:5d} {'':>5s} {workload.kernel:3d} {workload.stride:3d}"
              f" {workload.gflops:8.3f}")
    assert len(table) == 21
    emit_summary("table2_workloads", {
        "n_workloads": len(table),
        "n_resnet_conv": len(RESNET_CONV_WORKLOADS),
        "n_mobilenet_dw": len(MOBILENET_DEPTHWISE_WORKLOADS),
        "total_gflops": round(sum(w.gflops for w in RESNET_CONV_WORKLOADS)
                              + sum(w.gflops
                                    for w in MOBILENET_DEPTHWISE_WORKLOADS),
                              3)})

    # The table rows really are the layers of the model-zoo networks.
    resnet_shapes = _resnet_conv_shapes()
    for workload in RESNET_CONV_WORKLOADS:
        key = (workload.height, workload.in_channels, workload.out_channels,
               workload.kernel, workload.stride)
        assert key in resnet_shapes, f"{workload.name} not found in ResNet-18"
    mobilenet_shapes = _mobilenet_depthwise_shapes()
    for workload in MOBILENET_DEPTHWISE_WORKLOADS:
        key = (workload.height, workload.channels, workload.kernel, workload.stride)
        assert key in mobilenet_shapes, f"{workload.name} not found in MobileNet"
