"""Process-parallel execution: shared-memory worker pools (the GIL escape).

The serving engine and the tuning measurers are wall-clock bound by the GIL:
thread workers interleave on one core no matter how many devices the pool
simulates.  This package provides the process-level counterpart —

* :class:`~repro.runtime.procpool.shm.ShmArena` — a named
  ``multiprocessing.shared_memory`` segment with a tensor slot table;
  module parameters are packed into one arena and mapped by every worker
  exactly once, and each dispatched batch travels through its own
  per-request arena (zero-copy views on the worker side, never pickled).
* :mod:`~repro.runtime.procpool.protocol` — a small framed header +
  JSON-payload message codec over pipe connections (built on the PR 4
  artifact codec for tuple-preserving values); tensors never enter frames.
* :class:`~repro.runtime.procpool.pool.WorkerPool` — one OS process per
  device with first-class lifecycle: boot handshake, heartbeat health
  checks, detection of worker death mid-request, automatic respawn with
  bounded retry of the in-flight work, graceful shutdown that unlinks
  every shared-memory segment, and structured per-worker statistics.
* :class:`~repro.runtime.procpool.pool.ModuleWorkerPool` — the serving
  specialisation: workers boot from an exported artifact bundle
  (``CompiledModule.export``) with parameters mapped from the shared
  arena, and execute request batches bit-identically to the in-process
  :class:`~repro.runtime.executor.Executor`.

``repro.serve(..., pool="process")`` serves over a :class:`ModuleWorkerPool`;
:class:`repro.autotvm.ProcessMeasurer` runs tuning builds on a measure-role
:class:`WorkerPool`.  Workers are started with the ``spawn`` context (safe
with threads in the parent; see the README's spawn-vs-fork notes).
"""

from .pool import (ModuleWorkerPool, PoolShutdownError, ProcPoolError,
                   WorkerCrash, WorkerError, WorkerPool)
from .shm import ShmArena, ShmLeakError, leaked_segments
from .worker import measure_worker_main, module_worker_main

__all__ = [
    "ModuleWorkerPool",
    "PoolShutdownError",
    "ProcPoolError",
    "ShmArena",
    "ShmLeakError",
    "WorkerCrash",
    "WorkerError",
    "WorkerPool",
    "leaked_segments",
    "measure_worker_main",
    "module_worker_main",
]
