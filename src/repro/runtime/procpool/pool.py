"""The process worker pool: lifecycle, health, dispatch, statistics.

:class:`WorkerPool` owns N OS processes (``spawn`` start method — safe with
threads in the parent and identical on every platform; see the README's
spawn-vs-fork notes).  Worker lifecycle is a first-class concern:

* **boot handshake** — every worker must ``HELLO`` within ``boot_timeout``;
* **heartbeats** — a monitor thread pings idle workers every
  ``heartbeat_interval`` seconds and respawns silent ones;
* **death mid-request** — a dispatch waiting on a reply polls the pipe *and*
  the process; a worker that dies (or stalls past ``reply_timeout``) is
  respawned and the in-flight request is retried up to ``max_retries``
  times before :class:`WorkerCrash` reaches the caller;
* **graceful shutdown** — ``SHUTDOWN`` frames, bounded joins, hard kill of
  stragglers, and unlinking of every shared-memory segment the pool created
  (the parameter arena and any in-flight batch arenas).

Dispatch is per-worker and thread-safe: each worker has a lock, so one
caller thread per worker (the serving engine's model) runs without
contention, and concurrent callers queue on the lock (recorded as dispatch
wait in the per-worker statistics).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import signal
import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ...faults import inject as faults_inject
from .protocol import MSG, ProtocolError, recv_msg, send_msg
from .shm import ShmArena

__all__ = ["WorkerPool", "ModuleWorkerPool", "ProcPoolError", "WorkerCrash",
           "WorkerError", "PoolShutdownError"]

_POLL_SECONDS = 0.05


class ProcPoolError(RuntimeError):
    """Base error of the process-pool subsystem."""


class WorkerCrash(ProcPoolError):
    """A worker process died and the bounded retries were exhausted."""


class WorkerError(ProcPoolError):
    """A worker reported a request failure (its traceback is attached)."""

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback


class PoolShutdownError(ProcPoolError):
    """The pool was shut down while (or before) a request used it."""


@dataclass
class _WorkerStats:
    """Structured per-worker statistics (all times in seconds)."""

    boot_s: float = 0.0
    requests: int = 0
    dispatch_wait_s: float = 0.0    #: caller time spent waiting for the worker
    shm_copy_s: float = 0.0         #: parent pack + worker write-back
    execute_s: float = 0.0          #: worker-reported kernel execution
    respawns: int = 0
    retries: int = 0
    heartbeats: int = 0
    missed_heartbeats: int = 0

    def to_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


class _Worker:
    """One slot of the pool: process + pipe + lock + stats."""

    __slots__ = ("index", "process", "conn", "lock", "stats", "pid")

    def __init__(self, index: int):
        self.index = index
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.stats = _WorkerStats()
        self.pid: Optional[int] = None


#: pools not yet shut down — drained at interpreter exit so abandoned pools
#: cannot leak processes or /dev/shm segments
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def _shutdown_live_pools() -> None:
    for pool in list(_LIVE_POOLS):
        try:
            pool.shutdown()
        except Exception:
            pass


atexit.register(_shutdown_live_pools)


class WorkerPool:
    """N worker processes with heartbeats, respawn-with-retry, and stats.

    ``worker_main(conn, boot)`` must be an importable top-level function (the
    ``spawn`` start method re-imports it in the child); ``boot_args(index)``
    returns the plain-data boot payload of worker ``index`` — live objects
    never cross the process boundary.
    """

    def __init__(self, n_workers: int, worker_main: Callable,
                 boot_args: Callable[[int], Dict], *,
                 name: str = "procpool",
                 heartbeat_interval: float = 1.0,
                 max_retries: int = 2,
                 boot_timeout: float = 120.0,
                 reply_timeout: Optional[float] = 600.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.name = name
        self.max_retries = max_retries
        self.boot_timeout = boot_timeout
        self.reply_timeout = reply_timeout
        self.heartbeat_interval = heartbeat_interval
        self._ctx = multiprocessing.get_context("spawn")
        self._worker_main = worker_main
        self._boot_args = boot_args
        self._closed = False
        self._workers = [_Worker(i) for i in range(n_workers)]

        # Spawn everyone first, then collect the HELLOs: boots overlap, so a
        # 4-worker pool pays one interpreter start, not four in sequence.
        try:
            for worker in self._workers:
                self._spawn(worker)
            for worker in self._workers:
                self._await_hello(worker)
        except BaseException:
            self.shutdown()
            raise

        _LIVE_POOLS.add(self)
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         daemon=True,
                                         name=f"{name}-heartbeat")
        self._monitor.start()

    # ------------------------------------------------------------------ spawn
    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=self._worker_main, args=(child_conn, self._boot_args(worker.index)),
            name=f"{self.name}-worker-{worker.index}", daemon=True)
        process.start()
        child_conn.close()              # the child holds its own copy
        worker.process = process
        worker.conn = parent_conn

    def _await_hello(self, worker: _Worker) -> None:
        try:
            kind, payload = self._recv(worker, timeout=self.boot_timeout)
        except self._WorkerDied as died:
            raise ProcPoolError(
                f"{self.name} worker {worker.index} died while booting "
                f"({died}). Workers use the 'spawn' start method: the "
                f"launching script must be importable without side effects "
                f"— guard pool/engine creation with "
                f"if __name__ == '__main__':") from died
        if kind == MSG.ERROR:
            raise ProcPoolError(
                f"{self.name} worker {worker.index} failed to boot: "
                f"{payload.get('error')}\n{payload.get('traceback', '')}")
        if kind != MSG.HELLO:
            raise ProtocolError(f"Expected HELLO from worker {worker.index}, "
                                f"got {MSG.name(kind)}")
        worker.pid = int(payload["pid"])
        worker.stats.boot_s += float(payload.get("boot_seconds", 0.0))
        self._on_worker_ready(worker, payload)

    def _on_worker_ready(self, worker: _Worker, payload: Dict) -> None:
        """Hook for subclasses (e.g. sanity-check the booted module)."""

    # ------------------------------------------------------------------ io
    class _WorkerDied(Exception):
        """Internal: the worker died (or stalled) before replying."""

    def _recv(self, worker: _Worker, timeout: Optional[float]):
        """Receive one frame, polling the process for death while waiting."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            remaining = _POLL_SECONDS if deadline is None else \
                min(_POLL_SECONDS, deadline - time.monotonic())
            if remaining > 0 and worker.conn.poll(remaining):
                try:
                    return recv_msg(worker.conn)
                except (EOFError, OSError) as exc:
                    raise self._WorkerDied(f"pipe closed: {exc!r}") from exc
                except ProtocolError as exc:
                    # A torn or malformed frame means the worker (or the
                    # stream) is corrupt — same remedy as death: respawn.
                    raise self._WorkerDied(f"bad frame: {exc}") from exc
            if worker.process is not None and not worker.process.is_alive():
                raise self._WorkerDied(
                    f"process exited with code {worker.process.exitcode}")
            if deadline is not None and time.monotonic() >= deadline:
                raise self._WorkerDied(f"no reply within {timeout:.1f}s "
                                       f"(treating the worker as hung)")

    def _respawn(self, worker: _Worker, reason: str) -> None:
        """Replace a dead/hung worker in place (caller holds its lock)."""
        if self._closed:
            raise PoolShutdownError(f"{self.name} is shut down")
        self._reap(worker)
        worker.stats.respawns += 1
        self._spawn(worker)
        self._await_hello(worker)

    @staticmethod
    def _reap(worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.conn = None
        process = worker.process
        if process is not None:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
            else:
                process.join(timeout=5.0)
            worker.process = None

    # ------------------------------------------------------------------ dispatch
    def request(self, index: int, kind: int, payload: Dict,
                expect: int, timeout: Optional[float] = None) -> Dict:
        """Round-trip one frame to worker ``index``; respawn + retry on death.

        The payload must be self-contained (re-sendable verbatim): on worker
        death the worker is respawned and the same frame is retried up to
        ``max_retries`` times before :class:`WorkerCrash` is raised.
        """
        if self._closed:
            raise PoolShutdownError(f"{self.name} is shut down")
        worker = self._workers[index]
        wait_start = time.perf_counter()
        with worker.lock:
            worker.stats.dispatch_wait_s += time.perf_counter() - wait_start
            last_reason = "?"
            for attempt in range(self.max_retries + 1):
                if self._closed:
                    raise PoolShutdownError(f"{self.name} is shut down")
                if attempt:
                    worker.stats.retries += 1
                try:
                    if worker.conn is None or worker.process is None \
                            or not worker.process.is_alive():
                        raise self._WorkerDied("worker is not running")
                    fault = faults_inject("procpool.dispatch",
                                          pool=self.name, index=index,
                                          kind=MSG.name(kind),
                                          pid=worker.pid)
                    if fault is not None and fault.get("action") == "kill" \
                            and worker.pid is not None:
                        try:
                            os.kill(worker.pid, signal.SIGKILL)
                        except (ProcessLookupError, PermissionError):
                            pass
                    send_msg(worker.conn, kind, payload)
                    reply_kind, reply = self._recv(
                        worker, timeout if timeout is not None
                        else self.reply_timeout)
                except self._WorkerDied as died:
                    last_reason = str(died)
                    self._respawn(worker, last_reason)
                    continue
                except (BrokenPipeError, OSError) as exc:
                    last_reason = repr(exc)
                    self._respawn(worker, last_reason)
                    continue
                if reply_kind == MSG.ERROR:
                    raise WorkerError(
                        f"{self.name} worker {index} failed a "
                        f"{MSG.name(kind)} request: {reply.get('error')}",
                        remote_traceback=str(reply.get("traceback", "")))
                if reply_kind != expect:
                    raise ProtocolError(
                        f"{self.name} worker {index}: expected "
                        f"{MSG.name(expect)}, got {MSG.name(reply_kind)}")
                worker.stats.requests += 1
                return reply
            raise WorkerCrash(
                f"{self.name} worker {index} died {self.max_retries + 1} "
                f"time(s) handling one {MSG.name(kind)} request "
                f"(last: {last_reason}); giving up on this batch")

    # ------------------------------------------------------------------ health
    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self.heartbeat_interval):
            for worker in self._workers:
                if self._closed:
                    return
                # Only probe idle workers: a held lock means a dispatch is in
                # flight, and that path does its own death detection.
                if not worker.lock.acquire(blocking=False):
                    continue
                try:
                    if self._closed:
                        return
                    alive = (worker.process is not None
                             and worker.process.is_alive())
                    if alive:
                        try:
                            send_msg(worker.conn, MSG.PING, {})
                            kind, _ = self._recv(worker, timeout=5.0)
                            if kind == MSG.PONG:
                                worker.stats.heartbeats += 1
                                continue
                        except (self._WorkerDied, OSError,
                                ProtocolError):
                            pass
                    worker.stats.missed_heartbeats += 1
                    try:
                        self._respawn(worker, "missed heartbeat")
                    except (ProcPoolError, ProtocolError):
                        pass            # next beat (or dispatch) retries
                finally:
                    worker.lock.release()

    def alive(self) -> List[bool]:
        return [w.process is not None and w.process.is_alive()
                for w in self._workers]

    def pids(self) -> List[Optional[int]]:
        return [w.process.pid if w.process is not None else None
                for w in self._workers]

    # ------------------------------------------------------------------ stats
    def stats(self) -> List[Dict[str, float]]:
        """Structured per-worker statistics dicts."""
        return [{**w.stats.to_dict(), "index": w.index, "pid": w.pid,
                 "alive": w.process is not None and w.process.is_alive()}
                for w in self._workers]

    # ------------------------------------------------------------------ lifecycle
    def shutdown(self) -> None:
        """Stop every worker and release every pool resource (idempotent).

        Workers get a ``SHUTDOWN`` frame and a bounded join; stragglers are
        killed.  Subclasses unlink their shared-memory segments afterwards.
        """
        if self._closed:
            return
        self._closed = True
        monitor = getattr(self, "_monitor", None)
        if monitor is not None:
            self._monitor_stop.set()
            if monitor is not threading.current_thread():
                monitor.join(timeout=10.0)
        for worker in self._workers:
            acquired = worker.lock.acquire(timeout=5.0)
            try:
                if worker.conn is not None and worker.process is not None \
                        and worker.process.is_alive():
                    try:
                        send_msg(worker.conn, MSG.SHUTDOWN, {})
                        self._recv(worker, timeout=5.0)
                    except (self._WorkerDied, ProtocolError, OSError):
                        pass
                self._reap(worker)
            finally:
                if acquired:
                    worker.lock.release()
        self._unlink_segments()
        _LIVE_POOLS.discard(self)

    def _unlink_segments(self) -> None:
        """Hook: subclasses unlink the shm segments they created."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


# ---------------------------------------------------------------------------
# Serving specialisation
# ---------------------------------------------------------------------------

class ModuleWorkerPool(WorkerPool):
    """One process per device, booted from an exported module artifact.

    Parameters are packed into a single shared arena at construction and
    mapped (read-only, zero-copy) by every worker exactly once; each
    dispatched batch travels through its own arena holding the request
    inputs plus reserved output slots, so tensors are never pickled and the
    parent remains the owner (and unlinker) of every segment.
    """

    def __init__(self, module, bundle_path: Union[str, os.PathLike],
                 devices: Sequence, **pool_kwargs):
        self._params_arena: Optional[ShmArena] = None
        if module.params:
            self._params_arena = ShmArena.create(module.params)
        params_spec = (self._params_arena.spec()
                       if self._params_arena is not None else None)
        bundle = str(bundle_path)
        device_specs = [str(device) for device in devices]

        self._input_names = [
            node.name for node in module.graph.input_nodes
            if node.name not in module.params]
        self._output_specs = [
            (node.name, tuple(node.shape), node.dtype or "float32")
            for node in module.graph.outputs]
        #: batch arenas currently in flight (unlinked by shutdown if a
        #: dispatching thread was killed between create and finally)
        self._batch_arenas: Dict[str, ShmArena] = {}
        self._batch_lock = threading.Lock()

        def boot(index: int) -> Dict:
            return {"bundle": bundle, "device": device_specs[index],
                    "params": params_spec}

        from .worker import module_worker_main

        pool_kwargs.setdefault("name", "repro-serve-pool")
        try:
            super().__init__(len(device_specs), module_worker_main, boot,
                             **pool_kwargs)
        except BaseException:
            # Pool construction failed after the arena was created (e.g. a
            # worker could not boot): super().__init__ only unlinks through
            # shutdown() when its own spawn loop ran, so be explicit here.
            self._unlink_segments()
            raise

    # ------------------------------------------------------------------ batches
    def run_batch(self, index: int,
                  requests: Sequence[Dict[str, np.ndarray]]
                  ) -> List[Union[List[np.ndarray], Exception]]:
        """Execute ``requests`` on worker ``index``; one entry per request —
        the output arrays, or the per-request execution error.

        Worker death mid-batch is handled by :meth:`request` (respawn +
        bounded retry of this same batch); exhausted retries raise
        :class:`WorkerCrash`.
        """
        pack_start = time.perf_counter()
        tensors = {}
        for i, request in enumerate(requests):
            for name in self._input_names:
                tensors[f"in:{i}:{name}"] = request[name]
        reserve = {}
        for i in range(len(requests)):
            for name, shape, dtype in self._output_specs:
                reserve[f"out:{i}:{name}"] = (shape, dtype)
        arena = ShmArena.create(tensors, reserve=reserve)
        with self._batch_lock:
            self._batch_arenas[arena.name] = arena
        pack_seconds = time.perf_counter() - pack_start
        worker = self._workers[index]
        try:
            reply = self.request(index, MSG.EXEC, {
                "arena": arena.spec(),
                "requests": len(requests),
                "inputs": self._input_names,
                "outputs": [name for name, _shape, _dtype in self._output_specs],
            }, expect=MSG.RESULT)
            timings = reply.get("timings", {})
            worker.stats.execute_s += float(timings.get("execute_s", 0.0))
            worker.stats.shm_copy_s += pack_seconds \
                + float(timings.get("shm_copy_s", 0.0))
            results: List[Union[List[np.ndarray], Exception]] = []
            for i, status in enumerate(reply["per_request"]):
                if status.get("ok"):
                    results.append([arena.read(f"out:{i}:{name}")
                                    for name, _s, _d in self._output_specs])
                else:
                    results.append(RuntimeError(
                        f"request failed on {self.name} worker {index}: "
                        f"{status.get('error')}"))
            return results
        finally:
            with self._batch_lock:
                self._batch_arenas.pop(arena.name, None)
            arena.unlink()

    # ------------------------------------------------------------------ cleanup
    def _unlink_segments(self) -> None:
        with self._batch_lock:
            arenas = list(self._batch_arenas.values())
            self._batch_arenas.clear()
        for arena in arenas:
            try:
                arena.unlink()
            except Exception:
                pass
        if self._params_arena is not None:
            try:
                self._params_arena.unlink()
            except Exception:
                pass
            self._params_arena = None
