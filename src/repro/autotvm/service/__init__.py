"""Distributed tuning service: one shared database, many tuning sessions.

The paper scales tuning by pooling devices behind an RPC tracker (Section
5.4); this package pools the *knowledge* the fleet produces.  A
:class:`TuningService` owns the single authoritative
:class:`~repro.autotvm.database.TuningDatabase`; sessions join it with
``TuningOptions(service="host:port")`` and get, for free:

* global measurement dedup — a ``(task, target, config)`` any client
  measured is never measured again anywhere;
* cross-session, cross-shape transfer — session bests (with features) feed
  every later session's cost-model warm start;
* a pretrained cost model, fitted at service startup on the accumulated
  database, so cold sessions explore model-guided from the first batch.

A single session against a fresh service behaves bit-identically to tuning
locally.  :func:`schedule_zoo` drives the whole model zoo through one
service.
"""

from .client import (ServiceClient, ServiceDedupMeasurer,
                     ServiceUnavailable, connect)
from .protocol import MSG, ServiceProtocolError
from .server import TuningService
from .zoo import DEFAULT_ZOO, schedule_zoo, trials_to_target

__all__ = [
    "MSG",
    "ServiceClient",
    "ServiceDedupMeasurer",
    "ServiceProtocolError",
    "ServiceUnavailable",
    "TuningService",
    "DEFAULT_ZOO",
    "connect",
    "schedule_zoo",
    "trials_to_target",
]
