"""Unified length-prefixed frame codec shared by every wire protocol.

Both framed protocols in the system — the process-pool pipe protocol
(``RPP1``, :mod:`repro.runtime.procpool.protocol`) and the tuning-service
socket protocol (``RTS1``, :mod:`repro.autotvm.service.protocol`) — use the
same frame layout::

    [4s magic][u8 message kind][u32 payload length][UTF-8 JSON payload]

with payloads encoded through the tuple-preserving artifact codec.  This
module is the one implementation of that discipline: header packing,
payload (de)serialisation, size caps, and — crucially — *uniform* failure
behaviour.  A peer dying mid-frame raises :class:`TruncatedFrameError`
naming exactly how many bytes were expected and how many arrived, on every
transport (socket reads and pipe frames alike), so partial-read handling is
one fix, not one per protocol.

It is also the system's single fault-injection point: :mod:`repro.faults`
installs a hook here (:func:`set_fault_hook`) and every frame sent by
either protocol consults it, which is how a seeded
:class:`~repro.faults.FaultPlan` drops, delays, truncates or resets frames
on any connection in the process without either protocol knowing.

Transports:

* **pipe** — ``multiprocessing`` connections (``send_bytes``/``recv_bytes``;
  message-oriented, one call per frame);
* **socket** — stream sockets (``sendall`` + exact-count reads).
"""

from __future__ import annotations

import json
import struct
import time
from typing import Callable, Dict, Optional, Tuple, Type

__all__ = ["FrameCodec", "ProtocolError", "TruncatedFrameError",
           "DEFAULT_MAX_PAYLOAD", "set_fault_hook", "get_fault_hook"]

_HEADER = struct.Struct("!4sBI")

#: frames carry specs, statuses and log entries — never tensor data — so
#: anything bigger than this is a bug, not a workload
DEFAULT_MAX_PAYLOAD = 32 * 1024 * 1024


class ProtocolError(RuntimeError):
    """A malformed, truncated or oversized frame arrived on a connection."""


class TruncatedFrameError(ProtocolError, ConnectionError):
    """A peer died mid-frame: fewer bytes arrived than the frame declared.

    Subclasses :class:`ConnectionError` too, because a truncated frame on a
    stream *is* a broken connection: accept loops that treat peer death as
    "client went away" keep working, while protocol-level callers get the
    exact ``bytes expected`` / ``bytes got`` accounting.
    """

    def __init__(self, message: str, expected: int, got: int):
        super().__init__(message)
        self.bytes_expected = expected
        self.bytes_got = got


# ---------------------------------------------------------------------------
# Fault-injection hook (installed by repro.faults)
# ---------------------------------------------------------------------------

#: ``hook(site, context) -> action-dict or None``; see repro.faults
_FAULT_HOOK: Optional[Callable[[str, Dict], Optional[Dict]]] = None


def set_fault_hook(hook: Optional[Callable[[str, Dict], Optional[Dict]]]
                   ) -> None:
    """Install (or clear, with ``None``) the process-wide frame fault hook."""
    global _FAULT_HOOK
    _FAULT_HOOK = hook


def get_fault_hook():
    return _FAULT_HOOK


def _codec_funcs():
    # Imported lazily: repro.runtime.artifact imports the compiler package,
    # so a module-level import here would turn any import that *starts* at
    # runtime.artifact — e.g. a procpool worker booting from an exported
    # bundle — into a circular-import crash.
    from .artifact import _decode_attr, _encode_attr
    return _encode_attr, _decode_attr


class FrameCodec:
    """One protocol's frame codec: magic + error type + payload cap.

    ``error`` is the protocol's own :class:`ProtocolError` subclass; the
    codec raises it for malformed frames and a dynamically derived
    ``(error, TruncatedFrameError)`` type for truncation, so callers can
    catch either the protocol's error or the shared framing errors.
    ``name_of`` maps a message-kind byte to a human-readable name for error
    messages.
    """

    def __init__(self, magic: bytes, *,
                 error: Type[ProtocolError] = ProtocolError,
                 max_payload: int = DEFAULT_MAX_PAYLOAD,
                 name_of: Optional[Callable[[int], str]] = None):
        if len(magic) != 4:
            raise ValueError(f"Frame magic must be 4 bytes, got {magic!r}")
        self.magic = magic
        self.max_payload = max_payload
        self.error = error
        self.name_of = name_of or (lambda kind: f"kind={kind}")
        if issubclass(TruncatedFrameError, error):
            self.truncated_error: Type[TruncatedFrameError] = \
                TruncatedFrameError
        else:
            self.truncated_error = type(
                f"Truncated{error.__name__}", (error, TruncatedFrameError), {})

    # ------------------------------------------------------------- packing
    def pack(self, kind: int, payload: Dict) -> bytes:
        """One complete frame (header + JSON payload) as bytes."""
        _encode_attr, _ = _codec_funcs()
        body = json.dumps({key: _encode_attr(value)
                           for key, value in payload.items()}).encode("utf-8")
        if len(body) > self.max_payload:
            raise self.error(
                f"Refusing to send a {len(body)}-byte "
                f"{self.name_of(kind)} frame (max {self.max_payload}); bulk "
                f"data must travel out of band (shm arenas), not in a frame")
        return _HEADER.pack(self.magic, kind, len(body)) + body

    def unpack_header(self, header: bytes) -> Tuple[int, int]:
        """Validate a header buffer; returns ``(kind, payload length)``."""
        magic, kind, length = _HEADER.unpack(header)
        if magic != self.magic:
            raise self.error(
                f"Bad frame magic {magic!r} (expected {self.magic!r})")
        if length > self.max_payload:
            raise self.error(
                f"Oversized {self.name_of(kind)} frame: {length} bytes")
        return kind, length

    def unpack_body(self, kind: int, body: bytes) -> Dict:
        try:
            raw = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise self.error(
                f"Undecodable {self.name_of(kind)} payload: {exc}") from exc
        if not isinstance(raw, dict):
            raise self.error(
                f"{self.name_of(kind)} payload is not an object")
        _, _decode_attr = _codec_funcs()
        return {key: _decode_attr(value) for key, value in raw.items()}

    def unpack(self, frame: bytes) -> Tuple[int, Dict]:
        """Decode one whole frame buffer (the pipe transport's receive)."""
        if len(frame) < _HEADER.size:
            raise self.truncated_error(
                f"Truncated frame header: expected {_HEADER.size} bytes, "
                f"got {len(frame)}", _HEADER.size, len(frame))
        kind, length = self.unpack_header(frame[:_HEADER.size])
        body = frame[_HEADER.size:]
        if len(body) != length:
            raise self.truncated_error(
                f"Truncated {self.name_of(kind)} frame: header declares "
                f"{length} payload bytes, got {len(body)}",
                length, len(body))
        return kind, self.unpack_body(kind, body)

    # ------------------------------------------------------------- faults
    def _consult(self, kind: int, transport: str, size: int
                 ) -> Optional[Dict]:
        hook = _FAULT_HOOK
        if hook is None:
            return None
        return hook("framing.send", {
            "protocol": self.magic.decode("ascii", "replace"),
            "kind": kind, "transport": transport, "size": size})

    # ------------------------------------------------------------- pipe
    def send_pipe(self, conn, kind: int, payload: Dict) -> None:
        """Send one frame on a ``multiprocessing`` connection."""
        frame = self.pack(kind, payload)
        fault = self._consult(kind, "pipe", len(frame))
        if fault is not None:
            action = fault.get("action")
            if action == "drop":
                return
            if action == "delay":
                time.sleep(float(fault.get("seconds", 0.05)))
            elif action == "truncate":
                keep = max(_HEADER.size,
                           len(frame) - int(fault.get("bytes", 1)))
                conn.send_bytes(frame[:keep])
                return
            elif action == "reset":
                conn.close()
                raise ConnectionResetError(
                    "fault injection: pipe reset while sending "
                    f"{self.name_of(kind)}")
        conn.send_bytes(frame)

    def recv_pipe(self, conn) -> Tuple[int, Dict]:
        """Receive one frame on a ``multiprocessing`` connection."""
        return self.unpack(conn.recv_bytes())

    # ------------------------------------------------------------- socket
    def send_sock(self, sock, kind: int, payload: Dict) -> None:
        """Send one frame on a stream socket."""
        frame = self.pack(kind, payload)
        fault = self._consult(kind, "socket", len(frame))
        if fault is not None:
            action = fault.get("action")
            if action == "drop":
                return
            if action == "delay":
                time.sleep(float(fault.get("seconds", 0.05)))
            elif action in ("truncate", "reset"):
                # A stream cannot resync after a partial frame, so both
                # faults end the connection: send a torn prefix (truncate)
                # or nothing (reset), then hard-close so the peer observes
                # a death mid-frame / reset, and fail the local send.
                if action == "truncate":
                    keep = max(_HEADER.size,
                               len(frame) - int(fault.get("bytes", 1)))
                    try:
                        sock.sendall(frame[:keep])
                    except OSError:
                        pass
                try:
                    sock.close()
                except OSError:
                    pass
                raise ConnectionResetError(
                    f"fault injection: connection {action} while sending "
                    f"{self.name_of(kind)}")
        sock.sendall(frame)

    def _recv_exact(self, sock, count: int, what: str) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                got = count - remaining
                raise self.truncated_error(
                    f"Connection closed mid-frame reading {what}: expected "
                    f"{count} bytes, got {got}", count, got)
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv_sock(self, sock) -> Tuple[int, Dict]:
        """Receive one frame on a stream socket (blocking, exact reads)."""
        header = self._recv_exact(sock, _HEADER.size, "the frame header")
        kind, length = self.unpack_header(header)
        body = self._recv_exact(sock, length,
                                f"a {self.name_of(kind)} payload")
        return kind, self.unpack_body(kind, body)

    def __repr__(self) -> str:
        return f"FrameCodec({self.magic!r}, max_payload={self.max_payload})"
