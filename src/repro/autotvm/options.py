"""Tuning-session configuration and the structured progress-event stream.

:class:`TuningOptions` is the one bag of knobs :func:`repro.autotune`
accepts (mirroring how :class:`~repro.compiler.PassContext` configures
``repro.compile``), and :class:`ProgressEvent` is the structured record the
session hands to progress callbacks after every measured batch — replacing
the old ``verbose=`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

__all__ = ["TuningOptions", "ProgressEvent"]


@dataclass(frozen=True)
class ProgressEvent:
    """One measured batch, as reported to progress callbacks."""

    task_name: str            #: workload being tuned
    task_index: int           #: position of the task in the session
    num_tasks: int            #: total tasks in the session
    trial: int                #: trials completed for this task so far
    total_trials: int         #: trial budget for this task
    best_time: float          #: best measured time (seconds) so far
    batch_times: Tuple[float, ...] = ()   #: measured times of this batch
    elapsed: float = 0.0      #: wall seconds spent on this task so far

    @property
    def done(self) -> bool:
        """Whether this task's tuning is finished.  On early stopping the
        session emits a terminal event whose ``total_trials`` equals the
        trials actually spent, so ``done`` still becomes true."""
        return self.trial >= self.total_trials


#: signature of a session progress callback
ProgressCallback = Callable[[ProgressEvent], None]


@dataclass
class TuningOptions:
    """Knobs of one :func:`repro.autotune` session.

    The keyword shortcuts on :func:`repro.autotune` (``trials=``, ``tuner=``)
    override the corresponding fields here, the same way ``opt_level=`` is a
    shortcut over :class:`~repro.compiler.PassContext`.
    """

    #: measurement trials per extracted task
    trials: int = 64
    #: candidate configurations measured per batch
    batch_size: int = 8
    #: stop a task early after this many trials without improvement
    #: (``None`` disables early stopping)
    early_stopping: Optional[int] = None
    #: base RNG seed; task ``i`` tunes with ``seed + i``
    seed: int = 0
    #: registered tuner name (see :func:`repro.autotvm.list_tuners`)
    tuner: str = "model"
    #: extra keyword arguments forwarded to the tuner constructor
    tuner_args: Dict[str, object] = field(default_factory=dict)
    #: repeated timings per measurement on the simulated device
    measure_number: int = 2
    #: worker threads of the parallel batch measurer (1 = serial path)
    n_parallel: int = 4
    #: batch-measurement backend: ``"thread"`` (default) runs builder/runner
    #: workers on a thread pool; ``"process"`` runs them on a pool of worker
    #: *processes* (outside the GIL).  Either way results are bit-identical
    #: to the serial path (the noise RNG is derived per (seed, task, config))
    measurer: str = "thread"
    #: warm-start the cost model from prior database entries of the same
    #: operator (transfer learning across sessions)
    warm_start: bool = True
    #: shared tuning service to tune against: a ``"host:port"`` address or a
    #: connected :class:`repro.autotvm.service.ServiceClient`.  ``None`` (the
    #: default) tunes locally — the current, serviceless behaviour.  With a
    #: service, measurements any client already made are deduplicated
    #: globally, session bests are published for cross-session transfer, and
    #: the service's pretrained cost model (when it has one) cuts cold-start
    #: trials.  A single session against a fresh service produces the exact
    #: serviceless report.
    service: Optional[object] = None
    #: statically verify every candidate's lowered program before measuring
    #: it; illegal schedules (out-of-bounds accesses, parallel hazards) are
    #: rejected as typed errors instead of entering the tuning history
    verify: bool = False
    #: guarantee the recorded best never loses to the compiler's untuned
    #: fallback heuristic: if it does, the fallback configuration is recorded
    #: instead, so history-based compilation cannot regress a build
    ensure_no_regression: bool = True
    #: structured progress callbacks, called once per measured batch
    callbacks: Sequence[ProgressCallback] = ()

    def __post_init__(self) -> None:
        if self.trials <= 0:
            raise ValueError(f"trials must be positive, got {self.trials}")
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")
        if self.n_parallel <= 0:
            raise ValueError(f"n_parallel must be positive, got {self.n_parallel}")
        if self.measurer not in ("thread", "process"):
            raise ValueError(f"measurer must be 'thread' or 'process', "
                             f"got {self.measurer!r}")
        if self.early_stopping is not None and self.early_stopping <= 0:
            raise ValueError(
                f"early_stopping must be positive or None, got {self.early_stopping}")

    def overridden(self, **overrides) -> "TuningOptions":
        """A copy with the non-``None`` entries of ``overrides`` applied."""
        changes = {k: v for k, v in overrides.items() if v is not None}
        return replace(self, **changes) if changes else self
