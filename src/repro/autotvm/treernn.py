"""TreeRNN cost model (paper Section 5.2, Figure 13, right-hand path).

The paper evaluates two cost-model designs: gradient-boosted trees over
engineered loop-program features (the default) and a neural model that
"directly summarizes the AST" of the lowered loop program with a TreeRNN
(Tai et al.).  The paper found the two to have similar predictive quality,
with the tree-boosting model roughly twice as fast at prediction time, which
is why it is the default.  This module reproduces the TreeRNN side so that
the design comparison (``benchmarks/bench_ablation_cost_models.py``) can be
regenerated.

The model is a child-sum recursive encoder over the *statement-level* AST of
a :class:`~repro.tir.stmt.LoweredFunc`:

* every statement node gets a type embedding plus a small numeric feature
  vector (log loop extent, annotation one-hots, bytes stored);
* a child-sum ``tanh`` cell combines a node's embedding with the sum of its
  children's hidden states;
* a linear read-out on the root hidden state predicts a throughput score
  (larger = faster), the same target the gradient-boosted model is trained
  on.

Training uses full reverse-mode differentiation through the recursion
(implemented directly on NumPy arrays), with a squared-error objective on
normalised throughputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tir.stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    BufferStore,
    DepPop,
    DepPush,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
    dtype_bytes,
)

__all__ = ["ASTNode", "TreeRNNCostModel", "build_ast"]

#: statement categories the encoder distinguishes
_NODE_TYPES = [
    "root", "for_serial", "for_parallel", "for_vectorized", "for_unrolled",
    "for_thread", "for_vthread", "store", "intrinsic", "barrier", "dep_token",
    "branch", "allocate", "other",
]
_TYPE_INDEX = {name: i for i, name in enumerate(_NODE_TYPES)}
#: numeric annotations attached to every AST node
_NUM_FEATURES = 4


@dataclass
class ASTNode:
    """One node of the simplified statement AST fed to the TreeRNN."""

    kind: str
    features: np.ndarray
    children: List["ASTNode"] = field(default_factory=list)

    def size(self) -> int:
        return 1 + sum(child.size() for child in self.children)

    def depth(self) -> int:
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)


def _log1(value: float) -> float:
    return math.log(max(float(value), 0.0) + 1.0)


def _for_kind_name(loop: For) -> str:
    mapping = {
        ForKind.SERIAL: "for_serial",
        ForKind.PARALLEL: "for_parallel",
        ForKind.VECTORIZED: "for_vectorized",
        ForKind.UNROLLED: "for_unrolled",
        ForKind.THREAD_BINDING: "for_thread",
        ForKind.VTHREAD: "for_vthread",
        ForKind.TENSORIZED: "for_unrolled",
    }
    return mapping.get(loop.kind, "for_serial")


def build_ast(func_or_stmt) -> ASTNode:
    """Convert a lowered function (or statement) into the simplified AST."""
    stmt = func_or_stmt.body if isinstance(func_or_stmt, LoweredFunc) else func_or_stmt
    root = ASTNode("root", np.zeros(_NUM_FEATURES))
    root.children.extend(_convert(stmt))
    return root


def _convert(stmt: Stmt) -> List[ASTNode]:
    if isinstance(stmt, SeqStmt):
        nodes: List[ASTNode] = []
        for sub in stmt.stmts:
            nodes.extend(_convert(sub))
        return nodes
    if isinstance(stmt, For):
        try:
            extent = float(stmt.extent_value())
        except ValueError:
            extent = 1.0
        features = np.array([_log1(extent), 1.0, 0.0, 0.0])
        node = ASTNode(_for_kind_name(stmt), features)
        node.children.extend(_convert(stmt.body))
        return [node]
    if isinstance(stmt, IfThenElse):
        node = ASTNode("branch", np.zeros(_NUM_FEATURES))
        node.children.extend(_convert(stmt.then_body))
        if stmt.else_body is not None:
            node.children.extend(_convert(stmt.else_body))
        return [node]
    if isinstance(stmt, (Allocate, AttrStmt)):
        if isinstance(stmt, Allocate):
            features = np.array([_log1(stmt.buffer.size_bytes), 0.0, 1.0, 0.0])
            node = ASTNode("allocate", features)
        else:
            node = ASTNode("other", np.zeros(_NUM_FEATURES))
        node.children.extend(_convert(stmt.body))
        return [node]
    if isinstance(stmt, BufferStore):
        elem = dtype_bytes(stmt.buffer.dtype)
        is_onchip = 0.0 if stmt.buffer.scope == "global" else 1.0
        features = np.array([_log1(elem), 0.0, 0.0, is_onchip])
        return [ASTNode("store", features)]
    if isinstance(stmt, IntrinsicStmt):
        features = np.array([_log1(stmt.intrin.flop), 0.0, 0.0, 1.0])
        return [ASTNode("intrinsic", features)]
    if isinstance(stmt, Barrier):
        return [ASTNode("barrier", np.zeros(_NUM_FEATURES))]
    if isinstance(stmt, (DepPush, DepPop)):
        return [ASTNode("dep_token", np.zeros(_NUM_FEATURES))]
    if isinstance(stmt, Evaluate):
        return [ASTNode("other", np.zeros(_NUM_FEATURES))]
    return [ASTNode("other", np.zeros(_NUM_FEATURES))]


class TreeRNNCostModel:
    """Child-sum recursive network over lowered-program ASTs.

    The public interface mirrors the other cost models: ``fit`` on a list of
    programs with measured throughputs, ``predict`` throughput scores for new
    programs (relative order is what the schedule explorer consumes).
    """

    def __init__(self, hidden: int = 24, epochs: int = 60,
                 learning_rate: float = 5e-3, seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.rng = np.random.default_rng(seed)
        scale = 1.0 / math.sqrt(hidden)
        self.embed = self.rng.normal(0.0, scale, size=(len(_NODE_TYPES), hidden))
        self.w_num = self.rng.normal(0.0, scale, size=(_NUM_FEATURES, hidden))
        self.u_child = self.rng.normal(0.0, scale, size=(hidden, hidden))
        self.v_out = self.rng.normal(0.0, scale, size=hidden)
        self.b_out = 0.0
        self._target_norm: Tuple[float, float] = (0.0, 1.0)
        self._trained = False

    # ------------------------------------------------------------------ forward
    def _encode(self, node: ASTNode,
                trace: Optional[List[Tuple[ASTNode, np.ndarray, np.ndarray, np.ndarray]]] = None
                ) -> np.ndarray:
        """Bottom-up encoding; optionally record (node, child_sum, pre, h)."""
        child_sum = np.zeros(self.hidden)
        for child in node.children:
            child_sum = child_sum + self._encode(child, trace)
        pre = (self.embed[_TYPE_INDEX[node.kind]]
               + node.features @ self.w_num
               + child_sum @ self.u_child)
        hidden = np.tanh(pre)
        if trace is not None:
            trace.append((node, child_sum, pre, hidden))
        return hidden

    def _score(self, root: ASTNode) -> float:
        return float(self._encode(root) @ self.v_out + self.b_out)

    # ------------------------------------------------------------------ training
    def fit(self, programs: Sequence[object], throughputs: Sequence[float]
            ) -> "TreeRNNCostModel":
        """Train on (lowered program, throughput) pairs.

        ``programs`` may be :class:`LoweredFunc`, statements, or pre-built
        :class:`ASTNode` roots.  Throughputs are "larger is better" scores
        (the tuner passes normalised ``1 / time``).
        """
        roots = [p if isinstance(p, ASTNode) else build_ast(p) for p in programs]
        targets = np.asarray(list(throughputs), dtype=np.float64)
        if len(roots) < 2:
            return self
        mean, std = float(targets.mean()), float(targets.std() + 1e-8)
        self._target_norm = (mean, std)
        normalised = (targets - mean) / std

        lr = self.learning_rate
        for _ in range(self.epochs):
            order = self.rng.permutation(len(roots))
            for index in order:
                self._sgd_step(roots[index], float(normalised[index]), lr)
        self._trained = True
        return self

    def _sgd_step(self, root: ASTNode, target: float, lr: float) -> None:
        trace: List[Tuple[ASTNode, np.ndarray, np.ndarray, np.ndarray]] = []
        root_hidden = self._encode(root, trace)
        prediction = float(root_hidden @ self.v_out + self.b_out)
        error = prediction - target

        grad_v = error * root_hidden
        grad_b = error
        grad_embed = np.zeros_like(self.embed)
        grad_wnum = np.zeros_like(self.w_num)
        grad_u = np.zeros_like(self.u_child)

        # Reverse-mode through the recursion: the trace is in post-order, so
        # walking it backwards visits parents before their children.
        grad_h: Dict[int, np.ndarray] = {id(root): error * self.v_out}
        for node, child_sum, pre, _hidden in reversed(trace):
            upstream = grad_h.pop(id(node), None)
            if upstream is None:
                continue
            grad_pre = upstream * (1.0 - np.tanh(pre) ** 2)
            grad_embed[_TYPE_INDEX[node.kind]] += grad_pre
            grad_wnum += np.outer(node.features, grad_pre)
            grad_u += np.outer(child_sum, grad_pre)
            child_grad = self.u_child @ grad_pre
            for child in node.children:
                if id(child) in grad_h:
                    grad_h[id(child)] = grad_h[id(child)] + child_grad
                else:
                    grad_h[id(child)] = child_grad.copy()

        clip = 5.0
        for grad in (grad_embed, grad_wnum, grad_u, grad_v):
            np.clip(grad, -clip, clip, out=grad)
        self.embed -= lr * grad_embed
        self.w_num -= lr * grad_wnum
        self.u_child -= lr * grad_u
        self.v_out -= lr * grad_v
        self.b_out -= lr * float(np.clip(grad_b, -clip, clip))

    # ------------------------------------------------------------------ inference
    def predict(self, programs: Sequence[object]) -> np.ndarray:
        """Predict throughput scores (larger = faster) for lowered programs."""
        roots = [p if isinstance(p, ASTNode) else build_ast(p) for p in programs]
        raw = np.array([self._score(root) for root in roots])
        if not self._trained:
            return raw
        mean, std = self._target_norm
        return raw * std + mean
