"""NDArray and device abstractions (the ``tvm.nd`` API of Section 2).

:class:`Device` names an execution device (type + index) and is the unit of
placement for :class:`~repro.runtime.executor.Executor` pools and the serving
engine.  ``Context`` — the seed-era name — remains as an alias so existing
code and saved scripts keep working.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Device", "Context", "NDArray", "array", "device", "empty",
           "cpu", "gpu", "mali", "vdla", "DEVICE_TYPES"]

#: device types understood by the simulated back-ends
DEVICE_TYPES = ("cpu", "gpu", "mali", "vdla")


class Device:
    """An execution device: device type + index (e.g. ``gpu:1``).

    Replaces (and absorbs) the seed-era ``Context``; construct one directly,
    via the :func:`cpu` / :func:`gpu` / :func:`mali` / :func:`vdla` helpers,
    or by parsing a string with :func:`device`.
    """

    def __init__(self, device_type: str, device_id: int = 0):
        if device_type not in DEVICE_TYPES:
            raise ValueError(f"Unknown device type {device_type!r}; "
                             f"expected one of {list(DEVICE_TYPES)}")
        if device_id < 0:
            raise ValueError(f"Device index must be >= 0, got {device_id}")
        self.device_type = device_type
        self.device_id = int(device_id)

    @property
    def index(self) -> int:
        """Alias of ``device_id`` (the ``gpu:1`` notation's ``1``)."""
        return self.device_id

    def __repr__(self) -> str:
        return f"{self.device_type}:{self.device_id}"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Device) and other.device_type == self.device_type
                and other.device_id == self.device_id)

    def __hash__(self) -> int:
        return hash((self.device_type, self.device_id))


#: deprecated alias — the seed-era name for :class:`Device`
Context = Device

DeviceLike = Union[Device, str]


def device(spec: DeviceLike) -> Device:
    """Parse a device specification: a :class:`Device`, ``"gpu"``, ``"gpu:1"``.

    The string form is ``"<type>[:<index>]"`` with the index defaulting to 0.
    """
    if isinstance(spec, Device):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"device spec must be a Device or a string like "
                        f"'gpu:1', got {type(spec).__name__}")
    kind, _sep, index = spec.partition(":")
    kind = kind.strip().lower()
    if kind not in DEVICE_TYPES:
        raise ValueError(f"Unknown device type {kind!r} in spec {spec!r}; "
                         f"expected one of {list(DEVICE_TYPES)}")
    if not index:
        return Device(kind, 0)
    try:
        parsed = int(index)
    except ValueError:
        raise ValueError(f"Invalid device index {index!r} in spec {spec!r}; "
                         f"expected an integer, e.g. 'gpu:1'") from None
    return Device(kind, parsed)


def cpu(device_id: int = 0) -> Device:
    return Device("cpu", device_id)


def gpu(device_id: int = 0) -> Device:
    return Device("gpu", device_id)


def mali(device_id: int = 0) -> Device:
    return Device("mali", device_id)


def vdla(device_id: int = 0) -> Device:
    return Device("vdla", device_id)


class NDArray:
    """A device-resident tensor (backed by NumPy in this reproduction)."""

    def __init__(self, data: np.ndarray, device: Optional[Device] = None,
                 ctx: Optional[Device] = None):
        self._data = np.asarray(data)
        self.device = device or ctx or cpu()

    @property
    def ctx(self) -> Device:
        """Deprecated alias of :attr:`device` (the seed-era name)."""
        return self.device

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(self._data.shape)

    @property
    def dtype(self) -> str:
        return str(self._data.dtype)

    def asnumpy(self) -> np.ndarray:
        return np.array(self._data)

    def numpy_view(self) -> np.ndarray:
        """Zero-copy read-only view of the underlying host buffer.

        Used by the shared-memory arena to pack tensors without an extra
        copy; mutate through :meth:`copyfrom`, never through this view.
        """
        view = self._data.view()
        view.flags.writeable = False
        return view

    def copyfrom(self, source: Union["NDArray", np.ndarray]) -> "NDArray":
        array_data = source.asnumpy() if isinstance(source, NDArray) else np.asarray(source)
        if array_data.shape != self._data.shape:
            raise ValueError(f"Shape mismatch: {array_data.shape} vs {self._data.shape}")
        self._data[...] = array_data
        return self

    def copyto(self, target: Union["NDArray", Device, str]) -> "NDArray":
        """Copy to another array, or across devices to a fresh array.

        ``copyto(other_ndarray)`` fills ``other_ndarray`` in place (as
        before); ``copyto(device)`` / ``copyto("gpu:1")`` allocates a new
        array holding a copy of this one on that device.
        """
        if isinstance(target, NDArray):
            return target.copyfrom(self)
        return NDArray(self.asnumpy(), device(target))

    def __repr__(self) -> str:
        return f"NDArray(shape={self.shape}, dtype={self.dtype}, device={self.device})"


def array(data: np.ndarray, device: Optional[Device] = None,
          ctx: Optional[Device] = None) -> NDArray:
    """Create an NDArray on a device from host data (``ctx`` is the
    deprecated seed-era keyword for ``device``)."""
    return NDArray(np.array(data), device or ctx)


def empty(shape: Sequence[int], dtype: str = "float32",
          ctx: Optional[Device] = None, device: Optional[Device] = None) -> NDArray:
    """Allocate an uninitialised NDArray (``tvm.nd.empty`` in the paper)."""
    return NDArray(np.zeros(tuple(shape), dtype=dtype), device or ctx)
