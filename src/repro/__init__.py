"""repro — a pure-Python reproduction of the TVM deep-learning compiler stack.

The package mirrors the paper's architecture (Figure 2):

* :mod:`repro.compiler` — the unified compilation pipeline behind
  :func:`repro.compile`: pass registry, pass manager and ``PassContext``.
* :mod:`repro.te` — declarative tensor expressions and schedules.
* :mod:`repro.tir` — the low-level loop program IR, lowering and transforms.
* :mod:`repro.topi` — the operator library built on tensor expressions.
* :mod:`repro.autotvm` — the ML-based automated schedule optimizer.
* :mod:`repro.graph` — the computational graph IR and high-level rewriting.
* :mod:`repro.hardware` — simulated CPU / GPU / accelerator back-ends.
* :mod:`repro.runtime` — NDArray, deployable modules, graph executor, RPC.
* :mod:`repro.frontend` — model builder and the model zoo used in evaluation.
* :mod:`repro.baselines` — simulated vendor libraries and framework baselines.

Everything is exported lazily (PEP 562): ``import repro`` is instant, and
``repro.compile`` / ``repro.autotune`` / ``repro.hardware`` /... resolve on
first access.  The lazily resolved top-level attributes:

===================  ====================================================
``compile``          the unified compilation pipeline (``repro.compiler``)
``CompiledModule``   its deployable result object
``PassContext``      compilation configuration scope
``Sequential``       the pass manager
``TimingInstrument`` per-pass instrumentation
``VerifierError``    base of the static-analysis error hierarchy
``VerifyInstrument`` per-pass IR verification (``repro.analysis``)
``autotune``         the unified tuning session (``repro.autotvm``)
``TuningReport``     its result object (configs, curves, database)
``TuningOptions``    tuning-session configuration
``ApplyHistoryBest`` compile-with-tuned-configs context
``load``             restore an exported module artifact (``repro.runtime``)
``serve``            dynamic-batching inference engine over a module
``Device``           execution device (``repro.runtime``), e.g. ``gpu:1``
``Executor``         stateless thread-safe module executor
``InferenceEngine``  the serving engine returned by ``repro.serve``
===================  ====================================================

The canonical flow — compile, deploy, serve::

    import repro

    module = repro.compile("resnet-18", target="cuda")
    outputs = repro.Executor(module)(data)

    module.export("resnet18.tar")          # compile once ...
    module = repro.load("resnet18.tar")    # ... deploy anywhere

    with repro.serve(module, devices=2, max_batch=8) as engine:
        result = engine.infer(data=data)

    report = repro.autotune("resnet-18", target="cuda", trials=64)
    with report.apply_history_best():
        tuned = repro.compile("resnet-18", target="cuda")
"""

from importlib import import_module
from typing import TYPE_CHECKING

__version__ = "0.2.0"

#: lazily imported subpackages/submodules
_SUBMODULES = frozenset({
    "analysis", "autotvm", "baselines", "compiler", "faults", "frontend",
    "graph", "hardware", "runtime", "te", "tir", "topi", "workloads",
})

#: lazily resolved top-level attributes: name -> (module, attribute)
_LAZY_ATTRS = {
    "compile": ("repro.compiler", "compile"),
    "CompiledModule": ("repro.compiler", "CompiledModule"),
    "PassContext": ("repro.compiler", "PassContext"),
    "Sequential": ("repro.compiler", "Sequential"),
    "TimingInstrument": ("repro.compiler", "TimingInstrument"),
    "VerifierError": ("repro.analysis", "VerifierError"),
    "VerifyInstrument": ("repro.analysis", "VerifyInstrument"),
    "autotune": ("repro.autotvm", "autotune"),
    "ApplyHistoryBest": ("repro.autotvm", "ApplyHistoryBest"),
    "TuningOptions": ("repro.autotvm", "TuningOptions"),
    "TuningReport": ("repro.autotvm", "TuningReport"),
    "load": ("repro.runtime.artifact", "load_module"),
    "serve": ("repro.runtime.serving", "serve"),
    "Device": ("repro.runtime.ndarray", "Device"),
    "Executor": ("repro.runtime.executor", "Executor"),
    "InferenceEngine": ("repro.runtime.serving", "InferenceEngine"),
}

__all__ = sorted(_SUBMODULES | set(_LAZY_ATTRS) | {"__version__"})

if TYPE_CHECKING:  # static importers see the real modules
    from . import (analysis, autotvm, baselines, compiler, faults, frontend,
                   graph, hardware, runtime, te, tir, topi, workloads)
    from .analysis import VerifierError, VerifyInstrument
    from .autotvm import (ApplyHistoryBest, TuningOptions, TuningReport,
                          autotune)
    from .compiler import (CompiledModule, PassContext, Sequential,
                           TimingInstrument, compile)
    from .runtime.executor import Executor
    from .runtime.ndarray import Device
    from .runtime.serving import InferenceEngine, serve
    from .runtime.artifact import load_module as load


def __getattr__(name: str):
    if name in _SUBMODULES:
        module = import_module(f".{name}", __name__)
        globals()[name] = module
        return module
    if name in _LAZY_ATTRS:
        module_name, attr = _LAZY_ATTRS[name]
        value = getattr(import_module(module_name), attr)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return __all__
