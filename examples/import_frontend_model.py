"""Importing models from framework-style descriptions (Section 2).

The paper's end-user flow starts from a model built in an existing framework
(``t.frontend.from_keras(keras_model)``).  This example shows both importers:

* a Keras-``Sequential``-style layer list, and
* an ONNX-style graph description,

each converted to the computational graph IR, compiled for two different
back-ends, and executed with the graph runtime.

Run:  python examples/import_frontend_model.py
"""

import numpy as np

import repro
from repro.frontend import from_keras, from_onnx
from repro.hardware import arm_cpu, cuda


def keras_style_cnn():
    """A small CIFAR-style CNN described the way Keras Sequential would."""
    layers = [
        {"class_name": "Conv2D", "filters": 32, "kernel_size": 3,
         "padding": "same", "activation": "relu"},
        {"class_name": "BatchNormalization"},
        {"class_name": "MaxPooling2D", "pool_size": 2},
        {"class_name": "DepthwiseConv2D", "kernel_size": 3, "padding": "same"},
        {"class_name": "Conv2D", "filters": 64, "kernel_size": 1,
         "activation": "relu"},
        {"class_name": "GlobalAveragePooling2D"},
        {"class_name": "Dense", "units": 10, "activation": "softmax"},
    ]
    return from_keras(layers, input_shape=(3, 32, 32), batch=1)


def onnx_style_mlp():
    """A two-layer MLP in ONNX GraphProto-style dictionary form."""
    description = {
        "inputs": {"data": (1, 64)},
        "initializers": {"w0": (128, 64), "b0": (128,), "w1": (10, 128)},
        "nodes": [
            {"op_type": "Gemm", "inputs": ["data", "w0", "b0"], "outputs": ["h0"]},
            {"op_type": "Relu", "inputs": ["h0"], "outputs": ["h1"]},
            {"op_type": "Gemm", "inputs": ["h1", "w1"], "outputs": ["logits"]},
            {"op_type": "Softmax", "inputs": ["logits"], "outputs": ["prob"]},
        ],
        "outputs": ["prob"],
    }
    return from_onnx(description)


def compile_and_run(graph, params, input_name, input_shape, target) -> None:
    module = repro.compile(graph, target=target, params=params,
                           input_shapes={input_name: input_shape})
    executor = module.executor()
    executor.set_input(**module.params)
    executor.set_input(**{input_name: np.random.rand(*input_shape).astype("float32")})
    executor.run()
    output = executor.get_output(0)
    print(f"  {target.name:<28} est. latency {module.total_time * 1e3:8.3f} ms, "
          f"{len(module.kernels)} fused kernels, output sum {float(np.sum(output.asnumpy() if hasattr(output, 'asnumpy') else output)):.4f}")


def main() -> None:
    print("Keras-style CNN import:")
    graph, params = keras_style_cnn()
    print(f"  imported {len(graph.op_nodes)} operators, {len(params)} parameters")
    for target in (cuda(), arm_cpu()):
        compile_and_run(graph, dict(params), "data", (1, 3, 32, 32), target)

    print("\nONNX-style MLP import:")
    graph, params = onnx_style_mlp()
    print(f"  imported {len(graph.op_nodes)} operators, {len(params)} parameters")
    for target in (cuda(), arm_cpu()):
        compile_and_run(graph, dict(params), "data", (1, 64), target)


if __name__ == "__main__":
    main()
