"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import te, tir
from repro.autotvm import rank_correlation
from repro.autotvm.space import ConfigSpace, _factorizations
from repro.graph.ir import Graph, Node
from repro.graph.passes import plan_memory
from repro.topi import nn as topi_nn


# ---------------------------------------------------------------------------
# Configuration space
# ---------------------------------------------------------------------------

@given(extent=st.integers(min_value=1, max_value=512),
       parts=st.integers(min_value=2, max_value=4))
def test_factorizations_multiply_back_to_extent(extent, parts):
    for sizes in _factorizations(extent, parts):
        assert len(sizes) == parts
        product = 1
        for value in sizes:
            assert value >= 1
            product *= value
        assert product == extent


@given(extent_a=st.integers(min_value=2, max_value=64),
       extent_b=st.integers(min_value=2, max_value=64),
       index_fraction=st.floats(min_value=0.0, max_value=0.999))
def test_config_space_index_round_trip(extent_a, extent_b, index_fraction):
    space = ConfigSpace()
    space.define_split("tile_a", extent_a, num_outputs=2)
    space.define_split("tile_b", extent_b, num_outputs=2)
    space.define_knob("flag", [0, 1])
    index = int(index_fraction * len(space))
    knobs = space.knob_indices(index)
    rebuilt = space.index_of({name: knobs[i]
                              for i, name in enumerate(space.knob_names)})
    assert rebuilt == index
    config = space.get(index)
    assert config.index == index


@given(count=st.integers(min_value=1, max_value=30),
       seed=st.integers(min_value=0, max_value=2 ** 16))
def test_config_space_sampling_is_unique_and_in_range(count, seed):
    import random

    space = ConfigSpace()
    space.define_split("tile", 64, num_outputs=2)
    space.define_knob("unroll", [0, 1])
    sample = space.sample(count, rng=random.Random(seed))
    indices = [c.index for c in sample]
    assert len(indices) == len(set(indices))
    assert all(0 <= i < len(space) for i in indices)


# ---------------------------------------------------------------------------
# Rank correlation
# ---------------------------------------------------------------------------

@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                min_size=2, max_size=40))
def test_rank_correlation_is_bounded(values):
    noise = np.linspace(0.0, 1.0, len(values))
    result = rank_correlation(values, list(noise))
    assert -1.0 - 1e-9 <= result <= 1.0 + 1e-9


@given(st.lists(st.integers(min_value=-1000, max_value=1000),
                min_size=3, max_size=30, unique=True))
def test_rank_correlation_of_monotone_transform_is_one(values):
    transformed = [3.0 * v + 7.0 for v in values]
    assert rank_correlation([float(v) for v in values],
                            transformed) == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Static memory planning
# ---------------------------------------------------------------------------

def _chain_graph(sizes):
    data = Node("null", "data")
    data.shape = (1, int(sizes[0]))
    node = data
    for i, size in enumerate(sizes[1:]):
        weight = Node("null", f"w{i}")
        weight.shape = (int(size), int(node.shape[1]))
        node_new = Node("dense", f"dense{i}", [node, weight], {})
        node_new.shape = (1, int(size))
        node = node_new
    return Graph([node])


@given(st.lists(st.integers(min_value=1, max_value=256), min_size=2, max_size=10))
@settings(max_examples=40)
def test_memory_plan_never_exceeds_naive(sizes):
    graph = _chain_graph(sizes)
    plan = plan_memory(graph)
    assert plan.planned_bytes <= plan.naive_bytes
    assert plan.reuse_ratio >= 1.0


@given(st.lists(st.integers(min_value=1, max_value=128), min_size=3, max_size=8))
@settings(max_examples=40)
def test_memory_plan_tokens_fit_their_tensors(sizes):
    graph = _chain_graph(sizes)
    plan = plan_memory(graph)
    for node in graph.op_nodes:
        token = plan.storage_of[node.name]
        needed = int(np.prod(node.shape)) * 4
        assert plan.token_bytes[token] >= needed


def test_memory_plan_respects_liveness():
    """Two simultaneously-live tensors never share a storage token."""
    data = Node("null", "data")
    data.shape = (1, 64)
    left = Node("relu", "left", [data], {})
    left.shape = data.shape
    right = Node("tanh", "right", [data], {})
    right.shape = data.shape
    out = Node("add", "out", [left, right], {})
    out.shape = data.shape
    plan = plan_memory(Graph([out]))
    assert plan.storage_of["left"] != plan.storage_of["right"]


# ---------------------------------------------------------------------------
# Feature extraction: register-reuse counting invariant
# ---------------------------------------------------------------------------

@given(tile_y=st.sampled_from([2, 4, 8]), tile_x=st.sampled_from([2, 4, 8]),
       unroll=st.booleans())
@settings(max_examples=20, deadline=None)
def test_memory_access_counts_never_exceed_trip_counts(tile_y, tile_x, unroll):
    """Register-reuse-aware load counting can only reduce traffic, and the
    arithmetic (which really executes once per iteration) stays at the full
    trip count."""
    size = 32
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    C = topi_nn.matmul(A, B)
    s = te.create_schedule(C.op)
    y, x = s[C].op.axis
    k = s[C].op.reduce_axis[0]
    yo, yi = s[C].split(y, factor=tile_y)
    xo, xi = s[C].split(x, factor=tile_x)
    s[C].reorder(yo, xo, k, yi, xi)
    if unroll:
        s[C].unroll(yi)
        s[C].unroll(xi)
    func = tir.lower(s, [A, B, C], name="mm")
    features = tir.extract_features(func)

    total_macs = size * size * size
    assert features.flops == pytest.approx(2 * total_macs)
    for access in features.buffer_access.values():
        assert access.load_count <= total_macs + size * size
        # At most one store per reduction update plus the initialisation pass.
        assert access.store_count <= total_macs + size * size


@given(st.integers(min_value=1, max_value=6))
@settings(max_examples=10, deadline=None)
def test_unrolling_never_increases_counted_traffic(factor):
    size = 16
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    C = topi_nn.matmul(A, B)

    def traffic(unrolled):
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        xo, xi = s[C].split(x, factor=min(2 ** factor, size))
        if unrolled:
            s[C].unroll(xi)
        func = tir.lower(s, [A, B, C], name="mm")
        return sum(a.total_bytes
                   for a in tir.extract_features(func).buffer_access.values())

    assert traffic(True) <= traffic(False)
