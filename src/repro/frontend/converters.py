"""Framework importers (the paper's ``t.frontend.from_keras`` entry point).

The paper's end-user example (Section 2) starts from a model expressed in an
existing framework and converts it into TVM's computational graph::

    import tvm as t
    graph, params = t.frontend.from_keras(keras_model)

The real frameworks are not available offline, so the importers here accept
light-weight, declarative model descriptions with the same information a
Keras ``Sequential`` model or an ONNX graph carries:

* :func:`from_keras` — a list of layer dictionaries (``Conv2D``, ``Dense``,
  ``BatchNormalization``, ``Activation`` ...) applied sequentially, exactly
  like ``keras.Sequential``.
* :func:`from_onnx` — an ONNX-style protobuf-as-dict: named value infos,
  initializers and a flat node list in topological order.

Both return ``(graph, params)`` where ``graph`` is a
:class:`~repro.graph.ir.Graph` and ``params`` maps parameter names to NumPy
arrays, ready for :func:`repro.graph.build`.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.ir import Graph, Node
from ..graph.ops import OP_REGISTRY
from .builder import ModelBuilder

__all__ = ["from_keras", "from_onnx", "KerasConversionError", "ONNXConversionError"]

LayerSpec = Mapping[str, object]


class KerasConversionError(ValueError):
    """Raised when a Keras-style layer description cannot be converted."""


class ONNXConversionError(ValueError):
    """Raised when an ONNX-style node cannot be converted."""


# ---------------------------------------------------------------------------
# Keras-style sequential importer
# ---------------------------------------------------------------------------

def _pair(value: Union[int, Sequence[int]]) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def _keras_padding(layer: LayerSpec, kernel: Tuple[int, int]) -> int:
    """Translate Keras ``padding`` ("same"/"valid"/int) to explicit padding."""
    padding = layer.get("padding", "valid")
    if isinstance(padding, str):
        if padding.lower() == "same":
            return kernel[0] // 2
        if padding.lower() == "valid":
            return 0
        raise KerasConversionError(f"Unknown padding mode {padding!r}")
    return int(padding)


def from_keras(model: Union[Sequence[LayerSpec], Mapping[str, object]],
               input_shape: Optional[Sequence[int]] = None,
               batch: int = 1, dtype: str = "float32",
               seed: int = 0) -> Tuple[Graph, Dict[str, np.ndarray]]:
    """Convert a Keras-``Sequential``-style description into a graph.

    Parameters
    ----------
    model:
        Either a list of layer dictionaries, or a dict with keys ``layers``
        and optionally ``input_shape`` / ``name``.  Each layer dictionary has
        a ``class_name`` (Keras layer class) and its constructor arguments,
        e.g. ``{"class_name": "Conv2D", "filters": 64, "kernel_size": 3,
        "strides": 1, "padding": "same", "activation": "relu"}``.
    input_shape:
        Input shape *excluding* the batch dimension, in channel-first order
        ``(C, H, W)`` (or ``(features,)`` for dense-only models).  May also be
        provided inside the model dict.
    batch:
        Batch size of the compiled graph (the paper optimises for a fixed
        shape, Section 3).

    Returns
    -------
    (graph, params):
        The computational graph and randomly-initialised parameters, matching
        what ``t.frontend.from_keras`` returns in the paper's example.
    """
    if isinstance(model, Mapping):
        layers = list(model.get("layers", []))
        input_shape = input_shape or model.get("input_shape")
        name = str(model.get("name", "keras_model"))
    else:
        layers = list(model)
        name = "keras_model"
    if input_shape is None:
        raise KerasConversionError("from_keras requires an input shape")

    builder = ModelBuilder(name, seed=seed, dtype=dtype)
    net = builder.input("data", (batch, *tuple(int(d) for d in input_shape)))

    for index, layer in enumerate(layers):
        if "class_name" not in layer:
            raise KerasConversionError(f"Layer {index} has no class_name: {layer!r}")
        net = _convert_keras_layer(builder, net, layer, index)

    graph, params = builder.finalize(net)
    return graph, params


def _convert_keras_layer(builder: ModelBuilder, net: Node, layer: LayerSpec,
                         index: int) -> Node:
    class_name = str(layer["class_name"])
    activation = layer.get("activation")

    if class_name == "Conv2D":
        kernel = _pair(layer.get("kernel_size", 3))
        stride = _pair(layer.get("strides", 1))[0]
        padding = _keras_padding(layer, kernel)
        net = builder.conv2d(net, int(layer["filters"]), kernel[0],
                             stride=stride, padding=padding)
        if layer.get("use_bias", True):
            net = builder.bias_add(net)
    elif class_name == "DepthwiseConv2D":
        kernel = _pair(layer.get("kernel_size", 3))
        stride = _pair(layer.get("strides", 1))[0]
        padding = _keras_padding(layer, kernel)
        net = builder.depthwise_conv2d(net, kernel[0], stride=stride,
                                       padding=padding)
        if layer.get("use_bias", True):
            net = builder.bias_add(net)
    elif class_name == "Conv2DTranspose":
        kernel = _pair(layer.get("kernel_size", 4))
        stride = _pair(layer.get("strides", 2))[0]
        padding = _keras_padding(layer, kernel)
        net = builder.conv2d_transpose(net, int(layer["filters"]), kernel[0],
                                       stride=stride, padding=padding)
    elif class_name == "Dense":
        if net.shape is not None and len(net.shape) > 2:
            net = builder.flatten(net)
        net = builder.dense(net, int(layer["units"]))
        if layer.get("use_bias", True):
            net = builder.bias_add(net)
    elif class_name == "BatchNormalization":
        net = builder.batch_norm(net)
    elif class_name == "Activation":
        activation = layer.get("activation", layer.get("name", "relu"))
    elif class_name == "ReLU":
        activation = "relu"
    elif class_name == "LeakyReLU":
        net = builder.leaky_relu(net, float(layer.get("alpha", 0.3)))
    elif class_name == "Softmax":
        activation = "softmax"
    elif class_name == "MaxPooling2D":
        pool = _pair(layer.get("pool_size", 2))[0]
        stride = _pair(layer.get("strides", pool))[0]
        net = builder.max_pool2d(net, pool_size=pool, stride=stride,
                                 padding=int(layer.get("padding", 0))
                                 if not isinstance(layer.get("padding"), str) else 0)
    elif class_name == "AveragePooling2D":
        pool = _pair(layer.get("pool_size", 2))[0]
        stride = _pair(layer.get("strides", pool))[0]
        net = builder.avg_pool2d(net, pool_size=pool, stride=stride)
    elif class_name == "GlobalAveragePooling2D":
        net = builder.global_avg_pool2d(net)
    elif class_name == "Flatten":
        net = builder.flatten(net)
    elif class_name == "Reshape":
        net = builder.reshape(net, tuple(int(d) for d in layer["target_shape"]))
    elif class_name == "Dropout":
        # Inference graphs drop the op entirely (also what SimplifyInference
        # does); keep the node count identical to the framework by emitting
        # the no-op operator and letting the graph pass remove it.
        net = builder._op("dropout", [net], {"rate": float(layer.get("rate", 0.5))})
    else:
        raise KerasConversionError(
            f"Unsupported Keras layer {class_name!r} at position {index}")

    if activation:
        net = _apply_activation(builder, net, str(activation))
    return net


def _apply_activation(builder: ModelBuilder, net: Node, activation: str) -> Node:
    table = {
        "relu": builder.relu,
        "sigmoid": builder.sigmoid,
        "tanh": builder.tanh,
        "softmax": builder.softmax,
        "linear": lambda x: x,
    }
    if activation not in table:
        raise KerasConversionError(f"Unsupported activation {activation!r}")
    return table[activation](net)


# ---------------------------------------------------------------------------
# ONNX-style importer
# ---------------------------------------------------------------------------

#: Mapping from ONNX op_type to the graph operator name used here.
_ONNX_OP_MAP = {
    "Conv": "conv2d",
    "ConvTranspose": "conv2d_transpose",
    "Gemm": "dense",
    "MatMul": "dense",
    "Relu": "relu",
    "LeakyRelu": "leaky_relu",
    "Sigmoid": "sigmoid",
    "Tanh": "tanh",
    "Softmax": "softmax",
    "Add": "add",
    "Mul": "multiply",
    "BatchNormalization": "batch_norm",
    "MaxPool": "max_pool2d",
    "AveragePool": "avg_pool2d",
    "GlobalAveragePool": "global_avg_pool2d",
    "Flatten": "flatten",
    "Reshape": "reshape",
    "Concat": "concatenate",
    "Dropout": "dropout",
    "Identity": None,
}


def from_onnx(model: Mapping[str, object], batch: Optional[int] = None,
              dtype: str = "float32",
              seed: int = 0) -> Tuple[Graph, Dict[str, np.ndarray]]:
    """Convert an ONNX-style graph description into a computational graph.

    ``model`` mirrors the structure of an ONNX ``GraphProto``::

        {
          "inputs": {"data": (1, 3, 224, 224)},
          "initializers": {"w0": (64, 3, 7, 7), ...}   # shapes or ndarrays
          "nodes": [
             {"op_type": "Conv", "inputs": ["data", "w0"], "outputs": ["c0"],
              "attrs": {"strides": 2, "pads": 3}},
             ...
          ],
          "outputs": ["out"],
        }

    Initializers given as shapes are materialised with random values (the
    paper's evaluation uses random weights as well — only performance is
    measured).  Returns ``(graph, params)``.
    """
    inputs: Mapping[str, Sequence[int]] = model.get("inputs", {})  # type: ignore[assignment]
    initializers: Mapping[str, object] = model.get("initializers", {})  # type: ignore[assignment]
    nodes: Sequence[Mapping[str, object]] = model.get("nodes", [])  # type: ignore[assignment]
    output_names: Sequence[str] = model.get("outputs", [])  # type: ignore[assignment]
    if not inputs:
        raise ONNXConversionError("ONNX model description has no inputs")
    if not nodes:
        raise ONNXConversionError("ONNX model description has no nodes")

    rng = np.random.default_rng(seed)
    params: Dict[str, np.ndarray] = {}
    values: Dict[str, Node] = {}

    for name, shape in inputs.items():
        shape = tuple(int(d) for d in shape)
        if batch is not None:
            shape = (batch, *shape[1:])
        node = Node("null", name)
        node.shape = shape
        node.dtype = dtype
        values[name] = node

    for name, value in initializers.items():
        if isinstance(value, np.ndarray):
            array = value.astype(dtype)
        else:
            array = (rng.standard_normal(tuple(int(d) for d in value)) * 0.1).astype(dtype)
        params[name] = array
        node = Node("null", name)
        node.shape = tuple(array.shape)
        node.dtype = dtype
        values[name] = node

    for position, onnx_node in enumerate(nodes):
        _convert_onnx_node(onnx_node, position, values, params, dtype)

    missing = [name for name in output_names if name not in values]
    if missing:
        raise ONNXConversionError(f"Outputs {missing} are never produced")
    outputs = [values[name] for name in output_names] or [values[nodes[-1]["outputs"][0]]]  # type: ignore[index]
    graph = Graph(outputs)
    input_shapes = {name: tuple(shape) for name, shape in inputs.items()}
    graph.infer_shapes({**input_shapes,
                        **{k: tuple(v.shape) for k, v in params.items()}})
    return graph, params


def _onnx_attr_translate(op_type: str, attrs: Mapping[str, object]) -> Dict[str, object]:
    """Translate ONNX attribute names to the graph operator attributes."""
    out: Dict[str, object] = {}
    if op_type in ("Conv", "ConvTranspose"):
        strides = attrs.get("strides", 1)
        pads = attrs.get("pads", 0)
        out["strides"] = _pair(strides)[0] if not isinstance(strides, int) else strides
        out["padding"] = _pair(pads)[0] if not isinstance(pads, int) else pads
        if "group" in attrs and int(attrs["group"]) > 1:
            out["groups"] = int(attrs["group"])
    elif op_type in ("MaxPool", "AveragePool"):
        out["pool_size"] = _pair(attrs.get("kernel_shape", 2))[0]
        out["strides"] = _pair(attrs.get("strides", 2))[0]
        out["padding"] = _pair(attrs.get("pads", 0))[0]
    elif op_type == "LeakyRelu":
        out["alpha"] = float(attrs.get("alpha", 0.01))
    elif op_type == "Concat":
        out["axis"] = int(attrs.get("axis", 1))
    elif op_type == "Reshape":
        if "shape" in attrs:
            out["newshape"] = tuple(int(d) for d in attrs["shape"])  # type: ignore[arg-type]
    return out


def _convert_onnx_node(onnx_node: Mapping[str, object], position: int,
                       values: Dict[str, Node], params: Dict[str, np.ndarray],
                       dtype: str) -> None:
    op_type = str(onnx_node.get("op_type", ""))
    if op_type not in _ONNX_OP_MAP:
        raise ONNXConversionError(
            f"Unsupported ONNX operator {op_type!r} at position {position}")
    input_names = [str(n) for n in onnx_node.get("inputs", [])]
    output_names = [str(n) for n in onnx_node.get("outputs", [])]
    if not output_names:
        raise ONNXConversionError(f"Node {position} ({op_type}) has no outputs")
    missing = [n for n in input_names if n not in values]
    if missing:
        raise ONNXConversionError(
            f"Node {position} ({op_type}) reads undefined values {missing}")

    target_op = _ONNX_OP_MAP[op_type]
    if target_op is None:                      # Identity: alias the input
        values[output_names[0]] = values[input_names[0]]
        return

    attrs = _onnx_attr_translate(op_type, onnx_node.get("attrs", {}))  # type: ignore[arg-type]

    # A grouped Conv where groups == channels is a depthwise convolution.
    if target_op == "conv2d" and "groups" in attrs:
        weight = values[input_names[1]]
        groups = int(attrs.pop("groups"))
        if weight.shape is not None and groups == weight.shape[0]:
            target_op = "depthwise_conv2d"

    # ONNX Conv/Gemm fold the bias into the operator; emit a bias_add node.
    bias_input: Optional[Node] = None
    if op_type in ("Conv", "ConvTranspose", "Gemm") and len(input_names) > 2:
        bias_input = values[input_names[2]]
        input_names = input_names[:2]

    # BatchNormalization keeps its (scale, bias, mean, var) parameter inputs
    # when the description provides them; otherwise only the data input.
    if op_type == "BatchNormalization" and len(input_names) not in (1, 5):
        input_names = input_names[:1]

    inputs = [values[name] for name in input_names]
    node = Node(target_op, f"{op_type.lower()}_{position}", inputs, attrs)
    node.dtype = dtype
    spec = OP_REGISTRY[node.op]
    node.shape = spec.infer_shape([tuple(p.shape) for p in inputs], node.attrs)
    if bias_input is not None:
        bias_node = Node("bias_add", f"bias_{position}", [node, bias_input], {})
        bias_node.dtype = dtype
        bias_node.shape = node.shape
        node = bias_node
    values[output_names[0]] = node
