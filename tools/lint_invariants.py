#!/usr/bin/env python
"""AST-based invariant linter for the repro source tree.

Static checks for project invariants that ordinary linters don't express.
Run from the repository root (CI runs it in the ``static-analysis`` job)::

    python tools/lint_invariants.py            # lint src/repro
    python tools/lint_invariants.py --list     # show the rules

Rules
-----
``bare-except``
    No bare ``except:`` clauses anywhere in ``src/repro``.  A bare except
    swallows ``KeyboardInterrupt``/``SystemExit`` and hides typed
    :class:`~repro.analysis.errors.VerifierError` reports; catch
    ``Exception`` (or something narrower) instead.

``implicit-daemon``
    Every ``threading.Thread(...)`` construction must pass ``daemon=``
    explicitly.  Background threads that default to non-daemon keep the
    interpreter alive when a tuning session or serving engine is abandoned
    without ``close()``; making the choice explicit forces each call site
    to decide its shutdown story.

``unbounded-sleep-poll``
    Restricted to ``src/repro/runtime/``: a ``time.sleep(...)`` inside a
    ``while True:`` loop that contains no ``break``, ``return`` or
    ``raise`` is an infinite poll that can never exit — runtime loops must
    poll against a deadline or an event, not sleep forever.

Exit status is 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import ast
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_TREE = REPO_ROOT / "src" / "repro"

RULES = {
    "bare-except": "no bare `except:` clauses (catch Exception or narrower)",
    "implicit-daemon": "threading.Thread(...) must pass daemon= explicitly",
    "unbounded-sleep-poll": ("runtime/: no time.sleep inside a `while True` "
                             "loop with no break/return/raise"),
}


@dataclass
class Violation:
    rule: str
    path: Path
    line: int
    message: str

    def __str__(self) -> str:
        path = self.path
        try:
            path = path.relative_to(REPO_ROOT)
        except ValueError:
            pass
        return f"{path}:{self.line}: [{self.rule}] {self.message}"


def _is_thread_ctor(call: ast.Call) -> bool:
    """``threading.Thread(...)`` or bare ``Thread(...)``."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr == "Thread":
        return True
    return isinstance(fn, ast.Name) and fn.id == "Thread"


def _is_sleep(call: ast.Call) -> bool:
    """``time.sleep(...)`` or bare ``sleep(...)``."""
    fn = call.func
    if isinstance(fn, ast.Attribute) and fn.attr == "sleep":
        return True
    return isinstance(fn, ast.Name) and fn.id == "sleep"


def _loop_can_exit(loop: ast.While) -> bool:
    """Whether the loop body contains a break/return/raise of its own
    (not one belonging to a nested loop or function)."""
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, (ast.Return, ast.Raise)):
            return True
        if isinstance(node, ast.Break) and _owning_loop(loop, node) is loop:
            return True
    return False


def _owning_loop(root: ast.AST, target: ast.AST):
    """The innermost for/while that a ``break`` under ``root`` belongs to."""
    owner = None

    def visit(node: ast.AST, loop) -> bool:
        if node is target:
            nonlocal owner
            owner = loop
            return True
        for child in ast.iter_child_nodes(node):
            inner = node if isinstance(node, (ast.For, ast.While)) else loop
            # break cannot cross a function boundary
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda)):
                inner = None
            if visit(child, inner):
                return True
        return False

    visit(root, root if isinstance(root, (ast.For, ast.While)) else None)
    return owner


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, check_sleep: bool):
        self.path = path
        self.check_sleep = check_sleep
        self.violations: List[Violation] = []
        self._while_true_stack: List[ast.While] = []

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(rule, self.path, getattr(node, "lineno", 0), message))

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report("bare-except", node,
                         "bare `except:` — catch Exception or narrower")
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        is_forever = (isinstance(node.test, ast.Constant)
                      and node.test.value is True
                      and not _loop_can_exit(node))
        if is_forever:
            self._while_true_stack.append(node)
        self.generic_visit(node)
        if is_forever:
            self._while_true_stack.pop()

    def visit_Call(self, node: ast.Call) -> None:
        if _is_thread_ctor(node):
            if not any(kw.arg == "daemon" for kw in node.keywords):
                self._report("implicit-daemon", node,
                             "Thread(...) without explicit daemon=")
        if self.check_sleep and self._while_true_stack and _is_sleep(node):
            self._report(
                "unbounded-sleep-poll", node,
                "time.sleep inside a `while True` loop with no exit — "
                "poll against a deadline or an event")
        self.generic_visit(node)


def lint_file(path: Path) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [Violation("syntax", path, exc.lineno or 0, str(exc.msg))]
    check_sleep = "runtime" in path.resolve().parts
    linter = _Linter(path, check_sleep)
    linter.visit(tree)
    return linter.violations


def lint_tree(roots: Iterable[Path]) -> List[Violation]:
    violations: List[Violation] = []
    for root in roots:
        paths = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in paths:
            violations.extend(lint_file(path))
    return violations


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help=f"files or trees to lint (default: {DEFAULT_TREE})")
    parser.add_argument("--list", action="store_true",
                        help="list the rules and exit")
    args = parser.parse_args(argv)
    if args.list:
        for name, doc in RULES.items():
            print(f"{name}: {doc}")
        return 0
    roots = args.paths or [DEFAULT_TREE]
    violations = lint_tree(roots)
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    print(f"invariants clean across {len(roots)} root(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
