"""Simulated vendor operator libraries (cuDNN, TFLite kernels, ACL, Caffe2-ULP).

A vendor library implementation of an operator is modelled as the operator's
roofline time on the simulated device — ``max(compute_time, memory_time)`` at
peak — divided by the library's efficiency for that operator class (see
:mod:`repro.baselines.profiles`).  This captures the two facts the paper's
evaluation rests on: vendor libraries are near-optimal for the operator
shapes they were engineered for, and far from optimal for everything else.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..graph.ir import Node
from ..graph.ops import OP_REGISTRY
from ..hardware.target import Target
from .profiles import LibraryProfile

__all__ = ["VendorLibrary", "conv_class_of"]


def conv_class_of(kernel: Tuple[int, int], stride: Tuple[int, int]) -> str:
    """Classify a convolution the way library engineering effort was spent."""
    kh, kw = kernel
    sh, _sw = stride
    if (kh, kw) == (1, 1):
        return "conv2d_1x1"
    if (kh, kw) in ((3, 3), (5, 5), (7, 7), (11, 11)) and sh in (1, 2):
        return "conv2d"
    return "conv2d_unusual"


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


class VendorLibrary:
    """A fixed, hand-optimized operator library for one device."""

    def __init__(self, profile: LibraryProfile, target: Target,
                 single_threaded: bool = False):
        self.profile = profile
        self.target = target
        self.single_threaded = single_threaded

    # ------------------------------------------------------------------ helpers
    def _roofline_time(self, flops: float, bytes_moved: float,
                       dtype: str = "float32") -> float:
        params = self.target.model.params
        peak = params.peak_flops
        if dtype == "float16":
            peak *= getattr(params, "fp16_multiplier", 1.0)
        if self.single_threaded:
            cores = getattr(params, "num_cores", 1)
            peak /= max(cores, 1)
        compute = flops / peak
        memory = bytes_moved / params.dram_bandwidth
        # Even a perfect library kernel cannot finish faster than a minimal
        # device dispatch: small batch-1 kernels underutilise the device for
        # vendor libraries exactly as they do for generated code.
        floor = params.launch_overhead * 0.75
        return max(compute, memory, floor)

    def _efficiency(self, op_class: str) -> float:
        return max(getattr(self.profile, op_class, self.profile.elementwise), 1e-3)

    # ------------------------------------------------------------------ api
    def op_time(self, node: Node, dtype: Optional[str] = None) -> float:
        """Latency of one operator executed by this library (no framework
        overhead; see the framework executors for end-to-end numbers)."""
        dtype = dtype or node.dtype or "float32"
        elem_bytes = 2 if dtype == "float16" else 4
        spec = OP_REGISTRY[node.op]
        in_shapes = [tuple(p.shape) for p in node.inputs]
        out_shape = tuple(node.shape)
        flops = spec.flops(in_shapes, out_shape, node.attrs)
        bytes_moved = (sum(float(np.prod(s)) for s in in_shapes)
                       + float(np.prod(out_shape))) * elem_bytes

        if node.op == "conv2d":
            kernel = in_shapes[1][2], in_shapes[1][3]
            stride = _pair(node.attrs.get("strides", 1))
            op_class = conv_class_of(kernel, stride)
        elif node.op == "depthwise_conv2d":
            op_class = "depthwise"
        elif node.op == "conv2d_transpose":
            op_class = "conv2d_transpose"
        elif node.op == "dense":
            op_class = "dense"
        else:
            op_class = "elementwise"
        efficiency = self._efficiency(op_class)
        time = self._roofline_time(flops, bytes_moved, dtype) / efficiency
        return time + self.target.model.params.launch_overhead

    def conv2d_time(self, batch: int, in_channels: int, height: int, width: int,
                    out_channels: int, kernel: int, stride: int, padding: int,
                    dtype: str = "float32", depthwise: bool = False) -> float:
        """Convenience wrapper for single-kernel comparisons (Table 2 shapes)."""
        node = _make_conv_node(batch, in_channels, height, width, out_channels,
                               kernel, stride, padding, depthwise)
        return self.op_time(node, dtype)

    def bitserial_conv2d_time(self, batch: int, in_channels: int, height: int,
                              width: int, out_channels: int, kernel: int,
                              stride: int, padding: int,
                              activation_bits: int = 2, weight_bits: int = 1,
                              word_bits: int = 32) -> float:
        """Latency of the library's ultra-low-precision (bit-serial) conv2d.

        The baseline library implements the same packed AND+popcount reduction
        the TVM kernels use (Section 6.2 / Figure 18), so its time is the
        ideal single-core bit-serial execution divided by the library's
        efficiency for the operator class.  The ideal rate mirrors the terms
        the simulated CPU uses for tensorized bit-serial micro-kernels.
        """
        params = self.target.model.params
        out_h = (height + 2 * padding - kernel) // stride + 1
        out_w = (width + 2 * padding - kernel) // stride + 1
        c_words = max(1, math.ceil(in_channels / word_bits))
        # One AND + one popcount-accumulate per packed word, per bit-plane pair.
        word_ops = (batch * out_channels * out_h * out_w
                    * activation_bits * weight_bits * kernel * kernel * c_words * 2.0)
        frequency = getattr(params, "frequency", 1e9)
        simd_lanes = getattr(params, "simd_lanes", 4)
        fma = getattr(params, "fma_per_cycle", 1)
        bitserial_rate = (frequency * simd_lanes * 2 * fma
                          * getattr(params, "bitserial_speedup", 4.0))
        op_class = conv_class_of((kernel, kernel), (stride, stride))
        ideal = word_ops / bitserial_rate
        # Packed operands still have to come from memory once.
        elem_bytes = 4
        bytes_moved = ((batch * activation_bits * c_words * height * width)
                       + (out_channels * weight_bits * c_words * kernel * kernel)
                       + batch * out_channels * out_h * out_w) * elem_bytes
        memory = bytes_moved / params.dram_bandwidth
        time = max(ideal, memory) / self._efficiency(op_class)
        return time + params.launch_overhead

    def gemm_time(self, m: int, n: int, k: int, dtype: str = "float32") -> float:
        flops = 2.0 * m * n * k
        elem_bytes = 2 if dtype == "float16" else 4
        bytes_moved = (m * k + k * n + m * n) * elem_bytes
        time = self._roofline_time(flops, bytes_moved, dtype) / self._efficiency("dense")
        return time + self.target.model.params.launch_overhead


def _make_conv_node(batch, in_channels, height, width, out_channels, kernel,
                    stride, padding, depthwise) -> Node:
    data = Node("null", "data")
    data.shape = (batch, in_channels, height, width)
    if depthwise:
        weight = Node("null", "weight")
        weight.shape = (in_channels, 1, kernel, kernel)
        node = Node("depthwise_conv2d", "dw", [data, weight],
                    {"strides": stride, "padding": padding})
    else:
        weight = Node("null", "weight")
        weight.shape = (out_channels, in_channels, kernel, kernel)
        node = Node("conv2d", "conv", [data, weight],
                    {"strides": stride, "padding": padding})
    spec = OP_REGISTRY[node.op]
    node.shape = spec.infer_shape([data.shape, weight.shape], node.attrs)
    return node
