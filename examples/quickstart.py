"""Quickstart: the end-user flow from Section 2 of the paper.

Take a model from the frontend, compile it with the one-call
``repro.compile`` pipeline, deploy it with the executor factory, and inspect
the numerical output, the simulated latency, and the per-pass compilation
instrumentation.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.frontend import resnet18


def main() -> None:
    # 1. Import a model (the paper uses t.frontend.from_keras; here the model
    #    zoo provides the graph + parameters directly).
    graph, params, input_shapes = resnet18(batch=1, image_size=64, num_classes=100)
    print(f"Imported ResNet-18 variant: {len(graph.op_nodes)} operators, "
          f"{len(params)} parameter tensors")

    # 2. Compile for a target: one call, one resulting module.
    module = repro.compile((graph, params, input_shapes), target="cuda")
    print(f"Compiled module: {len(module.kernels)} fused kernels, "
          f"estimated latency {module.total_time * 1e3:.3f} ms on "
          f"{module.target.name}")
    print(f"Static memory planning reuse: {module.memory_plan.reuse_ratio:.2f}x "
          f"({module.memory_plan.naive_bytes / 1e6:.1f} MB -> "
          f"{module.memory_plan.planned_bytes / 1e6:.1f} MB)")
    print("\nCompilation pass instrumentation:")
    print(module.pass_summary())

    # 3. Deploy with the executor factory (runtime.create(module) still works).
    executor = module.executor(repro.runtime.gpu(0))
    executor.set_input(**module.params)
    data = np.random.rand(*input_shapes["data"]).astype("float32")
    executor.run(data=data)
    output = repro.runtime.empty((1, 100), ctx=repro.runtime.gpu(0))
    executor.get_output(0, output)

    probabilities = output.asnumpy()
    print(f"\nOutput shape: {probabilities.shape}, "
          f"sum of probabilities: {probabilities.sum():.4f}")
    print("Top-5 classes:", np.argsort(probabilities[0])[::-1][:5].tolist())
    print("\nPer-kernel breakdown (top 5 by time):")
    for name, seconds in sorted(executor.profile(), key=lambda kv: -kv[1])[:5]:
        print(f"  {name:<45s} {seconds * 1e6:9.1f} us")

    # 4. Ship it: export a self-contained artifact, reload it (as a
    #    deployment host would — no recompilation) and run the stateless
    #    executor, which binds the parameters itself.
    import tempfile
    from pathlib import Path

    artifact = Path(tempfile.mkdtemp()) / "resnet18.repro"
    module.export(artifact)
    reloaded = repro.load(artifact)
    served = repro.Executor(reloaded)(data=data)[0].asnumpy()
    np.testing.assert_array_equal(served, probabilities)
    print(f"\nArtifact round-trip: {artifact.name} reloaded, outputs "
          f"bit-identical, estimated latency unchanged "
          f"({reloaded.total_time * 1e3:.3f} ms)")

    # 5. Ablations no longer need magic opt_level integers: disable a pass by
    #    name to reproduce the paper's "TVM w/o graph opt" rows.
    with repro.PassContext(disabled_passes=["fuse_ops"]):
        unfused = repro.compile((graph, params, input_shapes), target="cuda")
    print(f"\nWithout operator fusion: {len(unfused.kernels)} kernels, "
          f"{unfused.total_time * 1e3:.3f} ms "
          f"({unfused.total_time / module.total_time:.2f}x slower)")


if __name__ == "__main__":
    main()
