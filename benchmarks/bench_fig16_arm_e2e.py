"""Figure 16: ARM Cortex A53 end-to-end evaluation.

TVM vs TensorFlow Lite on ResNet-18, MobileNet and DQN (batch 1).  DCGAN and
LSTM are omitted exactly as in the paper (not supported by the baseline).
"""

import pytest

from common import build_model, compile_model, emit_summary, print_series
from repro.baselines import TFLiteSim

MODELS = ["resnet-18", "mobilenet", "dqn"]


def _evaluate():
    rows = []
    tflite = TFLiteSim()
    for model in MODELS:
        module = compile_model(model, "arm_cpu", opt_level=2, tuned=False)
        module_nofuse = compile_model(model, "arm_cpu", opt_level=0, tuned=False)
        graph, _params, shapes = build_model(model)
        baseline = tflite.run_estimate(graph, shapes)
        rows.append((model, {
            "Tensorflow Lite": baseline.total_time * 1e3,
            "TVM w/o graph opt": module_nofuse.total_time * 1e3,
            "TVM": module.total_time * 1e3,
        }))
    return rows


def test_fig16_arm_end_to_end(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 16: ARM A53 end-to-end inference time (ms)", rows)
    emit_summary("fig16_arm_e2e", {
        "tvm_ms": {m: round(e["TVM"], 3) for m, e in rows},
        "speedup_vs_tflite": {m: round(e["Tensorflow Lite"] / e["TVM"], 3)
                              for m, e in rows}})
    for model, entry in rows:
        speedup = entry["Tensorflow Lite"] / entry["TVM"]
        benchmark.extra_info[f"{model}_speedup_vs_tflite"] = round(speedup, 2)
        assert entry["TVM"] < entry["Tensorflow Lite"], \
            f"TVM should outperform TFLite on {model}"
        assert entry["TVM"] <= entry["TVM w/o graph opt"] * 1.05


def test_fig16_unsupported_workloads():
    """The baseline cannot run DCGAN / LSTM — noted in the paper's footnote."""
    tflite = TFLiteSim()
    graph, _params, shapes = build_model("dcgan")
    with pytest.raises(NotImplementedError):
        tflite.run_estimate(graph, shapes)
