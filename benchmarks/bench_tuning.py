"""Distributed-tuning-service benchmark (tracked across PRs).

Exercises the shared :class:`repro.autotvm.service.TuningService` end to end
and records the numbers the service exists to improve, writing
``BENCH_tuning.json`` next to this file:

* **Bit-identity** — a single session against a fresh service must produce
  exactly the serviceless report (best configs, estimates and trial curves).
* **Global dedup** — two concurrent sessions tuning the same workloads skip
  repeat measurements through the service's trial store; the fraction
  skipped is reported (and enforced >= 25% under ``--smoke``).
* **Transfer** — a service restarted on an accumulated database pretrains
  its cost model and warm-starts a session on an *unseen* shape; trials to
  reach the cold run's best time are compared cold vs warm.
* **Zoo drive** — :func:`repro.autotvm.service.schedule_zoo` tunes the
  model zoo against one service, reporting seconds-per-trial and
  trials-to-target per workload.

Usage::

    python benchmarks/bench_tuning.py              # full run
    python benchmarks/bench_tuning.py --smoke      # CI-sized + acceptance
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
from pathlib import Path

import repro
from repro.autotvm import TuningOptions, TuningService, clear_eval_caches
from repro.autotvm.service import schedule_zoo, trials_to_target

from common import conv_graph, emit_summary

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_tuning.json"

#: the workload every identity/dedup session tunes (one cheap conv task)
BASE_SHAPE = dict(batch=1, in_channels=16, height=16, width=16,
                  out_channels=32, kernel=3, stride=1, padding=1)
#: shape family tuned to accumulate the transfer database
TRANSFER_CHANNELS = (16, 24, 32, 40, 48, 56, 64, 72)
#: the unseen shape the transfer section tunes cold vs warm
TRANSFER_TARGET_CHANNELS = 96


def _graph(out_channels=None):
    shape = dict(BASE_SHAPE)
    if out_channels is not None:
        shape["out_channels"] = out_channels
    return conv_graph(**shape)


def _fingerprint(report) -> dict:
    return {r.task_name: {"config": r.best_config.index,
                          "estimate": r.estimate,
                          "curve": [f"{v:.12e}" for v in r.curve]}
            for r in report}


def _result_rows(report) -> list:
    return [{"workload": r.task_name, "trials": r.trials,
             "elapsed_s": round(r.elapsed, 4),
             "seconds_per_trial": round(r.elapsed / max(r.trials, 1), 6),
             "trials_to_target": trials_to_target(r.curve, r.best_time),
             "dedup_hits": r.dedup_hits, "warm_samples": r.warm_samples,
             "pretrained": r.pretrained} for r in report]


def bench_identity(trials: int, seed: int) -> dict:
    """A single session against a fresh service vs tuning locally."""
    opts = dict(trials=trials, seed=seed, batch_size=4)
    clear_eval_caches()
    solo = repro.autotune(_graph(), target="cuda",
                          options=TuningOptions(**opts))
    with TuningService() as service:
        clear_eval_caches()
        serviced = repro.autotune(
            _graph(), target="cuda",
            options=TuningOptions(service=service.address, **opts))
    identical = _fingerprint(serviced) == _fingerprint(solo)
    print(f"[tuning] single serviced session bit-identical to solo: "
          f"{identical}", flush=True)
    return {"bit_identical": identical,
            "solo_rows": _result_rows(solo),
            "serviced_stats": serviced.service_stats}


def bench_concurrent_dedup(trials: int, seed: int) -> dict:
    """Two concurrent sessions sharing one service; how much is skipped?"""
    opts = dict(trials=trials, seed=seed, batch_size=4, warm_start=False)
    clear_eval_caches()
    solo = repro.autotune(_graph(), target="cuda",
                          options=TuningOptions(**opts))
    reports, errors = {}, []
    with TuningService() as service:
        def run(name: str, delay: float) -> None:
            try:
                if delay:
                    time.sleep(delay)   # stagger: the late joiner reuses work
                reports[name] = repro.autotune(
                    _graph(), target="cuda",
                    options=TuningOptions(service=service.address, **opts))
            except Exception as exc:     # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=run, args=("a", 0.0)),
                   threading.Thread(target=run, args=("b", 0.15))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = service.stats()
    if errors:
        raise errors[0]
    session_trials = sum(r.trials for r in reports["b"].results)
    fraction = stats["dedup_hits"] / max(session_trials, 1)
    solo_fp = _fingerprint(solo)
    both_match = all(_fingerprint(reports[k]) == solo_fp for k in ("a", "b"))
    print(f"[tuning] concurrent sessions: {stats['dedup_hits']} of "
          f"{session_trials} repeat trials deduped ({fraction:.0%}), "
          f"fingerprints match solo: {both_match}", flush=True)
    return {"both_match_solo": both_match,
            "dedup_hits": stats["dedup_hits"],
            "session_trials": session_trials,
            "dedup_fraction": round(fraction, 4),
            "service_stats": stats}


def bench_transfer(trials: int, seed: int, tmp_dir: Path) -> dict:
    """Accumulate a database through the service, restart, tune a new shape."""
    opts = dict(trials=trials, seed=seed, batch_size=4)
    db_path = str(tmp_dir / "bench_tuning_transfer.jsonl")
    with TuningService(db_path=db_path) as service:
        for channels in TRANSFER_CHANNELS:
            repro.autotune(_graph(channels), target="cuda",
                           options=TuningOptions(service=service.address,
                                                 **opts))

    clear_eval_caches()
    cold = repro.autotune(_graph(TRANSFER_TARGET_CHANNELS), target="cuda",
                          options=TuningOptions(**opts))
    cold_result, = cold.results

    # Restarting on the accumulated log pretrains the conv2d cost model.
    with TuningService(db_path=db_path) as service:
        pretrained_models = service.stats()["pretrained_models"]
        clear_eval_caches()
        warm = repro.autotune(_graph(TRANSFER_TARGET_CHANNELS), target="cuda",
                              options=TuningOptions(service=service.address,
                                                    **opts))
    warm_result, = warm.results

    # Convergence toward the *cold* run's best time: how many trials does
    # each session need to reach it (within 5%)?
    cold_tt = trials_to_target(cold_result.curve, cold_result.best_time)
    warm_tt = trials_to_target(warm_result.curve, cold_result.best_time)
    no_regression = warm_result.estimate <= cold_result.estimate * (1 + 1e-9)
    print(f"[tuning] transfer: {pretrained_models} pretrained model(s), "
          f"{warm_result.warm_samples} warm samples; trials to cold best: "
          f"cold {cold_tt}, warm {warm_tt}; no regression: {no_regression}",
          flush=True)
    return {"history_shapes": len(TRANSFER_CHANNELS),
            "pretrained_models": pretrained_models,
            "warm_samples": warm_result.warm_samples,
            "pretrained": warm_result.pretrained,
            "cold_best_s": cold_result.estimate,
            "warm_best_s": warm_result.estimate,
            "cold_trials_to_target": cold_tt,
            "warm_trials_to_target": warm_tt,
            "no_regression": no_regression}


def run_suite(trials: int, zoo_models, zoo_trials: int, seed: int,
              tmp_dir: Path) -> dict:
    results = {
        "suite": "bench_tuning",
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "trials": trials,
    }
    print(f"[tuning] identity: solo vs serviced ({trials} trials) ...",
          flush=True)
    results["identity"] = bench_identity(trials, seed)
    print("[tuning] concurrent dedup: two sessions, one service ...",
          flush=True)
    results["concurrent"] = bench_concurrent_dedup(trials, seed)
    print(f"[tuning] transfer: {len(TRANSFER_CHANNELS)} shapes -> restart -> "
          f"unseen shape ...", flush=True)
    results["transfer"] = bench_transfer(trials, seed, tmp_dir)
    print(f"[tuning] zoo drive: {', '.join(zoo_models)} "
          f"({zoo_trials} trials) ...", flush=True)
    clear_eval_caches()
    results["zoo"] = schedule_zoo(models=zoo_models, target="cuda",
                                  trials=zoo_trials)
    per_trial = [row["seconds_per_trial"] for row in results["zoo"]["workloads"]]
    print(f"[tuning]   {len(results['zoo']['workloads'])} workloads, "
          f"{max(per_trial) * 1e3:.0f} ms/trial worst case", flush=True)
    return results


def check_acceptance(results: dict) -> list:
    """The smoke gate: every guarantee the service advertises, enforced."""
    failures = []
    if not results["identity"]["bit_identical"]:
        failures.append("serviced session diverged from the solo session")
    if not results["concurrent"]["both_match_solo"]:
        failures.append("a concurrent session diverged from the solo report")
    if results["concurrent"]["dedup_fraction"] < 0.25:
        failures.append(
            f"dedup fraction {results['concurrent']['dedup_fraction']:.2f} "
            f"< 0.25")
    transfer = results["transfer"]
    if not transfer["warm_samples"]:
        failures.append("transfer session got no warm samples")
    if not transfer["pretrained"]:
        failures.append("transfer session got no pretrained model")
    if not transfer["no_regression"]:
        failures.append("warm best regressed against the cold best")
    warm_tt, cold_tt = (transfer["warm_trials_to_target"],
                        transfer["cold_trials_to_target"])
    if warm_tt is None or (cold_tt is not None and warm_tt > cold_tt):
        failures.append(f"warm start did not converge faster "
                        f"(cold {cold_tt}, warm {warm_tt} trials)")
    if not results["zoo"]["workloads"]:
        failures.append("zoo drive produced no workload rows")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=24,
                        help="trials per task in the service sections")
    parser.add_argument("--zoo-trials", type=int, default=16,
                        help="trials per task in the zoo drive")
    parser.add_argument("--zoo-models", nargs="+",
                        default=["resnet-18", "mobilenet", "dqn"])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=None,
                        help=f"JSON output path (default {DEFAULT_OUTPUT}; "
                             "--smoke defaults to BENCH_tuning_smoke.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run that enforces the service's "
                             "acceptance guarantees")
    args = parser.parse_args(argv)

    trials, zoo_trials, zoo_models = (args.trials, args.zoo_trials,
                                      list(args.zoo_models))
    if args.smoke:
        trials = min(trials, 12)
        zoo_trials = min(zoo_trials, 6)
        zoo_models = zoo_models[-1:]           # one small model
    if args.output is None:
        args.output = (DEFAULT_OUTPUT.with_name("BENCH_tuning_smoke.json")
                       if args.smoke else DEFAULT_OUTPUT)

    threads_before = set(threading.enumerate())
    with tempfile.TemporaryDirectory(prefix="bench_tuning_") as tmp:
        results = run_suite(trials, zoo_models, zoo_trials, args.seed,
                            Path(tmp))
    leaked = [t.name for t in threading.enumerate()
              if t not in threads_before and t.is_alive()]
    results["leaked_threads"] = leaked
    results["smoke"] = bool(args.smoke)

    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[tuning] wrote {args.output}")

    emit_summary("tuning", {
        "bit_identical": results["identity"]["bit_identical"],
        "dedup_fraction": results["concurrent"]["dedup_fraction"],
        "warm_samples": results["transfer"]["warm_samples"],
        "cold_trials_to_target": results["transfer"]["cold_trials_to_target"],
        "warm_trials_to_target": results["transfer"]["warm_trials_to_target"],
        "zoo_workloads": len(results["zoo"]["workloads"]),
        "zoo_ms_per_trial_max": round(max(
            row["seconds_per_trial"]
            for row in results["zoo"]["workloads"]) * 1e3, 2),
        "leaked_threads": len(leaked),
    })

    if args.smoke:
        failures = check_acceptance(results)
        if leaked:
            failures.append(f"leaked threads after shutdown: {leaked}")
        if failures:
            for failure in failures:
                print(f"[tuning] FAIL: {failure}", file=sys.stderr)
            return 1
        print("[tuning] all service acceptance checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
