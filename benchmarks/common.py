"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure from the paper's
evaluation.  The helpers here cache expensive artefacts (tuning databases,
compiled modules) across benchmarks within one pytest session so the whole
suite stays fast, and provide a uniform way to print the rows/series each
figure reports.
"""

from __future__ import annotations

import json
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import repro
from repro.autotvm import ApplyHistoryBest, TuningOptions
from repro.autotvm.database import TuningDatabase
from repro.frontend import (
    dcgan_generator,
    dqn,
    lstm_language_model,
    mobilenet,
    resnet18,
)
from repro.graph import clear_timing_cache
from repro.hardware import Target, arm_cpu, cuda, mali, pynq_cpu, vdla

#: trials per workload used by the benchmark suite (kept modest so the whole
#: suite runs in minutes; increase for tighter results)
TUNE_TRIALS = 20

MODEL_BUILDERS = {
    "resnet-18": resnet18,
    "mobilenet": mobilenet,
    "lstm-lm": lstm_language_model,
    "dqn": dqn,
    "dcgan": dcgan_generator,
}

_TARGET_FACTORIES = {
    "cuda": cuda,
    "arm_cpu": arm_cpu,
    "pynq_cpu": pynq_cpu,
    "mali": mali,
    "vdla": vdla,
}

_tuning_cache: Dict[Tuple[str, str, str], TuningDatabase] = {}
_module_cache: Dict[Tuple[str, str, int, str], object] = {}


def get_target(name: str) -> Target:
    return _TARGET_FACTORIES[name]()


def build_model(name: str, dtype: str = "float32"):
    graph, params, shapes = MODEL_BUILDERS[name](batch=1, dtype=dtype)
    return graph, params, shapes


def tuned_database(model: str, target_name: str, dtype: str = "float32",
                   n_trial: int = TUNE_TRIALS) -> TuningDatabase:
    """Tune (once per session) every heavy workload of a model for a target."""
    key = (model, target_name, dtype)
    if key not in _tuning_cache:
        report = repro.autotune(build_model(model, dtype),
                                target=get_target(target_name),
                                options=TuningOptions(trials=n_trial,
                                                      tuner="model"))
        _tuning_cache[key] = report.database
    return _tuning_cache[key]


def compile_model(model: str, target_name: str, opt_level: int = 2,
                  dtype: str = "float32", tuned: bool = True):
    """Compile a model end-to-end and return the compiled module."""
    key = (model, target_name, opt_level, dtype, tuned)
    if key not in _module_cache:
        target = get_target(target_name)
        if tuned:
            db = tuned_database(model, target_name, dtype)
            with ApplyHistoryBest(db):
                module = repro.compile(build_model(model, dtype), target=target,
                                       opt_level=opt_level)
        else:
            module = repro.compile(build_model(model, dtype), target=target,
                                   opt_level=opt_level)
        _module_cache[key] = module
    return _module_cache[key]


def print_series(title: str, rows: List[Tuple[str, Dict[str, float]]],
                 unit: str = "ms") -> None:
    """Print a figure's data series in a compact table."""
    print(f"\n=== {title} ===")
    if not rows:
        return
    columns = list(rows[0][1].keys())
    header = "workload".ljust(14) + "".join(c.rjust(18) for c in columns)
    print(header)
    for name, values in rows:
        line = name.ljust(14)
        for column in columns:
            value = values.get(column, float("nan"))
            line += f"{value:18.4f}"
        print(line + f"   [{unit}]")


def eval_cache_rates() -> Dict[str, float]:
    """Per-cache hit rates of the shared evaluation caches, as BENCH_SUMMARY
    fields (``{lowered,features}_cache_hit_rate`` plus raw hit counters)."""
    from repro.autotvm import eval_cache_stats

    fields: Dict[str, float] = {}
    for cache, stats in eval_cache_stats().items():
        lookups = stats["hits"] + stats["misses"]
        fields[f"{cache}_cache_hit_rate"] = (
            round(stats["hits"] / lookups, 4) if lookups else 0.0)
        fields[f"{cache}_cache_hits"] = stats["hits"]
        fields[f"{cache}_cache_misses"] = stats["misses"]
    return fields


def emit_summary(suite: str, data: Dict[str, object]) -> None:
    """Print the benchmark's single machine-readable summary line.

    Every ``bench_*.py`` ends with one of these so dashboards and CI greps
    can consume results without parsing the human-readable tables::

        BENCH_SUMMARY {"suite": "serving", ...}

    Values must be JSON-serialisable; keep the payload small (headline
    numbers, not full row dumps).  The shared evaluation-cache hit rates are
    attached to every line automatically (explicit same-named fields in
    ``data`` win), so cross-task cache payoff is visible in CI for every
    suite.
    """
    print("BENCH_SUMMARY " + json.dumps(
        {"suite": suite, **eval_cache_rates(), **data},
        sort_keys=True, default=float))


def conv_graph(batch, in_channels, height, width, out_channels, kernel, stride,
               padding, depthwise=False, dtype="float32"):
    """A single-convolution graph (for per-operator tuning/benchmarks)."""
    from repro.graph.ir import Graph

    return Graph([_conv_node(batch, in_channels, height, width, out_channels,
                             kernel, stride, padding, depthwise=depthwise,
                             dtype=dtype)])


def _conv_node(batch, in_channels, height, width, out_channels, kernel, stride,
               padding, depthwise=False, dtype="float32"):
    """Build a standalone conv/depthwise graph node for single-kernel timing."""
    from repro.graph.ir import Node
    from repro.graph.ops import OP_REGISTRY

    data = Node("null", "data")
    data.shape = (batch, in_channels, height, width)
    data.dtype = dtype
    weight = Node("null", "weight")
    if depthwise:
        weight.shape = (in_channels, 1, kernel, kernel)
        node = Node("depthwise_conv2d", "dw", [data, weight],
                    {"strides": stride, "padding": padding})
    else:
        weight.shape = (out_channels, in_channels, kernel, kernel)
        node = Node("conv2d", "conv", [data, weight],
                    {"strides": stride, "padding": padding})
    weight.dtype = dtype
    node.dtype = dtype
    node.shape = OP_REGISTRY[node.op].infer_shape([data.shape, weight.shape], node.attrs)
    return node


def tvm_conv_time(workload, target_name: str, depthwise: bool = False,
                  dtype: str = "float32") -> float:
    """TVM's single-kernel time for a Table 2 workload (fallback search)."""
    from repro.graph.op_timing import estimate_node_time

    target = get_target(target_name)
    if depthwise:
        node = _conv_node(1, workload.channels, workload.height, workload.width,
                          workload.channels, workload.kernel, workload.stride,
                          workload.padding, depthwise=True, dtype=dtype)
    else:
        node = _conv_node(1, workload.in_channels, workload.height, workload.width,
                          workload.out_channels, workload.kernel, workload.stride,
                          workload.padding, dtype=dtype)
    return estimate_node_time(node, target)
