"""Parallel batch measurement (paper Section 5.4).

The paper's measurement pipeline splits candidate evaluation into a *builder*
(compile/lower the schedule, extract its program features) and a *runner*
(time the kernel on a device from the pool).  :class:`ParallelMeasurer`
reproduces that split over a thread pool: a batch of candidates is lowered
concurrently by the builder workers, then timed by the runner workers.

Because every measurement's noise stream is derived from ``(seed, task,
config index)`` (see :class:`~repro.autotvm.measure.LocalMeasurer`), results
are **bit-identical** to the serial path and independent of worker count or
completion order — a fixed seed yields the same tuning trajectory whether
measurements run on 1 worker or 16.
"""

from __future__ import annotations

import atexit
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.base import MeasureResult
from .measure import LocalMeasurer, MeasureInput, MeasureResultRecord

__all__ = ["ParallelMeasurer", "ProcessMeasurer", "shutdown_measure_pools"]


class ParallelMeasurer(LocalMeasurer):
    """Builder/runner split over a worker pool.

    ``n_parallel=1`` degenerates to the serial loop (no pool is created),
    which is also the fallback whenever a batch has a single candidate.
    """

    def __init__(self, n_parallel: int = 4, number: int = 3, seed: int = 0,
                 verify: bool = False):
        super().__init__(number=number, seed=seed, verify=verify)
        if n_parallel <= 0:
            raise ValueError(f"n_parallel must be positive, got {n_parallel}")
        self.n_parallel = n_parallel

    def measure(self, inputs: Sequence[MeasureInput]) -> List[MeasureResultRecord]:
        inputs = list(inputs)
        if self.n_parallel == 1 or len(inputs) <= 1:
            return super().measure(inputs)

        workers = min(self.n_parallel, len(inputs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Builder phase: lower + featurise every candidate concurrently.
            built = list(pool.map(self._build_checked, inputs))
            # Runner phase: time the successfully built candidates.
            records = list(pool.map(self._run_built, inputs, built))
        self.num_measured += len(inputs)
        return records

    # ------------------------------------------------------------- phases
    def _build_checked(self, inp: MeasureInput):
        """Builder worker: returns features, or the build error."""
        try:
            return self._build_one(inp)
        except Exception as exc:
            return exc

    def _run_built(self, inp: MeasureInput, built) -> MeasureResultRecord:
        """Runner worker: time one successfully built candidate."""
        if isinstance(built, Exception):
            return MeasureResultRecord(inp, float("inf"), None, error=str(built))
        model = inp.task.target.model
        result: MeasureResult = model.measure(built, number=self.number,
                                              rng=self._input_rng(inp))
        return MeasureResultRecord(inp, result.mean_time, built, error=result.error)


# ---------------------------------------------------------------------------
# Process-parallel measurement
# ---------------------------------------------------------------------------

#: measure worker pools shared across tuning sessions, keyed by
#: (target name, target seed, worker count) — booting a pool costs an
#: interpreter start per worker, so sessions reuse them
_MEASURE_POOLS: Dict[Tuple[str, int, int], object] = {}
_MEASURE_POOLS_LOCK = threading.Lock()


def shutdown_measure_pools() -> None:
    """Stop every shared measure worker pool (safe to call any time; pools
    are re-created on demand).  Runs automatically at interpreter exit."""
    with _MEASURE_POOLS_LOCK:
        pools = list(_MEASURE_POOLS.values())
        _MEASURE_POOLS.clear()
    for pool in pools:
        pool.shutdown()


atexit.register(shutdown_measure_pools)


def _measure_pool(target, n_workers: int):
    from ..runtime.procpool import WorkerPool
    from ..runtime.procpool.worker import measure_worker_main

    key = (target.name, int(target.seed), int(n_workers))
    with _MEASURE_POOLS_LOCK:
        pool = _MEASURE_POOLS.get(key)
        if pool is None:
            spec = target.spec()
            pool = WorkerPool(n_workers, measure_worker_main,
                              lambda index: {"target_spec": spec},
                              name=f"repro-measure-{target.name}")
            _MEASURE_POOLS[key] = pool
        return pool


class ProcessMeasurer(LocalMeasurer):
    """Builder/runner split over worker *processes* (outside the GIL).

    Each batch's config indices are chunked across a shared pool of
    measure worker processes; a ``MEASURE`` frame carries a self-contained
    task definition (template kind + workload args through the
    tuple-preserving codec) so a respawned worker needs no replayed state,
    and replies carry only floats — features are re-derived in-parent by
    the tuner's shared evaluation cache.  Because the measurement noise RNG
    is derived per ``(seed, task, config index)`` exactly as in
    :class:`~repro.autotvm.measure.LocalMeasurer`, results are
    **bit-identical** to the serial and thread-parallel paths.

    Duck-typed tasks without a ``template_kind`` (workers rebuild tasks from
    the template registry) fall back to the serial path.
    """

    def __init__(self, n_parallel: int = 4, number: int = 3, seed: int = 0,
                 verify: bool = False):
        super().__init__(number=number, seed=seed, verify=verify)
        if n_parallel <= 0:
            raise ValueError(f"n_parallel must be positive, got {n_parallel}")
        self.n_parallel = n_parallel

    def measure(self, inputs: Sequence[MeasureInput]) -> List[MeasureResultRecord]:
        inputs = list(inputs)
        # Candidate verification lowers each config in-parent, which is the
        # expensive half of a measurement — the worker-pool split buys
        # nothing then, so verified batches take the serial path.
        if self.n_parallel == 1 or len(inputs) <= 1 \
                or self.verify or not self._eligible(inputs):
            return super().measure(inputs)

        task = inputs[0].task
        pool = _measure_pool(task.target, self.n_parallel)
        indices = [inp.config.index for inp in inputs]
        chunks = [indices[worker::self.n_parallel]
                  for worker in range(self.n_parallel)]
        payload_base = {"task": task.name,
                        "template_kind": task.template_kind,
                        "args": tuple(task.args),
                        "number": self.number, "seed": self.seed}

        from ..runtime.procpool.protocol import MSG

        def run_chunk(worker: int) -> List[Dict]:
            if not chunks[worker]:
                return []
            reply = pool.request(worker, MSG.MEASURE,
                                 {**payload_base, "indices": chunks[worker]},
                                 expect=MSG.MEASURED)
            return reply["results"]

        with ThreadPoolExecutor(max_workers=self.n_parallel) as drivers:
            outcomes = list(drivers.map(run_chunk, range(self.n_parallel)))

        by_index: Dict[int, Dict] = {}
        for chunk_results in outcomes:
            for entry in chunk_results:
                by_index[int(entry["index"])] = entry
        records = []
        for inp in inputs:
            entry = by_index[inp.config.index]
            seconds = entry.get("time")
            records.append(MeasureResultRecord(
                inp, float("inf") if seconds is None else float(seconds),
                None, error=entry.get("error")))
        self.num_measured += len(inputs)
        return records

    @staticmethod
    def _eligible(inputs: Sequence[MeasureInput]) -> bool:
        """Whole batch must be one registry-built task the workers can
        reconstruct (the tuner measures one task per batch)."""
        task = inputs[0].task
        return (getattr(task, "template_kind", None) is not None
                and all(inp.task is task for inp in inputs))
