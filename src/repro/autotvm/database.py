"""Tuning log database (the "database" box in Figure 11).

Records every measurement so that (a) the cost model can be warm-started from
the history of related workloads, and (b) the graph compiler can pick the
best known configuration for each operator workload when building a model
end-to-end.  Records can be persisted to a JSON-lines file.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TuningLogEntry", "TuningDatabase"]


@dataclass
class TuningLogEntry:
    """One (workload, target, config, time) record."""

    task_name: str
    target_name: str
    config_index: int
    config_dict: Dict[str, object]
    mean_time: float

    def to_json(self) -> str:
        return json.dumps({
            "task": self.task_name,
            "target": self.target_name,
            "config_index": self.config_index,
            "config": self.config_dict,
            "time": self.mean_time,
        })

    @staticmethod
    def from_json(line: str) -> "TuningLogEntry":
        obj = json.loads(line)
        return TuningLogEntry(obj["task"], obj["target"], obj["config_index"],
                              obj["config"], obj["time"])


class TuningDatabase:
    """In-memory + optional on-disk store of tuning results."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._entries: List[TuningLogEntry] = []
        if path and os.path.exists(path):
            self.load(path)

    def add(self, entry: TuningLogEntry) -> None:
        self._entries.append(entry)
        if self.path:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(entry.to_json() + "\n")

    def record(self, task, config, mean_time: float) -> TuningLogEntry:
        entry = TuningLogEntry(task.name, task.target.name, config.index,
                               config.to_dict(), mean_time)
        self.add(entry)
        return entry

    def load(self, path: str) -> None:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    self._entries.append(TuningLogEntry.from_json(line))

    def best(self, task_name: str, target_name: Optional[str] = None
             ) -> Optional[TuningLogEntry]:
        candidates = [e for e in self._entries if e.task_name == task_name
                      and (target_name is None or e.target_name == target_name)]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.mean_time)

    def entries_for(self, task_name: str) -> List[TuningLogEntry]:
        return [e for e in self._entries if e.task_name == task_name]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)
