"""NumPy reference implementations of every operator.

These are the functional semantics used by the graph runtime (the simulated
devices only model *time*; the numerical results always come from these
reference kernels) and by the test-suite to validate lowered loop programs.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "conv2d_nchw",
    "depthwise_conv2d_nchw",
    "conv2d_transpose_nchw",
    "dense",
    "matmul",
    "bias_add",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "add",
    "multiply",
    "batch_norm_inference",
    "softmax",
    "flatten",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "pad_nchw",
    "bitserial_conv2d_nchw",
    "winograd_conv2d_nchw",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def pad_nchw(data: np.ndarray, pad_h: int, pad_w: int, value: float = 0.0) -> np.ndarray:
    if pad_h == 0 and pad_w == 0:
        return data
    return np.pad(data, ((0, 0), (0, 0), (pad_h, pad_h), (pad_w, pad_w)),
                  mode="constant", constant_values=value)


def conv2d_nchw(data: np.ndarray, kernel: np.ndarray, stride: IntPair = 1,
                padding: IntPair = 0) -> np.ndarray:
    """Direct 2-D convolution, NCHW/OIHW layouts."""
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    data = pad_nchw(data, pad_h, pad_w)
    batch, in_c, in_h, in_w = data.shape
    out_c, _, k_h, k_w = kernel.shape
    out_h = (in_h - k_h) // stride_h + 1
    out_w = (in_w - k_w) // stride_w + 1
    # im2col formulation keeps the reference fast enough for whole networks.
    cols = np.empty((batch, in_c * k_h * k_w, out_h * out_w), dtype=data.dtype)
    idx = 0
    for c in range(in_c):
        for dy in range(k_h):
            for dx in range(k_w):
                patch = data[:, c, dy:dy + stride_h * out_h:stride_h,
                             dx:dx + stride_w * out_w:stride_w]
                cols[:, idx, :] = patch.reshape(batch, -1)
                idx += 1
    weight = kernel.reshape(out_c, -1)
    out = np.einsum("ok,bkp->bop", weight, cols, optimize=True)
    return out.reshape(batch, out_c, out_h, out_w).astype(data.dtype)


def depthwise_conv2d_nchw(data: np.ndarray, kernel: np.ndarray, stride: IntPair = 1,
                          padding: IntPair = 0) -> np.ndarray:
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    data = pad_nchw(data, pad_h, pad_w)
    batch, channels, in_h, in_w = data.shape
    _, _, k_h, k_w = kernel.shape
    out_h = (in_h - k_h) // stride_h + 1
    out_w = (in_w - k_w) // stride_w + 1
    out = np.zeros((batch, channels, out_h, out_w), dtype=data.dtype)
    for dy in range(k_h):
        for dx in range(k_w):
            patch = data[:, :, dy:dy + stride_h * out_h:stride_h,
                         dx:dx + stride_w * out_w:stride_w]
            out += patch * kernel[np.newaxis, :, 0, dy, dx][..., np.newaxis, np.newaxis]
    return out


def conv2d_transpose_nchw(data: np.ndarray, kernel: np.ndarray, stride: IntPair = 1,
                          padding: IntPair = 0) -> np.ndarray:
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    batch, in_c, in_h, in_w = data.shape
    _, out_c, k_h, k_w = kernel.shape
    dil_h = in_h + (in_h - 1) * (stride_h - 1)
    dil_w = in_w + (in_w - 1) * (stride_w - 1)
    dilated = np.zeros((batch, in_c, dil_h, dil_w), dtype=data.dtype)
    dilated[:, :, ::stride_h, ::stride_w] = data
    flipped = kernel[:, :, ::-1, ::-1]           # (in_c, out_c, kh, kw)
    weight = flipped.transpose(1, 0, 2, 3)       # (out_c, in_c, kh, kw)
    return conv2d_nchw(dilated, weight, stride=1, padding=(k_h - 1 - pad_h,
                                                            k_w - 1 - pad_w))


def matmul(a: np.ndarray, b: np.ndarray, trans_a: bool = False,
           trans_b: bool = False) -> np.ndarray:
    lhs = a.T if trans_a else a
    rhs = b.T if trans_b else b
    return lhs @ rhs


def dense(data: np.ndarray, weight: np.ndarray,
          bias: Optional[np.ndarray] = None) -> np.ndarray:
    out = data @ weight.T
    if bias is not None:
        out = out + bias
    return out


def bias_add(data: np.ndarray, bias: np.ndarray) -> np.ndarray:
    return data + bias.reshape(1, -1, 1, 1)


def relu(data: np.ndarray) -> np.ndarray:
    return np.maximum(data, 0)


def leaky_relu(data: np.ndarray, alpha: float = 0.2) -> np.ndarray:
    return np.where(data > 0, data, data * alpha)


def sigmoid(data: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-data))


def tanh(data: np.ndarray) -> np.ndarray:
    return np.tanh(data)


def add(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return lhs + rhs


def multiply(lhs: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    return lhs * rhs


def batch_norm_inference(data: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                         mean: np.ndarray, variance: np.ndarray,
                         epsilon: float = 1e-5) -> np.ndarray:
    shape = (1, -1) + (1,) * (data.ndim - 2)
    scale = gamma.reshape(shape) / np.sqrt(variance.reshape(shape) + epsilon)
    shift = beta.reshape(shape) - mean.reshape(shape) * scale
    return data * scale + shift


def softmax(data: np.ndarray) -> np.ndarray:
    shifted = data - data.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def flatten(data: np.ndarray) -> np.ndarray:
    return data.reshape(data.shape[0], -1)


def max_pool2d(data: np.ndarray, pool_size: IntPair = 2, stride: IntPair = 2,
               padding: IntPair = 0) -> np.ndarray:
    k_h, k_w = _pair(pool_size)
    s_h, s_w = _pair(stride)
    p_h, p_w = _pair(padding)
    data = pad_nchw(data, p_h, p_w, value=-np.inf) if (p_h or p_w) else data
    batch, channels, height, width = data.shape
    out_h = (height - k_h) // s_h + 1
    out_w = (width - k_w) // s_w + 1
    out = np.full((batch, channels, out_h, out_w), -np.inf, dtype=data.dtype)
    for dy in range(k_h):
        for dx in range(k_w):
            patch = data[:, :, dy:dy + s_h * out_h:s_h, dx:dx + s_w * out_w:s_w]
            out = np.maximum(out, patch)
    return out


def avg_pool2d(data: np.ndarray, pool_size: IntPair = 2, stride: IntPair = 2,
               padding: IntPair = 0) -> np.ndarray:
    k_h, k_w = _pair(pool_size)
    s_h, s_w = _pair(stride)
    p_h, p_w = _pair(padding)
    data = pad_nchw(data, p_h, p_w) if (p_h or p_w) else data
    batch, channels, height, width = data.shape
    out_h = (height - k_h) // s_h + 1
    out_w = (width - k_w) // s_w + 1
    out = np.zeros((batch, channels, out_h, out_w), dtype=data.dtype)
    for dy in range(k_h):
        for dx in range(k_w):
            out += data[:, :, dy:dy + s_h * out_h:s_h, dx:dx + s_w * out_w:s_w]
    return out / float(k_h * k_w)


def global_avg_pool2d(data: np.ndarray) -> np.ndarray:
    return data.mean(axis=(2, 3))


# ---------------------------------------------------------------------------
# Ultra low-precision (bit-serial) convolution, Section 6.2 / Figure 18
# ---------------------------------------------------------------------------

def _quantize_bits(data: np.ndarray, bits: int) -> np.ndarray:
    """Quantize non-negative activations / weights to ``bits`` bits."""
    clipped = np.clip(data, 0.0, 1.0)
    levels = (1 << bits) - 1
    return np.round(clipped * levels).astype(np.int64)


def bitserial_conv2d_nchw(data: np.ndarray, kernel: np.ndarray,
                          stride: IntPair = 1, padding: IntPair = 0,
                          activation_bits: int = 2, weight_bits: int = 1) -> np.ndarray:
    """Bit-serial low precision convolution.

    Activations are quantized to ``activation_bits`` and weights to
    ``weight_bits``; the convolution is evaluated one bit-plane pair at a
    time using AND + popcount semantics, accumulating into a wide integer —
    exactly the decomposition the paper's micro-kernel implements.
    """
    q_data = _quantize_bits(data, activation_bits)
    q_kernel = _quantize_bits(np.abs(kernel), weight_bits)
    acc = None
    for a_bit in range(activation_bits):
        data_plane = ((q_data >> a_bit) & 1).astype(np.float32)
        for w_bit in range(weight_bits):
            kernel_plane = ((q_kernel >> w_bit) & 1).astype(np.float32)
            partial = conv2d_nchw(data_plane, kernel_plane, stride, padding)
            scaled = partial * float(1 << (a_bit + w_bit))
            acc = scaled if acc is None else acc + scaled
    return acc.astype(np.int32)


# ---------------------------------------------------------------------------
# Winograd F(2x2, 3x3) convolution with pre-transformed weights (Figure 15)
# ---------------------------------------------------------------------------

_WINOGRAD_B = np.array([
    [1, 0, 0, 0],
    [0, 1, -1, 1],
    [-1, 1, 1, 0],
    [0, 0, 0, -1],
], dtype=np.float64)

_WINOGRAD_G = np.array([
    [1, 0, 0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0, 0, 1],
], dtype=np.float64)

_WINOGRAD_A = np.array([
    [1, 0],
    [1, 1],
    [1, -1],
    [0, -1],
], dtype=np.float64)


def winograd_transform_weights(kernel: np.ndarray) -> np.ndarray:
    """Pre-transform OIHW 3x3 weights to the 4x4 Winograd domain."""
    out_c, in_c, k_h, k_w = kernel.shape
    if (k_h, k_w) != (3, 3):
        raise ValueError("Winograd F(2x2,3x3) requires 3x3 kernels")
    transformed = np.einsum("ea,ocab,fb->ocef", _WINOGRAD_G, kernel.astype(np.float64),
                            _WINOGRAD_G)
    return transformed


def winograd_conv2d_nchw(data: np.ndarray, kernel: np.ndarray,
                         padding: IntPair = 1,
                         pre_transformed: Optional[np.ndarray] = None) -> np.ndarray:
    """Winograd F(2x2,3x3) convolution, unit stride."""
    pad_h, pad_w = _pair(padding)
    padded = pad_nchw(data.astype(np.float64), pad_h, pad_w)
    batch, in_c, in_h, in_w = padded.shape
    out_c = kernel.shape[0]
    out_h, out_w = in_h - 2, in_w - 2
    tiles_h = (out_h + 1) // 2
    tiles_w = (out_w + 1) // 2
    pad_out_h, pad_out_w = tiles_h * 2, tiles_w * 2
    if pad_out_h + 2 > in_h or pad_out_w + 2 > in_w:
        padded = np.pad(padded, ((0, 0), (0, 0),
                                 (0, pad_out_h + 2 - in_h),
                                 (0, pad_out_w + 2 - in_w)))
    weights = (pre_transformed if pre_transformed is not None
               else winograd_transform_weights(kernel))

    # Gather 4x4 input tiles with stride 2.
    tiles = np.empty((batch, in_c, tiles_h, tiles_w, 4, 4), dtype=np.float64)
    for ty in range(tiles_h):
        for tx in range(tiles_w):
            tiles[:, :, ty, tx] = padded[:, :, ty * 2:ty * 2 + 4, tx * 2:tx * 2 + 4]
    # V = B^T d B, M = U * V (elementwise over the 4x4 domain, contracted over
    # input channels), Y = A^T M A.  Batch index is written ``n`` to avoid
    # clashing with the transform indices.
    v = np.einsum("ae,ncyxab,bf->ncyxef", _WINOGRAD_B, tiles, _WINOGRAD_B)
    m = np.einsum("ocef,ncyxef->noyxef", weights, v)
    y = np.einsum("ei,noyxef,fj->noyxij", _WINOGRAD_A, m, _WINOGRAD_A)
    out = np.zeros((batch, out_c, pad_out_h, pad_out_w), dtype=np.float64)
    for ty in range(tiles_h):
        for tx in range(tiles_w):
            out[:, :, ty * 2:ty * 2 + 2, tx * 2:tx * 2 + 2] = y[:, :, ty, tx]
    return out[:, :, :out_h, :out_w].astype(data.dtype)
