"""Tests for the automated optimization framework (config spaces, cost models,
tuners, measurement, tuning database)."""

import numpy as np
import pytest

from repro import autotvm, te, tir
from repro.autotvm.cost_model import rank_correlation
from repro.hardware import cuda
from repro.topi import nn
from repro.topi.schedules import gpu as gpu_sched


def matmul_template(cfg, m, n, k):
    A = te.placeholder((m, k), name="A")
    B = te.placeholder((k, n), name="B")
    C = nn.matmul(A, B)
    return gpu_sched.matmul_gpu_template(cfg, A, B, C)


@pytest.fixture(scope="module")
def matmul_task():
    return autotvm.create_task("matmul_64", matmul_template, (64, 64, 64), cuda())


def test_config_space_enumeration():
    space = autotvm.ConfigSpace()
    split = space.define_split("tile", 16, num_outputs=2)
    knob = space.define_knob("unroll", [0, 1])
    assert isinstance(split, autotvm.SplitEntity)
    assert knob.val == 0
    assert len(space) == 5 * 2            # divisors of 16 -> 5 factorizations
    # Index round trip.
    for index in range(len(space)):
        cfg = space.get(index)
        assert cfg.index == index
        knobs = space.knob_indices(index)
        assert space.index_of(dict(zip(space.knob_names, knobs))) == index


def test_split_entity_product_preserved():
    space = autotvm.ConfigSpace()
    space.define_split("tile", 24, num_outputs=3)
    for cfg in space.sample(10):
        sizes = cfg["tile"].size
        product = 1
        for value in sizes:
            product *= value
        assert product == 24


def test_task_instantiation_and_flop(matmul_task):
    assert len(matmul_task.config_space) > 10
    cfg = matmul_task.config_space.get(0)
    schedule, tensors = matmul_task.instantiate(cfg)
    assert isinstance(schedule, te.Schedule)
    func = matmul_task.lower(cfg)
    assert isinstance(func, tir.LoweredFunc)
    assert matmul_task.flop == pytest.approx(2 * 64 ** 3, rel=0.05)


def test_local_measurer_handles_valid_and_counts(matmul_task):
    measurer = autotvm.LocalMeasurer(number=2)
    inputs = [autotvm.MeasureInput(matmul_task, cfg)
              for cfg in matmul_task.config_space.sample(3)]
    results = measurer.measure(inputs)
    assert len(results) == 3
    assert measurer.num_measured == 3
    assert all(r.mean_time > 0 for r in results)
    assert any(r.gflops > 0 for r in results if r.valid)


def test_gbt_cost_model_learns_ranking():
    rng = np.random.default_rng(0)
    x = rng.random((60, 8))
    # Ground truth: throughput dominated by two features.
    y = 3 * x[:, 0] + x[:, 3] + 0.05 * rng.random(60)
    model = autotvm.GradientBoostedTrees(num_rounds=30, loss="rank", seed=0)
    model.fit(x, y)
    pred = model.predict(x)
    assert rank_correlation(pred, y) > 0.7


def test_gbt_regression_loss_and_small_data():
    model = autotvm.GradientBoostedTrees(loss="reg")
    model.fit(np.zeros((2, 3)), np.array([1.0, 2.0]))   # too little data: base only
    assert model.predict(np.zeros((1, 3)))[0] == pytest.approx(1.5)
    with pytest.raises(ValueError):
        autotvm.GradientBoostedTrees(loss="huber")


def test_neural_cost_model_learns_signal():
    rng = np.random.default_rng(1)
    x = rng.random((80, 6))
    y = 2 * x[:, 1] - x[:, 4]
    model = autotvm.NeuralCostModel(epochs=200, seed=1)
    model.fit(x, y)
    assert rank_correlation(model.predict(x), y) > 0.6


def test_tuners_find_better_than_median(matmul_task):
    measurer = autotvm.LocalMeasurer(number=1)
    sample = [autotvm.MeasureInput(matmul_task, cfg)
              for cfg in matmul_task.config_space.sample(24)]
    sample_times = [r.mean_time for r in measurer.measure(sample) if r.valid]
    median = float(np.median(sample_times))
    for tuner_cls in (autotvm.RandomTuner, autotvm.GATuner, autotvm.ModelBasedTuner):
        tuner = tuner_cls(matmul_task, seed=0)
        best = tuner.tune(n_trial=24, batch_size=8,
                          measurer=autotvm.LocalMeasurer(number=1))
        assert best is not None
        assert tuner.best_time <= median
        history = tuner.best_history()
        assert len(history) == len(tuner.records)
        assert all(b >= a for a, b in zip(history[1:], history[:-1]))  # non-increasing


def test_grid_search_tuner_enumerates_in_order(matmul_task):
    tuner = autotvm.GridSearchTuner(matmul_task)
    batch = tuner.next_batch(4)
    assert [cfg.index for cfg in batch] == [0, 1, 2, 3]


def test_tuning_database_roundtrip(tmp_path, matmul_task):
    path = tmp_path / "log.jsonl"
    database = autotvm.TuningDatabase(str(path))
    cfg = matmul_task.config_space.get(3)
    database.record(matmul_task, cfg, 1.5e-4)
    database.record(matmul_task, matmul_task.config_space.get(5), 1.0e-4)
    reloaded = autotvm.TuningDatabase(str(path))
    assert len(reloaded) == 2
    best = reloaded.best(matmul_task.name)
    assert best.config_index == 5
    assert reloaded.best("unknown-task") is None


def test_template_registry():
    @autotvm.register_template("unit_test_template")
    def _template(cfg, n):
        A = te.placeholder((n,), name="A")
        B = te.compute((n,), lambda i: A[i] + 1.0, name="B")
        s = te.create_schedule(B.op)
        return s, [A, B]

    assert autotvm.get_template("unit_test_template") is _template
    task = autotvm.create_task("unit", "unit_test_template", (16,), cuda())
    assert isinstance(task.lower(task.config_space.get(0)), tir.LoweredFunc)
    with pytest.raises(KeyError):
        autotvm.get_template("missing_template")
