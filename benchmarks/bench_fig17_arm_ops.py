"""Figure 17: per-operator ARM A53 comparison on Table 2 workloads.

Relative speedup of TVM over TensorFlow Lite for the ResNet-18 conv2d
operators and the MobileNet depthwise conv2d operators.
"""

import pytest

from common import emit_summary, get_target, print_series, tvm_conv_time
from repro.baselines import TFLITE_PROFILE, VendorLibrary
from repro.workloads import MOBILENET_DEPTHWISE_WORKLOADS, RESNET_CONV_WORKLOADS


def _evaluate():
    target = get_target("arm_cpu")
    tflite = VendorLibrary(TFLITE_PROFILE, target)
    conv_rows = []
    for workload in RESNET_CONV_WORKLOADS:
        baseline = tflite.conv2d_time(1, workload.in_channels, workload.height,
                                      workload.width, workload.out_channels,
                                      workload.kernel, workload.stride,
                                      workload.padding)
        tvm_time = tvm_conv_time(workload, "arm_cpu")
        conv_rows.append((workload.name, {"TFLite": 1.0, "TVM": baseline / tvm_time}))
    dw_rows = []
    for workload in MOBILENET_DEPTHWISE_WORKLOADS:
        baseline = tflite.conv2d_time(1, workload.channels, workload.height,
                                      workload.width, workload.channels,
                                      workload.kernel, workload.stride,
                                      workload.padding, depthwise=True)
        tvm_time = tvm_conv_time(workload, "arm_cpu", depthwise=True)
        dw_rows.append((workload.name, {"TFLite": 1.0, "TVM": baseline / tvm_time}))
    return conv_rows, dw_rows


def test_fig17_arm_operator_speedups(benchmark):
    conv_rows, dw_rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 17 (top): conv2d speedup vs TFLite on ARM A53", conv_rows,
                 unit="x")
    print_series("Figure 17 (bottom): depthwise conv2d speedup vs TFLite", dw_rows,
                 unit="x")
    conv_speedups = [e["TVM"] for _n, e in conv_rows]
    dw_speedups = [e["TVM"] for _n, e in dw_rows]
    emit_summary("fig17_arm_ops", {
        "conv_speedup_vs_tflite": {name: round(e["TVM"], 3)
                                   for name, e in conv_rows},
        "dw_speedup_vs_tflite": {name: round(e["TVM"], 3)
                                 for name, e in dw_rows}})
    # Paper: TVM outperforms the hand-optimized TFLite kernels for both
    # operator types, with the depthwise advantage especially clear.
    assert sum(s > 1.0 for s in conv_speedups) >= len(conv_speedups) * 0.6
    assert sum(s > 1.0 for s in dw_speedups) >= len(dw_speedups) * 0.7
