"""The unified tuning session: :func:`repro.autotune` (paper Section 5).

Mirrors what :func:`repro.compile` did for compilation — one front door for
the whole offline optimization loop.  ``autotune`` accepts the same model
forms as ``compile`` (a :class:`~repro.graph.ir.Graph`, a frontend model
tuple, or a model-zoo name), extracts the heavy-operator tuning tasks,
explores each task's schedule space with a registered tuner driven by the
parallel batch measurer, and returns a single :class:`TuningReport` carrying
per-task best configurations, trial curves (Figure 12-ready), timing, and the
:class:`~repro.autotvm.database.TuningDatabase` that history-based
compilation consumes::

    report = repro.autotune("resnet-18", target="cuda", trials=64)
    with report.apply_history_best():
        module = repro.compile("resnet-18", target="cuda")

Transfer learning: when a database with history is passed in, the ML cost
model of each task is warm-started from prior entries of the same operator,
so new sessions start model-guided instead of random.  With
``ensure_no_regression`` (default), each recorded best is validated against
the compiler's untuned fallback heuristic, so a build inside
``apply_history_best()`` is never slower than the untuned build.
"""

from __future__ import annotations

import logging
import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .apply_history import ApplyHistoryBest
from .database import TuningDatabase
from .measure import LocalMeasurer
from .options import ProgressEvent, TuningOptions
from .parallel import ParallelMeasurer
from .registry import get_tuner
from .space import ConfigEntity
from .task import Task
from .tuner import Tuner

__all__ = ["TaskTuningResult", "TuningReport", "autotune", "extract_tasks",
           "tune_tasks"]

logger = logging.getLogger("repro.autotvm")


# ---------------------------------------------------------------------------
# Report objects
# ---------------------------------------------------------------------------

@dataclass
class TaskTuningResult:
    """Outcome of tuning one operator workload."""

    task: Task
    best_config: ConfigEntity       #: configuration recorded in the database
    best_time: float                #: best *measured* time during tuning (s)
    estimate: float                 #: deterministic model estimate of best_config
    curve: List[float]              #: best-so-far per trial (Figure 12-ready)
    trials: int                     #: measurement trials actually spent
    elapsed: float                  #: wall seconds spent on this task
    warm_samples: int = 0           #: historical samples used for warm start
    floored: bool = False           #: fallback config won; it was recorded instead
    dedup_hits: int = 0             #: measurements answered by the tuning service
    pretrained: bool = False        #: started from the service's pretrained model

    @property
    def task_name(self) -> str:
        return self.task.name

    @property
    def gflops(self) -> float:
        if not math.isfinite(self.estimate) or self.estimate <= 0:
            return 0.0
        return self.task.flop / self.estimate / 1e9


@dataclass
class TuningReport:
    """Everything one :func:`autotune` session produced."""

    results: List[TaskTuningResult]
    database: TuningDatabase
    target_name: str
    options: TuningOptions
    elapsed: float = 0.0
    #: tuning-service counters at session end (``None`` when tuned locally)
    service_stats: Optional[Dict[str, int]] = None

    def apply_history_best(self) -> ApplyHistoryBest:
        """Context manager under which ``repro.compile`` uses these configs."""
        return ApplyHistoryBest(self.database)

    def best_configs(self) -> Dict[str, ConfigEntity]:
        return {r.task_name: r.best_config for r in self.results}

    def curves(self) -> Dict[str, List[float]]:
        """Per-task best-so-far trial curves (Figure 12-ready)."""
        return {r.task_name: list(r.curve) for r in self.results}

    @property
    def total_trials(self) -> int:
        return sum(r.trials for r in self.results)

    def summary(self) -> str:
        """Human-readable per-task table."""
        if not self.results:
            return "(no tasks tuned)"
        lines = [f"{'task':<44} {'space':>8} {'trials':>7} {'best (us)':>10} "
                 f"{'GFLOP/s':>8} {'note':>8}"]
        for r in self.results:
            name = r.task_name if len(r.task_name) <= 44 else r.task_name[:41] + "..."
            note = "floored" if r.floored else ("warm" if r.warm_samples else "")
            lines.append(f"{name:<44} {len(r.task.config_space):>8} "
                         f"{r.trials:>7} {r.estimate * 1e6:>10.1f} "
                         f"{r.gflops:>8.1f} {note:>8}")
        lines.append(f"{len(self.results)} tasks, {self.total_trials} trials, "
                     f"{self.elapsed:.1f}s, target={self.target_name}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __repr__(self) -> str:
        return (f"TuningReport(tasks={len(self.results)}, "
                f"trials={self.total_trials}, target={self.target_name}, "
                f"elapsed={self.elapsed:.1f}s)")


# ---------------------------------------------------------------------------
# Task extraction
# ---------------------------------------------------------------------------

def _normalise_model(model, target, params, input_shapes):
    """Resolve compile-parity model forms to (graph-with-shapes, target)."""
    # Imported lazily: the compiler package imports repro.autotvm at load
    # time, so the session must not import it back at module level.
    from ..compiler.driver import _resolve_model, _resolve_target

    graph, _params, shapes = _resolve_model(model, params, input_shapes)
    resolved = _resolve_target(target)
    if shapes:
        graph.infer_shapes(shapes)
    return graph, resolved


def _extract_task_nodes(graph, target) -> List[Tuple[Task, object]]:
    """Unique (task, representative node) pairs for the heavy operators."""
    from ..graph.op_timing import make_task_for_node

    pairs: Dict[str, Tuple[Task, object]] = {}
    for node in graph.op_nodes:
        if node.op not in ("conv2d", "depthwise_conv2d", "dense",
                           "conv2d_transpose"):
            continue
        if target.device_type == "vdla" and node.op == "conv2d":
            # The compiler maps vdla convolutions through the accelerator's
            # fixed GEMM schedule and never consults the tuning history for
            # them (see graph.op_timing.kernel_time) — tuning would be wasted.
            continue
        task = make_task_for_node(node, target)
        if task is not None and task.name not in pairs:
            pairs[task.name] = (task, node)
    return list(pairs.values())


def extract_tasks(model, target=None, *, params=None, input_shapes=None
                  ) -> List[Task]:
    """Unique tuning tasks for a model's heavy operators.

    Accepts the same model forms as :func:`repro.compile` / :func:`autotune`.
    """
    graph, resolved = _normalise_model(model, target, params, input_shapes)
    return [task for task, _node in _extract_task_nodes(graph, resolved)]


# ---------------------------------------------------------------------------
# The session
# ---------------------------------------------------------------------------

def _resolve_service(service):
    """``options.service`` -> ``(client or None, whether we own it)``.

    Accepts ``None``, a ``"host:port"`` address, a running
    :class:`~repro.autotvm.service.TuningService`, or an already-connected
    :class:`~repro.autotvm.service.ServiceClient` (which the caller keeps
    owning).
    """
    if service is None:
        return None, False
    # Imported lazily: sessions without a service never touch the package.
    from .service.client import ServiceClient, connect
    from .service.server import TuningService

    if isinstance(service, str):
        return connect(service), True
    if isinstance(service, TuningService):
        return connect(service.address), True
    if isinstance(service, ServiceClient):
        return service, False
    raise TypeError(
        f"TuningOptions.service must be None, a 'host:port' address, a "
        f"TuningService or a ServiceClient, got {type(service).__name__}")


def _make_measurer(options: TuningOptions, seed: int) -> LocalMeasurer:
    if options.n_parallel > 1:
        if options.measurer == "process":
            from .parallel import ProcessMeasurer

            return ProcessMeasurer(n_parallel=options.n_parallel,
                                   number=options.measure_number, seed=seed,
                                   verify=options.verify)
        return ParallelMeasurer(n_parallel=options.n_parallel,
                                number=options.measure_number, seed=seed,
                                verify=options.verify)
    return LocalMeasurer(number=options.measure_number, seed=seed,
                         verify=options.verify)


def _config_stats(task: Task, config: ConfigEntity
                  ) -> Tuple[float, Optional[List[float]]]:
    """Deterministic hardware-model estimate and feature vector of ``config``
    (``(inf, None)`` for invalid schedules), via the shared evaluation cache —
    a config measured during tuning is never re-lowered here."""
    try:
        features = task.features_of(config.index)
        return float(task.target.model.estimate(features)), \
            list(features.to_vector())
    except Exception:
        return float("inf"), None


def _progress_callback(task_index: int, num_tasks: int,
                       options: TuningOptions, start: float):
    total = options.trials

    def callback(tuner: Tuner, results) -> None:
        if not options.callbacks:
            return
        event = ProgressEvent(
            task_name=tuner.task.name,
            task_index=task_index,
            num_tasks=num_tasks,
            trial=len(tuner.records),
            total_trials=min(total, len(tuner.task.config_space)),
            best_time=tuner.best_time,
            batch_times=tuple(r.mean_time for r in results),
            elapsed=time.perf_counter() - start,
        )
        for cb in options.callbacks:
            cb(event)

    return callback


def _service_call(what: str, func, default):
    """Run one optional service RPC, degrading to ``default`` if the
    service is unreachable.

    The session asked for a service explicitly, so *connecting* stays loud
    (:func:`_resolve_service` raises); but a service dying mid-run only
    costs its optional contributions (warm entries, pretrained model,
    shared bests, counters) — the session finishes on local measurement.
    """
    from .service.client import ServiceUnavailable
    from .service.protocol import ServiceProtocolError

    try:
        return func()
    except (ServiceUnavailable, ServiceProtocolError,
            ConnectionError, OSError) as exc:
        logger.warning("tuning service call %s failed (%r); continuing "
                       "without it", what, exc)
        return default


def _tune_one_task(task: Task, node, task_index: int, num_tasks: int,
                   options: TuningOptions, database: TuningDatabase,
                   client=None) -> TaskTuningResult:
    start = time.perf_counter()
    seed = options.seed + task_index
    tuner_cls = get_tuner(options.tuner)
    tuner = tuner_cls(task, seed=seed, **dict(options.tuner_args))

    # With a tuning service, history flows in from the whole fleet: shared
    # entries merge with local history for the warm start, and the service's
    # startup-pretrained cost model (if it has one for this operator/target)
    # guides even the first batch.  A fresh service contributes neither, so a
    # solo session stays bit-identical to tuning locally.
    warm_db = database
    if client is not None:
        merged = TuningDatabase()
        for entry in _service_call(
                "warm_entries",
                lambda: client.warm_entries(task.operator, task.target.name),
                []):
            merged.add(entry)
        for entry in database:
            merged.add(entry)
        warm_db = merged

    warm_samples = 0
    if options.warm_start and len(warm_db) and hasattr(tuner, "warm_start"):
        warm_samples = tuner.warm_start(warm_db)

    # Adopted *after* the warm start on purpose: the service's model is fit
    # on the fleet's full trial history, so it outranks a model warm-fitted
    # from the handful of recorded bests.  The warm samples stay in the
    # tuner's training set and fold into its first refit.
    pretrained = False
    if client is not None and hasattr(tuner, "adopt_pretrained"):
        model = _service_call(
            "pretrained_model",
            lambda: client.pretrained_model(task.operator, task.target.name),
            None)
        if model is not None:
            tuner.adopt_pretrained(model)
            pretrained = True

    measurer = _make_measurer(options, seed)
    if client is not None:
        from .service.client import ServiceDedupMeasurer

        measurer = ServiceDedupMeasurer(measurer, client)
    best = tuner.tune(n_trial=options.trials, measurer=measurer,
                      batch_size=options.batch_size,
                      callback=_progress_callback(task_index, num_tasks,
                                                  options, start),
                      early_stopping=options.early_stopping)
    if options.callbacks and \
            len(tuner.records) < min(options.trials, len(task.config_space)):
        # The task stopped early; emit a terminal event (done == True) so
        # progress consumers do not wait for the unspent trial budget.
        final = ProgressEvent(task_name=task.name, task_index=task_index,
                              num_tasks=num_tasks, trial=len(tuner.records),
                              total_trials=len(tuner.records),
                              best_time=tuner.best_time,
                              elapsed=time.perf_counter() - start)
        for cb in options.callbacks:
            cb(final)

    # Validate against the compiler's untuned fallback heuristic so that
    # history-based compilation can never regress a build: if the fallback
    # configuration's deterministic estimate beats the tuned one, record the
    # fallback configuration instead.
    estimate, features = _config_stats(task, best)
    config, floored = best, False
    if options.ensure_no_regression and node is not None:
        from ..graph.op_timing import fallback_config_for_node

        fb_time, fb_index = fallback_config_for_node(node, task.target)
        if math.isfinite(fb_time) and fb_time < estimate:
            logger.info("%s: tuned config lost to the fallback heuristic "
                        "(%.3e s vs %.3e s); recording the fallback config",
                        task.name, estimate, fb_time)
            config = task.config_space.get(fb_index)
            features = _config_stats(task, config)[1]
            estimate = fb_time
            floored = True

    entry = database.record(task, config, estimate, features=features)
    if client is not None:
        _service_call("record_best", lambda: client.record_best(entry),
                      False)
    dedup_hits = getattr(measurer, "dedup_hits", 0)
    elapsed = time.perf_counter() - start
    logger.info("%s: %d trials in %.1fs, best %.3e s (%d-config space)%s%s",
                task.name, len(tuner.records), elapsed, estimate,
                len(task.config_space),
                f", warm start {warm_samples}" if warm_samples else "",
                f", {dedup_hits} deduped" if dedup_hits else "")
    return TaskTuningResult(task=task, best_config=config,
                            best_time=tuner.best_time, estimate=estimate,
                            curve=tuner.best_history(),
                            trials=len(tuner.records), elapsed=elapsed,
                            warm_samples=warm_samples, floored=floored,
                            dedup_hits=dedup_hits, pretrained=pretrained)


def _run_session(pairs: Sequence[Tuple[Task, object]], options: TuningOptions,
                 database: Optional[TuningDatabase], target_name: str
                 ) -> TuningReport:
    get_tuner(options.tuner)          # fail loudly before any work
    client, owned_client = _resolve_service(options.service)
    database = database if database is not None else TuningDatabase()
    start = time.perf_counter()
    logger.info("tuning session: %d tasks x %d trials (tuner=%s, target=%s%s)",
                len(pairs), options.trials, options.tuner, target_name,
                ", shared service" if client is not None else "")
    try:
        results = [_tune_one_task(task, node, i, len(pairs), options,
                                  database, client=client)
                   for i, (task, node) in enumerate(pairs)]
        stats = _service_call("stats", client.stats, None) \
            if client is not None else None
    finally:
        if owned_client and client is not None:
            client.close()
    report = TuningReport(results=results, database=database,
                          target_name=target_name, options=options,
                          elapsed=time.perf_counter() - start,
                          service_stats=stats)
    logger.info("tuning session done: %d tasks, %d trials, %.1fs",
                len(report.results), report.total_trials, report.elapsed)
    return report


def autotune(model, target=None, *, trials: Optional[int] = None,
             tuner: Optional[str] = None,
             options: Optional[TuningOptions] = None,
             database: Optional[TuningDatabase] = None,
             params=None, input_shapes=None) -> TuningReport:
    """Extract, tune and record every heavy workload of ``model``.

    Parameters
    ----------
    model:
        Same forms as :func:`repro.compile`: a :class:`~repro.graph.ir.Graph`,
        a frontend model tuple ``(graph, params[, input_shapes])``, or a
        model-zoo name such as ``"resnet-18"``.
    target:
        A :class:`~repro.hardware.target.Target` or a short name
        (``"cuda"``, ``"gpu"``, ``"arm_cpu"``, ``"mali"``, ``"vdla"``).
    trials / tuner:
        Shortcuts overriding the corresponding :class:`TuningOptions` fields.
    options:
        Full session configuration (batch size, early stopping, parallelism,
        seed, callbacks, ...).
    database:
        Existing tuning history to extend; enables transfer-learning warm
        start of the cost model.  A fresh in-memory database by default.
    params / input_shapes:
        Override or supplement whatever the model form provided.

    Returns the :class:`TuningReport`; compile under
    ``report.apply_history_best()`` to use the tuned configurations.
    """
    opts = (options or TuningOptions()).overridden(trials=trials, tuner=tuner)
    graph, resolved = _normalise_model(model, target, params, input_shapes)
    pairs = _extract_task_nodes(graph, resolved)
    return _run_session(pairs, opts, database, resolved.name)


def tune_tasks(tasks: Sequence[Task], options: Optional[TuningOptions] = None,
               database: Optional[TuningDatabase] = None, *,
               trials: Optional[int] = None, tuner: Optional[str] = None,
               seed: Optional[int] = None) -> TuningReport:
    """Tune an explicit list of tasks (no graph extraction).

    The fallback-floor validation of :func:`autotune` is skipped here — with
    no originating graph node there is no untuned build to compare against.
    """
    opts = (options or TuningOptions()).overridden(trials=trials, tuner=tuner,
                                                   seed=seed)
    target_name = tasks[0].target.name if tasks else "?"
    pairs = [(task, None) for task in tasks]
    return _run_session(pairs, opts, database, target_name)
