"""Figure 14: GPU end-to-end evaluation.

TVM vs MXNet vs TensorFlow vs TensorFlow-XLA on ResNet-18, MobileNet,
LSTM LM, DQN and DCGAN (batch 1, simulated Titan X).  The paper reports TVM
speedups of 1.6x-3.8x over the frameworks backed by cuDNN/cuBLAS.
"""

import pytest

from common import (MODEL_BUILDERS, build_model, compile_model, emit_summary, get_target, print_series)
from repro.baselines import MXNetSim, TensorFlowSim, TensorFlowXLASim

MODELS = ["resnet-18", "mobilenet", "lstm-lm", "dqn", "dcgan"]


def _evaluate():
    rows = []
    for model in MODELS:
        module = compile_model(model, "cuda", opt_level=2, tuned=False)
        module_nofuse = compile_model(model, "cuda", opt_level=0, tuned=False)
        entry = {
            "TVM": module.total_time * 1e3,
            "TVM w/o graph opt": module_nofuse.total_time * 1e3,
        }
        for framework in (TensorFlowSim(), TensorFlowXLASim(), MXNetSim()):
            graph, _params, shapes = build_model(model)
            result = framework.run_estimate(graph, shapes)
            entry[framework.name] = result.total_time * 1e3
        rows.append((model, entry))
    return rows


def test_fig14_gpu_end_to_end(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 14: GPU end-to-end inference time (ms)", rows)
    for model, entry in rows:
        best_framework = min(entry["TensorFlow"], entry["MXNet"])
        speedup = best_framework / entry["TVM"]
        benchmark.extra_info[f"{model}_speedup_vs_best_framework"] = round(speedup, 2)
        # TVM should beat the vendor-library frameworks on every model, and
        # graph optimisation should never hurt.
        assert entry["TVM"] < best_framework
        assert entry["TVM"] <= entry["TVM w/o graph opt"] * 1.05
    # DQN has the largest speedup because of its unconventional 4x4 s2 conv.
    speedups = {m: min(e["TensorFlow"], e["MXNet"]) / e["TVM"] for m, e in rows}
    emit_summary("fig14_gpu_e2e", {
        "tvm_ms": {m: round(e["TVM"], 3) for m, e in rows},
        "speedup_vs_best_framework": {m: round(s, 3)
                                      for m, s in speedups.items()}})
    assert speedups["dqn"] >= speedups["resnet-18"]
