"""Tensors, operations, and iteration variables for the tensor expression language.

Mirrors the declarative API shown in Section 4.1 of the paper::

    m, n, h = te.var('m'), te.var('n'), te.var('h')
    A = te.placeholder((m, h), name='A')
    B = te.placeholder((n, h), name='B')
    k = te.reduce_axis((0, h), name='k')
    C = te.compute((m, n), lambda y, x: te.sum(A[k, y] * B[k, x], axis=k))
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .expr import (
    Expr,
    ExprLike,
    IntImm,
    Range,
    Reduce,
    TensorRead,
    Var,
    as_expr,
    collect_vars,
    simplify,
)

__all__ = [
    "IterVar",
    "IterVarType",
    "Tensor",
    "Operation",
    "PlaceholderOp",
    "ComputeOp",
    "ExternOp",
    "placeholder",
    "compute",
    "reduce_axis",
    "var",
    "sum",
    "max",
    "min",
    "thread_axis",
]


class IterVarType:
    """Kinds of iteration variables."""

    DATA_PARALLEL = "data_par"
    REDUCE = "reduce"
    THREAD_INDEX = "thread_index"
    VIRTUAL_THREAD = "vthread"
    UNROLLED = "unrolled"
    VECTORIZED = "vectorized"
    PARALLELIZED = "parallelized"
    TENSORIZED = "tensorized"


class IterVar:
    """An iteration variable with a domain and an iteration kind."""

    _counter = itertools.count()

    def __init__(self, dom: Optional[Range], name: str,
                 iter_type: str = IterVarType.DATA_PARALLEL,
                 thread_tag: str = ""):
        self.dom = dom
        self.var = Var(name, "int32")
        self.iter_type = iter_type
        self.thread_tag = thread_tag
        self.uid = next(IterVar._counter)

    @property
    def name(self) -> str:
        return self.var.name

    @property
    def extent(self) -> Expr:
        if self.dom is None:
            raise ValueError(f"IterVar {self.name} has no domain")
        return self.dom.extent

    def extent_value(self) -> int:
        extent = simplify(self.extent)
        if isinstance(extent, IntImm):
            return extent.value
        raise ValueError(f"IterVar {self.name} has symbolic extent {extent}")

    def __repr__(self) -> str:
        dom = f"{self.dom}" if self.dom is not None else "?"
        tag = f", tag={self.thread_tag}" if self.thread_tag else ""
        return f"IterVar({self.name}: {dom}, {self.iter_type}{tag})"

    # arithmetic convenience so IterVars can appear directly in expressions
    def __add__(self, other: ExprLike) -> Expr:
        return self.var + other

    def __radd__(self, other: ExprLike) -> Expr:
        return as_expr(other) + self.var

    def __sub__(self, other: ExprLike) -> Expr:
        return self.var - other

    def __rsub__(self, other: ExprLike) -> Expr:
        return as_expr(other) - self.var

    def __mul__(self, other: ExprLike) -> Expr:
        return self.var * other

    def __rmul__(self, other: ExprLike) -> Expr:
        return as_expr(other) * self.var

    def __floordiv__(self, other: ExprLike) -> Expr:
        return self.var // other

    def __mod__(self, other: ExprLike) -> Expr:
        return self.var % other


class Tensor:
    """A symbolic multi-dimensional tensor produced by an operation."""

    def __init__(self, shape: Sequence[ExprLike], dtype: str, op: "Operation",
                 value_index: int = 0):
        self.shape = tuple(as_expr(s) for s in shape)
        self.dtype = dtype
        self.op = op
        self.value_index = value_index

    @property
    def name(self) -> str:
        return self.op.name

    @property
    def ndim(self) -> int:
        return len(self.shape)

    def shape_values(self) -> Tuple[int, ...]:
        """Concrete integer shape; raises if any dimension is symbolic."""
        values = []
        for dim in self.shape:
            dim = simplify(dim)
            if not isinstance(dim, IntImm):
                raise ValueError(f"Tensor {self.name} has symbolic dimension {dim}")
            values.append(dim.value)
        return tuple(values)

    def __getitem__(self, indices: Union[ExprLike, Tuple[ExprLike, ...]]) -> TensorRead:
        if not isinstance(indices, tuple):
            indices = (indices,)
        if len(indices) != len(self.shape):
            raise ValueError(
                f"Tensor {self.name} has {len(self.shape)} dimensions, "
                f"got {len(indices)} indices"
            )
        return TensorRead(self, [as_expr(i) for i in indices])

    def __call__(self, *indices: ExprLike) -> TensorRead:
        return self[tuple(indices)]

    def __repr__(self) -> str:
        return f"Tensor({self.name}, shape={self.shape}, dtype={self.dtype})"

    def __hash__(self) -> int:
        return hash((id(self.op), self.value_index))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Tensor)
            and other.op is self.op
            and other.value_index == self.value_index
        )


class Operation:
    """Base class for all operations that produce tensors."""

    def __init__(self, name: str):
        self.name = name

    @property
    def num_outputs(self) -> int:
        return 1

    def output(self, index: int = 0) -> Tensor:
        raise NotImplementedError

    def input_tensors(self) -> List[Tensor]:
        return []

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PlaceholderOp(Operation):
    """An external input tensor."""

    def __init__(self, name: str, shape: Sequence[ExprLike], dtype: str):
        super().__init__(name)
        self.shape = tuple(as_expr(s) for s in shape)
        self.dtype = dtype
        self._output = Tensor(self.shape, dtype, self)

    def output(self, index: int = 0) -> Tensor:
        if index != 0:
            raise IndexError("PlaceholderOp has a single output")
        return self._output


class ComputeOp(Operation):
    """An operation defined by an index expression over output coordinates."""

    def __init__(self, name: str, axis: Sequence[IterVar], body: Expr,
                 shape: Sequence[ExprLike], dtype: str):
        super().__init__(name)
        self.axis = list(axis)
        self.body = body
        self.shape = tuple(as_expr(s) for s in shape)
        self.dtype = dtype
        self._output = Tensor(self.shape, dtype, self)

    @property
    def reduce_axis(self) -> List[IterVar]:
        if isinstance(self.body, Reduce):
            return list(self.body.axis)
        return []

    def output(self, index: int = 0) -> Tensor:
        if index != 0:
            raise IndexError("ComputeOp has a single output")
        return self._output

    def input_tensors(self) -> List[Tensor]:
        tensors: List[Tensor] = []

        def _walk(expr: Expr) -> None:
            if isinstance(expr, TensorRead):
                tensor = expr.tensor
                if isinstance(tensor, Tensor) and tensor not in tensors:
                    tensors.append(tensor)
            from .expr import expr_children

            for child in expr_children(expr):
                _walk(child)

        _walk(self.body)
        return tensors


class ExternOp(Operation):
    """An opaque operation implemented by an external callable on NumPy arrays.

    Used for operators whose lowering is outside the scope of the expression
    language (e.g. ``sort``) and for fused-group kernels in the graph runtime.
    """

    def __init__(self, name: str, inputs: Sequence[Tensor],
                 shape: Sequence[ExprLike], dtype: str,
                 func: Callable[..., np.ndarray]):
        super().__init__(name)
        self.inputs = list(inputs)
        self.shape = tuple(as_expr(s) for s in shape)
        self.dtype = dtype
        self.func = func
        self._output = Tensor(self.shape, dtype, self)

    def output(self, index: int = 0) -> Tensor:
        return self._output

    def input_tensors(self) -> List[Tensor]:
        return list(self.inputs)


# ---------------------------------------------------------------------------
# Public constructors
# ---------------------------------------------------------------------------

_name_counter: Dict[str, int] = {}


def _unique_name(prefix: str) -> str:
    count = _name_counter.get(prefix, 0)
    _name_counter[prefix] = count + 1
    return prefix if count == 0 else f"{prefix}_{count}"


def var(name: str = "v", dtype: str = "int32") -> Var:
    """Create a free symbolic variable."""
    return Var(name, dtype)


def placeholder(shape: Sequence[ExprLike], dtype: str = "float32",
                name: str = "placeholder") -> Tensor:
    """Declare an input tensor."""
    op = PlaceholderOp(_unique_name(name), shape, dtype)
    return op.output(0)


def reduce_axis(dom: Union[Range, Tuple[ExprLike, ExprLike]],
                name: str = "rv") -> IterVar:
    """Create a reduction iteration variable over ``dom``.

    ``dom`` may be a :class:`Range` or a ``(min, extent_end)`` tuple matching
    the paper's ``t.reduce_axis((0, h))`` API (interpreted as ``[min, end)``).
    """
    if isinstance(dom, tuple):
        low, high = dom
        dom = Range(low, simplify(as_expr(high) - as_expr(low)))
    return IterVar(dom, name, IterVarType.REDUCE)


def thread_axis(extent_or_tag: Union[str, Tuple[ExprLike, ExprLike]] = "",
                tag: str = "") -> IterVar:
    """Create a thread index iteration variable (e.g. ``threadIdx.x``)."""
    if isinstance(extent_or_tag, str):
        tag = extent_or_tag
        dom = None
    else:
        low, high = extent_or_tag
        dom = Range(low, simplify(as_expr(high) - as_expr(low)))
    if not tag:
        raise ValueError("thread_axis requires a thread tag such as 'threadIdx.x'")
    iter_type = (IterVarType.VIRTUAL_THREAD if tag.startswith("vthread")
                 else IterVarType.THREAD_INDEX)
    return IterVar(dom, tag, iter_type, thread_tag=tag)


def compute(shape: Sequence[ExprLike], fcompute: Callable[..., ExprLike],
            name: str = "compute", dtype: Optional[str] = None) -> Tensor:
    """Construct a new tensor by computing each element with ``fcompute``."""
    shape = tuple(as_expr(s) for s in shape)
    axis = [IterVar(Range.from_extent(dim), f"i{idx}") for idx, dim in enumerate(shape)]
    body = as_expr(fcompute(*[iv.var for iv in axis]))
    if dtype is None:
        dtype = body.dtype if body.dtype not in ("bool", "handle") else "float32"
    op = ComputeOp(_unique_name(name), axis, body, shape, dtype)
    return op.output(0)


def sum(expr: ExprLike, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:
    """Sum reduction over one or more reduction axes."""
    axes = axis if isinstance(axis, (list, tuple)) else [axis]
    return Reduce("sum", as_expr(expr), list(axes))


def max(expr: ExprLike, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:  # noqa: A001
    """Max reduction over one or more reduction axes."""
    axes = axis if isinstance(axis, (list, tuple)) else [axis]
    return Reduce("max", as_expr(expr), list(axes))


def min(expr: ExprLike, axis: Union[IterVar, Sequence[IterVar]]) -> Reduce:  # noqa: A001
    """Min reduction over one or more reduction axes."""
    axes = axis if isinstance(axis, (list, tuple)) else [axis]
    return Reduce("min", as_expr(expr), list(axes))
