"""Tensor-expression declarations of deep-learning operators.

Each function returns output :class:`~repro.te.tensor.Tensor` objects built
from ``te.compute`` / ``te.placeholder``; scheduling is handled separately by
the per-backend templates in :mod:`repro.topi.schedules`.  Shapes follow the
NCHW layout used throughout the paper's evaluation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

from .. import te
from ..te.expr import Select, as_expr

__all__ = [
    "pad",
    "conv2d_nchw",
    "depthwise_conv2d_nchw",
    "conv2d_transpose_nchw",
    "dense",
    "matmul",
    "bias_add",
    "relu",
    "leaky_relu",
    "sigmoid",
    "tanh",
    "add",
    "multiply",
    "batch_norm_inference",
    "softmax",
    "flatten",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
]

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


def pad(data: te.Tensor, pad_before: Sequence[int], pad_after: Sequence[int],
        pad_value: float = 0.0, name: str = "pad") -> te.Tensor:
    """Zero-pad a tensor (used to implement "SAME" convolution padding)."""
    if len(pad_before) != len(data.shape) or len(pad_after) != len(data.shape):
        raise ValueError("pad_before/pad_after must match tensor rank")
    out_shape = [int(te.simplify(dim).value) + b + a
                 for dim, b, a in zip(data.shape, pad_before, pad_after)]

    def _compute(*indices):
        condition = None
        src_indices = []
        for idx, before, dim in zip(indices, pad_before, data.shape_values()):
            src = idx - before
            src_indices.append(src)
            if before > 0 or out_shape[len(src_indices) - 1] > dim + before:
                check = (src >= 0) if before > 0 else None
                upper = (src < dim)
                for cond in (check, upper):
                    if cond is None:
                        continue
                    condition = cond if condition is None else te.expr.And(condition, cond)
        value = data[tuple(src_indices)]
        if condition is None:
            return value
        return Select(condition, value, as_expr(float(pad_value)))

    return te.compute(out_shape, _compute, name=name)


def conv2d_nchw(data: te.Tensor, kernel: te.Tensor, stride: IntPair = 1,
                padding: IntPair = 0, dilation: IntPair = 1,
                out_dtype: Optional[str] = None,
                name: str = "conv2d") -> te.Tensor:
    """2-D convolution, NCHW data layout, OIHW kernel layout."""
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    dil_h, dil_w = _pair(dilation)
    batch, in_channel, in_h, in_w = data.shape_values()
    out_channel, channel, k_h, k_w = kernel.shape_values()
    if channel != in_channel:
        raise ValueError(f"conv2d channel mismatch: data {in_channel} vs kernel {channel}")
    dilated_kh = (k_h - 1) * dil_h + 1
    dilated_kw = (k_w - 1) * dil_w + 1
    out_h = (in_h + 2 * pad_h - dilated_kh) // stride_h + 1
    out_w = (in_w + 2 * pad_w - dilated_kw) // stride_w + 1
    out_dtype = out_dtype or data.dtype

    if pad_h or pad_w:
        padded = pad(data, (0, 0, pad_h, pad_w), (0, 0, pad_h, pad_w),
                     name=f"{name}_pad")
    else:
        padded = data

    rc = te.reduce_axis((0, in_channel), name="rc")
    ry = te.reduce_axis((0, k_h), name="ry")
    rx = te.reduce_axis((0, k_w), name="rx")
    return te.compute(
        (batch, out_channel, out_h, out_w),
        lambda n, f, y, x: te.sum(
            padded[n, rc, y * stride_h + ry * dil_h, x * stride_w + rx * dil_w]
            * kernel[f, rc, ry, rx],
            axis=[rc, ry, rx]),
        name=name, dtype=out_dtype)


def depthwise_conv2d_nchw(data: te.Tensor, kernel: te.Tensor, stride: IntPair = 1,
                          padding: IntPair = 0,
                          name: str = "depthwise_conv2d") -> te.Tensor:
    """Depthwise 2-D convolution (channel multiplier 1), NCHW layout."""
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    batch, in_channel, in_h, in_w = data.shape_values()
    channel, _multiplier, k_h, k_w = kernel.shape_values()
    if channel != in_channel:
        raise ValueError("depthwise_conv2d channel mismatch")
    out_h = (in_h + 2 * pad_h - k_h) // stride_h + 1
    out_w = (in_w + 2 * pad_w - k_w) // stride_w + 1

    if pad_h or pad_w:
        padded = pad(data, (0, 0, pad_h, pad_w), (0, 0, pad_h, pad_w),
                     name=f"{name}_pad")
    else:
        padded = data

    ry = te.reduce_axis((0, k_h), name="ry")
    rx = te.reduce_axis((0, k_w), name="rx")
    return te.compute(
        (batch, in_channel, out_h, out_w),
        lambda n, c, y, x: te.sum(
            padded[n, c, y * stride_h + ry, x * stride_w + rx] * kernel[c, 0, ry, rx],
            axis=[ry, rx]),
        name=name)


def conv2d_transpose_nchw(data: te.Tensor, kernel: te.Tensor, stride: IntPair = 1,
                          padding: IntPair = 0,
                          name: str = "conv2d_transpose") -> te.Tensor:
    """Transposed convolution (deconvolution) used by the DCGAN generator.

    Declared as a convolution over a zero-dilated, padded input so it stays
    inside the affine index language understood by the lowering pipeline.
    """
    stride_h, stride_w = _pair(stride)
    pad_h, pad_w = _pair(padding)
    batch, in_channel, in_h, in_w = data.shape_values()
    _ic, out_channel, k_h, k_w = kernel.shape_values()
    out_h = (in_h - 1) * stride_h - 2 * pad_h + k_h
    out_w = (in_w - 1) * stride_w - 2 * pad_w + k_w

    # Dilate the input with the stride, then run a unit-stride convolution
    # with a spatially flipped kernel.
    dil_h = in_h + (in_h - 1) * (stride_h - 1)
    dil_w = in_w + (in_w - 1) * (stride_w - 1)
    dilated = te.compute(
        (batch, in_channel, dil_h, dil_w),
        lambda n, c, y, x: Select(
            te.expr.And(te.expr.EQ(y % stride_h, 0), te.expr.EQ(x % stride_w, 0)),
            data[n, c, y // stride_h, x // stride_w], as_expr(0.0)),
        name=f"{name}_dilate")
    border_h = k_h - 1 - pad_h
    border_w = k_w - 1 - pad_w
    padded = pad(dilated, (0, 0, border_h, border_w), (0, 0, border_h, border_w),
                 name=f"{name}_pad")

    rc = te.reduce_axis((0, in_channel), name="rc")
    ry = te.reduce_axis((0, k_h), name="ry")
    rx = te.reduce_axis((0, k_w), name="rx")
    return te.compute(
        (batch, out_channel, out_h, out_w),
        lambda n, f, y, x: te.sum(
            padded[n, rc, y + ry, x + rx] * kernel[rc, f, k_h - 1 - ry, k_w - 1 - rx],
            axis=[rc, ry, rx]),
        name=name)


def matmul(a: te.Tensor, b: te.Tensor, trans_a: bool = False, trans_b: bool = False,
           name: str = "matmul") -> te.Tensor:
    """General matrix multiplication ``C = op(A) x op(B)``."""
    a_shape = a.shape_values()
    b_shape = b.shape_values()
    m = a_shape[1] if trans_a else a_shape[0]
    ka = a_shape[0] if trans_a else a_shape[1]
    kb = b_shape[1] if trans_b else b_shape[0]
    n = b_shape[0] if trans_b else b_shape[1]
    if ka != kb:
        raise ValueError(f"matmul inner dimensions do not match: {ka} vs {kb}")
    k = te.reduce_axis((0, ka), name="k")

    def read_a(i, kk):
        return a[kk, i] if trans_a else a[i, kk]

    def read_b(kk, j):
        return b[j, kk] if trans_b else b[kk, j]

    return te.compute((m, n),
                      lambda i, j: te.sum(read_a(i, k) * read_b(k, j), axis=k),
                      name=name)


def dense(data: te.Tensor, weight: te.Tensor, bias: Optional[te.Tensor] = None,
          name: str = "dense") -> te.Tensor:
    """Fully connected layer: ``out[i, j] = sum_k data[i, k] * weight[j, k]``."""
    batch, in_dim = data.shape_values()
    out_dim, w_in = weight.shape_values()
    if w_in != in_dim:
        raise ValueError("dense dimension mismatch")
    k = te.reduce_axis((0, in_dim), name="k")
    out = te.compute((batch, out_dim),
                     lambda i, j: te.sum(data[i, k] * weight[j, k], axis=k),
                     name=name)
    if bias is not None:
        out = te.compute((batch, out_dim), lambda i, j: out[i, j] + bias[j],
                         name=f"{name}_bias")
    return out


def bias_add(data: te.Tensor, bias: te.Tensor, name: str = "bias_add") -> te.Tensor:
    """Add a per-channel bias to an NCHW tensor."""
    shape = data.shape_values()
    return te.compute(shape, lambda n, c, h, w: data[n, c, h, w] + bias[c], name=name)


def relu(data: te.Tensor, name: str = "relu") -> te.Tensor:
    shape = data.shape_values()
    return te.compute(shape,
                      lambda *idx: te.expr.Max(data[tuple(idx)], as_expr(0.0)),
                      name=name)


def leaky_relu(data: te.Tensor, alpha: float = 0.2, name: str = "leaky_relu") -> te.Tensor:
    shape = data.shape_values()
    return te.compute(
        shape,
        lambda *idx: Select(data[tuple(idx)] > 0, data[tuple(idx)],
                            data[tuple(idx)] * alpha),
        name=name)


def sigmoid(data: te.Tensor, name: str = "sigmoid") -> te.Tensor:
    shape = data.shape_values()
    return te.compute(shape,
                      lambda *idx: te.Call("sigmoid", [data[tuple(idx)]]),
                      name=name)


def tanh(data: te.Tensor, name: str = "tanh") -> te.Tensor:
    shape = data.shape_values()
    return te.compute(shape,
                      lambda *idx: te.Call("tanh", [data[tuple(idx)]]),
                      name=name)


def add(lhs: te.Tensor, rhs: te.Tensor, name: str = "add") -> te.Tensor:
    shape = lhs.shape_values()
    return te.compute(shape, lambda *idx: lhs[tuple(idx)] + rhs[tuple(idx)], name=name)


def multiply(lhs: te.Tensor, rhs: te.Tensor, name: str = "multiply") -> te.Tensor:
    shape = lhs.shape_values()
    return te.compute(shape, lambda *idx: lhs[tuple(idx)] * rhs[tuple(idx)], name=name)


def batch_norm_inference(data: te.Tensor, gamma: te.Tensor, beta: te.Tensor,
                         mean: te.Tensor, variance: te.Tensor,
                         epsilon: float = 1e-5,
                         name: str = "batch_norm") -> te.Tensor:
    """Inference-mode batch normalisation over the channel axis of NCHW data."""
    shape = data.shape_values()
    return te.compute(
        shape,
        lambda n, c, h, w: (data[n, c, h, w] - mean[c])
        / te.Call("sqrt", [variance[c] + epsilon]) * gamma[c] + beta[c],
        name=name)


def softmax(data: te.Tensor, name: str = "softmax") -> te.Tensor:
    """Numerically stable softmax along the last axis of a 2-D tensor."""
    batch, dim = data.shape_values()
    k1 = te.reduce_axis((0, dim), name="k1")
    max_elem = te.compute((batch,), lambda i: te.max(data[i, k1], axis=k1),
                          name=f"{name}_max")
    k2 = te.reduce_axis((0, dim), name="k2")
    expsum = te.compute(
        (batch,), lambda i: te.sum(te.Call("exp", [data[i, k2] - max_elem[i]]), axis=k2),
        name=f"{name}_sum")
    return te.compute(
        (batch, dim),
        lambda i, j: te.Call("exp", [data[i, j] - max_elem[i]]) / expsum[i],
        name=name)


def flatten(data: te.Tensor, name: str = "flatten") -> te.Tensor:
    """Flatten an NCHW tensor to (N, C*H*W)."""
    shape = data.shape_values()
    batch = shape[0]
    inner = 1
    for dim in shape[1:]:
        inner *= dim
    if len(shape) == 2:
        return te.compute(shape, lambda i, j: data[i, j], name=name)
    _, channels, height, width = shape
    return te.compute(
        (batch, inner),
        lambda i, j: data[i, j // (height * width), (j // width) % height, j % width],
        name=name)


def max_pool2d(data: te.Tensor, pool_size: IntPair = 2, stride: IntPair = 2,
               padding: IntPair = 0, name: str = "max_pool2d") -> te.Tensor:
    k_h, k_w = _pair(pool_size)
    s_h, s_w = _pair(stride)
    p_h, p_w = _pair(padding)
    batch, channel, height, width = data.shape_values()
    if p_h or p_w:
        data = pad(data, (0, 0, p_h, p_w), (0, 0, p_h, p_w),
                   pad_value=-1e30, name=f"{name}_pad")
        height += 2 * p_h
        width += 2 * p_w
    out_h = (height - k_h) // s_h + 1
    out_w = (width - k_w) // s_w + 1
    ry = te.reduce_axis((0, k_h), name="ry")
    rx = te.reduce_axis((0, k_w), name="rx")
    return te.compute(
        (batch, channel, out_h, out_w),
        lambda n, c, y, x: te.max(data[n, c, y * s_h + ry, x * s_w + rx], axis=[ry, rx]),
        name=name)


def avg_pool2d(data: te.Tensor, pool_size: IntPair = 2, stride: IntPair = 2,
               padding: IntPair = 0, name: str = "avg_pool2d") -> te.Tensor:
    k_h, k_w = _pair(pool_size)
    s_h, s_w = _pair(stride)
    p_h, p_w = _pair(padding)
    batch, channel, height, width = data.shape_values()
    if p_h or p_w:
        data = pad(data, (0, 0, p_h, p_w), (0, 0, p_h, p_w), name=f"{name}_pad")
        height += 2 * p_h
        width += 2 * p_w
    out_h = (height - k_h) // s_h + 1
    out_w = (width - k_w) // s_w + 1
    ry = te.reduce_axis((0, k_h), name="ry")
    rx = te.reduce_axis((0, k_w), name="rx")
    total = te.compute(
        (batch, channel, out_h, out_w),
        lambda n, c, y, x: te.sum(data[n, c, y * s_h + ry, x * s_w + rx], axis=[ry, rx]),
        name=f"{name}_sum")
    return te.compute((batch, channel, out_h, out_w),
                      lambda n, c, y, x: total[n, c, y, x] / float(k_h * k_w),
                      name=name)


def global_avg_pool2d(data: te.Tensor, name: str = "global_avg_pool2d") -> te.Tensor:
    batch, channel, height, width = data.shape_values()
    ry = te.reduce_axis((0, height), name="ry")
    rx = te.reduce_axis((0, width), name="rx")
    total = te.compute((batch, channel),
                       lambda n, c: te.sum(data[n, c, ry, rx], axis=[ry, rx]),
                       name=f"{name}_sum")
    return te.compute((batch, channel),
                      lambda n, c: total[n, c] / float(height * width), name=name)
