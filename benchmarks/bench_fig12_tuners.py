"""Figure 12: automation methods on a ResNet-18 conv2d operator (C7, Titan X).

Compares the ML-based cost model explorer, a blackbox genetic algorithm and
random search, all relative to the cuDNN baseline, as a function of the
number of measurement trials.  The paper shows the ML-based model finding
better configurations much faster than blackbox methods.

Each method runs through the unified tuning session (``repro.autotune``),
whose per-task trial curves are exactly the data this figure plots.
"""

import pytest

from common import conv_graph, emit_summary, get_target, print_series
import repro
from repro.autotvm import TuningOptions
from repro.baselines import CUDNN_PROFILE, VendorLibrary
from repro.workloads import RESNET_CONV_WORKLOADS

N_TRIALS = 128


def _evaluate():
    target = get_target("cuda")
    c7 = RESNET_CONV_WORKLOADS[6]
    graph = conv_graph(1, c7.in_channels, c7.height, c7.width, c7.out_channels,
                       c7.kernel, c7.stride, c7.padding)
    cudnn = VendorLibrary(CUDNN_PROFILE, target).conv2d_time(
        1, c7.in_channels, c7.height, c7.width, c7.out_channels,
        c7.kernel, c7.stride, c7.padding)

    curves = {}
    best = {}
    for label, tuner in (("ML-based model", "model"),
                         ("Blackbox genetic", "ga"),
                         ("Random search", "random")):
        report = repro.autotune(
            graph, target=target, trials=N_TRIALS, tuner=tuner,
            options=TuningOptions(seed=42, batch_size=8,
                                  ensure_no_regression=False))
        result = report.results[0]
        curves[label] = result.curve
        best[label] = result.best_time
    return cudnn, curves, best


def test_fig12_ml_vs_blackbox(benchmark):
    cudnn, curves, best = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    rows = []
    for trials in (8, 16, 32, 64, N_TRIALS):
        entry = {}
        for label, history in curves.items():
            idx = min(trials, len(history)) - 1
            entry[label] = cudnn / history[idx]        # speedup vs cuDNN
        rows.append((f"{trials} trials", entry))
    print_series("Figure 12: speedup relative to cuDNN vs number of trials", rows,
                 unit="x vs cuDNN")
    for label, value in best.items():
        benchmark.extra_info[f"{label}_final_speedup_vs_cudnn"] = round(cudnn / value, 3)
    emit_summary("fig12_tuners", {
        "final_speedup_vs_cudnn": {label: round(cudnn / value, 3)
                                   for label, value in best.items()}})
    # The ML-guided explorer should end at least as good as random search and
    # in the neighbourhood of cuDNN (paper: surpasses it on this operator).
    assert best["ML-based model"] <= best["Random search"] * 1.15
    assert cudnn / best["ML-based model"] > 0.4
