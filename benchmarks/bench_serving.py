"""Serving benchmark: throughput and latency vs ``max_batch`` (tracked per PR).

Measures ``repro.serve`` on resnet-18/cuda over a pool of simulated GPUs in
several modes and writes ``BENCH_serving.json`` next to this file:

* **sequential** — one blocking client, one device, no engine: the seed-era
  deployment pattern (one request finishes before the next starts).
* **threaded** — the engine with ``max_batch=1``: concurrent requests spread
  across the device pool but never coalesced.
* **batched** — the engine with dynamic batching at several ``max_batch``
  settings: requests coalesce along the batch axis and whole batches
  round-robin across the pool.
* **process / process-batched** — the engine with ``pool="process"``: one
  worker OS process per device over a shared-memory parameter arena, so
  execution escapes the GIL and *wall-clock* throughput can actually scale
  with the device pool (the thread modes above scale only in simulated time).

Throughput is reported in *simulated* time (per-batch kernel estimates — a
batch costs what compiling the model at that batch size estimates, never the
sum of per-request times) alongside host wall-clock observations.  Every
request's output is checked to be bit-identical to a solo execution, a
determinism fingerprint over the timing-independent quantities (single/batch
kernel estimates and an output digest) is recorded so behaviour changes are
visible per commit, and after all runs ``/dev/shm`` is audited for leaked
pool segments.

The process-pool wall-scaling acceptance bound is host-aware: the full
"wall throughput >= 2x threaded and >= sequential" criterion is enforced
only when the host grants >= 4 CPU cores (the CI runners do); on smaller
hosts the bound degrades gracefully and the core count is recorded in the
output so results are interpretable.

Usage::

    python benchmarks/bench_serving.py                    # full run, all modes
    python benchmarks/bench_serving.py --smoke            # CI-sized, enforces
                                                          # the >=3x sim bound
    python benchmarks/bench_serving.py --smoke --pool process
                                                          # CI process-pool job
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

import repro
from repro.runtime import Executor, InferenceEngine
from repro.runtime.procpool import leaked_segments

from common import emit_summary

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_serving.json"

MODEL = "resnet-18"
TARGET = "cuda"
DEVICES = 4                    #: simulated GPU pool round-robined by the engine
BATCH_SIZES = (2, 4, 8)
PROCESS_BATCH = 8              #: max_batch of the process-batched mode
COALESCE_TIMEOUT_MS = 250.0    #: generous window so batches fill deterministically


def _host_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:      # non-Linux
        return os.cpu_count() or 1


def _wall_scaling_bound(cores: int) -> float:
    """Host-aware wall-throughput bound of process vs threaded serving.

    With >= 4 usable cores (one per pool worker — what the CI runners have)
    the worker processes genuinely run in parallel and we demand the full
    2x.  With 2-3 cores partial overlap is possible; on a single core the
    pool cannot beat the GIL-free baseline at all (everything time-slices
    one CPU plus pays IPC), so only correctness is enforced.
    """
    if cores >= 4:
        return 2.0
    if cores >= 2:
        return 1.0
    return 0.0


def _requests(n: int, shape) -> list:
    rng = np.random.default_rng(0)
    return [rng.random(shape).astype("float32") for _ in range(n)]


def run_sequential(module, inputs) -> tuple:
    """One blocking client on one device; returns (row, reference outputs)."""
    executor = Executor(module)
    outputs = []
    start = time.perf_counter()
    for data in inputs:
        outputs.append(executor.run({"data": data}).outputs[0])
    wall = time.perf_counter() - start
    n = len(inputs)
    single = module.total_time
    row = {
        "mode": "sequential", "devices": 1, "max_batch": 1,
        "requests": n,
        "mean_batch_occupancy": 1.0,
        "sim_throughput_rps": 1.0 / single,
        "sim_latency_p50_ms": single * 1e3,
        "sim_latency_p99_ms": single * 1e3,
        "wall_throughput_rps": n / wall,
        "wall_latency_p50_ms": wall / n * 1e3,
        "wall_latency_p99_ms": wall / n * 1e3,
    }
    return row, outputs


def run_engine_mode(module, inputs, mode: str, max_batch: int,
                    reference, pool: str = "thread") -> dict:
    engine = InferenceEngine(module, devices=DEVICES, max_batch=max_batch,
                             timeout_ms=COALESCE_TIMEOUT_MS, pool=pool)
    try:
        # Warm the batch cost model so the first batch doesn't pay the
        # one-off estimation inside its wall-clock window.
        engine.estimated_batch_time(max_batch)
        results = engine.infer_many([{"data": data} for data in inputs],
                                    timeout=600)
    finally:
        engine.shutdown()
    bit_identical = all(np.array_equal(got[0], want)
                        for got, want in zip(results, reference))
    stats = engine.stats()
    sim, wall = stats["simulated"], stats["wall"]
    return {
        "mode": mode, "pool": pool, "devices": DEVICES, "max_batch": max_batch,
        "requests": stats["requests"],
        "batches": stats["batches"],
        "batch_occupancy": stats["batch_occupancy"],
        "mean_batch_occupancy": stats["mean_batch_occupancy"],
        "bit_identical_outputs": bool(bit_identical),
        "sim_throughput_rps": sim["throughput_rps"],
        "sim_latency_p50_ms": sim["latency"]["p50_ms"],
        "sim_latency_p99_ms": sim["latency"]["p99_ms"],
        "wall_throughput_rps": wall["throughput_rps"],
        "wall_latency_p50_ms": wall["latency"]["p50_ms"],
        "wall_latency_p99_ms": wall["latency"]["p99_ms"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per mode (default 64; 32 with --smoke)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: fewer requests, enforce the >=3x "
                             "acceptance bound and the wall-clock budget")
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if the whole benchmark exceeds this many "
                             "seconds (default 420 with --smoke)")
    parser.add_argument("--output", type=Path, default=None,
                        help="output JSON path; --smoke defaults to "
                             "BENCH_serving_smoke.json so the tracked "
                             "full-run numbers are not clobbered")
    parser.add_argument("--pool", choices=("thread", "process", "both"),
                        default="both",
                        help="which engine pools to benchmark (sequential "
                             "and threaded always run as baselines)")
    args = parser.parse_args(argv)
    n_requests = args.requests or (32 if args.smoke else 64)
    budget = args.budget or (420.0 if args.smoke else None)
    output = args.output or (DEFAULT_OUTPUT.with_name("BENCH_serving_smoke.json")
                             if args.smoke else DEFAULT_OUTPUT)

    suite_start = time.perf_counter()
    print(f"Compiling {MODEL} for {TARGET} ...")
    module = repro.compile(MODEL, target=TARGET)
    shape = next(spec.shape for spec in Executor(module).input_specs)
    inputs = _requests(n_requests, shape)

    print(f"sequential: {n_requests} requests on 1 device ...")
    sequential, reference = run_sequential(module, inputs)
    rows = [sequential]
    print(f"  sim {sequential['sim_throughput_rps']:.0f} rps")

    print(f"threaded:   {n_requests} requests, {DEVICES} devices, "
          f"max_batch=1 ...")
    threaded = run_engine_mode(module, inputs, "threaded", 1, reference)
    rows.append(threaded)
    print(f"  sim {threaded['sim_throughput_rps']:.0f} rps, "
          f"wall {threaded['wall_throughput_rps']:.1f} rps")

    if args.pool in ("thread", "both"):
        for max_batch in BATCH_SIZES:
            print(f"batched:    {n_requests} requests, {DEVICES} devices, "
                  f"max_batch={max_batch} ...")
            rows.append(run_engine_mode(module, inputs, "batched", max_batch,
                                        reference))
            print(f"  sim {rows[-1]['sim_throughput_rps']:.0f} rps, occupancy "
                  f"{rows[-1]['mean_batch_occupancy']:.2f}")

    process_row = None
    if args.pool in ("process", "both"):
        print(f"process:    {n_requests} requests, {DEVICES} worker "
              f"processes, max_batch=1 ...")
        process_row = run_engine_mode(module, inputs, "process", 1,
                                      reference, pool="process")
        rows.append(process_row)
        print(f"  sim {process_row['sim_throughput_rps']:.0f} rps, "
              f"wall {process_row['wall_throughput_rps']:.1f} rps")
        print(f"process-batched: {n_requests} requests, {DEVICES} worker "
              f"processes, max_batch={PROCESS_BATCH} ...")
        rows.append(run_engine_mode(module, inputs, "process-batched",
                                    PROCESS_BATCH, reference, pool="process"))
        print(f"  sim {rows[-1]['sim_throughput_rps']:.0f} rps, "
              f"wall {rows[-1]['wall_throughput_rps']:.1f} rps")

    base = sequential["sim_throughput_rps"]
    for row in rows:
        row["sim_speedup_vs_sequential"] = row["sim_throughput_rps"] / base
        row["wall_speedup_vs_sequential"] = (row["wall_throughput_rps"]
                                             / sequential["wall_throughput_rps"])

    # Timing-independent determinism fingerprint: kernel estimates at each
    # batch size plus a digest of the first request's output.
    batch_estimates = {"1": module.total_time}
    probe = InferenceEngine(module, devices=1, max_batch=max(BATCH_SIZES))
    try:
        for size in BATCH_SIZES:
            batch_estimates[str(size)] = probe.estimated_batch_time(size)
    finally:
        probe.shutdown()
    digest = hashlib.sha256()
    digest.update(reference[0].tobytes())
    digest.update(json.dumps(batch_estimates, sort_keys=True).encode())
    fingerprint = digest.hexdigest()

    acceptance = {}
    batched8 = next((r for r in rows
                     if r["mode"] == "batched" and r["max_batch"] == 8), None)
    if batched8 is not None:
        acceptance["batching"] = {
            "criterion": "serve(max_batch=8) >= 3x sequential simulated "
                         "throughput on resnet-18/gpu with bit-identical "
                         "outputs",
            "sim_speedup": batched8["sim_speedup_vs_sequential"],
            "bit_identical_outputs": batched8["bit_identical_outputs"],
            "passed": bool(batched8["sim_speedup_vs_sequential"] >= 3.0
                           and batched8["bit_identical_outputs"]),
        }
    cores = _host_cores()
    if process_row is not None:
        bound = _wall_scaling_bound(cores)
        wall_vs_threaded = (process_row["wall_throughput_rps"]
                            / max(threaded["wall_throughput_rps"], 1e-12))
        wall_vs_sequential = process_row["wall_speedup_vs_sequential"]
        scaled = (wall_vs_threaded >= bound
                  and (wall_vs_sequential >= 1.0 if cores >= 4 else True))
        acceptance["process_pool"] = {
            "criterion": f"pool='process' over {DEVICES} workers: wall "
                         f"throughput >= {bound:.1f}x threaded "
                         f"(host-aware; full 2x + >= sequential needs >= 4 "
                         f"cores), bit-identical outputs",
            "host_cores": cores,
            "wall_bound": bound,
            "wall_vs_threaded": wall_vs_threaded,
            "wall_vs_sequential": wall_vs_sequential,
            "bit_identical_outputs": process_row["bit_identical_outputs"],
            "passed": bool(scaled and process_row["bit_identical_outputs"]),
        }
    leaked = leaked_segments()
    acceptance["shm_leaks"] = {
        "criterion": "no repro-pp-* segment left in /dev/shm after all "
                     "engine shutdowns",
        "leaked_segments": leaked,
        "passed": not leaked,
    }
    elapsed = time.perf_counter() - suite_start

    results = {
        "suite": "serving",
        "model": MODEL,
        "target": TARGET,
        "requests_per_mode": n_requests,
        "coalesce_timeout_ms": COALESCE_TIMEOUT_MS,
        "smoke": bool(args.smoke),
        "python": platform.python_version(),
        "host_cores": cores,
        "rows": rows,
        "batch_time_estimates_s": batch_estimates,
        "acceptance": acceptance,
        "determinism_fingerprint": fingerprint,
        "elapsed_s": elapsed,
    }
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nWrote {output}")
    for name, check in acceptance.items():
        print(f"acceptance[{name}]: "
              f"{'PASS' if check['passed'] else 'FAIL'}")
    emit_summary("serving", {
        "modes": {row["mode"]: {
            "wall_rps": round(row["wall_throughput_rps"], 2),
            "sim_rps": round(row["sim_throughput_rps"], 2),
            "wall_p99_ms": round(row["wall_latency_p99_ms"], 2),
            "sim_p99_ms": round(row["sim_latency_p99_ms"], 2),
        } for row in rows},
        "host_cores": cores,
        "fingerprint": fingerprint[:16],
        "passed": all(check["passed"] for check in acceptance.values()),
        "elapsed_s": round(elapsed, 1),
    })

    if not all(check["passed"] for check in acceptance.values()):
        print("FAIL: acceptance criterion not met", file=sys.stderr)
        return 1
    if budget is not None and elapsed > budget:
        print(f"FAIL: exceeded wall-clock budget ({elapsed:.1f}s > "
              f"{budget:.0f}s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
