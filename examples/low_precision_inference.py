"""Ultra low-precision (bit-serial) convolution on the embedded CPU (Section 6.2).

The paper demonstrates TVM generating 2-bit-activation / 1-bit-weight
convolution kernels that outperform a hand-optimized baseline by using a
tensorized bit-serial micro-kernel plus multi-threading (Figure 18).  This
example walks one ResNet layer through that flow:

1. declare the packed bit-serial convolution with the tensor expression API,
2. schedule it with the tensorized ARM micro-kernel, single- and multi-threaded,
3. estimate latency on the simulated Cortex A53 and compare against the
   simulated Caffe2 ultra-low-precision baseline,
4. check numerical equivalence of the bit-serial algorithm against the
   quantised NumPy reference.

Run:  python examples/low_precision_inference.py
"""

import numpy as np

from repro import tir
from repro.autotvm.space import ConfigSpace
from repro.baselines import CAFFE2_ULP_PROFILE, VendorLibrary
from repro.hardware import arm_cpu
from repro.topi import reference
from repro.topi.bitserial import bitserial_conv2d_packed
from repro.topi.schedules.cpu import bitserial_conv2d_cpu_template
from repro.workloads import RESNET_CONV_WORKLOADS


def estimate(workload, target, parallel: bool) -> float:
    """Simulated latency of the TVM bit-serial kernel for one workload."""
    data, weight, out = bitserial_conv2d_packed(
        1, workload.in_channels, workload.height, workload.width,
        workload.out_channels, workload.kernel, workload.stride,
        workload.padding, activation_bits=2, weight_bits=1)
    schedule, tensors = bitserial_conv2d_cpu_template(
        ConfigSpace(), data, weight, out, use_tensorize=True,
        use_parallel=parallel)
    func = tir.lower(schedule, tensors, name=f"bitserial_{workload.name}")
    return target.model.estimate(tir.extract_features(func))


def check_numerics() -> float:
    """Bit-serial conv must agree with the quantised floating-point reference."""
    rng = np.random.default_rng(0)
    data = rng.random((1, 8, 10, 10)).astype("float32")
    kernel = rng.random((4, 8, 3, 3)).astype("float32")
    quantised = reference.bitserial_conv2d_nchw(data, kernel, stride=1, padding=1,
                                                activation_bits=2, weight_bits=1)
    return float(np.abs(quantised).mean())


def main() -> None:
    target = arm_cpu()
    caffe2 = VendorLibrary(CAFFE2_ULP_PROFILE, target, single_threaded=True)

    print("2-bit activation / 1-bit weight conv2d on the simulated Cortex A53")
    print(f"{'layer':<6}{'baseline ms':>14}{'TVM 1-thread ms':>18}"
          f"{'TVM 4-thread ms':>18}{'speedup (1t)':>14}")
    for workload in (RESNET_CONV_WORKLOADS[1], RESNET_CONV_WORKLOADS[4],
                     RESNET_CONV_WORKLOADS[7]):
        baseline = caffe2.bitserial_conv2d_time(
            1, workload.in_channels, workload.height, workload.width,
            workload.out_channels, workload.kernel, workload.stride,
            workload.padding, activation_bits=2, weight_bits=1)
        single = estimate(workload, target, parallel=False)
        multi = estimate(workload, target, parallel=True)
        print(f"{workload.name:<6}{baseline * 1e3:>14.3f}{single * 1e3:>18.3f}"
              f"{multi * 1e3:>18.3f}{baseline / single:>14.2f}x")

    magnitude = check_numerics()
    print(f"\nbit-serial == quantised reference (mean |output| {magnitude:.3f})")


if __name__ == "__main__":
    main()
