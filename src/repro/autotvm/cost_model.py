"""ML-based cost models (paper Section 5.2, Figure 13, Table 1).

Two models are provided, mirroring the paper's design space:

* :class:`GradientBoostedTrees` — the default: gradient-boosted regression
  trees over loop-program features, trained with either a squared-error or a
  pairwise **rank** objective (the paper's choice, since the explorer only
  needs the relative order of candidates).  XGBoost itself is unavailable
  offline, so the trees and the boosting loop are implemented here.
* :class:`NeuralCostModel` — a small multi-layer perceptron standing in for
  the TreeRNN alternative the paper evaluates (similar quality, slower).

The explorer scores thousands of candidates per tuning round, so the hot
paths are vectorized: fitted trees are flattened into numpy node arrays for
batch prediction, the CART split search runs on sorted cumulative sums, and
the pairwise rank gradient samples its comparison pairs in bulk.  Each fast
path has a retained per-row reference implementation (``reference=True`` /
the ``*_reference`` methods) and produces **bit-identical** results — the
vectorization must never change which configuration the tuner picks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RegressionTree", "GradientBoostedTrees", "NeuralCostModel", "rank_correlation"]


class RegressionTree:
    """A CART-style regression tree fitted to (features, residuals).

    ``fit`` builds the usual nested-dict tree (kept as ``tree_`` for
    introspection) and flattens it into parallel node arrays; ``predict``
    advances all query rows level-by-level through those arrays instead of
    walking the dict per row.  With ``reference=True`` both fitting and
    prediction use the retained scalar implementations.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 2,
                 max_thresholds: int = 8, reference: bool = False):
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_thresholds = max_thresholds
        self.reference = reference
        self.tree_: Optional[dict] = None
        self._flat: Optional[Tuple[np.ndarray, ...]] = None
        self._quantile_fractions = np.linspace(0.1, 0.9, max_thresholds)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self.tree_ = self._build(x, y, depth=0)
        self._flat = self._flatten(self.tree_)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> dict:
        # y.sum()/n and the explicit squared-deviation sum reproduce
        # np.mean/np.var bit-for-bit (same pairwise reduction, same divide)
        # without their per-call wrapper overhead.
        n = len(y)
        mean = y.sum() / n if n else 0.0
        node = {"value": float(mean) if n else 0.0}
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf:
            return node
        deviation = y - mean
        sq_deviation = deviation * deviation
        if float(sq_deviation.sum() / n) < 1e-12:
            return node
        split = (self._best_split_reference if self.reference
                 else self._best_split)
        best = split(x, y)
        if best is None:
            return node
        feature, threshold, mask = best
        node.update({
            "feature": feature,
            "threshold": threshold,
            "left": self._build(x[mask], y[mask], depth + 1),
            "right": self._build(x[~mask], y[~mask], depth + 1),
        })
        return node

    # -- split search -------------------------------------------------------------
    def _threshold_candidates(self, column: np.ndarray) -> Optional[np.ndarray]:
        """Candidate thresholds for one feature column (reference form)."""
        unique = np.unique(column)
        if len(unique) < 2:
            return None
        if len(unique) > self.max_thresholds:
            return np.quantile(unique,
                               np.linspace(0.1, 0.9, self.max_thresholds))
        return (unique[:-1] + unique[1:]) / 2.0

    def _best_split_reference(self, x: np.ndarray, y: np.ndarray):
        """Retained reference: re-scan the sample set per threshold."""
        n_samples, n_features = x.shape
        base_error = float(np.sum((y - y.mean()) ** 2))
        best_gain = 1e-9
        best = None
        for feature in range(n_features):
            column = x[:, feature]
            candidates = self._threshold_candidates(column)
            if candidates is None:
                continue
            for threshold in candidates:
                mask = column <= threshold
                left, right = y[mask], y[~mask]
                if len(left) < self.min_samples_leaf or len(right) < self.min_samples_leaf:
                    continue
                error = float(np.sum((left - left.mean()) ** 2)
                              + np.sum((right - right.mean()) ** 2))
                gain = base_error - error
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        return best

    def _best_split(self, x: np.ndarray, y: np.ndarray):
        """Sorted cumulative-sum split finder.

        For each feature the per-threshold left/right sums of ``y`` and
        ``y**2`` come from one sort + cumsum instead of a boolean-mask rescan
        per threshold.  Because the cumulative sums round differently than
        the reference's per-side ``np.sum``, the handful of candidates whose
        approximate gain is within a tolerance of the best are re-evaluated
        with the exact reference arithmetic — so the selected split (and the
        fitted tree) is bit-identical to ``_best_split_reference``, at the
        cumsum scan's speed.
        """
        n_samples, n_features = x.shape
        base_error = float(np.sum((y - y.mean()) ** 2))
        min_leaf = self.min_samples_leaf
        max_t = self.max_thresholds
        fractions = self._quantile_fractions
        # One bulk sort/cumsum pass over every feature column.
        orders = np.argsort(x, axis=0, kind="stable")
        sorted_cols = np.take_along_axis(x, orders, axis=0)
        ys = y[orders]
        cum = np.cumsum(ys, axis=0)
        cum_sq = np.cumsum(ys * ys, axis=0)
        keep = np.empty_like(sorted_cols, dtype=bool)
        keep[0, :] = True
        np.not_equal(sorted_cols[1:], sorted_cols[:-1], out=keep[1:])
        n_unique = keep.sum(axis=0)
        total, total_sq = cum[-1], cum_sq[-1]

        # Flat per-feature unique values and their first-occurrence rows:
        # uvals[offsets[f] + j] is the j-th unique of feature f, and
        # u_starts[offsets[f] + j] is where its run starts in sorted order.
        keep_t = keep.T
        uvals = sorted_cols.T[keep_t]
        u_starts = np.nonzero(keep_t)[1]
        offsets = np.zeros(n_features, dtype=np.int64)
        np.cumsum(n_unique[:-1], out=offsets[1:])

        def run_start(feature_offsets, unique_index, counts):
            """Row where the ``unique_index``-th run starts (n for one-past)."""
            clipped = np.minimum(unique_index, counts)
            past_end = unique_index >= counts
            idx = feature_offsets + np.where(past_end, 0, clipped)
            return np.where(past_end, n_samples, u_starts[idx])

        def candidate_block(feature_ids, cand, below, above, counts):
            """(valid, approx_gain, n_left) for a (features x candidates)
            block; ``below``/``above`` index each candidate's bracketing
            uniques so the left-count comes from run starts instead of a
            per-feature searchsorted."""
            offs = offsets[feature_ids][:, None]
            a = uvals[offs + below]
            b = uvals[offs + above]
            # Rows with column <= candidate.  The candidate normally lies
            # strictly between its bracketing uniques, but interpolation may
            # round it onto either endpoint — adjust the run index to keep
            # searchsorted(side="right") semantics.
            next_unique = below + 1 + (cand >= b).astype(np.int64) \
                - (cand < a).astype(np.int64)
            n_left = run_start(offs, next_unique, counts[:, None])
            n_right = n_samples - n_left
            valid = (n_left >= min_leaf) & (n_right >= min_leaf)
            safe_left = np.where(n_left > 0, n_left, 1)
            left_sum = cum[safe_left - 1, feature_ids[:, None]]
            left_sq = cum_sq[safe_left - 1, feature_ids[:, None]]
            left_sum = np.where(n_left > 0, left_sum, 0.0)
            left_sq = np.where(n_left > 0, left_sq, 0.0)
            err = ((left_sq - left_sum ** 2 / np.where(valid, n_left, 1))
                   + ((total_sq[feature_ids][:, None] - left_sq)
                      - (total[feature_ids][:, None] - left_sum) ** 2
                      / np.where(valid, n_right, 1)))
            return valid, base_error - err, n_left

        shortlists = []     # (feature_ids, candidates, valid, approx_gain)
        with np.errstate(invalid="ignore", divide="ignore"):
            quantile_ids = np.nonzero(n_unique > max_t)[0]
            if len(quantile_ids):
                counts = n_unique[quantile_ids]
                virtual = fractions[None, :] * (counts[:, None] - 1)
                below = np.floor(virtual).astype(np.int64)
                above = np.minimum(below + 1, counts[:, None] - 1)
                gamma = virtual - below
                offs = offsets[quantile_ids][:, None]
                a = uvals[offs + below]
                b = uvals[offs + above]
                diff = b - a
                cand = np.where(gamma >= 0.5,
                                b - diff * (1 - gamma), a + diff * gamma)
                shortlists.append((quantile_ids, cand)
                                  + candidate_block(quantile_ids, cand,
                                                    below, above, counts)[:2])
            midpoint_ids = np.nonzero((n_unique >= 2) & (n_unique <= max_t))[0]
            if len(midpoint_ids):
                counts = n_unique[midpoint_ids]
                width = int(counts.max()) - 1
                j = np.arange(width)[None, :]
                in_range = j < (counts[:, None] - 1)
                below = np.where(in_range, j, 0)
                above = below + np.where(in_range, 1, 0)
                offs = offsets[midpoint_ids][:, None]
                cand = (uvals[offs + below] + uvals[offs + above]) / 2.0
                valid, gain, _n_left = candidate_block(midpoint_ids, cand,
                                                       below, above, counts)
                shortlists.append((midpoint_ids, cand,
                                   valid & in_range, gain))

        if not shortlists:
            return None

        # Decide the winner exactly.  The cumulative-sum errors round
        # differently than the reference's per-side sums, so every candidate
        # whose approximate gain is within tolerance of the best is
        # re-evaluated with the exact reference arithmetic, in the
        # reference's (feature, candidate) iteration order.
        tol = float(np.max(np.abs(total_sq))) * 1e-8 + base_error * 1e-8 + 1e-8
        approx_best = max(float(gain[valid].max()) if valid.any() else -np.inf
                          for _ids, _cand, valid, gain in shortlists)
        cutoff = max(approx_best - 2 * tol, 1e-9 - tol)
        entries = []
        for feature_ids, cand, valid, gain in shortlists:
            for row, col in zip(*np.nonzero(valid & (gain > cutoff))):
                entries.append((int(feature_ids[row]), int(col),
                                float(cand[row, col])))
        entries.sort()
        best_gain = 1e-9
        best = None
        for feature, _col, threshold in entries:
            column = x[:, feature]
            mask = column <= threshold
            left, right = y[mask], y[~mask]
            if len(left) < min_leaf or len(right) < min_leaf:
                continue
            error = float(np.sum((left - left.mean()) ** 2)
                          + np.sum((right - right.mean()) ** 2))
            gain = base_error - error
            if gain > best_gain:
                best_gain = gain
                best = (feature, float(threshold), mask)
        return best

    # -- prediction ---------------------------------------------------------------
    @staticmethod
    def _flatten(tree: dict) -> Tuple[np.ndarray, ...]:
        """Flatten the dict tree into (feature, threshold, left, right, value)
        arrays; leaves carry feature ``-1``."""
        feature: List[int] = []
        threshold: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[float] = []

        def add(node: dict) -> int:
            slot = len(feature)
            feature.append(-1)
            threshold.append(0.0)
            left.append(-1)
            right.append(-1)
            value.append(node["value"])
            if "feature" in node:
                feature[slot] = node["feature"]
                threshold[slot] = node["threshold"]
                left[slot] = add(node["left"])
                right[slot] = add(node["right"])
            return slot

        add(tree)
        return (np.asarray(feature, dtype=np.int64),
                np.asarray(threshold, dtype=np.float64),
                np.asarray(left, dtype=np.int64),
                np.asarray(right, dtype=np.int64),
                np.asarray(value, dtype=np.float64))

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.tree_ is None:
            return np.zeros(len(x))
        if self.reference or self._flat is None:
            return self.predict_reference(x)
        feature, threshold, left, right, value = self._flat
        x = np.asarray(x)
        node = np.zeros(len(x), dtype=np.int64)
        while True:
            feat = feature[node]
            internal = feat >= 0
            if not internal.any():
                break
            rows = np.nonzero(internal)[0]
            feats = feat[rows]
            go_left = x[rows, feats] <= threshold[node[rows]]
            node[rows] = np.where(go_left, left[node[rows]], right[node[rows]])
        return value[node]

    def predict_reference(self, x: np.ndarray) -> np.ndarray:
        """Retained reference: walk the dict tree per row."""
        if self.tree_ is None:
            return np.zeros(len(x))
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self.tree_
            while "feature" in node:
                node = node["left"] if row[node["feature"]] <= node["threshold"] \
                    else node["right"]
            out[i] = node["value"]
        return out

    # -- serialization ------------------------------------------------------------
    def to_spec(self) -> dict:
        """JSON-able snapshot of the fitted tree (plain ints/floats only)."""
        return {"max_depth": self.max_depth,
                "min_samples_leaf": self.min_samples_leaf,
                "max_thresholds": self.max_thresholds,
                "tree": self.tree_}

    @classmethod
    def from_spec(cls, spec: dict) -> "RegressionTree":
        tree = cls(max_depth=spec["max_depth"],
                   min_samples_leaf=spec["min_samples_leaf"],
                   max_thresholds=spec["max_thresholds"])
        tree.tree_ = spec["tree"]
        if tree.tree_ is not None:
            tree._flat = tree._flatten(tree.tree_)
        return tree


class GradientBoostedTrees:
    """Gradient tree boosting with squared-error or pairwise rank objectives."""

    def __init__(self, num_rounds: int = 40, learning_rate: float = 0.15,
                 max_depth: int = 4, loss: str = "rank", num_pairs: int = 4,
                 seed: int = 0, reference: bool = False):
        if loss not in ("reg", "rank"):
            raise ValueError("loss must be 'reg' or 'rank'")
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.loss = loss
        self.num_pairs = num_pairs
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.reference = reference
        self.trees: List[RegressionTree] = []
        self.base_score = 0.0
        self._stacked: Optional[Tuple] = None

    # -- training ----------------------------------------------------------------
    def fit(self, features: np.ndarray, throughputs: np.ndarray) -> "GradientBoostedTrees":
        """Fit the model.  ``throughputs`` are scores where larger is better
        (the tuner passes normalised 1/time)."""
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(throughputs, dtype=np.float64)
        self.trees = []
        self._stacked = None
        self.base_score = float(np.mean(y)) if len(y) else 0.0
        if len(y) < 4:
            return self
        gradient_fn = (self._negative_gradient_reference if self.reference
                       else self._negative_gradient)
        pred = np.full(len(y), self.base_score)
        for _ in range(self.num_rounds):
            gradient = gradient_fn(y, pred)
            tree = RegressionTree(max_depth=self.max_depth,
                                  reference=self.reference)
            tree.fit(x, gradient)
            update = tree.predict(x)
            pred += self.learning_rate * update
            self.trees.append(tree)
        self._stack_trees()
        return self

    def _stack_trees(self) -> None:
        """Concatenate every fitted tree's node arrays so one ``predict``
        descends all trees in lock-step instead of looping per tree."""
        self._stacked = None
        if self.reference or not self.trees \
                or any(t._flat is None for t in self.trees):
            return
        roots: List[int] = []
        feats: List[np.ndarray] = []
        ths: List[np.ndarray] = []
        lefts: List[np.ndarray] = []
        rights: List[np.ndarray] = []
        values: List[np.ndarray] = []
        offset = 0
        for tree in self.trees:
            feature, threshold, left, right, value = tree._flat
            roots.append(offset)
            feats.append(feature)
            ths.append(threshold)
            lefts.append(np.where(left >= 0, left + offset, left))
            rights.append(np.where(right >= 0, right + offset, right))
            values.append(value)
            offset += len(feature)
        self._stacked = (np.asarray(roots, dtype=np.int64),
                         np.concatenate(feats), np.concatenate(ths),
                         np.concatenate(lefts), np.concatenate(rights),
                         np.concatenate(values),
                         max(t.max_depth for t in self.trees))

    def _negative_gradient_reference(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        """Retained reference: per-pair Python loop."""
        if self.loss == "reg":
            return y - pred
        # Pairwise logistic rank loss (LambdaRank-style, unweighted): for a
        # pair (i, j) with y_i > y_j the loss is log(1 + exp(pred_j - pred_i)).
        grad = np.zeros_like(pred)
        n = len(y)
        for i in range(n):
            for _ in range(self.num_pairs):
                j = int(self.rng.integers(0, n))
                if i == j or y[i] == y[j]:
                    continue
                if y[i] > y[j]:
                    better, worse = i, j
                else:
                    better, worse = j, i
                margin = pred[better] - pred[worse]
                weight = 1.0 / (1.0 + math.exp(margin))
                grad[better] += weight
                grad[worse] -= weight
        return grad

    def _negative_gradient(self, y: np.ndarray, pred: np.ndarray) -> np.ndarray:
        """Vectorized pairwise rank gradient.

        The comparison partners are sampled in one bulk ``integers`` draw
        (which consumes the generator stream exactly like the reference's
        per-pair draws), pair orientation and margins are computed with
        array ops, and the ±weight updates are applied with a single ordered
        ``np.add.at`` so repeated indices accumulate in the reference's
        chronological order.  ``math.exp`` is kept for the per-pair weight —
        ``np.exp`` rounds the last bit differently on some platforms, and the
        tuner's choices must not depend on which implementation ran.
        """
        if self.loss == "reg":
            return y - pred
        grad = np.zeros_like(pred)
        n = len(y)
        j = self.rng.integers(0, n, size=(n, self.num_pairs))
        i = np.broadcast_to(np.arange(n)[:, None], j.shape)
        valid = (j != i) & (y[i] != y[j])
        i_valid, j_valid = i[valid], j[valid]
        if len(i_valid) == 0:
            return grad
        first_better = y[i_valid] > y[j_valid]
        better = np.where(first_better, i_valid, j_valid)
        worse = np.where(first_better, j_valid, i_valid)
        margins = pred[better] - pred[worse]
        weights = np.array([1.0 / (1.0 + math.exp(m)) for m in margins])
        # Interleave (+better, -worse) per pair so duplicate indices add up
        # in the same order as the reference loop (float addition is not
        # associative).
        indices = np.empty(2 * len(better), dtype=np.int64)
        indices[0::2] = better
        indices[1::2] = worse
        signed = np.empty(2 * len(weights))
        signed[0::2] = weights
        signed[1::2] = -weights
        np.add.at(grad, indices, signed)
        return grad

    # -- serialization ------------------------------------------------------------
    def to_spec(self) -> dict:
        """JSON-able snapshot of the fitted ensemble.

        A model fitted on one host and restored on another via
        :meth:`from_spec` predicts **bit-identically** (prediction only reads
        the tree node arrays, the base score and the learning rate) — this is
        how the tuning service ships its pretrained cost model to clients.
        """
        return {"kind": "gbt", "num_rounds": self.num_rounds,
                "learning_rate": self.learning_rate,
                "max_depth": self.max_depth, "loss": self.loss,
                "num_pairs": self.num_pairs, "seed": self.seed,
                "base_score": self.base_score,
                "trees": [tree.to_spec() for tree in self.trees]}

    @classmethod
    def from_spec(cls, spec: dict) -> "GradientBoostedTrees":
        model = cls(num_rounds=spec["num_rounds"],
                    learning_rate=spec["learning_rate"],
                    max_depth=spec["max_depth"], loss=spec["loss"],
                    num_pairs=spec["num_pairs"], seed=spec["seed"])
        model.base_score = spec["base_score"]
        model.trees = [RegressionTree.from_spec(s) for s in spec["trees"]]
        model._stack_trees()
        return model

    # -- inference ----------------------------------------------------------------
    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        stacked = getattr(self, "_stacked", None)
        if stacked is None:
            pred = np.full(len(x), self.base_score)
            for tree in self.trees:
                pred += self.learning_rate * tree.predict(x)
            return pred
        roots, feature, threshold, left, right, value, depth = stacked
        n = len(x)
        node = np.broadcast_to(roots, (n, len(roots))).copy()
        for _ in range(depth + 1):
            feat = feature[node]
            internal = feat >= 0
            if not internal.any():
                break
            vals = np.take_along_axis(x, np.where(internal, feat, 0), axis=1)
            go_left = vals <= threshold[node]
            node = np.where(internal,
                            np.where(go_left, left[node], right[node]), node)
        # Accumulate per tree in the reference order (float addition is not
        # associative, and the explorer compares the resulting scores).
        leaf = value[node]
        pred = np.full(n, self.base_score)
        for t in range(leaf.shape[1]):
            pred += self.learning_rate * leaf[:, t]
        return pred


class NeuralCostModel:
    """A small MLP trained on loop-program features (TreeRNN stand-in)."""

    def __init__(self, hidden: int = 32, epochs: int = 150, learning_rate: float = 1e-2,
                 seed: int = 0):
        self.hidden = hidden
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.rng = np.random.default_rng(seed)
        self._weights: Optional[Tuple[np.ndarray, ...]] = None
        self._norm: Tuple[np.ndarray, np.ndarray] = (np.zeros(1), np.ones(1))

    def fit(self, features: np.ndarray, throughputs: np.ndarray) -> "NeuralCostModel":
        x = np.asarray(features, dtype=np.float64)
        y = np.asarray(throughputs, dtype=np.float64)
        if len(y) < 4:
            self._weights = None
            return self
        mean, std = x.mean(axis=0), x.std(axis=0) + 1e-8
        self._norm = (mean, std)
        xn = (x - mean) / std
        n_features = x.shape[1]
        w1 = self.rng.normal(0, 0.3, size=(n_features, self.hidden))
        b1 = np.zeros(self.hidden)
        w2 = self.rng.normal(0, 0.3, size=(self.hidden, 1))
        b2 = np.zeros(1)
        lr = self.learning_rate
        target = (y - y.mean()) / (y.std() + 1e-8)
        for _ in range(self.epochs):
            hidden = np.tanh(xn @ w1 + b1)
            out = (hidden @ w2 + b2).ravel()
            err = out - target
            grad_out = 2 * err[:, None] / len(y)
            grad_w2 = hidden.T @ grad_out
            grad_b2 = grad_out.sum(axis=0)
            grad_hidden = grad_out @ w2.T * (1 - hidden ** 2)
            grad_w1 = xn.T @ grad_hidden
            grad_b1 = grad_hidden.sum(axis=0)
            w1 -= lr * grad_w1
            b1 -= lr * grad_b1
            w2 -= lr * grad_w2
            b2 -= lr * grad_b2
        self._weights = (w1, b1, w2, b2)
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=np.float64)
        if x.ndim == 1:
            x = x[None, :]
        if self._weights is None:
            return np.zeros(len(x))
        mean, std = self._norm
        xn = (x - mean) / std
        w1, b1, w2, b2 = self._weights
        hidden = np.tanh(xn @ w1 + b1)
        return (hidden @ w2 + b2).ravel()


def rank_correlation(predicted: Sequence[float], actual: Sequence[float]) -> float:
    """Spearman rank correlation between predicted and actual scores."""
    predicted = np.asarray(predicted, dtype=np.float64)
    actual = np.asarray(actual, dtype=np.float64)
    if len(predicted) < 2:
        return 0.0
    pred_rank = np.argsort(np.argsort(predicted)).astype(np.float64)
    act_rank = np.argsort(np.argsort(actual)).astype(np.float64)
    pred_rank -= pred_rank.mean()
    act_rank -= act_rank.mean()
    denom = np.sqrt((pred_rank ** 2).sum() * (act_rank ** 2).sum())
    if denom == 0:
        return 0.0
    return float((pred_rank * act_rank).sum() / denom)
