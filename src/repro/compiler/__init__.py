"""The unified compilation pipeline (the paper's Figure 2 flow, as an API).

``repro.compile`` is the single front door: graph in, deployable
:class:`CompiledModule` out.  The pipeline is built from named, opt-level
gated :class:`Pass` objects run by a :class:`Sequential` pass manager under a
:class:`PassContext`, so benchmarks ablate passes by name and instruments
observe every rewrite::

    import repro

    with repro.PassContext(disabled_passes=["fuse_ops"]):
        unfused = repro.compile("resnet-18", target="cuda")

    module = repro.compile("resnet-18", target="cuda")
    executor = module.executor()
"""

from .driver import compile, framework_overhead
from .instruments import PassInstrument, PassRecord, TimingInstrument
from .module import CompiledKernel, CompiledModule
from .pass_context import PassContext
from .pass_manager import (
    DEFAULT_PIPELINE,
    PASS_REGISTRY,
    CompileState,
    Pass,
    PassInfo,
    Sequential,
    default_pipeline,
    get_pass,
    list_passes,
    register_pass,
)
from . import passes

__all__ = [
    "CompileState",
    "CompiledKernel",
    "CompiledModule",
    "DEFAULT_PIPELINE",
    "PASS_REGISTRY",
    "Pass",
    "PassContext",
    "PassInfo",
    "PassInstrument",
    "PassRecord",
    "Sequential",
    "TimingInstrument",
    "compile",
    "default_pipeline",
    "framework_overhead",
    "get_pass",
    "list_passes",
    "passes",
    "register_pass",
]
