"""Autotuning a single convolution with the ML-based optimizer (Section 5).

Declares a ResNet-18 conv2d workload, explores its schedule space with three
automation methods (random search, a blackbox genetic algorithm, and the
ML-cost-model-guided simulated annealing explorer), and reports how quickly
each finds fast configurations — a miniature version of Figure 12.

Run:  python examples/autotune_conv2d.py
"""

from repro import autotvm, te
from repro.hardware import cuda
from repro.topi import nn
from repro.topi.schedules import gpu as gpu_sched
from repro.workloads import RESNET_CONV_WORKLOADS


def conv2d_template(cfg, n, ci, h, w, co, kernel, stride, padding):
    data = te.placeholder((n, ci, h, w), name="data")
    weight = te.placeholder((co, ci, kernel, kernel), name="kernel")
    conv = nn.conv2d_nchw(data, weight, stride, padding)
    return gpu_sched.conv2d_gpu_template(cfg, data, weight, conv)


def main() -> None:
    workload = RESNET_CONV_WORKLOADS[5]          # C6: 28x28, 128 -> 128, 3x3
    target = cuda()
    task = autotvm.create_task(
        f"conv2d_{workload.name}", conv2d_template,
        (1, workload.in_channels, workload.height, workload.width,
         workload.out_channels, workload.kernel, workload.stride, workload.padding),
        target)
    print(f"Tuning {workload.name}: {len(task.config_space)} configurations, "
          f"{workload.gflops:.2f} GFLOPs per run")

    n_trial = 40
    for label, tuner_cls in (("random search", autotvm.RandomTuner),
                             ("genetic algorithm", autotvm.GATuner),
                             ("ML-based model", autotvm.ModelBasedTuner)):
        tuner = tuner_cls(task, seed=0)
        best = tuner.tune(n_trial=n_trial, batch_size=8)
        gflops = workload.gflops / tuner.best_time
        print(f"  {label:<20s} best {tuner.best_time * 1e6:8.1f} us "
              f"({gflops:7.1f} GFLOP/s)  config #{best.index}")
        if label == "ML-based model":
            database = autotvm.TuningDatabase()
            database.record(task, best, tuner.best_time)
            print(f"  recorded best configuration: {best.to_dict()}")


if __name__ == "__main__":
    main()
