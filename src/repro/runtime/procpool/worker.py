"""Worker-process entry points (run under the ``spawn`` start method).

Both mains follow the same shape: boot from plain, JSON-able arguments (no
live objects cross the process boundary), send a ``HELLO`` frame when ready,
then serve framed requests until ``SHUTDOWN`` or pipe EOF (parent death).

* :func:`module_worker_main` — serving role.  Boots by loading an exported
  module artifact bundle **without its params.npz** — parameters are mapped
  as zero-copy read-only views over the pool's shared-memory arena, so a
  4-worker pool holds one physical copy of the weights, not four.  ``EXEC``
  frames point at a per-batch arena; each request executes through the same
  :class:`~repro.runtime.executor.Executor` kernels as the in-process path,
  so outputs are bit-identical to solo execution.
* :func:`measure_worker_main` — tuning role.  Boots from a target spec;
  ``MEASURE`` frames carry a self-contained task definition (template kind +
  workload args through the tuple-preserving codec) plus config indices, and
  the reply carries only floats.  The measurement noise RNG is derived from
  ``(seed, task name, config index)`` exactly as
  :class:`~repro.autotvm.measure.LocalMeasurer` derives it, which is what
  keeps process-parallel tuning bit-identical to the serial path.
"""

from __future__ import annotations

import hashlib
import os
import time
import traceback
from typing import Dict

from .protocol import MSG, ProtocolError, recv_msg, send_msg
from .shm import ShmArena

__all__ = ["module_worker_main", "measure_worker_main"]


def _send_error(conn, exc: BaseException) -> None:
    send_msg(conn, MSG.ERROR, {"error": f"{type(exc).__name__}: {exc}",
                               "traceback": traceback.format_exc()})


def _serve_loop(conn, handle_exec) -> None:
    """Shared frame loop: heartbeat, dispatch, shutdown, parent-death EOF."""
    while True:
        try:
            kind, payload = recv_msg(conn)
        except (EOFError, OSError):
            return                      # parent died; exit quietly
        except ProtocolError:
            # A torn/garbled frame means the stream is unrecoverable (e.g. a
            # truncation fault): exit so the parent respawns a clean worker.
            return
        if kind == MSG.PING:
            send_msg(conn, MSG.PONG, {"pid": os.getpid()})
        elif kind == MSG.SHUTDOWN:
            send_msg(conn, MSG.BYE, {"pid": os.getpid()})
            return
        else:
            try:
                handle_exec(kind, payload)
            except BaseException as exc:   # noqa: BLE001 — report, don't die
                _send_error(conn, exc)


# ---------------------------------------------------------------------------
# Serving role
# ---------------------------------------------------------------------------

def module_worker_main(conn, boot: Dict) -> None:
    """Serve ``EXEC`` batches for one device from an artifact bundle.

    ``boot`` (plain data): ``bundle`` — artifact path; ``device`` — device
    spec string; ``params`` — spec of the shared parameter arena (or None
    for a parameter-less module).
    """
    started = time.perf_counter()
    try:
        from ..artifact import load_module
        from ..executor import Executor

        params_arena = None
        params = None
        if boot.get("params"):
            params_arena = ShmArena.attach(boot["params"])
            params = {name: params_arena.view(name)
                      for name in params_arena.slot_names()}
        module = load_module(boot["bundle"], params=params)
        executor = Executor(module, boot["device"])
    except BaseException as exc:
        _send_error(conn, exc)
        raise SystemExit(1)

    send_msg(conn, MSG.HELLO, {"pid": os.getpid(), "device": boot["device"],
                               "boot_seconds": time.perf_counter() - started})

    def handle(kind: int, payload: Dict) -> None:
        if kind != MSG.EXEC:
            raise ValueError(f"serve worker got unexpected "
                             f"{MSG.name(kind)} frame")
        attach_start = time.perf_counter()
        arena = ShmArena.attach(payload["arena"])
        try:
            attach_seconds = time.perf_counter() - attach_start
            execute_seconds = 0.0
            copy_seconds = 0.0
            statuses = []
            for index in range(int(payload["requests"])):
                inputs = {name: arena.view(f"in:{index}:{name}")
                          for name in payload["inputs"]}
                run_start = time.perf_counter()
                try:
                    result = executor._execute(inputs)
                except Exception as exc:
                    statuses.append({"ok": False,
                                     "error": f"{type(exc).__name__}: {exc}"})
                    continue
                execute_seconds += time.perf_counter() - run_start
                copy_start = time.perf_counter()
                for name, value in zip(payload["outputs"], result.outputs):
                    arena.view(f"out:{index}:{name}", writeable=True)[...] = value
                copy_seconds += time.perf_counter() - copy_start
                statuses.append({"ok": True})
            send_msg(conn, MSG.RESULT, {
                "pid": os.getpid(),
                "per_request": statuses,
                "timings": {"attach_s": attach_seconds,
                            "execute_s": execute_seconds,
                            "shm_copy_s": copy_seconds},
            })
        finally:
            arena.close()

    try:
        _serve_loop(conn, handle)
    finally:
        if params_arena is not None:
            params_arena.close()


# ---------------------------------------------------------------------------
# Tuning (measure) role
# ---------------------------------------------------------------------------

def _derived_rng(task_name: str, config_index: int, seed: int):
    """The per-(seed, task, config) noise stream — byte-for-byte the
    derivation in :meth:`repro.autotvm.measure.LocalMeasurer._input_rng`."""
    import numpy as np

    digest = hashlib.sha256(f"{task_name}:{config_index}:{seed}".encode())
    return np.random.default_rng(int.from_bytes(digest.digest()[:8], "little"))


def measure_worker_main(conn, boot: Dict) -> None:
    """Measure tuning configurations for one target.

    ``boot``: ``target_spec`` — the :meth:`Target.spec` dict.  ``MEASURE``
    payloads are self-contained (task name, template kind, workload args,
    config indices, number, seed) so a respawned worker needs no replayed
    state; task objects are cached per name across frames.
    """
    started = time.perf_counter()
    try:
        from ...hardware.target import target_from_spec

        target = target_from_spec(boot["target_spec"])
    except BaseException as exc:
        _send_error(conn, exc)
        raise SystemExit(1)

    send_msg(conn, MSG.HELLO, {"pid": os.getpid(),
                               "target": target.name,
                               "boot_seconds": time.perf_counter() - started})
    tasks: Dict[str, object] = {}

    def task_for(payload: Dict):
        from ...autotvm.task import Task
        from ...graph.op_timing import _TEMPLATE_FACTORIES

        name = payload["task"]
        if name not in tasks:
            kind = payload["template_kind"]
            if kind not in _TEMPLATE_FACTORIES:
                raise ValueError(f"Unknown template kind {kind!r}; known: "
                                 f"{sorted(_TEMPLATE_FACTORIES)}")
            tasks[name] = Task(name, _TEMPLATE_FACTORIES[kind](target),
                               tuple(payload["args"]), target)
        return tasks[name]

    def handle(kind: int, payload: Dict) -> None:
        if kind != MSG.MEASURE:
            raise ValueError(f"measure worker got unexpected "
                             f"{MSG.name(kind)} frame")
        task = task_for(payload)
        number = int(payload["number"])
        seed = int(payload["seed"])
        build_seconds = 0.0
        results = []
        for index in payload["indices"]:
            index = int(index)
            build_start = time.perf_counter()
            try:
                features = task.features_of(index)
            except Exception as exc:
                build_seconds += time.perf_counter() - build_start
                results.append({"index": index, "time": None,
                                "error": str(exc)})
                continue
            build_seconds += time.perf_counter() - build_start
            outcome = target.model.measure(
                features, number=number,
                rng=_derived_rng(task.name, index, seed))
            results.append({"index": index,
                            "time": float(outcome.mean_time),
                            "error": outcome.error})
        send_msg(conn, MSG.MEASURED, {
            "pid": os.getpid(),
            "task": task.name,
            "results": results,
            "timings": {"build_s": build_seconds},
        })

    _serve_loop(conn, handle)
