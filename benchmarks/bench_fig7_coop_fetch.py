"""Figure 7: cooperative shared-memory fetching on GPU matrix multiplication.

Compares cuBLAS, TVM without cooperative fetching (shared-nothing nested
parallelism), and TVM with cooperative fetching for 1024 and 2048 square
matmuls on the simulated Titan X.  The paper shows cooperative fetching
closing most of the gap to cuBLAS.
"""

import pytest

from common import emit_summary, get_target, print_series
from repro import te, tir
from repro.baselines import CUDNN_PROFILE, VendorLibrary
from repro.topi import nn
from repro.topi.schedules import gpu as gpu_sched


def _tvm_matmul_time(size: int, use_shared: bool, target) -> float:
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    C = nn.matmul(A, B)
    schedule = gpu_sched.schedule_matmul_gpu(A, B, C, use_shared=use_shared,
                                             tile=8, threads=8)
    func = tir.lower(schedule, [A, B, C], name=f"matmul{size}")
    return target.model.estimate(tir.extract_features(func))


def _evaluate():
    target = get_target("cuda")
    cublas = VendorLibrary(CUDNN_PROFILE, target)
    rows = []
    for size in (1024, 2048):
        rows.append((f"{size}", {
            "cuBLAS": cublas.gemm_time(size, size, size) * 1e3,
            "TVM w/o coop.": _tvm_matmul_time(size, False, target) * 1e3,
            "TVM": _tvm_matmul_time(size, True, target) * 1e3,
        }))
    return rows


def test_fig7_cooperative_fetching(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 7: matmul time (ms) on server GPU", rows)
    emit_summary("fig7_coop_fetch", {
        "coop_speedup": {size: round(entry["TVM w/o coop."] / entry["TVM"], 3)
                         for size, entry in rows},
        "vs_cublas": {size: round(entry["cuBLAS"] / entry["TVM"], 3)
                      for size, entry in rows}})
    for size, entry in rows:
        benchmark.extra_info[f"matmul{size}_coop_speedup"] = round(
            entry["TVM w/o coop."] / entry["TVM"], 2)
        # Cooperative fetching must improve on the shared-nothing schedule and
        # bring TVM within a small factor of cuBLAS (paper: close to parity).
        assert entry["TVM"] < entry["TVM w/o coop."]
        assert entry["TVM"] < entry["cuBLAS"] * 4.0
