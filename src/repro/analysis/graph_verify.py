"""Graph-IR verifier (the static-analysis layer's high-level half).

:func:`verify_graph` certifies a :class:`~repro.graph.ir.Graph` — optionally
together with the fusion groups and memory plan derived from it — without
mutating anything:

* **well-formedness** — unique node names, topological node order, no
  dangling input references, every operator registered;
* **shape/dtype agreement** — re-runs shape and dtype inference per node and
  compares against the stored annotations;
* **fused-group legality** — every operator in exactly one group, absorbed
  members injective and chained off the group, opaque operators isolated,
  and operand availability (dominance) across the group execution order;
* **layout consistency** — after ``alter_layout``, producers and consumers
  agree on data layout or are bridged by a ``layout_transform`` node;
* **memory-plan alias audit** — no two simultaneously-live tensors share a
  storage token (graph outputs stay live to function exit) and every token
  is at least as large as the dtype-aware size of each tensor placed on it.

All failures raise a typed :class:`~repro.analysis.errors.VerifierError`
subclass naming the failing check, the offending node and (when supplied)
the pass after which verification ran.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graph.ir import Graph, Node
from ..graph.ops import OP_REGISTRY, OpPattern
from ..tir.stmt import dtype_bytes as _dtype_bytes
from .errors import (
    DanglingInputError,
    DtypeMismatchError,
    DuplicateNodeNameError,
    FusionLegalityError,
    LayoutError,
    MemoryAliasError,
    ShapeMismatchError,
    StorageSizeError,
    TopologicalOrderError,
    UnknownOperatorError,
)

__all__ = ["verify_graph", "verify_well_formed", "verify_shapes",
           "verify_fusion", "verify_layout", "verify_memory_plan"]


def verify_well_formed(graph: Graph, *, pass_name: Optional[str] = None) -> None:
    """Unique names, topological order, no dangling refs, known operators."""
    seen_names: Dict[str, Node] = {}
    for node in graph.nodes:
        if node.name in seen_names and seen_names[node.name] is not node:
            raise DuplicateNodeNameError(
                f"two distinct nodes share the name {node.name!r}",
                node=node.name, pass_name=pass_name)
        seen_names[node.name] = node

    position = {id(n): i for i, n in enumerate(graph.nodes)}
    for index, node in enumerate(graph.nodes):
        for parent in node.inputs:
            parent_pos = position.get(id(parent))
            if parent_pos is None:
                raise DanglingInputError(
                    f"node {node.name!r} reads {parent.name!r}, which is not "
                    f"in the graph's node list", node=node.name,
                    pass_name=pass_name)
            if parent_pos >= index:
                raise TopologicalOrderError(
                    f"node {node.name!r} (position {index}) reads "
                    f"{parent.name!r} (position {parent_pos}) which has not "
                    f"executed yet", node=node.name, pass_name=pass_name)
        if not node.is_variable and node.op not in OP_REGISTRY:
            raise UnknownOperatorError(
                f"operator {node.op!r} of node {node.name!r} is not "
                f"registered", node=node.name, pass_name=pass_name)
    for out in graph.outputs:
        if id(out) not in position:
            raise DanglingInputError(
                f"graph output {out.name!r} is not in the node list",
                node=out.name, pass_name=pass_name)


def verify_shapes(graph: Graph, *, pass_name: Optional[str] = None) -> None:
    """Re-infer every operator's shape and dtype; compare with the stored
    annotations.  Never mutates the graph."""
    for node in graph.nodes:
        if node.shape is None:
            raise ShapeMismatchError(
                f"node {node.name!r} has no shape annotation",
                node=node.name, pass_name=pass_name)
        if node.is_variable:
            continue
        spec = OP_REGISTRY.get(node.op)
        if spec is None:  # reported by verify_well_formed; skip here
            continue
        input_shapes = [tuple(p.shape) for p in node.inputs
                        if p.shape is not None]
        if len(input_shapes) != len(node.inputs):
            raise ShapeMismatchError(
                f"an input of node {node.name!r} has no shape annotation",
                node=node.name, pass_name=pass_name)
        try:
            expected = tuple(spec.infer_shape(input_shapes, node.attrs))
        except Exception as exc:
            raise ShapeMismatchError(
                f"shape inference of node {node.name!r} ({node.op}) failed "
                f"on input shapes {input_shapes}: {exc}",
                node=node.name, pass_name=pass_name) from exc
        if tuple(node.shape) != expected:
            raise ShapeMismatchError(
                f"node {node.name!r} ({node.op}) annotates shape "
                f"{tuple(node.shape)} but re-inference gives {expected}",
                node=node.name, pass_name=pass_name)
        expected_dtype = node.attrs.get(
            "out_dtype", node.inputs[0].dtype if node.inputs else "float32")
        if node.dtype != expected_dtype:
            raise DtypeMismatchError(
                f"node {node.name!r} ({node.op}) annotates dtype "
                f"{node.dtype!r} but re-inference gives {expected_dtype!r}",
                node=node.name, pass_name=pass_name)


def verify_fusion(graph: Graph, groups: Sequence, *,
                  pass_name: Optional[str] = None) -> None:
    """Check the legality of a fused-group partition of ``graph``."""
    in_graph = {id(n) for n in graph.nodes}
    membership: Dict[int, object] = {}
    for group in groups:
        if not group.nodes:
            raise FusionLegalityError("empty fused group",
                                      pass_name=pass_name)
        for node in group.nodes:
            if id(node) not in in_graph:
                raise FusionLegalityError(
                    f"group member {node.name!r} is not a graph node",
                    node=node.name, pass_name=pass_name)
            if node.is_variable:
                raise FusionLegalityError(
                    f"variable {node.name!r} cannot be fused into a kernel",
                    node=node.name, pass_name=pass_name)
            if id(node) in membership:
                raise FusionLegalityError(
                    f"node {node.name!r} belongs to more than one fused group",
                    node=node.name, pass_name=pass_name)
            membership[id(node)] = group
        if id(group.master) not in {id(n) for n in group.nodes}:
            raise FusionLegalityError(
                f"master {group.master.name!r} is not a member of its group",
                node=group.master.name, pass_name=pass_name)
        anchor = group.nodes[0]
        if OP_REGISTRY[anchor.op].pattern == OpPattern.OPAQUE \
                and len(group.nodes) > 1:
            raise FusionLegalityError(
                f"opaque operator {anchor.name!r} ({anchor.op}) fused with "
                f"other operators", node=anchor.name, pass_name=pass_name)
        for prev, node in zip(group.nodes, group.nodes[1:]):
            if OP_REGISTRY[node.op].pattern != OpPattern.INJECTIVE:
                raise FusionLegalityError(
                    f"absorbed member {node.name!r} ({node.op}) is not "
                    f"injective", node=node.name, pass_name=pass_name)
            if not any(p is prev for p in node.inputs):
                raise FusionLegalityError(
                    f"absorbed member {node.name!r} does not consume the "
                    f"preceding group member {prev.name!r}",
                    node=node.name, pass_name=pass_name)

    for node in graph.op_nodes:
        if id(node) not in membership:
            raise FusionLegalityError(
                f"operator {node.name!r} is not assigned to any fused group",
                node=node.name, pass_name=pass_name)

    # Operand availability (dominance): executing groups in list order, every
    # operand of every member must already have been produced — by a graph
    # input, an earlier group, or an earlier member of the same group.
    available = {id(n) for n in graph.input_nodes}
    for group in groups:
        for node in group.nodes:
            for parent in node.inputs:
                if id(parent) not in available:
                    raise FusionLegalityError(
                        f"node {node.name!r} in group {group.name!r} reads "
                        f"{parent.name!r} before it is produced (illegal "
                        f"fusion across a dominance frontier)",
                        node=node.name, pass_name=pass_name)
            available.add(id(node))


def verify_layout(graph: Graph, *, pass_name: Optional[str] = None) -> None:
    """Layout agreement between producers and consumers after
    ``alter_layout``."""
    for node in graph.op_nodes:
        if node.op == "layout_transform":
            src = node.attrs.get("src_layout")
            dst = node.attrs.get("dst_layout")
            if not src or not dst:
                raise LayoutError(
                    f"layout_transform {node.name!r} is missing "
                    f"src_layout/dst_layout attributes", node=node.name,
                    pass_name=pass_name)
            if len(node.inputs) != 1:
                raise LayoutError(
                    f"layout_transform {node.name!r} must have exactly one "
                    f"input", node=node.name, pass_name=pass_name)
            parent = node.inputs[0]
            parent_layout = parent.attrs.get("data_layout", src)
            if not parent.is_variable and parent_layout != src:
                raise LayoutError(
                    f"layout_transform {node.name!r} declares src_layout "
                    f"{src!r} but its producer {parent.name!r} is laid out "
                    f"{parent_layout!r}", node=node.name, pass_name=pass_name)
            continue
        layout = node.attrs.get("data_layout")
        if layout is None or layout == "NCHW":
            continue
        # A non-default layout was imposed by alter_layout: each operand must
        # already be in that layout or arrive through a transform node.
        for parent in node.inputs:
            if parent.is_variable:
                continue
            if parent.attrs.get("data_layout") == layout:
                continue
            if parent.op == "layout_transform" \
                    and parent.attrs.get("dst_layout") == layout:
                continue
            raise LayoutError(
                f"node {node.name!r} expects layout {layout!r} but input "
                f"{parent.name!r} is laid out "
                f"{parent.attrs.get('data_layout', 'NCHW')!r} with no "
                f"layout_transform in between", node=node.name,
                pass_name=pass_name)


def _node_size_bytes(node: Node, dtype_bytes: Optional[int]) -> int:
    elem = dtype_bytes if dtype_bytes is not None else _dtype_bytes(node.dtype)
    return int(np.prod(node.shape)) * int(elem)


def verify_memory_plan(graph: Graph, memory_plan, *,
                       dtype_bytes: Optional[int] = None,
                       pass_name: Optional[str] = None) -> None:
    """Alias audit of a memory plan against an independent liveness analysis.

    ``dtype_bytes`` mirrors :func:`repro.graph.passes.plan_memory`: ``None``
    sizes each tensor from its dtype, an integer forces a uniform element
    size (the legacy behaviour, still reachable through
    ``PassContext(config={"plan_memory.dtype_bytes": 4})``).
    """
    storage_of = memory_plan.storage_of
    token_bytes = memory_plan.token_bytes

    consumers = graph.consumers()
    order = {id(n): i for i, n in enumerate(graph.nodes)}
    horizon = len(graph.nodes)  # graph outputs stay live to function exit
    output_ids = {id(o) for o in graph.outputs}

    live: Dict[str, Tuple[int, int]] = {}
    for node in graph.op_nodes:
        token = storage_of.get(node.name)
        if token is None:
            raise MemoryAliasError(
                f"operator {node.name!r} has no storage token in the memory "
                f"plan", node=node.name, pass_name=pass_name)
        if token not in token_bytes:
            raise MemoryAliasError(
                f"node {node.name!r} is placed on token {token}, which has "
                f"no recorded size", node=node.name, pass_name=pass_name)
        definition = order[id(node)]
        if id(node) in output_ids:
            last = horizon
        else:
            last = max([order[id(u)] for u in consumers[id(node)]],
                       default=definition)
        live[node.name] = (definition, last)
        size = _node_size_bytes(node, dtype_bytes)
        if token_bytes[token] < size:
            raise StorageSizeError(
                f"token {token} holds {token_bytes[token]} bytes but node "
                f"{node.name!r} needs {size} bytes "
                f"({tuple(node.shape)} x {node.dtype})", node=node.name,
                pass_name=pass_name)

    by_token: Dict[int, List[str]] = {}
    for name, token in storage_of.items():
        by_token.setdefault(token, []).append(name)
    for token, names in by_token.items():
        intervals = sorted((live[name], name) for name in names if name in live)
        # Sorted by definition step, any overlap implies an adjacent overlap.
        for ((_, last_a), name_a), ((def_b, _), name_b) \
                in zip(intervals, intervals[1:]):
            if def_b <= last_a:
                raise MemoryAliasError(
                    f"tensors {name_a!r} and {name_b!r} share storage token "
                    f"{token} while both are live ({name_a!r} is used until "
                    f"step {last_a}, {name_b!r} is defined at step {def_b})",
                    node=name_b, pass_name=pass_name)


def verify_graph(graph: Graph, *, groups: Optional[Sequence] = None,
                 memory_plan=None, dtype_bytes: Optional[int] = None,
                 pass_name: Optional[str] = None) -> None:
    """Run every applicable graph-level check.

    ``groups`` and ``memory_plan`` are checked only when supplied, so the
    verifier can run after every pipeline pass — before fusion or memory
    planning has happened — as well as on the final compile state.
    """
    verify_well_formed(graph, pass_name=pass_name)
    verify_shapes(graph, pass_name=pass_name)
    verify_layout(graph, pass_name=pass_name)
    if groups is not None:
        verify_fusion(graph, groups, pass_name=pass_name)
    if memory_plan is not None:
        verify_memory_plan(graph, memory_plan, dtype_bytes=dtype_bytes,
                           pass_name=pass_name)
