"""Pass instrumentation hooks (mirrors TVM's ``PassInstrument``).

Instruments observe the pass pipeline without changing it: the pass manager
calls :meth:`PassInstrument.run_before_pass` / ``run_after_pass`` around every
executed pass, and :class:`~repro.compiler.pass_context.PassContext` calls
``enter_pass_ctx`` / ``exit_pass_ctx`` when the context is (de)activated.

:class:`TimingInstrument` is the built-in instrument the driver always
attaches: it records wall time plus node/parameter counts per pass and its
records end up on :attr:`CompiledModule.pass_records`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:
    from .pass_manager import CompileState, PassInfo

__all__ = ["InstrumentError", "PassInstrument", "PassRecord",
           "TimingInstrument", "aggregate_timings"]


class InstrumentError(RuntimeError):
    """An instrument hook itself crashed (distinct from an instrument
    *reporting* a problem, e.g. a
    :class:`~repro.analysis.errors.VerifierError`, which propagates as-is).

    Carries which instrument failed around which pass, with the original
    exception as ``__cause__``.
    """

    def __init__(self, instrument_name: str, pass_name: str, hook: str,
                 original: BaseException):
        self.instrument_name = instrument_name
        self.pass_name = pass_name
        self.hook = hook
        super().__init__(
            f"instrument {instrument_name!r} failed in {hook} around pass "
            f"{pass_name!r}: {type(original).__name__}: {original}")


def aggregate_timings(records) -> Dict[str, float]:
    """Fold pass records into total seconds per pass name."""
    result: Dict[str, float] = {}
    for record in records:
        result[record.name] = result.get(record.name, 0.0) + record.seconds
    return result


@dataclass
class PassRecord:
    """One executed pass, as observed by :class:`TimingInstrument`."""

    name: str
    seconds: float
    nodes_before: int
    nodes_after: int
    params_before: int
    params_after: int

    @property
    def nodes_removed(self) -> int:
        return self.nodes_before - self.nodes_after


class PassInstrument:
    """Base class for pipeline observers; all hooks default to no-ops."""

    name = "instrument"

    def enter_pass_ctx(self) -> None:
        """Called when the owning :class:`PassContext` becomes current."""

    def exit_pass_ctx(self) -> None:
        """Called when the owning :class:`PassContext` is deactivated."""

    def run_before_pass(self, pass_info: "PassInfo", state: "CompileState") -> None:
        """Called immediately before an enabled pass executes."""

    def run_after_pass(self, pass_info: "PassInfo", state: "CompileState",
                       seconds: float) -> None:
        """Called after a pass executed; ``seconds`` is its wall time."""

    def observe_kernel(self, kernel) -> None:
        """Called for every generated :class:`CompiledKernel` — including
        whether its schedule came from the tuning history (``kernel.tuned``)."""


class TimingInstrument(PassInstrument):
    """Records per-pass wall time and node/param counts."""

    name = "timing"

    def __init__(self) -> None:
        self.records: List[PassRecord] = []
        self._nodes_before = 0
        self._params_before = 0

    def reset(self) -> None:
        self.records = []

    def run_before_pass(self, pass_info: "PassInfo", state: "CompileState") -> None:
        self._nodes_before = len(state.graph.nodes)
        self._params_before = len(state.params)

    def run_after_pass(self, pass_info: "PassInfo", state: "CompileState",
                       seconds: float) -> None:
        self.records.append(PassRecord(
            name=pass_info.name,
            seconds=seconds,
            nodes_before=self._nodes_before,
            nodes_after=len(state.graph.nodes),
            params_before=self._params_before,
            params_after=len(state.params),
        ))

    @property
    def timings(self) -> Dict[str, float]:
        return aggregate_timings(self.records)
