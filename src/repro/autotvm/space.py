"""Schedule configuration space (paper Section 5.1).

A schedule template declares *knobs* — tile sizes, unroll factors, whether to
vectorize, how many virtual threads to use — through the
``define_split`` / ``define_knob`` API.  The cross product of all knob
candidates forms the configuration space the automated optimizer explores
(billions of configurations for real workloads; here the spaces are smaller
but share the same structure).
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["SplitEntity", "OtherEntity", "ConfigSpace", "ConfigEntity"]


def _factorizations(extent: int, parts: int, max_candidates: int = 64) -> List[Tuple[int, ...]]:
    """All ways to write ``extent`` as an ordered product of ``parts`` factors."""
    def divisors(n: int) -> List[int]:
        return [d for d in range(1, n + 1) if n % d == 0]

    results: List[Tuple[int, ...]] = []

    def recurse(remaining: int, chosen: Tuple[int, ...]) -> None:
        if len(chosen) == parts - 1:
            results.append(chosen + (remaining,))
            return
        for d in divisors(remaining):
            recurse(remaining // d, chosen + (d,))

    recurse(extent, ())
    if len(results) > max_candidates:
        # Deterministically thin the list while keeping the extremes.
        step = len(results) / max_candidates
        results = [results[int(i * step)] for i in range(max_candidates)]
    return results


class SplitEntity:
    """A concrete loop-split choice: the extents of each produced sub-loop."""

    def __init__(self, sizes: Sequence[int]):
        self.size = [int(s) for s in sizes]

    def apply(self, stage, ivar, prefix: str = "") -> List[object]:
        """Apply this split to a stage's iter var, returning the new loops
        from outermost to innermost."""
        loops = []
        current = ivar
        # Split from the innermost factor outwards.
        for factor in reversed(self.size[1:]):
            outer, inner = stage.split(current, factor=factor)
            loops.insert(0, inner)
            current = outer
        loops.insert(0, current)
        return loops

    def __repr__(self) -> str:
        return f"Split({self.size})"


class OtherEntity:
    """A concrete non-split knob value."""

    def __init__(self, value: object):
        self.val = value

    def __repr__(self) -> str:
        return f"Knob({self.val})"


class ConfigSpace:
    """The set of all configurations a template exposes.

    Calling ``define_split`` / ``define_knob`` registers candidates the first
    time a knob name is seen and returns the *default* entity (the first
    candidate), so a template can be executed directly against the space to
    discover its knobs.
    """

    def __init__(self) -> None:
        self._candidates: Dict[str, List[object]] = {}
        self.is_fallback = False
        self._radix: Optional[Tuple[List[str], List[int], List[int], int]] = None

    # -- definition API ---------------------------------------------------------
    def define_split(self, name: str, extent: int, num_outputs: int = 2,
                     max_candidates: int = 64,
                     candidate_sizes: Optional[Sequence[Sequence[int]]] = None) -> SplitEntity:
        if name not in self._candidates:
            if candidate_sizes is not None:
                entities = [SplitEntity(s) for s in candidate_sizes]
            else:
                entities = [SplitEntity(s)
                            for s in _factorizations(int(extent), num_outputs,
                                                     max_candidates)]
            if not entities:
                entities = [SplitEntity([int(extent)] + [1] * (num_outputs - 1))]
            self._candidates[name] = entities
            self._radix = None
        return self[name]

    def define_knob(self, name: str, candidates: Sequence[object]) -> OtherEntity:
        if name not in self._candidates:
            self._candidates[name] = [OtherEntity(v) for v in candidates]
            self._radix = None
        return self[name]

    # -- access -------------------------------------------------------------------
    def __getitem__(self, name: str) -> object:
        return self._candidates[name][0]

    def _radix_info(self) -> Tuple[List[str], List[int], List[int], int]:
        """Memoized ``(knob names, dims, mixed-radix multipliers, size)``.

        The knob set is fixed once the template has executed, but the hot
        explorer loops (simulated annealing, hill climbing, GA breeding) read
        these per candidate — rebuilding the lists each time dominated their
        inner loops.
        """
        radix = self._radix
        if radix is None:
            names = list(self._candidates.keys())
            dims = [len(v) for v in self._candidates.values()]
            multipliers: List[int] = []
            product = 1
            for dim in dims:
                multipliers.append(product)
                product *= dim
            radix = (names, dims, multipliers, product)
            self._radix = radix
        return radix

    @property
    def knob_names(self) -> List[str]:
        return list(self._radix_info()[0])

    @property
    def dims(self) -> List[int]:
        return list(self._radix_info()[1])

    def __len__(self) -> int:
        return self._radix_info()[3]

    def get(self, index: int) -> "ConfigEntity":
        """Return the configuration at a flat index (mixed-radix decode)."""
        if not 0 <= index < len(self):
            raise IndexError(f"Config index {index} out of range [0, {len(self)})")
        choices: Dict[str, object] = {}
        remaining = index
        for name, candidates in self._candidates.items():
            remaining, choice = divmod(remaining, len(candidates))
            choices[name] = candidates[choice]
        return ConfigEntity(self, index, choices)

    def index_of(self, choices: Dict[str, int]) -> int:
        """Flat index from per-knob candidate indices."""
        names, _dims, multipliers, _size = self._radix_info()
        index = 0
        for name, multiplier in zip(names, multipliers):
            index += choices.get(name, 0) * multiplier
        return index

    def flat_index(self, knob_indices: Sequence[int]) -> int:
        """Flat index from per-knob candidate indices in knob order.

        Same arithmetic as :meth:`index_of` without requiring the caller to
        build a name-keyed dict first — the explorers' neighbour moves call
        this once per candidate.
        """
        _names, _dims, multipliers, _size = self._radix_info()
        index = 0
        for choice, multiplier in zip(knob_indices, multipliers):
            index += choice * multiplier
        return index

    def knob_indices(self, index: int) -> List[int]:
        """Per-knob candidate indices for a flat index."""
        out: List[int] = []
        remaining = index
        for candidates in self._candidates.values():
            remaining, choice = divmod(remaining, len(candidates))
            out.append(choice)
        return out

    def sample(self, count: int, rng: Optional[random.Random] = None) -> List["ConfigEntity"]:
        rng = rng or random.Random(0)
        total = len(self)
        if count >= total:
            return [self.get(i) for i in range(total)]
        indices = rng.sample(range(total), count)
        return [self.get(i) for i in indices]

    def __iter__(self) -> Iterator["ConfigEntity"]:
        for i in range(len(self)):
            yield self.get(i)

    def __repr__(self) -> str:
        knobs = ", ".join(f"{k}({len(v)})" for k, v in self._candidates.items())
        return f"ConfigSpace(size={len(self)}, knobs=[{knobs}])"


class ConfigEntity(ConfigSpace):
    """One concrete configuration drawn from a :class:`ConfigSpace`."""

    def __init__(self, space: ConfigSpace, index: int, choices: Dict[str, object]):
        super().__init__()
        self._candidates = space._candidates
        self.space = space
        self.index = index
        self._choices = choices

    def define_split(self, name: str, extent: int, num_outputs: int = 2,
                     max_candidates: int = 64,
                     candidate_sizes: Optional[Sequence[Sequence[int]]] = None):
        return self[name]

    def define_knob(self, name: str, candidates: Sequence[object]):
        return self[name]

    def __getitem__(self, name: str) -> object:
        if name in self._choices:
            return self._choices[name]
        return self._candidates[name][0]

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for name, entity in self._choices.items():
            if isinstance(entity, SplitEntity):
                out[name] = list(entity.size)
            else:
                out[name] = entity.val
        return out

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v!r}" for k, v in self.to_dict().items())
        return f"Config(#{self.index}: {parts})"
