"""``ApplyHistoryBest``: compile with the best tuned configurations.

The upstream TVM flow is *extract tasks -> tune -> ApplyHistoryBest ->
compile*: entering the context makes every compilation inside it consult the
tuning history for each operator workload.  Here the context keeps its own
per-thread stack (like :class:`~repro.compiler.PassContext`) and the compile
driver queries the innermost active context automatically, so the old
``repro.compile(..., tuning_db=...)`` kwarg is no longer needed::

    report = repro.autotune("resnet-18", target="cuda", trials=64)
    with report.apply_history_best():
        tuned = repro.compile("resnet-18", target="cuda")

The context also counts lookups, so callers (and tests) can assert that a
build actually used tuned configurations via :attr:`hits` / :attr:`hit_tasks`.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Set, Union

from .database import TuningDatabase, TuningLogEntry

__all__ = ["ApplyHistoryBest"]


class ApplyHistoryBest:
    """Context manager exposing a tuning history to ``repro.compile``.

    Accepts a :class:`TuningDatabase` or a path to a JSONL tuning log.  The
    object quacks like a database (``best`` / ``__len__`` / ``__iter__``) so
    the operator-level compiler can query it directly; every successful
    ``best`` lookup is counted.
    """

    _tls = threading.local()

    def __init__(self, database: Union[TuningDatabase, str, None] = None):
        if isinstance(database, str):
            database = TuningDatabase(database)
        self.database = database if database is not None else TuningDatabase()
        self.queries = 0            #: total ``best`` lookups while active
        self.hits = 0               #: lookups that found a tuned entry
        self.hit_tasks: Set[str] = set()   #: task names that resolved

    # ------------------------------------------------------------- scoping
    @classmethod
    def _stack(cls) -> List["ApplyHistoryBest"]:
        stack = getattr(cls._tls, "stack", None)
        if stack is None:
            stack = cls._tls.stack = []
        return stack

    @classmethod
    def current(cls) -> Optional["ApplyHistoryBest"]:
        """The innermost active context on this thread, or ``None``."""
        stack = cls._stack()
        return stack[-1] if stack else None

    def __enter__(self) -> "ApplyHistoryBest":
        self._stack().append(self)
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        stack = self._stack()
        if not stack or stack[-1] is not self:
            raise RuntimeError(
                "ApplyHistoryBest stack corrupted: __exit__ out of order")
        stack.pop()

    # ------------------------------------------------------------- queries
    def best(self, task_name: str, target_name: Optional[str] = None
             ) -> Optional[TuningLogEntry]:
        """Best known entry for a workload; counts the lookup."""
        entry = self.database.best(task_name, target_name)
        self.queries += 1
        if entry is not None:
            self.hits += 1
            self.hit_tasks.add(task_name)
        return entry

    def __len__(self) -> int:
        return len(self.database)

    def __iter__(self):
        return iter(self.database)

    def __repr__(self) -> str:
        return (f"ApplyHistoryBest(entries={len(self.database)}, "
                f"hits={self.hits}/{self.queries})")
