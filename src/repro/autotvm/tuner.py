"""Schedule explorers (paper Section 5.3, Figure 12, Table 1).

Three tuners are implemented, matching the automation methods the paper
compares:

* :class:`RandomTuner` — blackbox random search.
* :class:`GATuner` — blackbox genetic algorithm (no cost model).
* :class:`ModelBasedTuner` — the paper's approach: an ML cost model
  (gradient-boosted trees with a rank objective by default) guides a parallel
  simulated-annealing explorer; the model is re-fitted periodically from the
  measurements collected so far, and exploration state persists across model
  updates.
"""

from __future__ import annotations

import logging
import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cost_model import GradientBoostedTrees, NeuralCostModel
from .measure import LocalMeasurer, MeasureInput, MeasureResultRecord
from .registry import register_tuner
from .space import ConfigEntity
from .task import Task

__all__ = ["TuningRecord", "Tuner", "RandomTuner", "GridSearchTuner", "GATuner",
           "ModelBasedTuner", "SimulatedAnnealingOptimizer"]

logger = logging.getLogger("repro.autotvm")


@dataclass
class TuningRecord:
    """History entry kept by every tuner."""

    config_index: int
    mean_time: float
    trial: int

    @property
    def valid(self) -> bool:
        return math.isfinite(self.mean_time)


class Tuner:
    """Base class: drives measurement batches and tracks the best config."""

    def __init__(self, task: Task, seed: int = 0):
        self.task = task
        self.seed = seed
        self.rng = random.Random(seed)
        self.records: List[TuningRecord] = []
        self.best_config: Optional[ConfigEntity] = None
        self.best_time: float = float("inf")
        self._visited: set = set()

    # -- subclass interface ------------------------------------------------------
    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        raise NotImplementedError

    def update(self, inputs: Sequence[MeasureInput],
               results: Sequence[MeasureResultRecord]) -> None:
        """Hook for model-based tuners to learn from new measurements."""

    # -- main loop ----------------------------------------------------------------
    def tune(self, n_trial: int, measurer: Optional[LocalMeasurer] = None,
             batch_size: int = 8,
             callback: Optional[Callable[["Tuner", List[MeasureResultRecord]], None]] = None,
             early_stopping: Optional[int] = None
             ) -> ConfigEntity:
        """Run the measurement loop for up to ``n_trial`` trials.

        ``early_stopping`` stops the loop after that many consecutive trials
        without improving on the best measured time.  ``callback`` is invoked
        after every measured batch with ``(tuner, batch_results)``.
        """
        measurer = measurer or LocalMeasurer()
        trials_done = 0
        trials_since_best = 0
        space_size = len(self.task.config_space)
        n_trial = min(n_trial, space_size)
        while trials_done < n_trial:
            batch = self.next_batch(min(batch_size, n_trial - trials_done))
            if not batch:
                break
            inputs = [MeasureInput(self.task, cfg) for cfg in batch]
            results = measurer.measure(inputs)
            for inp, res in zip(inputs, results):
                time = res.mean_time if res.valid else float("inf")
                self.records.append(TuningRecord(inp.config.index, time, trials_done))
                self._visited.add(inp.config.index)
                if time < self.best_time:
                    self.best_time = time
                    self.best_config = inp.config
                    trials_since_best = 0
                else:
                    trials_since_best += 1
                trials_done += 1
            self.update(inputs, results)
            if callback is not None:
                callback(self, results)
            logger.debug("%s: trial %d/%d best %.3e s",
                         self.task.name, trials_done, n_trial, self.best_time)
            if early_stopping is not None and trials_since_best >= early_stopping:
                logger.info("%s: early stop after %d trials (%d without "
                            "improvement)", self.task.name, trials_done,
                            trials_since_best)
                break
        if self.best_config is None:
            self.best_config = self.task.config_space.get(0)
        return self.best_config

    # -- helpers -------------------------------------------------------------------
    def _random_unvisited(self, count: int) -> List[ConfigEntity]:
        space = self.task.config_space
        total = len(space)
        out: List[ConfigEntity] = []
        pending: set = set()       # O(1) membership for this batch's picks
        attempts = 0
        while len(out) < count and attempts < count * 50 \
                and len(self._visited) + len(out) < total:
            index = self.rng.randrange(total)
            if index in self._visited or index in pending:
                attempts += 1
                continue
            pending.add(index)
            out.append(space.get(index))
        return out

    def best_history(self) -> List[float]:
        """Best time seen so far, per trial (for Figure 12-style curves)."""
        best = float("inf")
        history = []
        for record in self.records:
            best = min(best, record.mean_time)
            history.append(best)
        return history


@register_tuner("random")
class RandomTuner(Tuner):
    """Uniform random exploration of the configuration space."""

    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        return self._random_unvisited(batch_size)


@register_tuner("grid")
class GridSearchTuner(Tuner):
    """Enumerate the space in index order."""

    def __init__(self, task: Task, seed: int = 0):
        super().__init__(task, seed)
        self._cursor = 0

    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        space = self.task.config_space
        out = []
        while self._cursor < len(space) and len(out) < batch_size:
            out.append(space.get(self._cursor))
            self._cursor += 1
        return out


@register_tuner("ga")
class GATuner(Tuner):
    """Blackbox genetic algorithm over knob indices (no cost model)."""

    def __init__(self, task: Task, population_size: int = 16, elite: int = 4,
                 mutation_prob: float = 0.1, seed: int = 0):
        super().__init__(task, seed)
        self.population_size = population_size
        self.elite = elite
        self.mutation_prob = mutation_prob
        self._population: List[Tuple[int, float]] = []   # (config index, time)
        self._pending: List[int] = []

    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        space = self.task.config_space
        if len(self._visited) >= len(space):
            return []
        if not self._population:
            return self._random_unvisited(batch_size)
        # Breed new candidates from the measured population.
        ranked = sorted(self._population, key=lambda item: item[1])
        parents = [idx for idx, _ in ranked[:max(self.elite, 2)]]
        children: List[ConfigEntity] = []
        pending: set = set()
        dims = space.dims
        attempts = 0
        while len(children) < batch_size and attempts < batch_size * 50:
            attempts += 1
            mother = space.knob_indices(self.rng.choice(parents))
            father = space.knob_indices(self.rng.choice(parents))
            cross = [m if self.rng.random() < 0.5 else f
                     for m, f in zip(mother, father)]
            child = [self.rng.randrange(dims[i]) if self.rng.random() < self.mutation_prob
                     else v for i, v in enumerate(cross)]
            index = space.flat_index(child)
            if index in self._visited or index in pending:
                continue
            pending.add(index)
            children.append(space.get(index))
        if len(children) < batch_size:
            children.extend(self._random_unvisited(batch_size - len(children)))
        return children

    def update(self, inputs, results) -> None:
        for inp, res in zip(inputs, results):
            time = res.mean_time if res.valid else float("inf")
            if math.isfinite(time):
                self._population.append((inp.config.index, time))
        self._population = sorted(self._population, key=lambda item: item[1])[
            :self.population_size]


class SimulatedAnnealingOptimizer:
    """Parallel simulated annealing over the configuration space, guided by a
    cost-model scoring function (higher score = predicted faster)."""

    def __init__(self, task: Task, parallel_chains: int = 16, steps: int = 64,
                 temperature: float = 1.0, seed: int = 0):
        self.task = task
        self.parallel_chains = parallel_chains
        self.steps = steps
        self.temperature = temperature
        self.rng = random.Random(seed)
        self._states: List[int] = []

    def _neighbor(self, index: int) -> int:
        space = self.task.config_space
        knobs = space.knob_indices(index)
        dims = space.dims
        knob = self.rng.randrange(len(knobs))
        if dims[knob] > 1:
            move = self.rng.choice([-1, 1])
            knobs[knob] = (knobs[knob] + move) % dims[knob]
        return space.flat_index(knobs)

    def find_maximums(self, score_fn: Callable[[List[int]], np.ndarray],
                      num_best: int, exclude: set,
                      seeds: Optional[List[int]] = None) -> List[int]:
        space = self.task.config_space
        total = len(space)
        if not self._states:
            self._states = [self.rng.randrange(total) for _ in range(self.parallel_chains)]
        if seeds:
            # Restart part of the chains from the most promising known
            # configurations so the walk explores their neighbourhoods
            # (exploration state still persists across model updates).
            for i, seed in enumerate(seeds[:len(self._states) // 2]):
                self._states[i] = seed
        scores = score_fn(self._states)
        heap: Dict[int, float] = {}
        temperature = self.temperature
        for _ in range(self.steps):
            proposals = [self._neighbor(state) for state in self._states]
            new_scores = score_fn(proposals)
            for i in range(len(self._states)):
                delta = new_scores[i] - scores[i]
                if delta >= 0 or self.rng.random() < math.exp(delta / max(temperature, 1e-6)):
                    self._states[i] = proposals[i]
                    scores[i] = new_scores[i]
                heap[self._states[i]] = max(heap.get(self._states[i], -1e30), scores[i])
            temperature *= 0.95
        candidates = [idx for idx, _ in sorted(heap.items(), key=lambda kv: -kv[1])
                      if idx not in exclude]
        return candidates[:num_best]


@register_tuner("model")
class ModelBasedTuner(Tuner):
    """The paper's ML-guided explorer (Figure 11).

    Measured configurations are featurised from their lowered loop programs;
    a cost model is trained on (features, throughput) and a simulated
    annealing search over the model's predictions proposes the next batch of
    candidates to measure on the device.  :meth:`warm_start` seeds the
    training set from a tuning database, so history of the same operator
    (this workload or a related shape) transfers into a new session.
    """

    @classmethod
    def clear_shared_features(cls) -> None:
        """Backward-compatible alias for clearing the shared evaluation
        caches (lowering + featurisation) all tuners now read through
        :meth:`Task.features_of`."""
        from .eval_cache import clear_eval_caches

        clear_eval_caches()

    def __init__(self, task: Task, cost_model: Optional[object] = None,
                 plan_size: int = 16, sa_steps: int = 64, seed: int = 0,
                 model_kind: str = "gbt"):
        super().__init__(task, seed)
        if cost_model is None:
            cost_model = (GradientBoostedTrees(seed=seed) if model_kind == "gbt"
                          else NeuralCostModel(seed=seed))
        self.cost_model = cost_model
        self.plan_size = plan_size
        self.optimizer = SimulatedAnnealingOptimizer(task, steps=sa_steps, seed=seed)
        self._train_features: List[np.ndarray] = []
        self._train_throughput: List[float] = []
        self._feature_cache: Dict[int, np.ndarray] = {}
        self._trained = False

    # -- featurisation ------------------------------------------------------------
    def _features_of(self, index: int) -> np.ndarray:
        vector = self._feature_cache.get(index)
        if vector is None:
            try:
                # Shared, LRU-bounded service: one lowering+featurisation per
                # (workload, target, config) serves the tuner, the measurer,
                # and the compiler's estimation paths alike.
                vector = self.task.feature_vector(index)
            except Exception:
                from ..tir.analysis import FEATURE_NAMES

                # Placeholder for configs whose schedule cannot be lowered:
                # sized from the feature schema, so a failure on the very
                # first candidate cannot poison the feature-matrix width.
                vector = np.zeros(len(FEATURE_NAMES))
            self._feature_cache[index] = vector
        return vector

    def _score(self, indices: List[int]) -> np.ndarray:
        if not self._trained:
            return np.array([self.rng.random() for _ in indices])
        feats = np.stack([self._features_of(i) for i in indices])
        return self.cost_model.predict(feats)

    # -- tuner interface -------------------------------------------------------------
    def next_batch(self, batch_size: int) -> List[ConfigEntity]:
        space = self.task.config_space
        if not self._trained:
            return self._random_unvisited(batch_size)
        measured = sorted((r for r in self.records if r.valid),
                          key=lambda r: r.mean_time)
        seeds = [r.config_index for r in measured[:4]]
        candidates = self.optimizer.find_maximums(self._score, batch_size,
                                                  self._visited, seeds=seeds)
        configs = [space.get(i) for i in candidates]
        if len(configs) < batch_size:
            configs.extend(self._random_unvisited(batch_size - len(configs)))
        return configs

    def update(self, inputs, results) -> None:
        for inp, res in zip(inputs, results):
            if not res.valid:
                continue
            features = (res.features.vector()
                        if res.features is not None
                        else self._features_of(inp.config.index))
            self._feature_cache[inp.config.index] = features
            self._train_features.append(features)
            self._train_throughput.append(1.0 / max(res.mean_time, 1e-12))
        self._maybe_fit()

    def _maybe_fit(self) -> None:
        if len(self._train_features) >= 8:
            x = np.stack(self._train_features)
            y = np.asarray(self._train_throughput)
            # Normalise throughput so the rank objective is well conditioned.
            y = y / y.max()
            self.cost_model.fit(x, y)
            self._trained = True

    # -- transfer learning -----------------------------------------------------
    def adopt_pretrained(self, cost_model) -> None:
        """Adopt a cost model pretrained elsewhere (e.g. fitted by the tuning
        service on its accumulated database) so exploration is model-guided
        from the very first batch.  Later :meth:`update` refits replace it
        once this session has gathered its own measurements."""
        self.cost_model = cost_model
        self._trained = True

    def warm_start(self, database, max_entries: int = 128) -> int:
        """Seed the cost model from prior measurements of the same operator.

        Entries for this exact workload are featurised through this task's
        configuration space; entries for *other* workloads of the same
        operator family contribute their stored feature vectors (recorded by
        earlier sessions).  Returns the number of samples added; if enough
        history exists the model is fitted immediately, so the very first
        batch is already model-guided instead of random.
        """
        if database is None:
            return 0
        added = 0
        dim: Optional[int] = None
        if self._train_features:
            dim = len(self._train_features[0])
        # Same-workload entries first: they are featurised through this
        # task's own space, anchoring the expected feature dimension before
        # any cross-workload entry with a stale stored vector is seen.
        entries = sorted(database,
                         key=lambda e: e.task_name != self.task.name)
        for entry in entries:
            if added >= max_entries:
                break
            if entry.operator != self.task.operator or entry.mean_time <= 0 \
                    or not math.isfinite(entry.mean_time):
                continue
            if entry.task_name == self.task.name:
                if entry.config_index >= len(self.task.config_space):
                    continue
                features = self._features_of(entry.config_index)
            elif entry.features is not None:
                features = np.asarray(entry.features, dtype=float)
            else:
                continue
            if dim is None:
                dim = len(features)
            if len(features) != dim:
                continue
            self._train_features.append(features)
            self._train_throughput.append(1.0 / entry.mean_time)
            added += 1
        if added:
            logger.info("%s: warm start with %d historical samples",
                        self.task.name, added)
            self._maybe_fit()
        return added
