"""Tests for the unified tuning session: ``repro.autotune``, the tuner
registry, ``TuningOptions``, the parallel measurer, ``ApplyHistoryBest``
history-based compilation, the deprecation shims, and the tuning database
dedupe/persistence behaviour."""

import logging
import math
import time
import types
import warnings

import numpy as np
import pytest

import repro
from repro import autotvm
from repro.autotvm import (
    ApplyHistoryBest,
    GATuner,
    LocalMeasurer,
    ModelBasedTuner,
    ParallelMeasurer,
    ProgressEvent,
    RandomTuner,
    RPCMeasurer,
    TuningDatabase,
    TuningOptions,
    TuningReport,
    get_tuner,
    list_tuners,
    register_tuner,
)
from repro.autotvm.registry import TUNER_REGISTRY
from repro.compiler import PassContext, PassInstrument
from repro.graph.ir import Graph, Node
from repro.graph.ops import OP_REGISTRY
from repro.hardware import arm_cpu, cuda
from repro.runtime.rpc import RPCServer, Tracker


def conv_graph(ci=16, hw=16, co=16, kernel=3, stride=1, padding=1):
    """A small one-convolution graph (cheap to tune)."""
    data = Node("null", "data")
    data.shape = (1, ci, hw, hw)
    data.dtype = "float32"
    weight = Node("null", "weight")
    weight.shape = (co, ci, kernel, kernel)
    weight.dtype = "float32"
    conv = Node("conv2d", "conv", [data, weight],
                {"strides": stride, "padding": padding})
    conv.dtype = "float32"
    conv.shape = OP_REGISTRY["conv2d"].infer_shape(
        [data.shape, weight.shape], conv.attrs)
    return Graph([conv])


@pytest.fixture(scope="module")
def small_task():
    task, = autotvm.extract_tasks(conv_graph(), cuda())
    return task


# ---------------------------------------------------------------------------
# Tuner registry
# ---------------------------------------------------------------------------

class TestTunerRegistry:
    def test_builtin_tuners_registered(self):
        assert {"random", "grid", "ga", "model"} <= set(list_tuners())
        assert get_tuner("model") is ModelBasedTuner
        assert get_tuner("random") is RandomTuner

    def test_unknown_tuner_fails_loudly(self):
        with pytest.raises(ValueError, match="registered tuners"):
            get_tuner("modle")          # typo

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_tuner("random", RandomTuner)

    def test_register_and_override(self):
        class MyTuner(RandomTuner):
            pass

        register_tuner("_test_tuner", MyTuner)
        try:
            assert get_tuner("_test_tuner") is MyTuner
            register_tuner("_test_tuner", RandomTuner, override=True)
            assert get_tuner("_test_tuner") is RandomTuner
        finally:
            TUNER_REGISTRY.pop("_test_tuner", None)

    def test_autotune_validates_tuner_before_work(self, small_task):
        with pytest.raises(ValueError, match="registered tuners"):
            autotvm.tune_tasks([small_task], tuner="nope")


# ---------------------------------------------------------------------------
# TuningOptions
# ---------------------------------------------------------------------------

class TestTuningOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            TuningOptions(trials=0)
        with pytest.raises(ValueError):
            TuningOptions(batch_size=-1)
        with pytest.raises(ValueError):
            TuningOptions(early_stopping=0)
        with pytest.raises(ValueError):
            TuningOptions(n_parallel=0)

    def test_overridden_ignores_none(self):
        opts = TuningOptions(trials=32, tuner="ga")
        same = opts.overridden(trials=None, tuner=None)
        assert same.trials == 32 and same.tuner == "ga"
        changed = opts.overridden(trials=8)
        assert changed.trials == 8 and changed.tuner == "ga"
        assert opts.trials == 32                    # original untouched


# ---------------------------------------------------------------------------
# The round trip: autotune -> ApplyHistoryBest -> compile
# ---------------------------------------------------------------------------

class KernelObserver(PassInstrument):
    """Instrument recording which generated kernels used tuned configs."""

    name = "kernel-observer"

    def __init__(self):
        self.kernels = []

    def observe_kernel(self, kernel):
        self.kernels.append(kernel)

    @property
    def tuned(self):
        return [k for k in self.kernels if k.tuned]


class TestAutotuneRoundTrip:
    @pytest.fixture(scope="class")
    def report(self):
        return repro.autotune(conv_graph(), target="cuda", trials=16,
                              options=TuningOptions(seed=0, batch_size=8))

    def test_report_structure(self, report):
        assert isinstance(report, TuningReport)
        assert len(report) == 1
        result = report.results[0]
        assert result.task_name.startswith("conv2d_")
        assert result.trials == 16
        assert len(result.curve) == 16
        # fig12-ready: best-so-far curve is non-increasing
        assert all(b <= a for a, b in zip(result.curve, result.curve[1:]))
        assert math.isfinite(result.estimate)
        assert result.elapsed > 0 and report.elapsed >= result.elapsed
        assert len(report.database) == 1
        assert "conv2d" in report.summary()

    def test_history_best_compile_uses_tuned_configs(self, report):
        graph = conv_graph()
        untuned = repro.compile(graph, target="cuda")
        assert untuned.tuned_kernels == 0

        observer = KernelObserver()
        with report.apply_history_best() as history:
            with PassContext(instruments=[observer]):
                tuned = repro.compile(conv_graph(), target="cuda")
        assert history.hits >= 1
        assert len(observer.tuned) == 1             # the conv kernel
        assert tuned.tuned_kernels == 1
        assert tuned.total_time <= untuned.total_time

    def test_pass_context_config_integration(self, report):
        with PassContext(config={"tuning_db": report.database}):
            tuned = repro.compile(conv_graph(), target="cuda")
        assert tuned.tuned_kernels == 1

    def test_tuning_db_kwarg_is_deprecated_alias(self, report):
        with pytest.warns(DeprecationWarning, match="tuning_db"):
            module = repro.compile(conv_graph(), target="cuda",
                                   tuning_db=report.database)
        assert module.tuned_kernels == 1

    def test_apply_history_best_nesting_and_current(self, report):
        assert ApplyHistoryBest.current() is None
        outer = ApplyHistoryBest(report.database)
        inner = ApplyHistoryBest(TuningDatabase())
        with outer:
            assert ApplyHistoryBest.current() is outer
            with inner:
                assert ApplyHistoryBest.current() is inner
            assert ApplyHistoryBest.current() is outer
        assert ApplyHistoryBest.current() is None

    def test_never_regresses_untuned_build(self):
        # One trial of pure random search cannot beat the fallback heuristic;
        # the regression floor must kick in so compiling with history is
        # still no worse than the untuned build.
        report = repro.autotune(conv_graph(co=32), target="cuda", trials=1,
                                tuner="random",
                                options=TuningOptions(seed=3, batch_size=1))
        untuned = repro.compile(conv_graph(co=32), target="cuda")
        with report.apply_history_best():
            tuned = repro.compile(conv_graph(co=32), target="cuda")
        assert tuned.total_time <= untuned.total_time
        assert tuned.tuned_kernels == 1

    def test_autotune_rejects_bad_target_and_model(self):
        with pytest.raises(ValueError, match="Unknown target"):
            repro.autotune(conv_graph(), target="cudaa", trials=2)
        with pytest.raises(KeyError, match="Unknown model"):
            repro.autotune("resnet-1800", target="cuda", trials=2)


class TestProgressAndLogging:
    def test_progress_callbacks_receive_events(self):
        events = []
        repro.autotune(conv_graph(), target="cuda", trials=8,
                       options=TuningOptions(seed=0, batch_size=4,
                                             callbacks=[events.append]))
        assert len(events) == 2                     # two batches of 4
        assert all(isinstance(e, ProgressEvent) for e in events)
        assert events[-1].trial == 8
        assert events[-1].done
        assert events[0].best_time >= events[-1].best_time
        assert events[0].task_name.startswith("conv2d_")
        assert all(len(e.batch_times) == 4 for e in events)

    def test_tuning_logs_to_repro_autotvm_logger(self, caplog):
        with caplog.at_level(logging.INFO, logger="repro.autotvm"):
            repro.autotune(conv_graph(), target="cuda", trials=4,
                           tuner="random")
        assert any(r.name == "repro.autotvm" for r in caplog.records)
        assert any("tuning session" in r.message for r in caplog.records)

    def test_early_stopping_cuts_the_budget(self, small_task):
        tuner = RandomTuner(small_task, seed=0)
        tuner.tune(n_trial=64, batch_size=4, early_stopping=8,
                   measurer=LocalMeasurer(number=1, seed=0))
        assert len(tuner.records) < 64

    def test_early_stopping_emits_terminal_event(self):
        events = []
        repro.autotune(conv_graph(), target="cuda", trials=64, tuner="random",
                       options=TuningOptions(seed=0, batch_size=4,
                                             early_stopping=4,
                                             ensure_no_regression=False,
                                             callbacks=[events.append]))
        assert events[-1].done
        assert events[-1].trial < 64


# ---------------------------------------------------------------------------
# Deprecated graph-level shims
# ---------------------------------------------------------------------------

class TestDeprecatedShims:
    def test_tune_graph_warns_and_still_works(self):
        from repro.graph import tune_graph

        with pytest.warns(DeprecationWarning, match="tune_graph"):
            db = tune_graph(conv_graph(), cuda(), {}, n_trial=4, tuner="random")
        assert len(db) == 1

    def test_tune_tasks_warns_and_still_works(self, small_task):
        from repro.graph import tune_tasks

        with pytest.warns(DeprecationWarning, match="tune_tasks"):
            db = tune_tasks([small_task], n_trial=4, tuner="random")
        assert db.best(small_task.name) is not None


# ---------------------------------------------------------------------------
# Parallel measurement
# ---------------------------------------------------------------------------

class TestParallelMeasurer:
    def test_bit_identical_to_serial_path(self, small_task):
        inputs = [autotvm.MeasureInput(small_task, cfg)
                  for cfg in small_task.config_space.sample(16)]
        serial = LocalMeasurer(number=3, seed=11).measure(inputs)
        for workers in (1, 2, 8):
            parallel = ParallelMeasurer(n_parallel=workers, number=3,
                                        seed=11).measure(inputs)
            assert [r.mean_time for r in parallel] == \
                [r.mean_time for r in serial]

    def test_parallel_tuning_matches_serial_tuning(self, small_task):
        def run(measurer):
            tuner = RandomTuner(small_task, seed=4)
            tuner.tune(n_trial=16, batch_size=8, measurer=measurer)
            return [(r.config_index, r.mean_time) for r in tuner.records]

        assert run(LocalMeasurer(number=2, seed=4)) == \
            run(ParallelMeasurer(n_parallel=6, number=2, seed=4))

    def test_build_errors_become_invalid_records(self, small_task):
        broken = autotvm.MeasureInput(small_task,
                                      small_task.config_space.get(0))
        broken.task = types.SimpleNamespace(
            name=small_task.name, target=small_task.target,
            lower=lambda cfg: (_ for _ in ()).throw(RuntimeError("boom")))
        good = autotvm.MeasureInput(small_task, small_task.config_space.get(1))
        records = ParallelMeasurer(n_parallel=4, number=1).measure(
            [broken, good])
        assert not records[0].valid and "boom" in records[0].error
        assert records[1].valid

    def test_counts_measurements(self, small_task):
        measurer = ParallelMeasurer(n_parallel=4, number=1)
        inputs = [autotvm.MeasureInput(small_task, cfg)
                  for cfg in small_task.config_space.sample(5)]
        measurer.measure(inputs)
        assert measurer.num_measured == 5

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelMeasurer(n_parallel=0)


# ---------------------------------------------------------------------------
# RPC measurement (satellite: previously untested)
# ---------------------------------------------------------------------------

class TestRPCMeasurer:
    def _tracker(self, target, count=2):
        tracker = Tracker()
        tracker.register_device("gpu", target.model, count=count)
        return tracker

    def test_round_trip_through_tracker(self, small_task):
        target = small_task.target
        tracker = self._tracker(target)
        measurer = RPCMeasurer(tracker, "gpu", number=2)
        inputs = [autotvm.MeasureInput(small_task, cfg)
                  for cfg in small_task.config_space.sample(4)]
        records = measurer.measure(inputs)
        assert len(records) == 4
        assert all(r.valid and r.mean_time > 0 for r in records)
        # Every device was released back to the pool.
        summary = tracker.summary()["gpu"]
        assert summary["free"] == summary["total"]
        assert summary["requests"] == 4

    def test_invalid_schedule_yields_invalid_record(self, small_task):
        tracker = self._tracker(small_task.target)
        measurer = RPCMeasurer(tracker, "gpu", number=1)
        broken = autotvm.MeasureInput(small_task, small_task.config_space.get(0))
        broken.task = types.SimpleNamespace(
            name=small_task.name, target=small_task.target,
            lower=lambda cfg: (_ for _ in ()).throw(RuntimeError("bad lower")))
        record, = measurer.measure([broken])
        assert not record.valid
        assert "bad lower" in record.error

    def test_remote_failure_releases_device(self, small_task):
        class FailingModel:
            def measure(self, payload, number=3, rng=None):
                raise RuntimeError("device on fire")

        tracker = Tracker()
        tracker.register(RPCServer("gpu", FailingModel()))
        measurer = RPCMeasurer(tracker, "gpu", number=1)
        inp = autotvm.MeasureInput(small_task, small_task.config_space.get(0))
        record, = measurer.measure([inp])
        assert not record.valid and "device on fire" in record.error
        # the lease must be returned even on failure
        assert tracker.summary()["gpu"]["free"] == 1

    def test_unknown_device_key_fails_loudly(self, small_task):
        tracker = self._tracker(small_task.target)
        measurer = RPCMeasurer(tracker, "tpu", number=1)
        inp = autotvm.MeasureInput(small_task, small_task.config_space.get(0))
        with pytest.raises(KeyError, match="No devices registered"):
            measurer.measure([inp])


# ---------------------------------------------------------------------------
# Determinism across seeds (satellite: previously untested)
# ---------------------------------------------------------------------------

class TestTunerDeterminism:
    @pytest.mark.parametrize("tuner_cls", [RandomTuner, GATuner, ModelBasedTuner])
    def test_same_seed_same_trajectory(self, small_task, tuner_cls):
        def run(seed):
            tuner = tuner_cls(small_task, seed=seed)
            tuner.tune(n_trial=20, batch_size=5,
                       measurer=LocalMeasurer(number=2, seed=seed))
            return [(r.config_index, r.mean_time) for r in tuner.records]

        assert run(7) == run(7)

    def test_different_seed_different_trajectory(self, small_task):
        def run(seed):
            tuner = RandomTuner(small_task, seed=seed)
            tuner.tune(n_trial=12, batch_size=4,
                       measurer=LocalMeasurer(number=1, seed=seed))
            return [r.config_index for r in tuner.records]

        assert run(1) != run(2)


# ---------------------------------------------------------------------------
# _random_unvisited scaling (satellite: quadratic membership probing fix)
# ---------------------------------------------------------------------------

class TestRandomUnvisitedScaling:
    def _big_space_tuner(self, knobs=4, per_knob=12):
        space = autotvm.ConfigSpace()
        for i in range(knobs):
            space.define_knob(f"k{i}", list(range(per_knob)))
        task = types.SimpleNamespace(config_space=space, name="big",
                                     operator="big")
        return RandomTuner(task, seed=0), len(space)

    def test_large_batch_is_unique_and_fast(self):
        tuner, total = self._big_space_tuner()   # 12^4 = 20736 configs
        start = time.perf_counter()
        batch = tuner.next_batch(4096)
        elapsed = time.perf_counter() - start
        indices = [c.index for c in batch]
        assert len(indices) == 4096
        assert len(set(indices)) == 4096
        assert all(0 <= i < total for i in indices)
        # The old quadratic membership probe took seconds here; the set-based
        # bookkeeping finishes in well under a second even on slow CI.
        assert elapsed < 2.0

    def test_exhausts_space_without_duplicates(self):
        tuner, total = self._big_space_tuner(knobs=2, per_knob=8)  # 64 configs
        seen = set()
        while True:
            batch = tuner.next_batch(16)
            if not batch:
                break
            for cfg in batch:
                assert cfg.index not in seen
                seen.add(cfg.index)
                tuner._visited.add(cfg.index)
        assert len(seen) == total


# ---------------------------------------------------------------------------
# Tuning database: dedupe, path binding, compaction, features
# ---------------------------------------------------------------------------

class TestTuningDatabase:
    def test_load_binds_path(self, tmp_path, small_task):
        path = str(tmp_path / "log.jsonl")
        TuningDatabase(path).record(small_task, small_task.config_space.get(1),
                                    1e-3)
        db = TuningDatabase()
        db.load(path)
        assert db.path == path
        # adds after load() persist to the same file
        db.record(small_task, small_task.config_space.get(2), 2e-3)
        assert len(TuningDatabase(path)) == 2

    def test_duplicate_add_keeps_best_time(self, small_task):
        db = TuningDatabase()
        cfg = small_task.config_space.get(3)
        db.record(small_task, cfg, 2e-3)
        db.record(small_task, cfg, 1e-3)           # better: replaces
        db.record(small_task, cfg, 5e-3)           # worse: ignored
        assert len(db) == 1
        assert db.best(small_task.name).mean_time == 1e-3

    def test_append_reload_cycles_do_not_bloat(self, tmp_path, small_task):
        path = str(tmp_path / "log.jsonl")
        cfg = small_task.config_space.get(4)
        for _ in range(5):
            db = TuningDatabase(path)
            db.record(small_task, cfg, 1.5e-3)     # same entry every cycle
        final = TuningDatabase(path)
        assert len(final) == 1
        # Only the first cycle wrote a line: later identical records are
        # recognised as duplicates against the loaded (deduped) state.
        with open(path) as handle:
            assert len(handle.readlines()) == 1

    def test_compact_rewrites_log(self, tmp_path, small_task):
        path = str(tmp_path / "log.jsonl")
        cfg = small_task.config_space.get(0)
        db = TuningDatabase(path)
        for t in (3e-3, 2e-3, 1e-3):               # two improvements append
            db.record(small_task, cfg, t)
        with open(path) as handle:
            assert len(handle.readlines()) == 3
        db.compact()
        with open(path) as handle:
            assert len(handle.readlines()) == 1
        assert TuningDatabase(path).best(small_task.name).mean_time == 1e-3

    def test_features_round_trip(self, tmp_path, small_task):
        path = str(tmp_path / "log.jsonl")
        db = TuningDatabase(path)
        db.record(small_task, small_task.config_space.get(5), 1e-3,
                  features=[1.0, 2.0, 3.0])
        entry = TuningDatabase(path).best(small_task.name)
        assert entry.features == [1.0, 2.0, 3.0]
        assert entry.operator == "conv2d"

    def test_entries_for_operator(self, small_task):
        db = TuningDatabase()
        db.record(small_task, small_task.config_space.get(0), 1e-3)
        assert len(db.entries_for_operator("conv2d")) == 1
        assert db.entries_for_operator("dense") == []


# ---------------------------------------------------------------------------
# Transfer learning warm start
# ---------------------------------------------------------------------------

class TestWarmStart:
    def test_warm_start_from_same_workload_history(self, small_task):
        db = TuningDatabase()
        measurer = LocalMeasurer(number=1, seed=0)
        for cfg in small_task.config_space.sample(10):
            record, = measurer.measure([autotvm.MeasureInput(small_task, cfg)])
            if record.valid:
                db.record(small_task, cfg, record.mean_time)
        tuner = ModelBasedTuner(small_task, seed=0)
        added = tuner.warm_start(db)
        assert added >= 8
        assert tuner._trained            # first batch will be model-guided

    def test_warm_start_from_stored_features_of_other_shapes(self, small_task):
        # Entries from a *different* conv workload transfer through their
        # stored feature vectors.
        other_task, = autotvm.extract_tasks(conv_graph(ci=8, hw=8, co=8),
                                            cuda())
        assert other_task.name != small_task.name
        db = TuningDatabase()
        measurer = LocalMeasurer(number=1, seed=0)
        for cfg in other_task.config_space.sample(10):
            record, = measurer.measure([autotvm.MeasureInput(other_task, cfg)])
            if record.valid:
                db.record(other_task, cfg, record.mean_time,
                          features=record.features.to_vector())
        tuner = ModelBasedTuner(small_task, seed=0)
        assert tuner.warm_start(db) >= 8

    def test_warm_start_ignores_unrelated_operators(self, small_task):
        db = TuningDatabase()
        db.add(autotvm.TuningLogEntry("dense_(1, 64, 64, 'float32')", "cuda",
                                      0, {}, 1e-3, features=[1.0] * 4))
        tuner = ModelBasedTuner(small_task, seed=0)
        assert tuner.warm_start(db) == 0

    def test_session_warm_start_reported(self, small_task):
        first = autotvm.tune_tasks([small_task], trials=16, tuner="model",
                                   options=TuningOptions(seed=0))
        second = autotvm.tune_tasks([small_task], trials=8, tuner="model",
                                    options=TuningOptions(seed=1),
                                    database=first.database)
        assert second.results[0].warm_samples > 0

    def test_cross_shape_transfer_through_public_api(self):
        # History of conv shape A, gathered through plain repro.autotune,
        # warm-starts a session on a *different* conv shape B — and cannot
        # make B's recorded best worse than tuning B cold.
        opts = TuningOptions(trials=16, seed=0)
        shape_a = repro.autotune(conv_graph(co=32), target=cuda(),
                                 options=opts)
        cold = repro.autotune(conv_graph(co=48), target=cuda(), options=opts)
        warm = repro.autotune(conv_graph(co=48), target=cuda(), options=opts,
                              database=shape_a.database)
        warm_result, = warm.results
        cold_result, = cold.results
        assert warm_result.task_name != shape_a.results[0].task_name
        assert warm_result.warm_samples > 0
        assert warm_result.estimate <= cold_result.estimate * (1 + 1e-9)


# ---------------------------------------------------------------------------
# The issue's acceptance round trip, verbatim: a zoo model tuned end to end
# ---------------------------------------------------------------------------

class TestAcceptanceRoundTripResnet18:
    @pytest.fixture(scope="class")
    def session(self):
        report = repro.autotune("resnet18", target="gpu", trials=16)
        untuned = repro.compile("resnet18", target="gpu")
        observer = KernelObserver()
        with report.apply_history_best() as history:
            with PassContext(instruments=[observer]):
                tuned = repro.compile("resnet18", target="gpu")
        return report, untuned, tuned, history, observer

    def test_tasks_extracted_and_tuned(self, session):
        report, _untuned, _tuned, _history, _observer = session
        assert len(report) >= 10                   # resnet18's unique workloads
        assert all(len(r.curve) == r.trials for r in report)
        assert len(report.database) == len(report)

    def test_compile_inside_context_uses_tuned_configs(self, session):
        _report, _untuned, tuned, history, observer = session
        assert history.hits > 0
        assert tuned.tuned_kernels > 0
        assert len(observer.tuned) == tuned.tuned_kernels

    def test_tuned_latency_not_worse_than_untuned(self, session):
        _report, untuned, tuned, _history, _observer = session
        assert tuned.total_time <= untuned.total_time
        assert untuned.tuned_kernels == 0


# ---------------------------------------------------------------------------
# Model-zoo parity with repro.compile inputs
# ---------------------------------------------------------------------------

class TestModelInputParity:
    def test_zoo_name_separator_insensitive(self):
        from repro.frontend.models import get_model

        direct = get_model("resnet-18")
        relaxed = get_model("resnet18")
        assert len(direct[0].nodes) == len(relaxed[0].nodes)
        with pytest.raises(KeyError):
            get_model("resnet-999")

    def test_extract_tasks_accepts_compile_model_forms(self):
        graph = conv_graph()
        from_graph = autotvm.extract_tasks(graph, "cuda")
        from_tuple = autotvm.extract_tasks((graph, {}), cuda())
        assert [t.name for t in from_graph] == [t.name for t in from_tuple]
        zoo = autotvm.extract_tasks("dqn", "cuda")
        assert len(zoo) >= 1
