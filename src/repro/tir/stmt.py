"""Low-level loop program IR (TIR).

The lowering pipeline turns a scheduled tensor expression into a loop nest
built from the statement nodes in this module.  The IR is deliberately close
to the paper's "optimized low level loop program": explicit ``for`` loops
with annotations (parallel / vectorize / unroll / thread binding / virtual
thread), buffer allocations with memory scopes, stores, barriers, hardware
intrinsic calls, and the decoupled-access-execute dependence tokens used for
latency hiding (Section 4.4, Figures 8 and 9).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..te.expr import Call, Expr, ExprLike, IntImm, Var, _dispatch, as_expr

__all__ = [
    "Buffer",
    "BufferLoad",
    "Stmt",
    "BufferStore",
    "ForKind",
    "For",
    "IfThenElse",
    "SeqStmt",
    "Allocate",
    "AttrStmt",
    "Evaluate",
    "Barrier",
    "DepPush",
    "DepPop",
    "IntrinsicStmt",
    "LoweredFunc",
    "StmtVisitor",
    "seq",
    "format_stmt",
]


class Buffer:
    """A named, typed, multi-dimensional memory region with a scope."""

    _counter = itertools.count()

    def __init__(self, name: str, shape: Sequence[int], dtype: str = "float32",
                 scope: str = "global"):
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = dtype
        self.scope = scope
        self.uid = next(Buffer._counter)

    @property
    def size(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    @property
    def dtype_bytes(self) -> int:
        return dtype_bytes(self.dtype)

    @property
    def size_bytes(self) -> int:
        return self.size * self.dtype_bytes

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"Buffer({self.name}[{dims}] {self.dtype} @{self.scope})"


def dtype_bytes(dtype: str) -> int:
    """Size in bytes of one element of ``dtype``."""
    table = {
        "float64": 8, "float32": 4, "float16": 2,
        "int64": 8, "int32": 4, "int16": 2, "int8": 1,
        "uint64": 8, "uint32": 4, "uint16": 2, "uint8": 1,
        "bool": 1, "int4": 1, "int2": 1, "int1": 1,
    }
    return table.get(dtype, 4)


class BufferLoad(Expr):
    """Load one element of a buffer at symbolic indices."""

    def __init__(self, buffer: Buffer, indices: Sequence[ExprLike]):
        self.buffer = buffer
        self.indices = [as_expr(i) for i in indices]
        self.dtype = buffer.dtype

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}]"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of all statements."""


class BufferStore(Stmt):
    """Store a value to one element of a buffer."""

    def __init__(self, buffer: Buffer, indices: Sequence[ExprLike], value: ExprLike):
        self.buffer = buffer
        self.indices = [as_expr(i) for i in indices]
        self.value = as_expr(value)

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{self.buffer.name}[{idx}] = {self.value}"


class ForKind:
    """Loop annotation kinds."""

    SERIAL = "serial"
    PARALLEL = "parallel"
    VECTORIZED = "vectorized"
    UNROLLED = "unrolled"
    THREAD_BINDING = "thread_binding"
    VTHREAD = "vthread"
    TENSORIZED = "tensorized"


class For(Stmt):
    """A loop ``for loop_var in [min, min+extent)`` with an annotation kind."""

    def __init__(self, loop_var: Var, min_value: ExprLike, extent: ExprLike,
                 body: Stmt, kind: str = ForKind.SERIAL, thread_tag: str = ""):
        self.loop_var = loop_var
        self.min = as_expr(min_value)
        self.extent = as_expr(extent)
        self.body = body
        self.kind = kind
        self.thread_tag = thread_tag
        self._extent_value = None

    def extent_value(self) -> int:
        # Memoized: the extent expression is fixed at construction, and the
        # analysis/lowering passes query it once per enclosing-loop walk.
        # Symbolic extents memoize the message, not the exception instance,
        # so repeated raises don't pin or race on a shared traceback.
        cached = self._extent_value
        if cached is None:
            from ..te.expr import simplify

            extent = simplify(self.extent)
            if isinstance(extent, IntImm):
                cached = extent.value
            else:
                cached = f"Loop {self.loop_var} has symbolic extent {extent}"
            self._extent_value = cached
        if isinstance(cached, str):
            raise ValueError(cached)
        return cached

    def __repr__(self) -> str:
        tag = f" [{self.thread_tag}]" if self.thread_tag else ""
        return f"for({self.loop_var}, {self.min}, {self.extent}, {self.kind}{tag})"


class IfThenElse(Stmt):
    def __init__(self, condition: Expr, then_body: Stmt, else_body: Optional[Stmt] = None):
        self.condition = condition
        self.then_body = then_body
        self.else_body = else_body

    def __repr__(self) -> str:
        return f"if({self.condition})"


class SeqStmt(Stmt):
    """A sequence of statements executed in order."""

    def __init__(self, stmts: Sequence[Stmt]):
        flattened: List[Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, SeqStmt):
                flattened.extend(stmt.stmts)
            elif stmt is not None:
                flattened.append(stmt)
        self.stmts = flattened

    def __repr__(self) -> str:
        return f"SeqStmt({len(self.stmts)})"


class Allocate(Stmt):
    """Allocate a buffer for the duration of ``body``."""

    def __init__(self, buffer: Buffer, body: Stmt):
        self.buffer = buffer
        self.body = body

    def __repr__(self) -> str:
        return f"allocate {self.buffer!r}"


class AttrStmt(Stmt):
    """Attach an attribute (thread extent, storage scope, pragma...) to a body."""

    def __init__(self, key: str, node: object, value: object, body: Stmt):
        self.key = key
        self.node = node
        self.value = value
        self.body = body

    def __repr__(self) -> str:
        return f"attr[{self.key}] = {self.value}"


class Evaluate(Stmt):
    """Evaluate an expression for its side effects (intrinsic calls)."""

    def __init__(self, expr: Expr):
        self.expr = expr

    def __repr__(self) -> str:
        return f"eval({self.expr})"


class Barrier(Stmt):
    """Memory synchronisation barrier among cooperating threads."""

    def __init__(self, scope: str = "shared"):
        self.scope = scope

    def __repr__(self) -> str:
        return f"barrier({self.scope})"


class DepPush(Stmt):
    """Push a dependence token from one pipeline stage to another (DAE sync)."""

    def __init__(self, from_stage: str, to_stage: str):
        self.from_stage = from_stage
        self.to_stage = to_stage

    def __repr__(self) -> str:
        return f"{self.from_stage}.push_dep_to({self.to_stage})"


class DepPop(Stmt):
    """Pop (wait for) a dependence token from another pipeline stage."""

    def __init__(self, from_stage: str, to_stage: str):
        self.from_stage = from_stage
        self.to_stage = to_stage

    def __repr__(self) -> str:
        return f"{self.to_stage}.pop_dep_from({self.from_stage})"


class IntrinsicStmt(Stmt):
    """A tensorized region replaced by a hardware intrinsic call.

    Carries enough information for both the functional interpreter (which
    executes ``behaviour``) and the hardware models (which account for the
    intrinsic's cost) to handle the call.
    """

    def __init__(self, name: str, intrin: object, inputs: Sequence[Buffer],
                 output: Buffer, input_offsets: Sequence[Sequence[ExprLike]],
                 output_offset: Sequence[ExprLike], reduction_update: bool = False,
                 pipeline_stage: str = "ex"):
        self.name = name
        self.intrin = intrin
        self.inputs = list(inputs)
        self.output = output
        self.input_offsets = [[as_expr(i) for i in offs] for offs in input_offsets]
        self.output_offset = [as_expr(i) for i in output_offset]
        self.reduction_update = reduction_update
        self.pipeline_stage = pipeline_stage

    def __repr__(self) -> str:
        return f"intrinsic {self.name}({', '.join(b.name for b in self.inputs)}) -> {self.output.name}"


class LoweredFunc:
    """A lowered operator: argument buffers plus the loop-nest body."""

    def __init__(self, name: str, args: Sequence[Buffer], body: Stmt,
                 allocations: Optional[Sequence[Buffer]] = None):
        self.name = name
        self.args = list(args)
        self.body = body
        self.allocations = list(allocations or [])

    def __repr__(self) -> str:
        return f"LoweredFunc({self.name}, args=[{', '.join(a.name for a in self.args)}])"


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------

def seq(*stmts: Optional[Stmt]) -> Stmt:
    """Build a sequence, dropping ``None`` entries and unwrapping singletons."""
    cleaned = [s for s in stmts if s is not None]
    if len(cleaned) == 1:
        return cleaned[0]
    return SeqStmt(cleaned)


def stmt_children(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, IfThenElse):
        return [stmt.then_body] + ([stmt.else_body] if stmt.else_body is not None else [])
    if isinstance(stmt, SeqStmt):
        return list(stmt.stmts)
    if isinstance(stmt, (Allocate, AttrStmt)):
        return [stmt.body]
    return []


class StmtVisitor:
    """Read-only traversal over a statement tree."""

    def visit(self, stmt: Stmt) -> None:
        method = _dispatch(self, stmt)
        if method is not None:
            method(self, stmt)
        else:
            self.generic_visit(stmt)

    def generic_visit(self, stmt: Stmt) -> None:
        for child in stmt_children(stmt):
            self.visit(child)


def format_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Pretty-print a statement tree for debugging and documentation."""
    pad = "  " * indent
    if isinstance(stmt, SeqStmt):
        return "\n".join(format_stmt(s, indent) for s in stmt.stmts)
    if isinstance(stmt, For):
        tag = f" // {self_tag}" if (self_tag := stmt.thread_tag) else ""
        head = (f"{pad}for {stmt.loop_var} in range({stmt.min}, "
                f"{stmt.min} + {stmt.extent}) [{stmt.kind}]{tag}:")
        return head + "\n" + format_stmt(stmt.body, indent + 1)
    if isinstance(stmt, IfThenElse):
        text = f"{pad}if {stmt.condition}:\n" + format_stmt(stmt.then_body, indent + 1)
        if stmt.else_body is not None:
            text += f"\n{pad}else:\n" + format_stmt(stmt.else_body, indent + 1)
        return text
    if isinstance(stmt, Allocate):
        return (f"{pad}allocate {stmt.buffer.name}"
                f"[{'x'.join(str(s) for s in stmt.buffer.shape)}] "
                f"@{stmt.buffer.scope}\n" + format_stmt(stmt.body, indent))
    if isinstance(stmt, AttrStmt):
        return f"{pad}// attr {stmt.key} = {stmt.value}\n" + format_stmt(stmt.body, indent)
    return f"{pad}{stmt!r}"
