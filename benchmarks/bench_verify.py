"""Static-verification benchmark (tracked across PRs).

Exercises the :mod:`repro.analysis` layer over the whole model zoo and
records the two numbers the layer must hold to stay on by default, writing
``BENCH_verify.json`` next to this file:

* **Zero false positives** — every zoo model compiles verify-clean at every
  optimization level on the CPU target; a single
  :class:`~repro.analysis.errors.VerifierError` on known-good IR fails the
  run.
* **Bounded overhead** — zoo-aggregate compile time with ``verify=True``
  must stay within 15% of verify-off (warm caches, median of repeats).
* **Full mutation coverage** — every seeded IR-mutation class is caught
  with its exact typed error (a missed class is a verifier bug).
* **Invariant lint** — ``tools/lint_invariants.py`` reports the source tree
  clean.

Usage::

    python benchmarks/bench_verify.py              # full run
    python benchmarks/bench_verify.py --smoke      # CI-sized + acceptance
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

import repro
from repro.analysis import VerifierError, run_all

from common import emit_summary

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_verify.json"
REPO_ROOT = Path(__file__).resolve().parent.parent

ZOO_MODELS = ("resnet-18", "mobilenet", "dqn", "dcgan", "lstm-lm")
OPT_LEVELS = (0, 1, 2, 3)
#: the gate: verify-on may cost at most this factor over verify-off,
#: aggregated across the zoo sweep
MAX_OVERHEAD = 1.15
TARGET = "arm_cpu"


def bench_zoo_clean() -> dict:
    """Compile every zoo model at every opt level with verification on."""
    cells = []
    failures = []
    for model in ZOO_MODELS:
        for level in OPT_LEVELS:
            cell = {"model": model, "opt_level": level}
            try:
                module = repro.compile(model, target=TARGET,
                                       opt_level=level, verify=True)
                cell["kernels"] = len(module.kernels)
                cell["clean"] = True
            except VerifierError as exc:
                cell["clean"] = False
                cell["error"] = f"{type(exc).__name__}: {exc}"
                failures.append(f"{model}@opt{level}: {cell['error']}")
            cells.append(cell)
    return {"target": TARGET, "cells": cells, "false_positives": failures}


def bench_overhead(repeats: int) -> dict:
    """Warm-cache compile-time ratio, verify-on vs verify-off."""
    rows = []
    total_off = total_on = 0.0
    for model in ZOO_MODELS:
        for level in OPT_LEVELS:
            offs, ons = [], []
            for _ in range(repeats):
                started = time.perf_counter()
                repro.compile(model, target=TARGET, opt_level=level)
                offs.append(time.perf_counter() - started)
                started = time.perf_counter()
                repro.compile(model, target=TARGET, opt_level=level,
                              verify=True)
                ons.append(time.perf_counter() - started)
            off = statistics.median(offs)
            on = statistics.median(ons)
            total_off += off
            total_on += on
            rows.append({"model": model, "opt_level": level,
                         "off_ms": round(off * 1e3, 2),
                         "on_ms": round(on * 1e3, 2),
                         "ratio": round(on / off, 3)})
    return {"repeats": repeats, "rows": rows,
            "total_off_ms": round(total_off * 1e3, 1),
            "total_on_ms": round(total_on * 1e3, 1),
            "aggregate_ratio": round(total_on / total_off, 4),
            "max_overhead": MAX_OVERHEAD}


def bench_mutations(seeds) -> dict:
    """Every mutation class must be caught with its exact typed error."""
    missed = []
    classes = 0
    for seed in seeds:
        outcomes = run_all(seed=seed)
        classes = len(outcomes)
        missed.extend(f"{o.name}@seed{seed}: expected {o.expected}, got "
                      f"{o.error_type}" for o in outcomes if not o.ok)
    return {"classes": classes, "seeds": list(seeds), "missed": missed,
            "caught_fraction": round(
                1.0 - len(missed) / (classes * len(list(seeds))), 4)}


def bench_lint() -> dict:
    """The AST invariant linter over the source tree."""
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        import lint_invariants
    finally:
        sys.path.pop(0)
    violations = lint_invariants.lint_tree([REPO_ROOT / "src" / "repro"])
    return {"rules": sorted(lint_invariants.RULES),
            "violations": [str(v) for v in violations]}


def run_suite(repeats: int, seeds) -> dict:
    print(f"[verify] zoo sweep: {len(ZOO_MODELS)} models x "
          f"{len(OPT_LEVELS)} opt levels on {TARGET}")
    zoo = bench_zoo_clean()  # also warms every cache for the overhead run
    print(f"[verify] false positives: {len(zoo['false_positives'])}")
    overhead = bench_overhead(repeats)
    print(f"[verify] aggregate verify-on overhead: "
          f"{overhead['aggregate_ratio']:.3f}x "
          f"(gate <= {MAX_OVERHEAD:.2f}x)")
    mutations = bench_mutations(seeds)
    print(f"[verify] mutation classes: {mutations['classes']}, "
          f"caught {mutations['caught_fraction']:.0%}")
    lint = bench_lint()
    print(f"[verify] lint violations: {len(lint['violations'])}")
    return {"python": platform.python_version(), "zoo": zoo,
            "overhead": overhead, "mutations": mutations, "lint": lint}


def check_acceptance(results: dict) -> list:
    failures = []
    if results["zoo"]["false_positives"]:
        failures.extend(f"false positive: {line}"
                        for line in results["zoo"]["false_positives"])
    ratio = results["overhead"]["aggregate_ratio"]
    if ratio > MAX_OVERHEAD:
        failures.append(f"verify-on overhead {ratio:.3f}x exceeds "
                        f"{MAX_OVERHEAD:.2f}x")
    if results["mutations"]["missed"]:
        failures.extend(f"mutation missed: {line}"
                        for line in results["mutations"]["missed"])
    if results["mutations"]["classes"] < 8:
        failures.append(f"only {results['mutations']['classes']} mutation "
                        "classes registered (need >= 8)")
    if results["lint"]["violations"]:
        failures.extend(f"lint: {line}"
                        for line in results["lint"]["violations"])
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", type=Path, default=None,
                        help="result JSON path (default BENCH_verify.json; "
                             "--smoke defaults to BENCH_verify_smoke.json)")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run that enforces the acceptance "
                             "gates via the exit code")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timing repeats per (model, opt level) cell")
    args = parser.parse_args()

    repeats = args.repeats or (3 if args.smoke else 7)
    seeds = range(3) if args.smoke else range(6)
    if args.output is None:
        args.output = (DEFAULT_OUTPUT.with_name("BENCH_verify_smoke.json")
                       if args.smoke else DEFAULT_OUTPUT)

    results = run_suite(repeats, seeds)
    results["smoke"] = bool(args.smoke)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"[verify] wrote {args.output}")

    emit_summary("verify", {
        "false_positives": len(results["zoo"]["false_positives"]),
        "aggregate_overhead": results["overhead"]["aggregate_ratio"],
        "mutation_classes": results["mutations"]["classes"],
        "mutation_caught_fraction": results["mutations"]["caught_fraction"],
        "lint_violations": len(results["lint"]["violations"]),
    })

    failures = check_acceptance(results)
    if args.smoke and failures:
        for failure in failures:
            print(f"[verify] FAIL: {failure}", file=sys.stderr)
        return 1
    if failures:
        for failure in failures:
            print(f"[verify] WARN: {failure}", file=sys.stderr)
    elif args.smoke:
        print("[verify] all static-analysis acceptance checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
