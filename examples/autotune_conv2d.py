"""Autotuning a convolution with the unified tuning session (Section 5).

Builds a one-convolution graph for a ResNet-18 workload and explores its
schedule space through ``repro.autotune()`` with three automation methods
(random search, a blackbox genetic algorithm, and the ML-cost-model-guided
simulated annealing explorer), then compiles the graph under
``report.apply_history_best()`` so the best configuration found is actually
used — a miniature version of Figure 12 plus the history-based compile flow.

Run:  python examples/autotune_conv2d.py [--trials N]
"""

import argparse

import repro
from repro.autotvm import TuningOptions
from repro.graph.ir import Graph, Node
from repro.graph.ops import OP_REGISTRY
from repro.workloads import RESNET_CONV_WORKLOADS


def conv_graph(workload, batch: int = 1) -> Graph:
    """A single-convolution graph for one ResNet workload."""
    data = Node("null", "data")
    data.shape = (batch, workload.in_channels, workload.height, workload.width)
    data.dtype = "float32"
    weight = Node("null", "weight")
    weight.shape = (workload.out_channels, workload.in_channels,
                    workload.kernel, workload.kernel)
    weight.dtype = "float32"
    conv = Node("conv2d", "conv", [data, weight],
                {"strides": workload.stride, "padding": workload.padding})
    conv.dtype = "float32"
    conv.shape = OP_REGISTRY["conv2d"].infer_shape(
        [data.shape, weight.shape], conv.attrs)
    return Graph([conv])


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=40,
                        help="measurement trials per tuner (default: 40)")
    args = parser.parse_args()

    workload = RESNET_CONV_WORKLOADS[5]          # C6: 28x28, 128 -> 128, 3x3
    graph = conv_graph(workload)
    print(f"Tuning {workload.name} ({workload.gflops:.2f} GFLOPs per run) "
          f"with {args.trials} trials per method")

    best_report = None
    for label, tuner in (("random search", "random"),
                         ("genetic algorithm", "ga"),
                         ("ML-based model", "model")):
        # ensure_no_regression=False: compare the raw tuners (the recorded
        # config is then exactly the one that achieved the printed time).
        report = repro.autotune(
            graph, target="cuda", trials=args.trials, tuner=tuner,
            options=TuningOptions(seed=0, batch_size=8,
                                  ensure_no_regression=False))
        result = report.results[0]
        gflops = workload.gflops / result.best_time
        print(f"  {label:<20s} best {result.best_time * 1e6:8.1f} us "
              f"({gflops:7.1f} GFLOP/s)  config #{result.best_config.index}")
        if label == "ML-based model":
            best_report = report

    # History-based compilation: any compile inside the context picks up the
    # tuned configurations automatically.
    with best_report.apply_history_best() as history:
        module = repro.compile(graph, target="cuda")
    print(f"compiled with history: {module.tuned_kernels}/{len(module.kernels)} "
          f"tuned kernels ({history.hits} history hits), "
          f"estimated {module.total_time * 1e6:.1f} us")


if __name__ == "__main__":
    main()
