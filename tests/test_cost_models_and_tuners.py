"""Tests for the ML cost models, tuners, tuning database and fallback search."""

import math
import random

import numpy as np
import pytest

from repro import te, tir
from repro.autotvm import (
    GATuner,
    GradientBoostedTrees,
    GridSearchTuner,
    LocalMeasurer,
    ModelBasedTuner,
    NeuralCostModel,
    RandomTuner,
    RegressionTree,
    Task,
    TreeRNNCostModel,
    TuningDatabase,
    build_ast,
    rank_correlation,
)
from repro.autotvm.treernn import ASTNode
from repro.graph.op_timing import fallback_search
from repro.hardware import arm_cpu, cuda
from repro.topi import nn as topi_nn
from repro.topi.schedules.cpu import dense_cpu_template
from repro.topi.schedules.gpu import matmul_gpu_template


def _make_task(target=None, size=64):
    """A small matmul tuning task with a non-trivial configuration space."""
    target = target or cuda()

    def template(cfg, n):
        A = te.placeholder((n, n), name="A")
        B = te.placeholder((n, n), name="B")
        C = topi_nn.matmul(A, B)
        return matmul_gpu_template(cfg, A, B, C)

    return Task(f"matmul{size}", template, (size,), target)


def _make_cpu_task(size=64):
    target = arm_cpu()

    def template(cfg, n):
        data = te.placeholder((1, n), name="data")
        weight = te.placeholder((n, n), name="weight")
        out = topi_nn.dense(data, weight)
        return dense_cpu_template(cfg, data, weight, out)

    return Task(f"dense{size}", template, (size,), target)


# ---------------------------------------------------------------------------
# Regression tree / gradient boosting
# ---------------------------------------------------------------------------

class TestRegressionTree:
    def test_fits_piecewise_constant(self):
        x = np.linspace(0, 1, 64)[:, None]
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_unfitted_predicts_zero(self):
        tree = RegressionTree()
        assert np.allclose(tree.predict(np.ones((3, 2))), 0.0)

    def test_constant_target_is_single_leaf(self):
        x = np.random.rand(16, 3)
        y = np.full(16, 2.5)
        tree = RegressionTree().fit(x, y)
        assert "feature" not in tree.tree_
        assert np.allclose(tree.predict(x), 2.5)


class TestGradientBoostedTrees:
    def _data(self, n=48, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.random((n, 5))
        y = 2.0 * x[:, 0] - x[:, 1] + 0.1 * rng.random(n)
        return x, y

    def test_rank_objective_orders_candidates(self):
        x, y = self._data()
        model = GradientBoostedTrees(loss="rank", seed=0).fit(x, y)
        corr = rank_correlation(model.predict(x), y)
        assert corr > 0.7

    def test_regression_objective(self):
        x, y = self._data()
        model = GradientBoostedTrees(loss="reg", seed=0).fit(x, y)
        corr = rank_correlation(model.predict(x), y)
        assert corr > 0.8

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees(loss="hinge")

    def test_tiny_training_set_is_noop(self):
        model = GradientBoostedTrees()
        model.fit(np.ones((2, 3)), np.array([1.0, 2.0]))
        assert model.trees == []

    def test_predict_single_vector(self):
        x, y = self._data()
        model = GradientBoostedTrees(seed=0).fit(x, y)
        assert model.predict(x[0]).shape == (1,)


class TestNeuralCostModel:
    def test_learns_ordering(self):
        rng = np.random.default_rng(1)
        x = rng.random((64, 4))
        y = x @ np.array([1.0, -2.0, 0.5, 0.0])
        model = NeuralCostModel(seed=0, epochs=200).fit(x, y)
        assert rank_correlation(model.predict(x), y) > 0.7

    def test_unfitted_predicts_zeros(self):
        model = NeuralCostModel()
        assert np.allclose(model.predict(np.ones((4, 3))), 0.0)


class TestRankCorrelation:
    def test_perfect_correlation(self):
        assert rank_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert rank_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_short_input(self):
        assert rank_correlation([1.0], [2.0]) == 0.0

    def test_bounded_for_arbitrary_input(self):
        value = rank_correlation([3, 1, 2, 5], [0.1, 0.9, 0.4, 0.2])
        assert -1.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# TreeRNN cost model
# ---------------------------------------------------------------------------

class TestTreeRNN:
    def _lowered_samples(self, count=12):
        task = _make_task(size=32)
        rng = random.Random(0)
        funcs, times = [], []
        for config in task.config_space.sample(count, rng=rng):
            try:
                func = task.lower(config)
                cost = task.target.model.estimate(tir.extract_features(func))
            except Exception:
                continue
            if math.isfinite(cost):
                funcs.append(func)
                times.append(cost)
        return funcs, np.asarray(times)

    def test_build_ast_counts_loops(self):
        funcs, _ = self._lowered_samples(2)
        root = build_ast(funcs[0])
        assert isinstance(root, ASTNode)
        assert root.size() > 5
        assert root.depth() > 2

    def test_fit_predict_shapes(self):
        funcs, times = self._lowered_samples()
        throughput = 1.0 / times
        model = TreeRNNCostModel(seed=0, epochs=10)
        model.fit(funcs, throughput / throughput.max())
        pred = model.predict(funcs)
        assert pred.shape == (len(funcs),)
        assert np.all(np.isfinite(pred))

    def test_training_improves_rank_correlation(self):
        funcs, times = self._lowered_samples(16)
        target = 1.0 / times
        target = target / target.max()
        untrained = TreeRNNCostModel(seed=0)
        before = rank_correlation(untrained.predict(funcs), target)
        trained = TreeRNNCostModel(seed=0, epochs=40).fit(funcs, target)
        after = rank_correlation(trained.predict(funcs), target)
        assert after >= before - 0.05    # training never makes it much worse
        assert after > 0.2               # and ends up informative

    def test_fit_with_too_few_samples_is_noop(self):
        funcs, _times = self._lowered_samples(2)
        model = TreeRNNCostModel(seed=0)
        model.fit(funcs[:1], [1.0])
        assert not model._trained


# ---------------------------------------------------------------------------
# Tuners
# ---------------------------------------------------------------------------

class TestTuners:
    @pytest.mark.parametrize("tuner_cls", [RandomTuner, GATuner, ModelBasedTuner])
    def test_tuner_finds_finite_best(self, tuner_cls):
        task = _make_task(size=32)
        tuner = tuner_cls(task, seed=1)
        best = tuner.tune(n_trial=24, batch_size=8)
        assert best is not None
        assert math.isfinite(tuner.best_time)

    def test_best_history_is_monotone(self):
        task = _make_task(size=32)
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=16, batch_size=4)
        history = tuner.best_history()
        assert all(b <= a for a, b in zip(history, history[1:]))

    def test_no_duplicate_measurements(self):
        task = _make_task(size=32)
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=24, batch_size=8)
        indices = [r.config_index for r in tuner.records]
        assert len(indices) == len(set(indices))

    def test_respects_trial_budget(self):
        task = _make_task(size=32)
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=10, batch_size=4)
        assert len(tuner.records) <= 10

    def test_grid_search_enumerates_in_order(self):
        task = _make_cpu_task(size=16)
        tuner = GridSearchTuner(task, seed=0)
        tuner.tune(n_trial=6, batch_size=3)
        assert [r.config_index for r in tuner.records] == list(range(6))

    def test_model_based_outperforms_or_matches_random(self):
        task = _make_task(size=64)
        random_tuner = RandomTuner(task, seed=3)
        random_tuner.tune(n_trial=40, batch_size=8)
        model_tuner = ModelBasedTuner(task, seed=3)
        model_tuner.tune(n_trial=40, batch_size=8)
        assert model_tuner.best_time <= random_tuner.best_time * 1.25

    def test_measurer_counts_measurements(self):
        task = _make_cpu_task(size=16)
        measurer = LocalMeasurer(number=1)
        tuner = RandomTuner(task, seed=0)
        tuner.tune(n_trial=8, measurer=measurer, batch_size=4)
        assert measurer.num_measured == len(tuner.records)


class TestTuningDatabase:
    def test_record_and_best(self):
        task = _make_cpu_task(size=16)
        database = TuningDatabase()
        config_a = task.config_space.get(0)
        config_b = task.config_space.get(1)
        database.record(task, config_a, 2e-3)
        database.record(task, config_b, 1e-3)
        best = database.best(task.name, task.target.name)
        assert best.config_index == config_b.index
        assert len(database) == 2

    def test_best_unknown_task_is_none(self):
        assert TuningDatabase().best("nope") is None

    def test_round_trip_through_file(self, tmp_path):
        task = _make_cpu_task(size=16)
        path = str(tmp_path / "log.jsonl")
        database = TuningDatabase(path)
        database.record(task, task.config_space.get(2), 5e-4)
        reloaded = TuningDatabase(path)
        assert len(reloaded) == 1
        assert reloaded.best(task.name).config_index == 2


class TestFallbackSearch:
    def test_returns_finite_best(self):
        task = _make_task(size=32)
        best_time, best_index = fallback_search(task, task.target, n_random=8,
                                                climb_rounds=1, seed=0)
        assert math.isfinite(best_time)
        assert 0 <= best_index < len(task.config_space)

    def test_hill_climbing_never_hurts(self):
        task = _make_task(size=32)
        no_climb, _ = fallback_search(task, task.target, n_random=8,
                                      climb_rounds=0, seed=5)
        with_climb, _ = fallback_search(task, task.target, n_random=8,
                                        climb_rounds=2, seed=5)
        assert with_climb <= no_climb

    def test_deterministic_for_fixed_seed(self):
        task = _make_task(size=32)
        first = fallback_search(task, task.target, n_random=6, climb_rounds=1, seed=9)
        second = fallback_search(task, task.target, n_random=6, climb_rounds=1, seed=9)
        assert first == second
