"""CPU schedule templates (embedded ARM CPU, paper Section 6.2).

CPU schedules rely on the classic Halide-style primitives: multi-level loop
tiling for the cache hierarchy, ``parallel`` over the outer loops for the
four A53 cores, ``vectorize`` on the innermost contiguous loop for NEON, and
``unroll`` for instruction-level parallelism.  The bit-serial low-precision
template additionally uses ``tensorize`` with a hand-declared micro-kernel
(Section 4.3, Figure 18).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ... import te
from ...autotvm.space import ConfigSpace

__all__ = [
    "schedule_conv2d_cpu",
    "schedule_depthwise_conv2d_cpu",
    "schedule_dense_cpu",
    "schedule_injective_cpu",
    "conv2d_cpu_template",
    "depthwise_conv2d_cpu_template",
    "dense_cpu_template",
    "bitserial_conv2d_cpu_template",
]


def schedule_injective_cpu(out: te.Tensor, vector_width: int = 4) -> te.Schedule:
    """Parallelise the outer loop and vectorize the innermost loop."""
    s = te.create_schedule(out.op)
    stage = s[out]
    axes = list(stage.op.axis)
    if len(axes) >= 2:
        stage.parallel(axes[0])
    last = axes[-1]
    if last.extent_value() % vector_width == 0 and last.extent_value() >= vector_width:
        outer, inner = stage.split(last, factor=vector_width)
        stage.vectorize(inner)
    return s


def conv2d_cpu_template(cfg: ConfigSpace, data: te.Tensor, kernel: te.Tensor,
                        conv: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Tunable direct conv2d for multi-core SIMD CPUs."""
    s = te.create_schedule(conv.op)
    n, f, y, x = s[conv].op.axis
    rc, ry, rx = s[conv].op.reduce_axis

    tile_f = cfg.define_split("tile_f", f.extent_value(), num_outputs=2)
    tile_y = cfg.define_split("tile_y", y.extent_value(), num_outputs=2)
    tile_x = cfg.define_split("tile_x", x.extent_value(), num_outputs=2)
    tile_rc = cfg.define_split("tile_rc", rc.extent_value(), num_outputs=2)
    vectorize = cfg.define_knob("vectorize", [1, 0])
    unroll = cfg.define_knob("unroll_kw", [0, 1])
    parallel = cfg.define_knob("parallel", [1, 0])

    fo, fi = tile_f.apply(s[conv], f)
    yo, yi = tile_y.apply(s[conv], y)
    xo, xi = tile_x.apply(s[conv], x)
    rco, rci = tile_rc.apply(s[conv], rc)
    s[conv].reorder(n, fo, yo, xo, rco, ry, rx, rci, fi, yi, xi)
    if parallel.val:
        s[conv].parallel(fo)
    if vectorize.val and xi.extent_value() >= 2:
        s[conv].vectorize(xi)
    if unroll.val:
        # Register-tile the per-iteration output block: unrolling the inner
        # output-channel loop lets each loaded input value feed several
        # accumulators, as the hand-written NEON kernels do.
        s[conv].unroll(rx)
        if fi.extent_value() <= 16:
            s[conv].unroll(fi)
    return s, [data, kernel, conv]


def schedule_conv2d_cpu(data: te.Tensor, kernel: te.Tensor, conv: te.Tensor) -> te.Schedule:
    cfg = ConfigSpace()
    s, _ = conv2d_cpu_template(cfg, data, kernel, conv)
    return s


def depthwise_conv2d_cpu_template(cfg: ConfigSpace, data: te.Tensor, kernel: te.Tensor,
                                  conv: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    s = te.create_schedule(conv.op)
    n, c, y, x = s[conv].op.axis
    ry, rx = s[conv].op.reduce_axis

    tile_c = cfg.define_split("tile_c", c.extent_value(), num_outputs=2)
    tile_x = cfg.define_split("tile_x", x.extent_value(), num_outputs=2)
    vectorize = cfg.define_knob("vectorize", [1, 0])
    parallel = cfg.define_knob("parallel", [1, 0])
    unroll = cfg.define_knob("unroll", [1, 0])

    co, ci = tile_c.apply(s[conv], c)
    xo, xi = tile_x.apply(s[conv], x)
    s[conv].reorder(n, co, y, xo, ry, rx, ci, xi)
    if parallel.val:
        s[conv].parallel(co)
    if vectorize.val and xi.extent_value() >= 2:
        s[conv].vectorize(xi)
    if unroll.val:
        s[conv].unroll(rx)
    return s, [data, kernel, conv]


def schedule_depthwise_conv2d_cpu(data: te.Tensor, kernel: te.Tensor,
                                  conv: te.Tensor) -> te.Schedule:
    cfg = ConfigSpace()
    s, _ = depthwise_conv2d_cpu_template(cfg, data, kernel, conv)
    return s


def dense_cpu_template(cfg: ConfigSpace, data: te.Tensor, weight: te.Tensor,
                       out: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    s = te.create_schedule(out.op)
    i, j = s[out].op.axis
    k = s[out].op.reduce_axis[0]

    tile_j = cfg.define_split("tile_j", j.extent_value(), num_outputs=2)
    tile_k = cfg.define_split("tile_k", k.extent_value(), num_outputs=2)
    vectorize = cfg.define_knob("vectorize", [1, 0])
    parallel = cfg.define_knob("parallel", [1, 0])

    jo, ji = tile_j.apply(s[out], j)
    ko, ki = tile_k.apply(s[out], k)
    s[out].reorder(i, jo, ko, ki, ji)
    if parallel.val:
        s[out].parallel(jo)
    if vectorize.val and ji.extent_value() >= 2:
        s[out].vectorize(ji)
    return s, [data, weight, out]


def schedule_dense_cpu(data: te.Tensor, weight: te.Tensor, out: te.Tensor) -> te.Schedule:
    cfg = ConfigSpace()
    s, _ = dense_cpu_template(cfg, data, weight, out)
    return s


# ---------------------------------------------------------------------------
# Ultra low-precision conv2d with a tensorized bit-serial micro-kernel
# ---------------------------------------------------------------------------

def _declare_bitserial_gemv_intrin(length: int) -> te.TensorIntrin:
    """Declare the ARM bit-serial matrix-vector micro-kernel as a tensor
    intrinsic: an AND + popcount reduction over ``length`` packed elements."""
    w = te.placeholder((length,), dtype="int32", name="w_bits")
    x = te.placeholder((length,), dtype="int32", name="x_bits")
    k = te.reduce_axis((0, length), name="k")
    y = te.compute((1,), lambda _i: te.sum(w[k] * x[k], axis=k), name="bitserial_dot")

    def lower_rule(inputs, outputs):
        ww = inputs[0]
        xx = inputs[1]
        zz = outputs[0]
        compute = te.hardware_intrin("arm_bitserial_gemv", ww.name, xx.name, zz.name)
        reset = te.hardware_intrin("fill_zero", zz.name)
        update = te.hardware_intrin("arm_bitserial_gemv_update", ww.name, xx.name, zz.name)
        return compute, reset, update

    return te.decl_tensor_intrin(y.op, lower_rule, name="arm_bitserial_gemv")


def bitserial_conv2d_cpu_template(cfg: ConfigSpace, data: te.Tensor, kernel: te.Tensor,
                                  conv: te.Tensor,
                                  use_tensorize: bool = True,
                                  use_parallel: Optional[bool] = None
                                  ) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Schedule the (already bit-planed) low-precision convolution.

    ``conv`` must be produced by :func:`repro.topi.bitserial.bitserial_conv2d_packed`,
    whose innermost reduction runs over packed bit-plane words; that loop is
    tensorized with the micro-kernel declared above.
    """
    s = te.create_schedule(conv.op)
    n, f, y, x = s[conv].op.axis
    reduce_axes = list(s[conv].op.reduce_axis)

    tile_f = cfg.define_split("tile_f", f.extent_value(), num_outputs=2)
    tile_x = cfg.define_split("tile_x", x.extent_value(), num_outputs=2)
    parallel = cfg.define_knob("parallel", [1, 0])
    if use_parallel is not None:
        parallel_enabled = use_parallel
    else:
        parallel_enabled = bool(parallel.val)

    fo, fi = tile_f.apply(s[conv], f)
    xo, xi = tile_x.apply(s[conv], x)
    s[conv].reorder(n, fo, y, xo, fi, xi, *reduce_axes)
    if parallel_enabled:
        # Parallelise over the fused (channel-outer, row) loop so there is
        # enough work for every core regardless of the tile_f split chosen.
        foy = s[conv].fuse(fo, y)
        s[conv].parallel(foy)
    if use_tensorize and reduce_axes:
        packed_axis = reduce_axes[-1]
        intrin = _declare_bitserial_gemv_intrin(packed_axis.extent_value())
        s[conv].tensorize(packed_axis, intrin)
    return s, [data, kernel, conv]
