"""Tests for the operator library: NumPy references and lowered te declarations."""

import numpy as np
import pytest

from repro import te, tir
from repro.topi import nn
from repro.topi import reference as ref
from repro.topi.bitserial import bitserial_conv2d_packed, packed_shape
from repro.topi.winograd import winograd_conv2d_pretransformed


def _brute_force_conv(data, kernel, stride, padding):
    data = ref.pad_nchw(data, padding, padding)
    n, ci, h, w = data.shape
    co, _, kh, kw = kernel.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    out = np.zeros((n, co, oh, ow), dtype=data.dtype)
    for b in range(n):
        for f in range(co):
            for y in range(oh):
                for x in range(ow):
                    patch = data[b, :, y * stride:y * stride + kh,
                                 x * stride:x * stride + kw]
                    out[b, f, y, x] = np.sum(patch * kernel[f])
    return out


def test_reference_conv2d_matches_brute_force():
    rng = np.random.default_rng(0)
    data = rng.random((1, 3, 9, 9)).astype("float32")
    kernel = rng.random((5, 3, 3, 3)).astype("float32")
    fast = ref.conv2d_nchw(data, kernel, 2, 1)
    slow = _brute_force_conv(data, kernel, 2, 1)
    np.testing.assert_allclose(fast, slow, rtol=1e-4)


def test_reference_winograd_matches_direct():
    rng = np.random.default_rng(1)
    data = rng.random((2, 4, 12, 12)).astype("float32")
    kernel = rng.random((6, 4, 3, 3)).astype("float32")
    direct = ref.conv2d_nchw(data, kernel, 1, 1)
    winograd = ref.winograd_conv2d_nchw(data, kernel, 1)
    np.testing.assert_allclose(direct, winograd, rtol=1e-3, atol=1e-4)


def test_reference_pooling_and_softmax():
    rng = np.random.default_rng(2)
    data = rng.random((1, 2, 6, 6)).astype("float32")
    pooled = ref.max_pool2d(data, 2, 2)
    assert pooled.shape == (1, 2, 3, 3)
    assert pooled[0, 0, 0, 0] == data[0, 0, :2, :2].max()
    avg = ref.avg_pool2d(data, 2, 2)
    np.testing.assert_allclose(avg[0, 0, 0, 0], data[0, 0, :2, :2].mean(), rtol=1e-6)
    soft = ref.softmax(rng.random((3, 7)).astype("float32"))
    np.testing.assert_allclose(soft.sum(axis=1), np.ones(3), rtol=1e-6)


def test_reference_bitserial_quantized_semantics():
    rng = np.random.default_rng(3)
    data = rng.random((1, 4, 8, 8)).astype("float32")
    kernel = rng.random((8, 4, 3, 3)).astype("float32")
    out = ref.bitserial_conv2d_nchw(data, kernel, 1, 1, activation_bits=2,
                                    weight_bits=1)
    assert out.dtype == np.int32
    assert out.shape == (1, 8, 8, 8)
    assert out.max() > 0


def test_te_conv2d_lowered_matches_reference():
    rng = np.random.default_rng(4)
    data_np = rng.random((1, 3, 8, 8)).astype("float32")
    kernel_np = rng.random((4, 3, 3, 3)).astype("float32")
    data = te.placeholder((1, 3, 8, 8), name="data")
    kernel = te.placeholder((4, 3, 3, 3), name="kernel")
    conv = nn.conv2d_nchw(data, kernel, stride=2, padding=1)
    s = te.create_schedule(conv.op)
    func = tir.lower(s, [data, kernel, conv])
    out = np.zeros((1, 4, 4, 4), dtype="float32")
    tir.run_lowered(func, data_np, kernel_np, out)
    np.testing.assert_allclose(out, ref.conv2d_nchw(data_np, kernel_np, 2, 1),
                               rtol=1e-4)


def test_te_depthwise_lowered_matches_reference():
    rng = np.random.default_rng(5)
    data_np = rng.random((1, 4, 6, 6)).astype("float32")
    kernel_np = rng.random((4, 1, 3, 3)).astype("float32")
    data = te.placeholder((1, 4, 6, 6), name="data")
    kernel = te.placeholder((4, 1, 3, 3), name="kernel")
    conv = nn.depthwise_conv2d_nchw(data, kernel, stride=1, padding=1)
    s = te.create_schedule(conv.op)
    func = tir.lower(s, [data, kernel, conv])
    out = np.zeros((1, 4, 6, 6), dtype="float32")
    tir.run_lowered(func, data_np, kernel_np, out)
    np.testing.assert_allclose(out, ref.depthwise_conv2d_nchw(data_np, kernel_np, 1, 1),
                               rtol=1e-4)


def test_te_dense_relu_softmax_lowered():
    rng = np.random.default_rng(6)
    data_np = rng.random((2, 8)).astype("float32")
    weight_np = rng.random((5, 8)).astype("float32")
    data = te.placeholder((2, 8), name="data")
    weight = te.placeholder((5, 8), name="weight")
    out = nn.relu(nn.dense(data, weight))
    s = te.create_schedule(out.op)
    func = tir.lower(s, [data, weight, out])
    result = np.zeros((2, 5), dtype="float32")
    tir.run_lowered(func, data_np, weight_np, result)
    np.testing.assert_allclose(result, ref.relu(ref.dense(data_np, weight_np)),
                               rtol=1e-5)

    soft = nn.softmax(te.placeholder((2, 5), name="x"))
    s2 = te.create_schedule(soft.op)
    func2 = tir.lower(s2, [soft.op.input_tensors()[0], soft] if False else
                      [next(t for t in soft.op.input_tensors() if t.op.name == "x"), soft])
    out2 = np.zeros((2, 5), dtype="float32")
    tir.run_lowered(func2, result, out2)
    np.testing.assert_allclose(out2, ref.softmax(result), rtol=1e-4)


def test_te_pooling_lowered():
    rng = np.random.default_rng(7)
    data_np = rng.random((1, 2, 6, 6)).astype("float32")
    data = te.placeholder((1, 2, 6, 6), name="data")
    pooled = nn.max_pool2d(data, 2, 2)
    s = te.create_schedule(pooled.op)
    func = tir.lower(s, [data, pooled])
    out = np.zeros((1, 2, 3, 3), dtype="float32")
    tir.run_lowered(func, data_np, out)
    np.testing.assert_allclose(out, ref.max_pool2d(data_np, 2, 2), rtol=1e-6)


def test_bitserial_declaration_shapes():
    assert packed_shape(64) == 2
    assert packed_shape(20) == 1
    data, weight, out = bitserial_conv2d_packed(1, 64, 14, 14, 128, 3, 1, 1,
                                                activation_bits=2, weight_bits=1)
    assert out.shape_values() == (1, 128, 14, 14)
    assert data.dtype == "int32"
    # Lowered features should count intrinsic-free integer work.
    s = te.create_schedule(out.op)
    features = tir.extract_features(tir.lower(s, [data, weight, out]))
    assert features.flops > 0 or features.int_ops > 0


def test_winograd_declaration_reduces_multiplications():
    _d, _w, _b, _a, direct_equivalent = winograd_conv2d_pretransformed(1, 16, 14, 14, 32)
    s = te.create_schedule(direct_equivalent.op)
    args = list(direct_equivalent.op.input_tensors())
    features = tir.extract_features(
        tir.lower(s, [_d, _w, _b, _a, direct_equivalent]))
    direct_flops = 2 * 14 * 14 * 32 * 16 * 9
    # The batched-GEMM stage performs ~(4x4)/(2x2*9) = 0.44x of the direct
    # multiplications; transforms add some overhead but total stays below direct.
    assert features.total_flops < direct_flops * 2.5


def test_conv2d_shape_validation():
    data = te.placeholder((1, 3, 8, 8), name="data")
    kernel = te.placeholder((4, 5, 3, 3), name="kernel")
    with pytest.raises(ValueError):
        nn.conv2d_nchw(data, kernel, 1, 1)
