"""Deterministic fault injection (``repro.faults``).

Distributed-systems code is only as trustworthy as the failures it has
actually been run through.  This package provides a seeded, declarative way
to schedule faults against every networked / concurrent path in the system
— the dynamic-batching serving engine, the shared-memory worker pool, and
the tuning-service client/server — without any of those subsystems knowing
more than "consult the active plan here".

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules plus a seed.
Each spec names a fault *kind* (which implies the injection site), an
optional scope filter, and a firing rule — a probability drawn from the
spec's own seeded RNG stream, an explicit set of occurrence indices, or
both — plus bounds (``after``, ``max_count``).  Install a plan with
``with plan: ...`` (or :meth:`FaultPlan.install`); the injection sites
consult :func:`inject` and interpret the returned action.

Fault kinds and where they bite:

==================  =======================  ================================
kind                site                     effect
==================  =======================  ================================
``frame_drop``      ``framing.send``         frame silently not sent
``frame_delay``     ``framing.send``         sleep ``delay_s`` before sending
``frame_truncate``  ``framing.send``         torn frame; peer sees a clean
                                             :class:`TruncatedFrameError`
``socket_reset``    ``framing.send``         connection hard-closed mid-send
``worker_kill``     ``procpool.dispatch``    SIGKILL the worker process the
                                             frame was about to reach
``slow_response``   ``service.handle``       server stalls ``delay_s`` before
                                             replying (client RPC timeout)
``connect_refused`` ``service.connect``      transient ``ECONNREFUSED`` on a
                                             client connection attempt
==================  =======================  ================================

Scoping: ``protocol="RPP1"``/``"RTS1"`` restricts frame faults to one wire
protocol; ``match={...}`` matches arbitrary context fields the site reports
(e.g. ``{"pool": "repro-serve-pool"}``).  Per-spec injection counts are
tracked in :meth:`FaultPlan.stats`, so a chaos benchmark can assert that
the faults it scheduled actually fired.

Determinism: each spec owns one RNG seeded from ``(plan seed, spec index)``
and draws exactly one uniform variate per *matching occurrence*, so a fixed
plan over a fixed sequence of events fires identically every run.  (Under
thread concurrency the interleaving of occurrences is the only source of
variation — use ``at=`` occurrence indices or ``probability=1.0`` with
``after``/``max_count`` when a test needs exact placement.)
"""

from __future__ import annotations

import hashlib
import logging
import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["FaultPlan", "FaultSpec", "FaultError", "active_plan", "inject",
           "FAULT_KINDS"]

logger = logging.getLogger("repro.faults")

#: kind -> (site, default action dict)
FAULT_KINDS: Dict[str, Tuple[str, Dict]] = {
    "frame_drop": ("framing.send", {"action": "drop"}),
    "frame_delay": ("framing.send", {"action": "delay"}),
    "frame_truncate": ("framing.send", {"action": "truncate"}),
    "socket_reset": ("framing.send", {"action": "reset"}),
    "worker_kill": ("procpool.dispatch", {"action": "kill"}),
    "slow_response": ("service.handle", {"action": "delay"}),
    "connect_refused": ("service.connect", {"action": "refuse"}),
}


class FaultError(ValueError):
    """A fault plan or spec is malformed."""


@dataclass
class FaultSpec:
    """One declarative fault rule.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`; implies the injection site.
    probability:
        Chance of firing per matching occurrence, drawn from this spec's
        seeded RNG stream.  Default 1.0 (always fire, subject to the other
        bounds).
    at:
        Explicit matching-occurrence indices (0-based) to fire on; when
        given, ``probability`` gates those occurrences only.
    after:
        Skip the first ``after`` matching occurrences entirely.
    max_count:
        Stop firing after this many injections (``None`` = unbounded).
    protocol:
        For frame faults: restrict to ``"RPP1"`` or ``"RTS1"``.
    match:
        Extra context filters; every key must equal the site-reported
        context value for the spec to match.
    delay_s / truncate_bytes:
        Action parameters for delay faults and torn frames.
    """

    kind: str
    probability: float = 1.0
    at: Optional[Sequence[int]] = None
    after: int = 0
    max_count: Optional[int] = None
    protocol: Optional[str] = None
    match: Mapping[str, object] = field(default_factory=dict)
    delay_s: float = 0.05
    truncate_bytes: int = 1

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"Unknown fault kind {self.kind!r}; known: "
                             f"{sorted(FAULT_KINDS)}")
        if not 0.0 <= self.probability <= 1.0:
            raise FaultError(f"probability must be in [0, 1], "
                             f"got {self.probability}")
        if self.after < 0:
            raise FaultError(f"after must be >= 0, got {self.after}")
        if self.max_count is not None and self.max_count < 0:
            raise FaultError(f"max_count must be >= 0, got {self.max_count}")

    @property
    def site(self) -> str:
        return FAULT_KINDS[self.kind][0]

    def action(self) -> Dict:
        """The action dict a matching site interprets."""
        action = dict(FAULT_KINDS[self.kind][1])
        if action["action"] == "delay":
            action["seconds"] = self.delay_s
        if action["action"] == "truncate":
            action["bytes"] = self.truncate_bytes
        return action


class _SpecState:
    """Runtime counters + RNG stream of one spec inside one installed plan."""

    __slots__ = ("spec", "rng", "occurrences", "injected")

    def __init__(self, spec: FaultSpec, seed: int, index: int):
        self.spec = spec
        # Stable across processes and hash randomization (unlike hash()).
        digest = hashlib.sha256(f"{seed}:{index}:{spec.kind}".encode())
        self.rng = random.Random(int.from_bytes(digest.digest()[:8], "little"))
        self.occurrences = 0
        self.injected = 0


#: the installed plan (one per process; installation nests refusal below)
_ACTIVE: Optional["FaultPlan"] = None
_ACTIVE_LOCK = threading.Lock()


def active_plan() -> Optional["FaultPlan"]:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


def inject(site: str, context: Optional[Mapping] = None,
           **extra) -> Optional[Dict]:
    """Consult the active plan at an injection site.

    Context arrives as a mapping (the framing hook's calling convention),
    keyword arguments, or both.  Returns the action dict of the first firing
    spec, or ``None``.  Sites interpret actions themselves (sleep, drop,
    ``os.kill``, ...), so this module stays mechanism-free.
    """
    plan = _ACTIVE
    if plan is None:
        return None
    merged = dict(context) if context else {}
    merged.update(extra)
    return plan._consult(site, merged)


class FaultPlan:
    """A seeded, declarative schedule of faults; install with ``with plan:``.

    ::

        plan = FaultPlan(seed=7, faults=[
            FaultSpec("worker_kill", probability=0.2, max_count=2),
            FaultSpec("frame_truncate", protocol="RTS1", at=[3]),
            FaultSpec("slow_response", delay_s=0.5, after=1, max_count=1),
        ])
        with plan:
            ...  # serve / tune; the plan fires deterministically
        print(plan.stats())
    """

    def __init__(self, faults: Sequence[FaultSpec], seed: int = 0):
        self.seed = seed
        self._lock = threading.Lock()
        self._states = [_SpecState(spec, seed, i)
                        for i, spec in enumerate(faults)]
        self._installed = False

    @property
    def faults(self) -> List[FaultSpec]:
        return [state.spec for state in self._states]

    # ------------------------------------------------------------- matching
    @staticmethod
    def _matches(spec: FaultSpec, site: str, context: Mapping) -> bool:
        if spec.site != site:
            return False
        if spec.protocol is not None \
                and context.get("protocol") != spec.protocol:
            return False
        for key, value in spec.match.items():
            if context.get(key) != value:
                return False
        return True

    def _consult(self, site: str, context: Mapping) -> Optional[Dict]:
        with self._lock:
            for state in self._states:
                spec = state.spec
                if not self._matches(spec, site, context):
                    continue
                occurrence = state.occurrences
                state.occurrences += 1
                if occurrence < spec.after:
                    continue
                if spec.max_count is not None \
                        and state.injected >= spec.max_count:
                    continue
                # One draw per matching occurrence keeps the stream aligned
                # with the occurrence index regardless of what fires.
                draw = state.rng.random()
                if spec.at is not None and occurrence not in spec.at:
                    continue
                if draw >= spec.probability:
                    continue
                state.injected += 1
                action = spec.action()
                logger.debug("fault %s fired at %s (occurrence %d): %s",
                             spec.kind, site, occurrence, action)
                return action
        return None

    # ------------------------------------------------------------- lifecycle
    def install(self) -> "FaultPlan":
        """Make this the process-wide active plan (exactly one at a time)."""
        global _ACTIVE
        from ..runtime import framing

        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError(
                    "A FaultPlan is already installed; uninstall it first "
                    "(plans do not nest — one authoritative schedule per "
                    "process keeps runs reproducible)")
            _ACTIVE = self
            self._installed = True
            framing.set_fault_hook(inject)
        return self

    def uninstall(self) -> None:
        """Remove this plan (idempotent; only the installed plan may)."""
        global _ACTIVE
        from ..runtime import framing

        with _ACTIVE_LOCK:
            if not self._installed:
                return
            if _ACTIVE is self:
                _ACTIVE = None
                framing.set_fault_hook(None)
            self._installed = False

    def __enter__(self) -> "FaultPlan":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # ------------------------------------------------------------- stats
    def stats(self) -> Dict[str, object]:
        """Per-spec occurrence/injection counters plus totals."""
        with self._lock:
            rows = [{"kind": state.spec.kind, "site": state.spec.site,
                     "occurrences": state.occurrences,
                     "injected": state.injected}
                    for state in self._states]
        return {"seed": self.seed, "specs": rows,
                "total_injected": sum(row["injected"] for row in rows)}

    def total_injected(self) -> int:
        with self._lock:
            return sum(state.injected for state in self._states)

    def __repr__(self) -> str:
        kinds = ",".join(s.kind for s in self.faults)
        return (f"FaultPlan(seed={self.seed}, faults=[{kinds}], "
                f"injected={self.total_injected()})")
