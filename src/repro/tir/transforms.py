"""TIR-level transformation passes.

Implements the post-lowering transformations the paper relies on:

* ``unroll_loops`` — explicit unrolling of loops marked ``unroll``.
* ``inject_virtual_threads`` — Figure 8's virtual thread lowering: a loop
  bound to a ``vthread`` axis is expanded into per-thread copies whose
  load / execute / store operations are interleaved into a single stream and
  separated by explicit dependence push/pop tokens, so that a decoupled
  access-execute (DAE) accelerator can recover pipeline parallelism.
* ``inject_dae_synchronization`` — inserts RAW/WAR dependence tokens between
  pipeline stages of an already-flattened instruction sequence (Figure 9).
* ``simplify_pass`` — constant folding over all expressions in a program.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Optional, Sequence, Tuple

from ..te.expr import Expr, IntImm, Var, as_expr, simplify, substitute
from .stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    Buffer,
    BufferLoad,
    BufferStore,
    DepPop,
    DepPush,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
    seq,
)

__all__ = [
    "unroll_loops",
    "inject_virtual_threads",
    "inject_dae_synchronization",
    "simplify_pass",
    "substitute_stmt",
    "map_buffers",
    "count_statements",
]


# ---------------------------------------------------------------------------
# Generic statement rewriting helpers
# ---------------------------------------------------------------------------

def _rebuild(stmt: Stmt, transform) -> Stmt:
    """Rebuild a statement, applying ``transform`` to each child statement."""
    if isinstance(stmt, SeqStmt):
        return SeqStmt([transform(s) for s in stmt.stmts])
    if isinstance(stmt, For):
        return For(stmt.loop_var, stmt.min, stmt.extent, transform(stmt.body),
                   stmt.kind, stmt.thread_tag)
    if isinstance(stmt, IfThenElse):
        else_body = transform(stmt.else_body) if stmt.else_body is not None else None
        return IfThenElse(stmt.condition, transform(stmt.then_body), else_body)
    if isinstance(stmt, Allocate):
        return Allocate(stmt.buffer, transform(stmt.body))
    if isinstance(stmt, AttrStmt):
        return AttrStmt(stmt.key, stmt.node, stmt.value, transform(stmt.body))
    return stmt


def substitute_stmt(stmt: Stmt, mapping: Dict[Var, Expr]) -> Stmt:
    """Substitute variables in every expression of a statement tree."""

    def sub_expr(expr: Expr) -> Expr:
        return simplify(substitute(expr, mapping))

    def rec(node: Stmt) -> Stmt:
        if isinstance(node, BufferStore):
            return BufferStore(node.buffer,
                               [sub_expr(i) for i in node.indices],
                               _sub_loads(node.value, mapping))
        if isinstance(node, IfThenElse):
            else_body = rec(node.else_body) if node.else_body is not None else None
            return IfThenElse(_sub_loads(node.condition, mapping),
                              rec(node.then_body), else_body)
        if isinstance(node, For):
            return For(node.loop_var, sub_expr(node.min), sub_expr(node.extent),
                       rec(node.body), node.kind, node.thread_tag)
        if isinstance(node, Evaluate):
            return Evaluate(_sub_loads(node.expr, mapping))
        if isinstance(node, IntrinsicStmt):
            return IntrinsicStmt(
                node.name, node.intrin, node.inputs, node.output,
                [[sub_expr(i) for i in offs] for offs in node.input_offsets],
                [sub_expr(i) for i in node.output_offset],
                node.reduction_update, node.pipeline_stage)
        return _rebuild(node, rec)

    return rec(stmt)


def _sub_loads(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    """Substitute variables inside an expression, preserving BufferLoad nodes."""
    if isinstance(expr, BufferLoad):
        return BufferLoad(expr.buffer,
                          [simplify(substitute(_sub_loads(i, mapping), {}))
                           if isinstance(i, BufferLoad)
                           else simplify(substitute(i, mapping))
                           for i in expr.indices])
    from ..te.expr import ExprMutator

    class _M(ExprMutator):
        def visit_var(self, node: Var) -> Expr:
            return mapping.get(node, node)

        def visit_bufferload(self, node: BufferLoad) -> Expr:  # type: ignore[override]
            return BufferLoad(node.buffer, [self.visit(i) for i in node.indices])

    return simplify(_M().visit(expr))


def map_buffers(stmt: Stmt, mapping: Dict[str, Buffer]) -> Stmt:
    """Replace buffer references by name (used by virtual-thread expansion)."""

    def remap_expr(expr: Expr) -> Expr:
        from ..te.expr import ExprMutator

        class _M(ExprMutator):
            def visit_bufferload(self, node: BufferLoad) -> Expr:  # type: ignore[override]
                buf = mapping.get(node.buffer.name, node.buffer)
                return BufferLoad(buf, [self.visit(i) for i in node.indices])

        return _M().visit(expr)

    def rec(node: Stmt) -> Stmt:
        if isinstance(node, BufferStore):
            buf = mapping.get(node.buffer.name, node.buffer)
            return BufferStore(buf, [remap_expr(i) for i in node.indices],
                               remap_expr(node.value))
        if isinstance(node, IntrinsicStmt):
            return IntrinsicStmt(
                node.name, node.intrin,
                [mapping.get(b.name, b) for b in node.inputs],
                mapping.get(node.output.name, node.output),
                node.input_offsets, node.output_offset,
                node.reduction_update, node.pipeline_stage)
        if isinstance(node, Allocate):
            buf = mapping.get(node.buffer.name, node.buffer)
            return Allocate(buf, rec(node.body))
        if isinstance(node, Evaluate):
            return Evaluate(remap_expr(node.expr))
        return _rebuild(node, rec)

    return rec(stmt)


# ---------------------------------------------------------------------------
# Unrolling
# ---------------------------------------------------------------------------

def unroll_loops(stmt: Stmt, max_extent: int = 16) -> Stmt:
    """Fully unroll loops annotated ``unroll`` whose extent is small enough."""

    def rec(node: Stmt) -> Stmt:
        if isinstance(node, For) and node.kind == ForKind.UNROLLED:
            try:
                extent = node.extent_value()
            except ValueError:
                extent = max_extent + 1
            body = rec(node.body)
            if extent <= max_extent:
                copies = [substitute_stmt(body, {node.loop_var: as_expr(i)})
                          for i in range(extent)]
                return seq(*copies)
            return For(node.loop_var, node.min, node.extent, body,
                       ForKind.SERIAL, node.thread_tag)
        return _rebuild(node, rec)

    return rec(stmt)


# ---------------------------------------------------------------------------
# Virtual thread lowering (Figure 8)
# ---------------------------------------------------------------------------

def inject_virtual_threads(func: LoweredFunc) -> LoweredFunc:
    """Lower ``vthread`` loops into interleaved per-thread instruction streams.

    Each virtual thread receives a private copy of the buffers allocated
    inside the loop (the paper's ``CL[2][8]`` duplication), the loop body is
    duplicated per thread with the vthread index substituted, and explicit
    RAW/WAR dependence tokens are pushed/popped between the load (``ld``) and
    execute (``ex``) pipeline stages so the accelerator can overlap them.
    """
    new_allocations = list(func.allocations)

    def rec(node: Stmt) -> Stmt:
        if isinstance(node, For) and node.kind == ForKind.VTHREAD:
            try:
                extent = node.extent_value()
            except ValueError:
                extent = 1
            body = rec(node.body)
            copies: List[Stmt] = []
            for thread_id in range(extent):
                # Give this virtual thread its own copies of locally scoped
                # buffers so loads for thread i+1 can overlap execution of i.
                local_buffers = _collect_local_buffers(body)
                remap: Dict[str, Buffer] = {}
                for buf in local_buffers:
                    clone = Buffer(f"{buf.name}.vt{thread_id}", buf.shape,
                                   buf.dtype, buf.scope)
                    remap[buf.name] = clone
                    new_allocations.append(clone)
                thread_body = map_buffers(body, remap)
                thread_body = substitute_stmt(thread_body,
                                              {node.loop_var: as_expr(thread_id)})
                copies.append(AttrStmt("vthread_instance", node.loop_var,
                                       thread_id, thread_body))
            interleaved = _interleave_vthreads(copies)
            return interleaved
        return _rebuild(node, rec)

    body = rec(func.body)

    # Insert dependence tokens into every statement sequence so the DAE
    # pipeline can recover parallelism at whatever loop level the load /
    # execute / store operations ended up after interleaving.
    def apply_dae(node: Stmt) -> Stmt:
        node = _rebuild(node, apply_dae)
        if isinstance(node, SeqStmt):
            return inject_dae_synchronization(node)
        return node

    body = apply_dae(body)
    return LoweredFunc(func.name, func.args, body, new_allocations)


def _collect_local_buffers(stmt: Stmt) -> List[Buffer]:
    """Buffers written inside ``stmt`` that live in on-chip scopes."""
    found: Dict[str, Buffer] = {}

    def rec(node: Stmt) -> None:
        if isinstance(node, BufferStore) and node.buffer.scope != "global":
            found[node.buffer.name] = node.buffer
        if isinstance(node, IntrinsicStmt) and node.output.scope != "global":
            found[node.output.name] = node.output
        for child in _children(node):
            rec(child)

    rec(stmt)
    return list(found.values())


def _children(stmt: Stmt) -> List[Stmt]:
    if isinstance(stmt, SeqStmt):
        return list(stmt.stmts)
    if isinstance(stmt, For):
        return [stmt.body]
    if isinstance(stmt, IfThenElse):
        out = [stmt.then_body]
        if stmt.else_body is not None:
            out.append(stmt.else_body)
        return out
    if isinstance(stmt, (Allocate, AttrStmt)):
        return [stmt.body]
    return []


def _interleave_vthreads(copies: Sequence[Stmt]) -> Stmt:
    """Interleave the top-level operations of each virtual thread copy.

    The per-thread bodies are flattened into operation lists; operations are
    then emitted round-robin (thread 0 op 0, thread 1 op 0, thread 0 op 1,
    ...), which matches Figure 8's final single instruction stream.
    """
    streams = [_flatten_ops(c) for c in copies]
    interleaved: List[Stmt] = []
    max_len = max((len(s) for s in streams), default=0)
    for index in range(max_len):
        for stream in streams:
            if index < len(stream):
                interleaved.append(stream[index])
    return seq(*interleaved)


def _flatten_ops(stmt: Stmt) -> List[Stmt]:
    """Flatten a virtual-thread body into a list of schedulable operations.

    Loops are kept intact (they are a single pipelined operation from the
    interleaver's point of view) unless they directly contain a sequence of
    operations, in which case the loop is preserved as one unit as well.
    """
    if isinstance(stmt, AttrStmt) and stmt.key == "vthread_instance":
        inner = _flatten_ops(stmt.body)
        return [AttrStmt(stmt.key, stmt.node, stmt.value, op) for op in inner]
    if isinstance(stmt, SeqStmt):
        ops: List[Stmt] = []
        for sub in stmt.stmts:
            ops.extend(_flatten_ops(sub))
        return ops
    return [stmt]


def inject_dae_synchronization(stmt: Stmt) -> Stmt:
    """Insert dependence push/pop tokens between DAE pipeline stages.

    Operations are classified as ``ld`` (stores into on-chip input/weight
    buffers), ``ex`` (intrinsic calls and stores into accumulation buffers)
    or ``st`` (stores back to global memory).  A RAW token is pushed from a
    producer stage to its consumer stage and popped by the consumer before it
    runs; a WAR token flows in the opposite direction, allowing bounded
    buffering exactly as in Figure 9.
    """
    if not isinstance(stmt, SeqStmt):
        return stmt

    def classify(op: Stmt) -> Optional[str]:
        node = op
        while isinstance(node, AttrStmt):
            node = node.body
        if isinstance(node, IntrinsicStmt):
            return "ex"
        if isinstance(node, For):
            return classify(node.body)
        if isinstance(node, SeqStmt):
            for sub in node.stmts:
                result = classify(sub)
                if result is not None:
                    return result
            return None
        if isinstance(node, BufferStore):
            scope = node.buffer.scope
            if scope in ("inp_buffer", "wgt_buffer", "shared"):
                return "ld"
            if scope in ("acc_buffer", "local"):
                return "ex"
            if scope == "global":
                return "st"
        return None

    result: List[Stmt] = []
    previous_stage: Optional[str] = None
    for op in stmt.stmts:
        stage = classify(op)
        if stage is not None and previous_stage is not None and stage != previous_stage:
            # RAW dependence from the previous stage to this one.
            result.append(DepPush(previous_stage, stage))
            result.append(DepPop(previous_stage, stage))
        result.append(op)
        if stage is not None:
            # WAR token back to the producer so it may reuse its buffer slot.
            if previous_stage is not None and stage != previous_stage:
                result.append(DepPush(stage, previous_stage))
            previous_stage = stage
    return SeqStmt(result)


# ---------------------------------------------------------------------------
# Misc passes
# ---------------------------------------------------------------------------

def simplify_pass(func: LoweredFunc) -> LoweredFunc:
    """Constant-fold every expression in the program."""
    body = substitute_stmt(func.body, {})
    return LoweredFunc(func.name, func.args, body, func.allocations)


def count_statements(stmt: Stmt) -> Dict[str, int]:
    """Count statement node types (useful for tests and ablations)."""
    counts: Dict[str, int] = {}

    def rec(node: Stmt) -> None:
        counts[type(node).__name__] = counts.get(type(node).__name__, 0) + 1
        for child in _children(node):
            rec(child)
        if isinstance(node, IfThenElse) and node.else_body is not None:
            pass

    rec(stmt)
    return counts
