"""Scalar expression IR for the tensor expression language.

This module implements the index-formula expression language described in
Section 4.1 of the TVM paper.  Expressions are small immutable trees built
from variables, constants, arithmetic operators, comparisons, selections,
math intrinsic calls, casts, reductions, and tensor element reads.

The expression nodes overload the Python arithmetic operators so that
operator bodies can be written naturally inside ``te.compute`` lambdas::

    C = te.compute((m, n), lambda y, x: te.sum(A[k, y] * B[k, x], axis=k))
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "Expr",
    "Var",
    "IntImm",
    "FloatImm",
    "StringImm",
    "BinaryOp",
    "Add",
    "Sub",
    "Mul",
    "Div",
    "FloorDiv",
    "Mod",
    "Min",
    "Max",
    "CmpOp",
    "EQ",
    "NE",
    "LT",
    "LE",
    "GT",
    "GE",
    "And",
    "Or",
    "Not",
    "Select",
    "Call",
    "Cast",
    "Reduce",
    "TensorRead",
    "Range",
    "const",
    "as_expr",
    "ExprVisitor",
    "ExprMutator",
    "simplify",
    "substitute",
    "collect_vars",
    "expr_bounds",
    "Interval",
]

ExprLike = Union["Expr", int, float, bool]


class Expr:
    """Base class for all scalar expressions."""

    dtype: str = "float32"

    # -- operator overloading -------------------------------------------------
    def __add__(self, other: ExprLike) -> "Expr":
        return Add(self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return Add(as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return Sub(self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return Sub(as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return Mul(self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return Mul(as_expr(other), self)

    def __truediv__(self, other: ExprLike) -> "Expr":
        return Div(self, as_expr(other))

    def __rtruediv__(self, other: ExprLike) -> "Expr":
        return Div(as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(self, as_expr(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return FloorDiv(as_expr(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return Mod(self, as_expr(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return Mod(as_expr(other), self)

    def __neg__(self) -> "Expr":
        return Sub(const(0, self.dtype), self)

    # Comparison operators intentionally return expression nodes; equality of
    # nodes as Python objects should use ``same_as``.
    def __eq__(self, other: object) -> "Expr":  # type: ignore[override]
        return EQ(self, as_expr(other))

    def __ne__(self, other: object) -> "Expr":  # type: ignore[override]
        return NE(self, as_expr(other))

    def __lt__(self, other: ExprLike) -> "Expr":
        return LT(self, as_expr(other))

    def __le__(self, other: ExprLike) -> "Expr":
        return LE(self, as_expr(other))

    def __gt__(self, other: ExprLike) -> "Expr":
        return GT(self, as_expr(other))

    def __ge__(self, other: ExprLike) -> "Expr":
        return GE(self, as_expr(other))

    def __hash__(self) -> int:
        return id(self)

    def same_as(self, other: "Expr") -> bool:
        """Reference equality (the IR uses structural sharing)."""
        return self is other

    def __bool__(self) -> bool:
        raise TypeError(
            "Cannot convert a symbolic expression to bool; "
            "use explicit comparison helpers instead."
        )


class Var(Expr):
    """A named scalar variable (loop index or symbolic dimension)."""

    _counter = 0

    def __init__(self, name: str = "v", dtype: str = "int32"):
        if not name:
            Var._counter += 1
            name = f"v{Var._counter}"
        self.name = name
        self.dtype = dtype

    def __repr__(self) -> str:
        return self.name


class IntImm(Expr):
    """Integer immediate."""

    def __init__(self, value: int, dtype: str = "int32"):
        self.value = int(value)
        self.dtype = dtype

    def __repr__(self) -> str:
        return str(self.value)


class FloatImm(Expr):
    """Floating point immediate."""

    def __init__(self, value: float, dtype: str = "float32"):
        self.value = float(value)
        self.dtype = dtype

    def __repr__(self) -> str:
        return repr(self.value)


class StringImm(Expr):
    """String immediate, used for pragma values and intrinsic names."""

    def __init__(self, value: str):
        self.value = value
        self.dtype = "handle"

    def __repr__(self) -> str:
        return repr(self.value)


class BinaryOp(Expr):
    """Base class of binary arithmetic operators."""

    op_name = "?"

    def __init__(self, a: Expr, b: Expr):
        self.a = a
        self.b = b
        self.dtype = a.dtype if a.dtype != "int32" else b.dtype

    def __repr__(self) -> str:
        return f"({self.a} {self.op_name} {self.b})"


class Add(BinaryOp):
    op_name = "+"


class Sub(BinaryOp):
    op_name = "-"


class Mul(BinaryOp):
    op_name = "*"


class Div(BinaryOp):
    op_name = "/"


class FloorDiv(BinaryOp):
    op_name = "//"


class Mod(BinaryOp):
    op_name = "%"


class Min(BinaryOp):
    op_name = "min"

    def __repr__(self) -> str:
        return f"min({self.a}, {self.b})"


class Max(BinaryOp):
    op_name = "max"

    def __repr__(self) -> str:
        return f"max({self.a}, {self.b})"


class CmpOp(BinaryOp):
    """Base class of comparison operators; result dtype is boolean."""

    def __init__(self, a: Expr, b: Expr):
        super().__init__(a, b)
        self.dtype = "bool"


class EQ(CmpOp):
    op_name = "=="


class NE(CmpOp):
    op_name = "!="


class LT(CmpOp):
    op_name = "<"


class LE(CmpOp):
    op_name = "<="


class GT(CmpOp):
    op_name = ">"


class GE(CmpOp):
    op_name = ">="


class And(CmpOp):
    op_name = "and"


class Or(CmpOp):
    op_name = "or"


class Not(Expr):
    def __init__(self, a: Expr):
        self.a = a
        self.dtype = "bool"

    def __repr__(self) -> str:
        return f"(not {self.a})"


class Select(Expr):
    """Ternary select: ``condition ? true_value : false_value``."""

    def __init__(self, condition: Expr, true_value: Expr, false_value: Expr):
        self.condition = condition
        self.true_value = true_value
        self.false_value = false_value
        self.dtype = true_value.dtype

    def __repr__(self) -> str:
        return f"select({self.condition}, {self.true_value}, {self.false_value})"


#: Math intrinsics the expression language understands, mapped to evaluators.
MATH_INTRINSICS: Dict[str, Callable[..., float]] = {
    "exp": math.exp,
    "log": lambda x: math.log(x) if x > 0 else float("-inf"),
    "sqrt": lambda x: math.sqrt(x) if x >= 0 else float("nan"),
    "tanh": math.tanh,
    "sigmoid": lambda x: 1.0 / (1.0 + math.exp(-x)),
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "round": round,
    "popcount": lambda x: bin(int(x) & 0xFFFFFFFF).count("1"),
}


class Call(Expr):
    """Call to a math intrinsic or a hardware intrinsic."""

    def __init__(self, name: str, args: Sequence[Expr], dtype: str = "float32",
                 call_type: str = "intrinsic"):
        self.name = name
        self.args = [as_expr(a) for a in args]
        self.dtype = dtype
        self.call_type = call_type

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        return f"{self.name}({args})"


class Cast(Expr):
    """Type conversion."""

    def __init__(self, value: Expr, dtype: str):
        self.value = value
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"{self.dtype}({self.value})"


class Reduce(Expr):
    """Commutative reduction over one or more reduction axes.

    ``combiner`` is one of ``"sum"``, ``"max"``, ``"min"``.  ``axis`` holds
    the :class:`~repro.te.tensor.IterVar` objects being reduced.
    """

    IDENTITY = {"sum": 0.0, "max": float("-inf"), "min": float("inf")}

    def __init__(self, combiner: str, source: Expr, axis: Sequence[object],
                 init: Optional[Expr] = None):
        if combiner not in self.IDENTITY:
            raise ValueError(f"Unsupported reduction combiner: {combiner}")
        self.combiner = combiner
        self.source = source
        self.axis = list(axis)
        self.init = init
        self.dtype = source.dtype

    def combine(self, acc: float, value: float) -> float:
        if self.combiner == "sum":
            return acc + value
        if self.combiner == "max":
            return max(acc, value)
        return min(acc, value)

    @property
    def identity(self) -> float:
        return self.IDENTITY[self.combiner]

    def __repr__(self) -> str:
        axes = ", ".join(str(iv.var) for iv in self.axis)
        return f"{self.combiner}({self.source}, axis=[{axes}])"


class TensorRead(Expr):
    """Read of a tensor element at symbolic indices (producer load)."""

    def __init__(self, tensor: object, indices: Sequence[ExprLike]):
        self.tensor = tensor
        self.indices = [as_expr(i) for i in indices]
        self.dtype = getattr(tensor, "dtype", "float32")

    def __repr__(self) -> str:
        idx = ", ".join(repr(i) for i in self.indices)
        return f"{getattr(self.tensor, 'name', 'tensor')}[{idx}]"


class Range:
    """A half-open integer range ``[min, min + extent)``."""

    def __init__(self, min_value: ExprLike, extent: ExprLike):
        self.min = as_expr(min_value)
        self.extent = as_expr(extent)

    @staticmethod
    def from_extent(extent: ExprLike) -> "Range":
        return Range(0, extent)

    def __repr__(self) -> str:
        return f"range(min={self.min}, extent={self.extent})"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------

#: interned small int32 immediates — loop bounds and indices allocate the
#: same handful of constants millions of times on the lowering fast path.
#: IntImm nodes are immutable, so sharing is observationally equivalent.
_SMALL_INTS: Dict[int, "IntImm"] = {}


def const(value: Union[int, float, bool], dtype: Optional[str] = None) -> Expr:
    """Create an immediate expression from a Python number."""
    if isinstance(value, bool):
        return IntImm(int(value), dtype or "bool")
    if isinstance(value, int):
        if (dtype is None or dtype == "int32") and -64 <= value <= 1024:
            imm = _SMALL_INTS.get(value)
            if imm is None:
                imm = IntImm(value, "int32")
                _SMALL_INTS[value] = imm
            return imm
        return IntImm(value, dtype or "int32")
    return FloatImm(float(value), dtype or "float32")


def as_expr(value: object) -> Expr:
    """Coerce a Python value into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, (int, float, bool)):
        return const(value)
    if isinstance(value, str):
        return StringImm(value)
    # IterVar quacks like a variable via its ``var`` attribute.
    var = getattr(value, "var", None)
    if isinstance(var, Var):
        return var
    raise TypeError(f"Cannot convert {value!r} to an expression")


# ---------------------------------------------------------------------------
# Visitors
# ---------------------------------------------------------------------------

def _dispatch(visitor: object, node: object):
    """Resolve ``visit_<nodetype>`` once per (visitor class, node class).

    The per-node ``getattr(self, f"visit_{...}")`` string build dominated
    visitor dispatch cost on the hot lowering/featurisation path; the result
    is memoized in a dict stored on the visitor class itself (so short-lived
    local visitor classes take their cache with them when collected).
    """
    cls = type(visitor)
    cache = cls.__dict__.get("_dispatch_cache")
    if cache is None:
        cache = {}
        cls._dispatch_cache = cache
    node_cls = type(node)
    try:
        return cache[node_cls]
    except KeyError:
        method = getattr(cls, f"visit_{node_cls.__name__.lower()}", None)
        cache[node_cls] = method
        return method


class ExprVisitor:
    """Generic read-only traversal of an expression tree."""

    def visit(self, expr: Expr) -> None:
        method = _dispatch(self, expr)
        if method is not None:
            method(self, expr)
        else:
            self.generic_visit(expr)

    def generic_visit(self, expr: Expr) -> None:
        for child in expr_children(expr):
            self.visit(child)


class ExprMutator:
    """Generic rebuild-on-the-way-up mutation of an expression tree."""

    def visit(self, expr: Expr) -> Expr:
        method = _dispatch(self, expr)
        if method is not None:
            return method(self, expr)
        return self.generic_visit(expr)

    # Leaf fast paths: immediates and variables have no children, so the
    # default mutation is the identity.  Subclasses that rewrite leaves
    # (e.g. the substituter's ``visit_var``) override these as usual.
    def visit_var(self, expr: Expr) -> Expr:
        return expr

    def visit_intimm(self, expr: Expr) -> Expr:
        return expr

    def visit_floatimm(self, expr: Expr) -> Expr:
        return expr

    def visit_stringimm(self, expr: Expr) -> Expr:
        return expr

    def generic_visit(self, expr: Expr) -> Expr:
        if isinstance(expr, BinaryOp):
            a = self.visit(expr.a)
            b = self.visit(expr.b)
            if a is expr.a and b is expr.b:
                return expr
            return type(expr)(a, b)
        if isinstance(expr, Not):
            a = self.visit(expr.a)
            return expr if a is expr.a else Not(a)
        if isinstance(expr, Select):
            c = self.visit(expr.condition)
            t = self.visit(expr.true_value)
            f = self.visit(expr.false_value)
            if c is expr.condition and t is expr.true_value and f is expr.false_value:
                return expr
            return Select(c, t, f)
        if isinstance(expr, Call):
            args = [self.visit(a) for a in expr.args]
            if all(n is o for n, o in zip(args, expr.args)):
                return expr
            return Call(expr.name, args, expr.dtype, expr.call_type)
        if isinstance(expr, Cast):
            v = self.visit(expr.value)
            return expr if v is expr.value else Cast(v, expr.dtype)
        if isinstance(expr, Reduce):
            src = self.visit(expr.source)
            if src is expr.source:
                return expr
            return Reduce(expr.combiner, src, expr.axis, expr.init)
        if isinstance(expr, TensorRead):
            indices = [self.visit(i) for i in expr.indices]
            if all(n is o for n, o in zip(indices, expr.indices)):
                return expr
            return TensorRead(expr.tensor, indices)
        return expr


def expr_children(expr: Expr) -> List[Expr]:
    """Return the immediate sub-expressions of ``expr``."""
    if isinstance(expr, BinaryOp):
        return [expr.a, expr.b]
    if isinstance(expr, Not):
        return [expr.a]
    if isinstance(expr, Select):
        return [expr.condition, expr.true_value, expr.false_value]
    if isinstance(expr, Call):
        return list(expr.args)
    if isinstance(expr, Cast):
        return [expr.value]
    if isinstance(expr, Reduce):
        return [expr.source]
    if isinstance(expr, TensorRead):
        return list(expr.indices)
    return []


def collect_vars(expr: Expr) -> List[Var]:
    """Collect all distinct :class:`Var` nodes appearing in ``expr``."""
    seen: List[Var] = []
    seen_ids: set = set()    # identity dedup without an O(n) rescan per add

    def _add(v: Var) -> None:
        if id(v) not in seen_ids:
            seen_ids.add(id(v))
            seen.append(v)

    def _walk(e: Expr) -> None:
        if isinstance(e, Var):
            _add(e)
            return
        for child in expr_children(e):
            _walk(child)
        if isinstance(e, Reduce):
            for iv in e.axis:
                _add(iv.var)

    _walk(expr)
    return seen


class _Substituter(ExprMutator):
    def __init__(self, mapping: Dict[Var, Expr]):
        self.mapping = mapping

    def visit_var(self, expr: Var) -> Expr:
        return self.mapping.get(expr, expr)


def substitute(expr: Expr, mapping: Dict[Var, ExprLike]) -> Expr:
    """Substitute variables in ``expr`` using ``mapping``."""
    for value in mapping.values():
        if not isinstance(value, Expr):
            cleaned: Dict[Var, Expr] = {k: as_expr(v) for k, v in mapping.items()}
            break
    else:
        cleaned = mapping
    return _Substituter(cleaned).visit(expr)


# ---------------------------------------------------------------------------
# Simplification (constant folding of arithmetic on immediates)
# ---------------------------------------------------------------------------

def _imm_value(expr: Expr) -> Optional[Union[int, float]]:
    if isinstance(expr, (IntImm, FloatImm)):
        return expr.value
    return None


class _Simplifier(ExprMutator):
    _FOLD = {
        Add: lambda a, b: a + b,
        Sub: lambda a, b: a - b,
        Mul: lambda a, b: a * b,
        Div: lambda a, b: a / b if b != 0 else float("nan"),
        FloorDiv: lambda a, b: a // b if b != 0 else 0,
        Mod: lambda a, b: a % b if b != 0 else 0,
        Min: min,
        Max: max,
        EQ: lambda a, b: int(a == b),
        NE: lambda a, b: int(a != b),
        LT: lambda a, b: int(a < b),
        LE: lambda a, b: int(a <= b),
        GT: lambda a, b: int(a > b),
        GE: lambda a, b: int(a >= b),
    }

    #: global memo of simplified results, keyed by node identity.  Expression
    #: nodes are immutable and substitution splices shared subtrees into many
    #: parents, so the same object is re-simplified constantly on the
    #: lowering fast path.  The original is pinned in the value to keep its
    #: id stable.  Unlike the lowering/feature caches, entries cost microseconds
    #: to recompute, so overflow is handled by a wholesale wipe instead of
    #: paying LRU bookkeeping on every fold; clear_eval_caches() also empties
    #: it to release the pinned nodes.
    _MEMO: dict = {}
    _MEMO_LIMIT = 200_000

    def visit(self, expr: Expr) -> Expr:
        memo = self._MEMO
        key = id(expr)
        hit = memo.get(key)
        if hit is not None and hit[0] is expr:
            return hit[1]
        # Specialized hot path: loop-index expressions are almost entirely
        # binary arithmetic over variables and immediates, so handle those
        # without the generic dispatch/rebuild machinery.
        if isinstance(expr, BinaryOp):
            a = self.visit(expr.a)
            b = self.visit(expr.b)
            if a is not expr.a or b is not expr.b:
                result = self._fold(type(expr)(a, b))
            else:
                result = self._fold(expr)
        elif isinstance(expr, (Var, IntImm, FloatImm, StringImm)):
            return expr
        else:
            result = super().visit(expr)
        if len(memo) >= self._MEMO_LIMIT:
            memo.clear()
        memo[key] = (expr, result)
        return result

    def generic_visit(self, expr: Expr) -> Expr:
        expr = super().generic_visit(expr)
        if isinstance(expr, BinaryOp):
            return self._fold(expr)
        return expr

    def _fold(self, expr: BinaryOp) -> Expr:
        a, b = _imm_value(expr.a), _imm_value(expr.b)
        if a is None and b is None:
            return expr        # every rule below needs an immediate operand
        if a is not None and b is not None:
            value = self._FOLD[type(expr)](a, b)
            if isinstance(expr.a, IntImm) and isinstance(expr.b, IntImm):
                return IntImm(int(value))
            return FloatImm(float(value))
        # algebraic identities
        if isinstance(expr, Add):
            if a == 0:
                return expr.b
            if b == 0:
                return expr.a
        if isinstance(expr, Sub) and b == 0:
            return expr.a
        if isinstance(expr, Mul):
            if a == 1:
                return expr.b
            if b == 1:
                return expr.a
            if a == 0 or b == 0:
                return IntImm(0) if expr.dtype.startswith("int") else FloatImm(0.0)
        if isinstance(expr, (Div, FloorDiv)) and b == 1:
            return expr.a
        return expr


def structural_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of two expressions (same shape and leaf values)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, Var):
        return a is b
    if isinstance(a, (IntImm, FloatImm, StringImm)):
        return a.value == b.value
    if isinstance(a, Call) and a.name != b.name:
        return False
    children_a, children_b = expr_children(a), expr_children(b)
    if len(children_a) != len(children_b):
        return False
    return all(structural_equal(x, y) for x, y in zip(children_a, children_b))


#: stateless, so one shared instance serves every ``simplify`` call
_SIMPLIFIER = _Simplifier()


def simplify(expr: ExprLike) -> Expr:
    """Constant-fold and apply simple algebraic identities."""
    expr = as_expr(expr)
    if isinstance(expr, (Var, IntImm, FloatImm, StringImm)):
        return expr    # leaves are already in simplest form
    result = _SIMPLIFIER.visit(expr)
    # Cancel exact self-subtraction produced by buffer rebasing: (x + e) - e.
    if isinstance(result, Sub):
        if structural_equal(result.a, result.b):
            return IntImm(0)
        if isinstance(result.a, Add) and structural_equal(result.a.b, result.b):
            return result.a.a
        if isinstance(result.a, Add) and structural_equal(result.a.a, result.b):
            return result.a.b
    return result


# ---------------------------------------------------------------------------
# Interval arithmetic (used for bound inference of affine index expressions)
# ---------------------------------------------------------------------------

class Interval:
    """Closed integer interval ``[low, high]`` used for bound analysis."""

    def __init__(self, low: float, high: float):
        self.low = low
        self.high = high

    @property
    def extent(self) -> float:
        return self.high - self.low + 1

    def __repr__(self) -> str:
        return f"[{self.low}, {self.high}]"

    def union(self, other: "Interval") -> "Interval":
        return Interval(min(self.low, other.low), max(self.high, other.high))


def expr_bounds(expr: Expr, var_ranges: Dict[Var, Interval]) -> Interval:
    """Compute a conservative interval for ``expr``.

    ``var_ranges`` maps each free variable to its interval.  Only the affine
    subset (plus min/max/floordiv/mod/select) is handled precisely; anything
    unknown falls back to the widest interval seen among operands.
    """
    if isinstance(expr, Var):
        if expr in var_ranges:
            return var_ranges[expr]
        raise KeyError(f"No range known for variable {expr}")
    if isinstance(expr, (IntImm, FloatImm)):
        return Interval(expr.value, expr.value)
    if isinstance(expr, Add):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        return Interval(a.low + b.low, a.high + b.high)
    if isinstance(expr, Sub):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        return Interval(a.low - b.high, a.high - b.low)
    if isinstance(expr, Mul):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        candidates = [a.low * b.low, a.low * b.high, a.high * b.low, a.high * b.high]
        return Interval(min(candidates), max(candidates))
    if isinstance(expr, (Div, FloorDiv)):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        divisors = [d for d in (b.low, b.high) if d != 0]
        if not divisors:
            return a
        candidates = [a.low / d for d in divisors] + [a.high / d for d in divisors]
        if isinstance(expr, FloorDiv):
            candidates = [math.floor(c) for c in candidates]
        return Interval(min(candidates), max(candidates))
    if isinstance(expr, Mod):
        a = expr_bounds(expr.a, var_ranges)
        b = expr_bounds(expr.b, var_ranges)
        if b.low == b.high and b.low > 0:
            divisor = b.low
            # When the numerator stays within one quotient block, the result
            # is simply the shifted interval (important for the fuse-then-
            # split index patterns produced by schedules).
            if math.floor(a.low / divisor) == math.floor(a.high / divisor):
                return Interval(a.low % divisor, a.high % divisor)
            return Interval(0, divisor - 1)
        return Interval(0, max(abs(b.low), abs(b.high)) - 1)
    if isinstance(expr, Min):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        return Interval(min(a.low, b.low), min(a.high, b.high))
    if isinstance(expr, Max):
        a, b = expr_bounds(expr.a, var_ranges), expr_bounds(expr.b, var_ranges)
        return Interval(max(a.low, b.low), max(a.high, b.high))
    if isinstance(expr, Select):
        t = expr_bounds(expr.true_value, var_ranges)
        f = expr_bounds(expr.false_value, var_ranges)
        return t.union(f)
    if isinstance(expr, Cast):
        return expr_bounds(expr.value, var_ranges)
    # Conservative fallback: union of operand intervals.
    children = expr_children(expr)
    if not children:
        return Interval(0, 0)
    result = expr_bounds(children[0], var_ranges)
    for child in children[1:]:
        result = result.union(expr_bounds(child, var_ranges))
    return result
