"""Computational graph IR, high-level rewriting passes and the end-to-end compiler."""

from .build import CompiledKernel, CompiledModule, build
from .ir import Graph, Node
from .op_timing import clear_timing_cache, estimate_node_time, make_task_for_node
from .ops import OP_REGISTRY, OpPattern, OpSpec, register_op
from .passes import (
    FusedGroup,
    MemoryPlan,
    alter_layout,
    fold_constants,
    fuse_ops,
    plan_memory,
)
from .simplify import (
    dead_code_elimination,
    eliminate_common_subexpr,
    simplify_inference,
)
from .tuning import extract_tasks, tune_graph, tune_tasks

__all__ = [
    "CompiledKernel",
    "CompiledModule",
    "FusedGroup",
    "Graph",
    "MemoryPlan",
    "Node",
    "OP_REGISTRY",
    "OpPattern",
    "OpSpec",
    "alter_layout",
    "build",
    "clear_timing_cache",
    "estimate_node_time",
    "fold_constants",
    "fuse_ops",
    "make_task_for_node",
    "plan_memory",
    "register_op",
    "simplify_inference",
    "eliminate_common_subexpr",
    "dead_code_elimination",
    "extract_tasks",
    "tune_graph",
    "tune_tasks",
]
