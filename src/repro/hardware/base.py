"""Base classes for simulated hardware back-ends.

The paper evaluates TVM on four physical platforms.  This reproduction
replaces them with analytic/event-driven performance models driven by the
lowered loop program (see DESIGN.md §1).  Each model exposes:

* :meth:`HardwareModel.estimate` — deterministic latency estimate in seconds
  from :class:`~repro.tir.analysis.ProgramFeatures`.
* :meth:`HardwareModel.measure` — a "hardware measurement": the estimate plus
  multiplicative measurement noise, as would be observed by the RPC device
  pool when timing a kernel on a real board.

The models are intentionally mechanistic: schedule decisions change the
lowered program, which changes the features (memory traffic per scope,
parallelism, barriers, intrinsic usage), which changes the simulated time.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..tir.analysis import ProgramFeatures, extract_features
from ..tir.stmt import LoweredFunc

__all__ = ["HardwareParams", "HardwareModel", "MeasureResult"]


@dataclass
class HardwareParams:
    """Capability description of a simulated device."""

    name: str = "generic"
    #: peak floating point throughput in FLOP/s
    peak_flops: float = 1e11
    #: off-chip (DRAM) bandwidth in bytes/s
    dram_bandwidth: float = 10e9
    #: on-chip scratchpad / shared-memory bandwidth in bytes/s
    onchip_bandwidth: float = 100e9
    #: last-level hardware-managed cache in bytes (0 = none, e.g. accelerators)
    cache_bytes: float = 1 << 20
    #: first-level cache in bytes
    l1_bytes: float = 32 << 10
    #: kernel / invocation launch overhead in seconds
    launch_overhead: float = 1e-6
    #: measurement noise (one standard deviation, multiplicative)
    noise_std: float = 0.03


@dataclass
class MeasureResult:
    """Result of one simulated on-device measurement."""

    mean_time: float
    times: list = field(default_factory=list)
    error: Optional[str] = None

    @property
    def valid(self) -> bool:
        return self.error is None and math.isfinite(self.mean_time)


class HardwareModel:
    """Common machinery shared by all simulated devices."""

    device_type = "generic"

    def __init__(self, params: Optional[HardwareParams] = None, seed: int = 0):
        self.params = params or HardwareParams()
        self._seed = seed

    # -- interface -------------------------------------------------------------
    def estimate(self, features: ProgramFeatures) -> float:
        """Deterministic latency estimate (seconds) for a lowered program."""
        raise NotImplementedError

    def estimate_func(self, func: LoweredFunc) -> float:
        return self.estimate(extract_features(func))

    def estimate_batch(self, features_seq) -> np.ndarray:
        """Latency estimates for a whole batch of candidate programs.

        The candidate-evaluation pipeline scores a round of configurations as
        one call instead of N scalar calls.  Entries that raise (invalid
        schedules, resource overflow) or come in as ``None`` (failed
        lowerings) score ``inf`` instead of aborting the batch.  Subclasses
        with a vectorizable analytic model may override this loop.
        """
        out = np.empty(len(features_seq), dtype=np.float64)
        for i, features in enumerate(features_seq):
            if features is None:
                out[i] = np.inf
                continue
            try:
                out[i] = self.estimate(features)
            except Exception:
                out[i] = np.inf
        return out

    def measure(self, func_or_features, number: int = 3,
                rng: Optional[np.random.Generator] = None) -> MeasureResult:
        """Simulate timing a kernel ``number`` times on the device."""
        if isinstance(func_or_features, LoweredFunc):
            features = extract_features(func_or_features)
            key = func_or_features.name
        else:
            features = func_or_features
            key = "features"
        try:
            base = self.estimate(features)
        except Exception as exc:  # invalid schedule (e.g. resource overflow)
            return MeasureResult(float("inf"), [], error=str(exc))
        if not math.isfinite(base):
            return MeasureResult(float("inf"), [], error="resource limit exceeded")
        rng = rng or self._rng_for(key)
        times = [max(base * float(rng.normal(1.0, self.params.noise_std)), base * 0.5)
                 for _ in range(number)]
        return MeasureResult(float(np.mean(times)), times)

    # -- helpers ---------------------------------------------------------------
    def _rng_for(self, key: str) -> np.random.Generator:
        digest = hashlib.sha256(f"{self.params.name}:{key}:{self._seed}".encode())
        return np.random.default_rng(int.from_bytes(digest.digest()[:8], "little"))

    def _parallel_efficiency(self, requested: float, available: int) -> float:
        """Diminishing-returns scaling of a parallel resource."""
        if requested <= 1:
            return 1.0 / available
        used = min(requested, available)
        # 90% parallel efficiency per doubling beyond a single unit.
        return (used / available) * (0.92 ** math.log2(max(used, 1.0)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.params.name})"
