"""Tests for the unified compilation pipeline (repro.compile + pass infra)."""

import numpy as np
import pytest

import repro
from repro.compiler import (
    DEFAULT_PIPELINE,
    CompiledModule,
    Pass,
    PassContext,
    PassInfo,
    PassInstrument,
    Sequential,
    TimingInstrument,
    get_pass,
    list_passes,
    register_pass,
)
from repro.frontend import MODEL_REGISTRY, ModelBuilder, dqn, get_model
from repro.graph import build
from repro.hardware import cuda, vdla
from repro import runtime


def _small_cnn():
    """conv+bn+relu+pool+dense: exercises folding, fusion and planning."""
    b = ModelBuilder("pipeline_cnn", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, stride=1, padding=1,
                                       name="conv")))
    net = b.max_pool2d(net, pool_size=2, stride=2)
    net = b.softmax(b.dense(b.flatten(net), 10, name="fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


# ---------------------------------------------------------------------------
# Registry and pipeline structure
# ---------------------------------------------------------------------------

class TestPassRegistry:
    def test_default_pipeline_is_registered_in_order(self):
        assert DEFAULT_PIPELINE == ("fold_constants", "simplify_inference",
                                    "alter_layout", "fuse_ops", "plan_memory")
        for name in DEFAULT_PIPELINE:
            assert name in list_passes()

    def test_opt_level_gates_match_legacy_build(self):
        assert get_pass("fold_constants").info.opt_level == 1
        assert get_pass("simplify_inference").info.opt_level == 2
        assert get_pass("alter_layout").info.opt_level == 2
        assert get_pass("fuse_ops").info.opt_level == 2
        assert get_pass("plan_memory").info.opt_level == 0

    def test_unknown_pass_raises_with_available_names(self):
        with pytest.raises(KeyError, match="fuse_ops"):
            get_pass("no_such_pass")

    def test_extra_simplify_passes_registered_but_not_default(self):
        for name in ("eliminate_common_subexpr", "dead_code_elimination"):
            assert name in list_passes()
            assert name not in DEFAULT_PIPELINE


# ---------------------------------------------------------------------------
# PassContext semantics
# ---------------------------------------------------------------------------

class TestPassContext:
    def test_nesting_and_current(self):
        default = PassContext.current()
        assert default.opt_level == 2
        with PassContext(opt_level=1) as outer:
            assert PassContext.current() is outer
            with PassContext(opt_level=0, disabled_passes=["plan_memory"]) as inner:
                assert PassContext.current() is inner
            assert PassContext.current() is outer
        assert PassContext.current() is not outer

    def test_context_stack_is_thread_local(self):
        import threading

        levels = {}

        def worker():
            levels["other_thread"] = PassContext.current().opt_level

        with PassContext(opt_level=0):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            levels["this_thread"] = PassContext.current().opt_level
        assert levels["this_thread"] == 0
        assert levels["other_thread"] == 2  # default, not leaked from here

    def test_negative_opt_level_rejected(self):
        with pytest.raises(ValueError):
            PassContext(opt_level=-1)

    def test_disabled_passes_match_opt_level_0(self):
        """Disabling every gated pass by name == legacy opt_level=0."""
        model = _small_cnn()
        legacy = repro.compile(model, target=cuda(), opt_level=0)
        gated = [name for name in DEFAULT_PIPELINE
                 if get_pass(name).info.opt_level >= 1]
        with PassContext(opt_level=2, disabled_passes=gated):
            ablated = repro.compile(model, target=cuda())
        assert [k.name for k in ablated.kernels] == [k.name for k in legacy.kernels]
        assert ablated.total_time == pytest.approx(legacy.total_time)

    def test_disabled_passes_match_opt_level_1(self):
        model = _small_cnn()
        legacy = repro.compile(model, target=cuda(), opt_level=1)
        with PassContext(disabled_passes=["simplify_inference", "alter_layout",
                                          "fuse_ops"]):
            ablated = repro.compile(model, target=cuda())
        assert [k.name for k in ablated.kernels] == [k.name for k in legacy.kernels]
        assert ablated.total_time == pytest.approx(legacy.total_time)

    def test_disable_fusion_yields_one_kernel_per_operator(self):
        model = _small_cnn()
        with PassContext(disabled_passes=["fuse_ops"]):
            module = repro.compile(model, target=cuda())
        assert len(module.kernels) == len(module.graph.op_nodes)
        assert all(len(k.group.nodes) == 1 for k in module.kernels)
        fused = repro.compile(model, target=cuda())
        assert len(fused.kernels) < len(module.kernels)
        assert fused.total_time < module.total_time

    def test_disable_memory_planning_drops_storage_reuse(self):
        model = _small_cnn()
        planned = repro.compile(model, target=cuda())
        with PassContext(disabled_passes=["plan_memory"]):
            unplanned = repro.compile(model, target=cuda())
        assert planned.memory_plan.reuse_ratio > 1.0
        assert unplanned.memory_plan.reuse_ratio == pytest.approx(1.0)

    def test_typo_in_disabled_passes_fails_loudly(self):
        with PassContext(disabled_passes=["fuse_opss"]):
            with pytest.raises(KeyError, match="fuse_opss"):
                repro.compile(_small_cnn(), target=cuda())

    def test_extra_passes_run_before_codegen_passes(self):
        recorded = {}

        def audit(state, ctx):
            recorded["shapes_valid"] = all(n.shape is not None
                                           for n in state.graph.nodes)

        audit_pass = Pass(audit, PassInfo(name="audit"))
        with PassContext(extra_passes=[audit_pass]):
            module = repro.compile(_small_cnn(), target=cuda())
        # The extra pass ran instrumented, saw a shape-valid graph, and was
        # spliced in before fusion/memory planning so rewrites reach codegen.
        assert recorded["shapes_valid"]
        executed = [r.name for r in module.pass_records]
        assert executed.index("audit") < executed.index("fuse_ops")
        assert executed[-1] == "plan_memory"

    def test_extra_rewrite_pass_affects_generated_kernels(self):
        """eliminate_common_subexpr via extra_passes must reach codegen."""
        b = ModelBuilder("cse", seed=0)
        data = b.input("data", (1, 8))
        left = b.relu(b.dense(data, 8, name="fc"))
        right = b.relu(b.dense(data, 8, name="fc2"))
        # Same weights are not shared, but the two relu consumers of one
        # dense below ARE a common subexpression.
        shared = b.dense(data, 8, name="fc3")
        out = b.add(b.add(b.relu(shared), b.relu(shared)), b.add(left, right))
        graph, params = b.finalize(out)

        plain = repro.compile((graph, params), target=cuda(),
                              input_shapes={"data": (1, 8)})
        with PassContext(extra_passes=["eliminate_common_subexpr"]):
            deduped = repro.compile((graph, params), target=cuda(),
                                    input_shapes={"data": (1, 8)})
        plain_nodes = sum(len(k.group.nodes) for k in plain.kernels)
        deduped_nodes = sum(len(k.group.nodes) for k in deduped.kernels)
        assert deduped_nodes < plain_nodes
        assert len(deduped.graph.op_nodes) == deduped_nodes


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

class TestInstruments:
    def test_timings_present_for_every_executed_pass(self):
        module = repro.compile(_small_cnn(), target=cuda())
        executed = [r.name for r in module.pass_records]
        assert executed == list(DEFAULT_PIPELINE)
        assert all(r.seconds >= 0.0 for r in module.pass_records)
        assert set(module.pass_timings()) == set(DEFAULT_PIPELINE)
        assert "fold_constants" in module.pass_summary()

    def test_disabled_passes_produce_no_records(self):
        with PassContext(opt_level=0):
            module = repro.compile(_small_cnn(), target=cuda())
        assert [r.name for r in module.pass_records] == ["plan_memory"]

    def test_custom_instrument_receives_callbacks(self):
        class Recorder(PassInstrument):
            def __init__(self):
                self.entered = self.exited = 0
                self.before = []
                self.after = []

            def enter_pass_ctx(self):
                self.entered += 1

            def exit_pass_ctx(self):
                self.exited += 1

            def run_before_pass(self, info, state):
                self.before.append(info.name)

            def run_after_pass(self, info, state, seconds):
                self.after.append((info.name, seconds))

        recorder = Recorder()
        with PassContext(instruments=[recorder]):
            repro.compile(_small_cnn(), target=cuda())
        assert recorder.entered == 1 and recorder.exited == 1
        assert recorder.before == list(DEFAULT_PIPELINE)
        assert [name for name, _s in recorder.after] == list(DEFAULT_PIPELINE)

    def test_timing_instrument_records_node_counts(self):
        timing = TimingInstrument()
        with PassContext(instruments=[timing]):
            repro.compile(_small_cnn(), target=cuda())
        simplify = [r for r in timing.records if r.name == "simplify_inference"]
        assert simplify and simplify[0].nodes_before > 0
        # Folding the batch norm removes nodes.
        assert simplify[0].nodes_after < simplify[0].nodes_before


# ---------------------------------------------------------------------------
# compile() front door
# ---------------------------------------------------------------------------

class TestCompileFrontDoor:
    def test_accepts_target_name_and_model_tuple(self):
        module = repro.compile(_small_cnn(), target="cuda")
        assert module.target.name == "cuda"
        assert module.total_time > 0

    def test_accepts_model_zoo_name(self):
        module = repro.compile("dqn", target="cuda")
        assert len(module.kernels) > 0

    def test_rejects_bad_model_and_target(self):
        with pytest.raises(TypeError, match="model"):
            repro.compile(42, target="cuda")
        with pytest.raises(TypeError, match="target"):
            repro.compile(_small_cnn(), target=None)

    def test_compiles_every_zoo_model_in_one_call(self):
        small_kwargs = {
            "resnet-18": dict(image_size=32, num_classes=10),
            "mobilenet": dict(image_size=32, num_classes=10),
            "lstm-lm": dict(hidden_size=64, seq_len=2),
            "dqn": {},
            "dcgan": {},
        }
        for name in MODEL_REGISTRY:
            model = get_model(name, batch=1, **small_kwargs.get(name, {}))
            module = repro.compile(model, target="cuda")
            assert module.total_time > 0, name
            assert module.pass_records, name

    def test_heterogeneous_targets_accept_names(self):
        graph, params, shapes = get_model("resnet-18", batch=1, image_size=32,
                                          num_classes=10)
        module = repro.compile((graph, params, shapes), target="pynq_cpu",
                               heterogeneous_targets={"conv2d": "vdla"})
        devices = {k.device for k in module.kernels
                   if k.group.master.op == "conv2d"}
        assert devices == {"vdla"}

    def test_residual_model_executes_in_kernel_order(self):
        """Regression: fusion must not absorb a residual add into the first
        branch's kernel before the second branch has produced its input."""
        b = ModelBuilder("residual", seed=0)
        data = b.input("data", (1, 4, 8, 8))
        left = b.batch_norm(b.conv2d(data, 4, 3, stride=1, padding=1,
                                     name="left"))
        right = b.batch_norm(b.conv2d(data, 4, 1, stride=1, padding=0,
                                      name="right"))
        out = b.relu(b.add(left, right))
        graph, params = b.finalize(out)
        module = repro.compile(graph, target=cuda(), params=params,
                               input_shapes={"data": (1, 4, 8, 8)})

        executor = module.executor()
        executor.set_input(**module.params)
        executor.run(data=np.random.default_rng(2)
                     .random((1, 4, 8, 8)).astype("float32"))
        assert executor.get_output(0).asnumpy().shape == (1, 4, 8, 8)
        # The add fused somewhere downstream, never ahead of its producers.
        computed = set(n.name for n in module.graph.input_nodes)
        for kernel in module.kernels:
            for node in kernel.group.nodes:
                for parent in node.inputs:
                    assert parent.name in computed or parent.name in module.params
                computed.add(node.name)

    def test_executor_factory_matches_runtime_create(self):
        graph, params, shapes = _small_cnn()
        module = repro.compile((graph, params, shapes), target=cuda())
        data = np.random.default_rng(0).random(shapes["data"]).astype("float32")

        via_factory = module.executor()
        via_factory.set_input(**module.params)
        via_factory.run(data=data)

        via_runtime = runtime.create(module)
        via_runtime.set_input(**module.params)
        via_runtime.run(data=data)

        np.testing.assert_allclose(via_factory.get_output(0).asnumpy(),
                                   via_runtime.get_output(0).asnumpy())


# ---------------------------------------------------------------------------
# Save / load round-trip
# ---------------------------------------------------------------------------

class TestSaveLoad:
    def test_round_trip_preserves_behaviour(self, tmp_path):
        graph, params, shapes = _small_cnn()
        module = repro.compile((graph, params, shapes), target=cuda())
        path = tmp_path / "module.repro"
        module.save(path)

        loaded = CompiledModule.load(path)
        assert loaded.total_time == pytest.approx(module.total_time)
        assert [k.name for k in loaded.kernels] == [k.name for k in module.kernels]
        assert [r.name for r in loaded.pass_records] == \
            [r.name for r in module.pass_records]
        assert loaded.memory_plan.planned_bytes == module.memory_plan.planned_bytes

        data = np.random.default_rng(1).random(shapes["data"]).astype("float32")
        np.testing.assert_allclose(_output(module, data), _output(loaded, data))

    def test_load_rejects_foreign_pickles(self, tmp_path):
        import pickle

        path = tmp_path / "junk.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a module"}, handle)
        with pytest.raises(ValueError, match="CompiledModule"):
            CompiledModule.load(path)


def _output(module, data):
    executor = module.executor()
    executor.set_input(**module.params)
    executor.run(data=data)
    return executor.get_output(0).asnumpy()


class TestFrameworkOverhead:
    def test_dispatch_overhead_comes_from_hardware_profile(self):
        from repro.compiler import framework_overhead
        from repro.graph.build import _framework_overhead
        from repro.hardware import arm_cpu, mali

        for target in (cuda(), arm_cpu(), mali(), vdla()):
            expected = 0.5 * target.model.params.launch_overhead
            assert framework_overhead(target) == pytest.approx(expected)
            # The legacy graph.build helper delegates to the same profile.
            assert _framework_overhead(target) == framework_overhead(target)
        # Different back-ends pay different dispatch costs (no more 2e-6).
        assert framework_overhead(mali()) > framework_overhead(arm_cpu())


# ---------------------------------------------------------------------------
# Legacy graph.build() shim
# ---------------------------------------------------------------------------

class TestLegacyBuildShim:
    def test_returns_three_tuple_with_deprecation_warning(self):
        graph, params, _shapes = _small_cnn()
        with pytest.warns(DeprecationWarning, match="repro.compile"):
            result = build(graph, cuda(), params, opt_level=2)
        assert isinstance(result, tuple) and len(result) == 3
        out_graph, module, out_params = result
        assert isinstance(module, CompiledModule)
        assert out_graph is module.graph
        assert out_params is module.params

    def test_shim_matches_new_pipeline(self):
        for opt_level in (0, 1, 2):
            graph, params, shapes = _small_cnn()
            with pytest.warns(DeprecationWarning):
                _g, legacy, _p = build(graph, cuda(), params, opt_level=opt_level)
            new = repro.compile(_small_cnn(), target=cuda(), opt_level=opt_level)
            assert legacy.total_time == pytest.approx(new.total_time)
            assert len(legacy.kernels) == len(new.kernels)
            assert legacy.opt_level == new.opt_level == opt_level


# ---------------------------------------------------------------------------
# Lazy top-level package surface
# ---------------------------------------------------------------------------

class TestTopLevelExports:
    def test_lazy_submodules_resolve(self):
        for name in ("graph", "frontend", "hardware", "runtime", "autotvm",
                     "topi", "te", "tir", "compiler", "baselines"):
            assert getattr(repro, name).__name__ == f"repro.{name}"
            assert name in repro.__all__

    def test_compile_and_pass_context_exported(self):
        from repro.compiler import compile as compiler_compile

        assert repro.compile is compiler_compile
        assert repro.PassContext is PassContext
        assert repro.CompiledModule is CompiledModule
        assert "compile" in repro.__all__

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no_such_thing"):
            repro.no_such_thing


# ---------------------------------------------------------------------------
# Sequential pass manager details
# ---------------------------------------------------------------------------

class TestSequential:
    def test_custom_pipeline_by_name(self):
        module = repro.compile(_small_cnn(), target=cuda(),
                               pipeline=["fold_constants", "fuse_ops",
                                         "plan_memory"])
        assert [r.name for r in module.pass_records] == \
            ["fold_constants", "fuse_ops", "plan_memory"]
        # batch_norm survives because simplify_inference did not run.
        assert any(n.op == "batch_norm" for n in module.graph.op_nodes)

    def test_shapes_reinferred_after_rewrites(self):
        seen = []

        def check_shapes(state, ctx):
            seen.append(all(n.shape is not None for n in state.graph.nodes))

        probe = Pass(check_shapes, PassInfo(name="probe"))
        with PassContext(extra_passes=[probe]):
            module = repro.compile(_small_cnn(), target=cuda())
        assert seen == [True]
        assert all(n.shape is not None for n in module.graph.nodes)

    def test_register_pass_decorator_and_custom_run(self):
        name = "test_noop_pass_unique"
        if name not in list_passes():
            @register_pass(name, opt_level=0)
            def _noop(state, ctx):
                state.stats["noop_ran"] = True

        module = repro.compile(_small_cnn(), target=cuda(),
                               pipeline=list(DEFAULT_PIPELINE) + [name])
        assert [r.name for r in module.pass_records][-1] == name
