"""Shared-memory tensor arenas (`multiprocessing.shared_memory` + slot table).

An :class:`ShmArena` is one named shared-memory segment holding any number of
tensors at 64-byte-aligned offsets.  The creating process packs arrays in
(one copy); every attaching process gets **zero-copy** NumPy views over the
same physical pages.  The slot table travels as a small JSON-able spec dict
(:meth:`ShmArena.spec` / :meth:`ShmArena.attach`), so arenas compose with the
framed pipe protocol in :mod:`.protocol` — tensor *data* never enters a
message frame.

Lifetime rules (also documented in the README):

* the **creator** owns the segment: it must call :meth:`unlink` exactly once
  (``close`` merely detaches the local mapping);
* **attachers** only ever :meth:`close`; attaching suppresses the
  attach-side ``resource_tracker`` registration so a worker exiting can
  never yank a live segment out from under its siblings (CPython < 3.13
  tracks attached segments too — bpo-38119);
* every created segment is recorded in a process-local registry that an
  ``atexit`` hook drains, so even an abandoned pool cannot leak ``/dev/shm``
  entries from a normally-exiting process (:func:`leaked_segments` is the
  audit used by tests and CI).
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["ShmArena", "ShmLeakError", "leaked_segments", "SEGMENT_PREFIX"]

#: every segment this package creates is named ``<prefix><pid>-<token>`` so
#: leak audits can distinguish ours from unrelated /dev/shm entries
SEGMENT_PREFIX = "repro-pp-"

_ALIGN = 64

#: names of segments created (and not yet unlinked) by *this* process
_LIVE_SEGMENTS: Dict[str, "ShmArena"] = {}
_LIVE_LOCK = threading.Lock()

#: serialises SharedMemory construction against the attach-side
#: resource-tracker registration patch (see :meth:`ShmArena.attach`)
_TRACKER_PATCH_LOCK = threading.Lock()


class ShmLeakError(RuntimeError):
    """Shared-memory segments outlived the pool that created them."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def _as_host_array(value) -> np.ndarray:
    """Accept NumPy arrays and runtime NDArrays without copying."""
    from ..ndarray import NDArray

    if isinstance(value, NDArray):
        return value.numpy_view()
    return np.asarray(value)


def leaked_segments(prefix: str = SEGMENT_PREFIX) -> List[str]:
    """``/dev/shm`` entries left behind by this package (should be empty).

    Used by the failure-mode tests and the CI serving smoke job: after an
    engine/pool shutdown — normal or abnormal — no segment carrying our
    prefix may remain.
    """
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):            # non-Linux: nothing to audit
        return []
    return sorted(entry for entry in os.listdir(shm_dir)
                  if entry.startswith(prefix))


def _cleanup_live_segments() -> None:
    with _LIVE_LOCK:
        arenas = list(_LIVE_SEGMENTS.values())
    for arena in arenas:
        try:
            arena.unlink()
        except Exception:
            pass


atexit.register(_cleanup_live_segments)


class ShmArena:
    """One shared-memory segment + a named-tensor slot table.

    Create with :meth:`create` (packs arrays and/or reserves empty slots),
    ship :meth:`spec` through a message frame, and :meth:`attach` in the
    receiving process.  ``arena.view(name)`` hands out a zero-copy NumPy
    view of a slot in either process.
    """

    def __init__(self, segment: shared_memory.SharedMemory,
                 slots: Dict[str, Tuple[int, Tuple[int, ...], str]],
                 owner: bool):
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._slots = slots
        self._owner = owner
        self._unlinked = False

    # ------------------------------------------------------------- creation
    @classmethod
    def create(cls, tensors: Mapping[str, object] = (), *,
               reserve: Mapping[str, Tuple[Sequence[int], str]] = (),
               name: Optional[str] = None) -> "ShmArena":
        """Create a segment holding ``tensors`` (copied in) plus zero-filled
        ``reserve`` slots (``name -> (shape, dtype)``) for results.

        The returned arena is the segment's owner and must be
        :meth:`unlink`-ed exactly once.
        """
        arrays = {key: np.ascontiguousarray(_as_host_array(value))
                  for key, value in dict(tensors).items()}
        layout: Dict[str, Tuple[int, Tuple[int, ...], str]] = {}
        offset = 0
        for key, array in arrays.items():
            offset = _aligned(offset)
            layout[key] = (offset, tuple(array.shape), str(array.dtype))
            offset += array.nbytes
        for key, (shape, dtype) in dict(reserve).items():
            if key in layout:
                raise ValueError(f"Slot {key!r} both packed and reserved")
            offset = _aligned(offset)
            shape = tuple(int(dim) for dim in shape)
            layout[key] = (offset, shape, str(dtype))
            offset += int(np.dtype(dtype).itemsize * int(np.prod(shape or (1,))))
        size = max(offset, 1)

        segment_name = name or f"{SEGMENT_PREFIX}{os.getpid()}-{secrets.token_hex(4)}"
        with _TRACKER_PATCH_LOCK:
            segment = shared_memory.SharedMemory(name=segment_name,
                                                 create=True, size=size)
        arena = cls(segment, layout, owner=True)
        with _LIVE_LOCK:
            _LIVE_SEGMENTS[segment.name] = arena
        for key, array in arrays.items():
            arena.view(key, writeable=True)[...] = array
        return arena

    @classmethod
    def attach(cls, spec: Dict) -> "ShmArena":
        """Attach to a segment created elsewhere from its :meth:`spec` dict."""
        # CPython < 3.13 registers *attached* segments with the resource
        # tracker too (bpo-38119).  Spawned workers share the creator's
        # tracker daemon, so a register/unregister pair here would cancel the
        # *creator's* registration and break its leak net; suppress the
        # attach-side registration instead.
        with _TRACKER_PATCH_LOCK:
            original = resource_tracker.register
            resource_tracker.register = lambda name, rtype: None
            try:
                segment = shared_memory.SharedMemory(name=spec["segment"])
            finally:
                resource_tracker.register = original
        slots = {key: (int(offset), tuple(shape), str(dtype))
                 for key, (offset, shape, dtype) in spec["slots"].items()}
        return cls(segment, slots, owner=False)

    # ------------------------------------------------------------- accessors
    @property
    def name(self) -> str:
        if self._segment is None:
            raise ValueError("ShmArena is closed")
        return self._segment.name

    @property
    def nbytes(self) -> int:
        if self._segment is None:
            raise ValueError("ShmArena is closed")
        return self._segment.size

    def slot_names(self) -> List[str]:
        return list(self._slots)

    def spec(self) -> Dict:
        """JSON-able description (segment name + slot table) for a frame."""
        return {"segment": self.name,
                "slots": {key: [offset, list(shape), dtype]
                          for key, (offset, shape, dtype) in self._slots.items()}}

    def view(self, key: str, writeable: bool = False) -> np.ndarray:
        """Zero-copy NumPy view of one slot (read-only unless asked)."""
        if self._segment is None:
            raise ValueError(f"ShmArena is closed; cannot view {key!r}")
        try:
            offset, shape, dtype = self._slots[key]
        except KeyError:
            raise KeyError(f"Unknown arena slot {key!r}; "
                           f"known: {sorted(self._slots)}") from None
        view = np.ndarray(shape, dtype=dtype, buffer=self._segment.buf,
                          offset=offset)
        view.flags.writeable = writeable
        return view

    def read(self, key: str) -> np.ndarray:
        """Materialised copy of one slot (safe to use after close/unlink)."""
        return np.array(self.view(key))

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Detach the local mapping (the segment itself survives)."""
        if self._segment is not None:
            segment, self._segment = self._segment, None
            segment.close()

    def unlink(self) -> None:
        """Destroy the segment (owner only; idempotent)."""
        if self._unlinked:
            return
        if not self._owner:
            raise ValueError("Only the creating process may unlink an arena")
        if self._segment is None:
            raise ValueError("ShmArena already closed without unlink")
        self._unlinked = True
        name = self._segment.name
        try:
            self._segment.unlink()
        except FileNotFoundError:
            pass
        finally:
            self.close()
            with _LIVE_LOCK:
                _LIVE_SEGMENTS.pop(name, None)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner and not self._unlinked:
            self.unlink()
        else:
            self.close()

    def __repr__(self) -> str:
        state = "closed" if self._segment is None else self._segment.name
        return (f"ShmArena({state}, slots={len(self._slots)}, "
                f"owner={self._owner})")
