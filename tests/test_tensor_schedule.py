"""Unit tests for tensors, operations and schedule primitives."""

import pytest

from repro import te


def _matmul(m=8, n=6, k=4):
    A = te.placeholder((m, k), name="A")
    B = te.placeholder((k, n), name="B")
    kk = te.reduce_axis((0, k), name="kk")
    C = te.compute((m, n), lambda i, j: te.sum(A[i, kk] * B[kk, j], axis=kk), name="C")
    return A, B, C


def test_placeholder_shape_and_dtype():
    A = te.placeholder((4, 5), dtype="float16", name="A")
    assert A.shape_values() == (4, 5)
    assert A.dtype == "float16"
    assert A.ndim == 2


def test_tensor_indexing_arity_check():
    A = te.placeholder((4, 5), name="A")
    with pytest.raises(ValueError):
        _ = A[1]


def test_compute_creates_axes_matching_shape():
    C = te.compute((3, 4, 5), lambda i, j, k: i + j + k, name="C")
    assert len(C.op.axis) == 3
    assert [iv.extent_value() for iv in C.op.axis] == [3, 4, 5]


def test_compute_input_tensors_discovered():
    A, B, C = _matmul()
    inputs = C.op.input_tensors()
    assert A in inputs and B in inputs


def test_reduce_axis_domain():
    k = te.reduce_axis((2, 10), name="k")
    assert k.extent_value() == 8
    assert k.iter_type == te.IterVarType.REDUCE


def test_thread_axis_requires_tag():
    with pytest.raises(ValueError):
        te.thread_axis("")
    tx = te.thread_axis("threadIdx.x")
    assert tx.thread_tag == "threadIdx.x"
    vt = te.thread_axis("vthread")
    assert vt.iter_type == te.IterVarType.VIRTUAL_THREAD


def test_create_schedule_contains_all_stages():
    A, B, C = _matmul()
    s = te.create_schedule(C.op)
    assert s[C].is_output
    assert len(s.stages) >= 1
    assert s[C] is s[C.op]


def test_split_factor():
    _, _, C = _matmul(8, 6, 4)
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    outer, inner = s[C].split(i, factor=4)
    assert outer.extent_value() == 2
    assert inner.extent_value() == 4
    assert outer in s[C].leaf_iter_vars and inner in s[C].leaf_iter_vars
    assert i not in s[C].leaf_iter_vars


def test_split_nparts():
    _, _, C = _matmul(8, 6, 4)
    s = te.create_schedule(C.op)
    i, _ = s[C].op.axis
    outer, inner = s[C].split(i, nparts=2)
    assert outer.extent_value() == 2
    assert inner.extent_value() == 4


def test_split_invalid_factor():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, _ = s[C].op.axis
    with pytest.raises(ValueError):
        s[C].split(i, factor=0)


def test_tile_returns_four_loops_in_order():
    _, _, C = _matmul(8, 8, 4)
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    xo, yo, xi, yi = s[C].tile(i, j, 4, 2)
    leaves = s[C].leaf_iter_vars
    assert leaves.index(xo) < leaves.index(yo) < leaves.index(xi) < leaves.index(yi)


def test_fuse_requires_adjacent_loops():
    _, _, C = _matmul(8, 6, 4)
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    fused = s[C].fuse(i, j)
    assert fused.extent_value() == 48
    assert fused in s[C].leaf_iter_vars


def test_fuse_non_adjacent_raises():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    k = s[C].op.reduce_axis[0]
    with pytest.raises(ValueError):
        s[C].fuse(i, k)   # j sits between i and k


def test_reorder_changes_leaf_order():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    k = s[C].op.reduce_axis[0]
    s[C].reorder(k, j, i)
    leaves = s[C].leaf_iter_vars
    assert leaves.index(k) < leaves.index(j) < leaves.index(i)


def test_annotations_recorded():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    s[C].vectorize(j)
    s[C].parallel(i)
    assert s[C].annotation_of(j) == "vectorize"
    assert s[C].annotation_of(i) == "parallel"


def test_bind_thread_axis():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, _ = s[C].op.axis
    tx = te.thread_axis("threadIdx.x")
    s[C].bind(i, tx)
    assert s[C].bound_thread(i) is tx
    assert s[C].annotation_of(i) == "thread_binding"


def test_annotation_on_non_leaf_raises():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    i, _ = s[C].op.axis
    outer, inner = s[C].split(i, factor=2)
    with pytest.raises(ValueError):
        s[C].vectorize(i)   # i is no longer a leaf


def test_set_scope_validation():
    _, _, C = _matmul()
    s = te.create_schedule(C.op)
    with pytest.raises(ValueError):
        s[C].set_scope("l3_magic")
    s[C].set_scope("shared")
    assert s[C].scope == "shared"


def test_cache_read_inserts_stage_and_rewrites_reader():
    A, B, C = _matmul()
    s = te.create_schedule(C.op)
    AA = s.cache_read(A, "shared", [C])
    assert AA.op.name.endswith(".shared")
    assert s[AA].scope == "shared"
    # The reader now references the cache tensor rather than A.
    assert AA in C.op.input_tensors()
    assert A not in C.op.input_tensors()


def test_cache_write_turns_output_into_copy():
    A, B, C = _matmul()
    s = te.create_schedule(C.op)
    CL = s.cache_write(C, "local")
    assert s[CL].scope == "local"
    assert CL in C.op.input_tensors()
    # The original op no longer reduces; the cache stage does.
    assert not C.op.reduce_axis
    assert CL.op.reduce_axis


def test_compute_at_records_attachment():
    A, B, C = _matmul()
    s = te.create_schedule(C.op)
    AA = s.cache_read(A, "shared", [C])
    i, _ = s[C].op.axis
    s[AA].compute_at(s[C], i)
    assert s[AA].attach_type == "scope"
    assert s[AA].attach_stage is s[C]
    assert s[AA].attach_ivar is i


def test_compute_inline_and_root():
    A, B, C = _matmul()
    s = te.create_schedule(C.op)
    AA = s.cache_read(A, "shared", [C])
    s[AA].compute_inline()
    assert s[AA].attach_type == "inline"
    s[AA].compute_root()
    assert s[AA].attach_type == "root"


def test_schedule_getitem_unknown_op_raises():
    _, _, C = _matmul()
    other = te.compute((2,), lambda i: i * 1.0)
    s = te.create_schedule(C.op)
    with pytest.raises(KeyError):
        _ = s[other]
