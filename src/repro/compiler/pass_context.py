"""Compilation configuration carried through the pass pipeline.

A :class:`PassContext` replaces the old ``opt_level`` integer knob on
``graph.build``: it is a context manager holding the optimization level, a
free-form config dict consulted by individual passes, the set of passes to
disable (ablations: ``PassContext(disabled_passes=["fuse_ops"])`` is the
paper's "TVM w/o graph opt" row), extra passes to append to the default
pipeline, and the instruments observing the run::

    with repro.PassContext(opt_level=2, disabled_passes=["alter_layout"]):
        module = repro.compile(model, target="cuda")

Contexts nest; :meth:`PassContext.current` returns the innermost active one
(or a default ``opt_level=2`` context when none is active).
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

if TYPE_CHECKING:
    from .instruments import PassInstrument
    from .pass_manager import Pass

__all__ = ["PassContext"]


class PassContext:
    """Configuration scope for :func:`repro.compile` and :class:`Sequential`."""

    # Per-thread stack: concurrent compilations (e.g. a parallel benchmark
    # sweep) must not observe each other's contexts.
    _tls = threading.local()

    @classmethod
    def _stack(cls) -> List["PassContext"]:
        stack = getattr(cls._tls, "stack", None)
        if stack is None:
            stack = cls._tls.stack = []
        return stack

    def __init__(self, opt_level: int = 2,
                 config: Optional[Dict[str, object]] = None,
                 disabled_passes: Iterable[str] = (),
                 extra_passes: Sequence = (),
                 instruments: Sequence["PassInstrument"] = ()):
        if opt_level < 0:
            raise ValueError(f"opt_level must be >= 0, got {opt_level}")
        self.opt_level = int(opt_level)
        self.config: Dict[str, object] = dict(config or {})
        self.disabled_passes = frozenset(disabled_passes)
        self.extra_passes: List = list(extra_passes)
        self.instruments: List["PassInstrument"] = list(instruments)

    # ------------------------------------------------------------- scoping
    @classmethod
    def current(cls) -> "PassContext":
        """The innermost active context on this thread, or a fresh default."""
        stack = cls._stack()
        if stack:
            return stack[-1]
        return cls()

    def __enter__(self) -> "PassContext":
        self._stack().append(self)
        entered = []
        try:
            for instrument in self.instruments:
                instrument.enter_pass_ctx()
                entered.append(instrument)
        except BaseException:
            # A crashing instrument must not leave this context active (the
            # ``with`` body never runs, so ``__exit__`` is never called):
            # unwind the instruments that did enter, then pop the stack.
            for instrument in reversed(entered):
                try:
                    instrument.exit_pass_ctx()
                except Exception:
                    pass  # already propagating the original failure
            self._stack().pop()
            raise
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        try:
            for instrument in self.instruments:
                instrument.exit_pass_ctx()
        finally:
            # The thread-local stack must stay consistent even when an
            # instrument's exit hook raises, or every later compilation on
            # this thread would run under a stale context.
            stack = self._stack()
            if not stack or stack[-1] is not self:
                raise RuntimeError(
                    "PassContext stack corrupted: __exit__ out of order")
            stack.pop()

    # ------------------------------------------------------------- helpers
    def cloned(self, opt_level: Optional[int] = None) -> "PassContext":
        """A copy of this context, optionally overriding ``opt_level``."""
        return PassContext(
            opt_level=self.opt_level if opt_level is None else opt_level,
            config=self.config,
            disabled_passes=self.disabled_passes,
            extra_passes=self.extra_passes,
            instruments=self.instruments,
        )

    def pass_enabled(self, pass_: "Pass") -> bool:
        """Whether ``pass_`` runs under this context (gate + disable list)."""
        if pass_.info.name in self.disabled_passes:
            return False
        return self.opt_level >= pass_.info.opt_level

    def __repr__(self) -> str:
        disabled = sorted(self.disabled_passes)
        return (f"PassContext(opt_level={self.opt_level}, "
                f"disabled_passes={disabled}, "
                f"extra_passes={len(self.extra_passes)}, "
                f"instruments={len(self.instruments)})")
