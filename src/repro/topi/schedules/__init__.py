"""Per-backend schedule templates for the operator library."""

from . import cpu, gpu, vdla

__all__ = ["cpu", "gpu", "vdla"]
