"""Tuning tasks: a tensor operator workload + schedule template + target.

A :class:`Task` ties together a schedule template (a function that declares
knobs on a :class:`~repro.autotvm.space.ConfigSpace` and returns a schedule),
the workload arguments, and the hardware target whose simulated device will
measure candidate configurations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import te, tir
from ..hardware.target import Target
from .eval_cache import FEATURE_CACHE, LOWERED_CACHE
from .space import ConfigEntity, ConfigSpace

__all__ = ["Task", "create_task", "register_template", "get_template", "TEMPLATE_REGISTRY"]

#: Global registry of named schedule templates.
TEMPLATE_REGISTRY: Dict[str, Callable] = {}


def register_template(name: str, func: Optional[Callable] = None):
    """Register a schedule template under ``name`` (usable as a decorator)."""
    def _register(f: Callable) -> Callable:
        TEMPLATE_REGISTRY[name] = f
        return f

    if func is not None:
        return _register(func)
    return _register


def get_template(name: str) -> Callable:
    if name not in TEMPLATE_REGISTRY:
        raise KeyError(f"No schedule template registered under {name!r}")
    return TEMPLATE_REGISTRY[name]


class _FailureMarker:
    """Cached record of a lowering/featurisation failure.

    The shared caches must not hold live exception instances — every raise
    would pin its call stack in the cache, and concurrent raises from
    measurer worker threads would race on ``__traceback__``.  Instead the
    type and args are kept and an equivalent fresh exception is raised per
    replay.
    """

    __slots__ = ("exc_type", "args", "message")

    def __init__(self, exc_type: type, args: Tuple, message: str):
        self.exc_type = exc_type
        self.args = args
        self.message = message

    @classmethod
    def of(cls, exc: Exception) -> "_FailureMarker":
        return cls(type(exc), tuple(exc.args), str(exc))

    def replay(self) -> Exception:
        try:
            exc = self.exc_type(*self.args)
            if str(exc) == self.message:
                return exc
        except Exception:
            pass
        # Exotic constructor or stateful __str__: fall back to a plain error
        # carrying the original message.
        return RuntimeError(self.message)


class Task:
    """One operator-tuning problem."""

    def __init__(self, name: str, template: Callable, args: Tuple, target: Target,
                 workload: Optional[str] = None):
        self.name = name
        self.template = template
        self.args = tuple(args)
        self.target = target
        self.config_space = ConfigSpace()
        # Execute the template once against the bare space so every knob is
        # registered with its candidates.
        self.template(self.config_space, *self.args)
        self._flop: Optional[float] = None
        # Shared-cache identity: normalized to *what is lowered* — the
        # template (``workload`` names it; the function's qualified name is
        # the fallback), the workload args, and the target — never the
        # user-chosen task name.  Two tasks that reach the same workload
        # under different names (a benchmark task vs the compiler's
        # extraction, a conv2d_transpose vs its unit-stride conv2d
        # equivalent) therefore share lowering/featurisation cache entries.
        self.workload = workload if workload is not None else \
            f"{template.__module__}.{template.__qualname__}"
        self._cache_prefix = (self.workload, repr(self.args), self.target.name)

    # ------------------------------------------------------------------ api
    @property
    def operator(self) -> str:
        """Operator family of the workload (``conv2d_(...)`` -> ``conv2d``)."""
        from .database import operator_of

        return operator_of(self.name)

    @property
    def flop(self) -> float:
        """Total floating point work of the default-schedule program.

        Computed once per task instance (and served from the shared feature
        cache across instances of the same workload) — callers such as
        ``MeasureResultRecord.gflops`` read it per record.
        """
        if self._flop is None:
            self._flop = float(self.features_of(0).total_flops)
        return self._flop

    def instantiate(self, config: ConfigEntity) -> Tuple[te.Schedule, List[te.Tensor]]:
        """Build the schedule described by ``config``."""
        return self.template(config, *self.args)

    def lower(self, config: ConfigEntity) -> tir.LoweredFunc:
        """Instantiate and lower one configuration (uncached)."""
        schedule, tensors = self.instantiate(config)
        return tir.lower(schedule, tensors, name=f"{self.name}_c{config.index}")

    # ---------------------------------------------------- memoized fast path
    def _cache_key(self, index: int) -> Tuple[str, str, str, int]:
        return self._cache_prefix + (index,)

    def lowered(self, index: int) -> tir.LoweredFunc:
        """Memoized :meth:`lower` of the config at ``index``.

        Lowering is deterministic per ``(workload, target, config)``; results
        are shared across :class:`Task` instances through a bounded LRU.  A
        config whose schedule fails to lower raises an equivalent exception
        on every call without re-running the lowering.
        """
        key = self._cache_key(index)
        cached = LOWERED_CACHE.get(key)
        if cached is None:
            try:
                cached = self.lower(self.config_space.get(index))
            except Exception as exc:  # cache the failure, too
                cached = _FailureMarker.of(exc)
            LOWERED_CACHE.put(key, cached)
        if isinstance(cached, _FailureMarker):
            raise cached.replay()
        return cached

    def features_of(self, index: int) -> tir.ProgramFeatures:
        """Memoized program features of the config at ``index``.

        This is the entry point of the candidate-evaluation fast path: the
        tuner's cost model, the measurer, the compiler's fallback-config
        search and kernel-time estimation all read the same shared cache, so
        one lowering+featurisation serves every consumer.
        """
        key = self._cache_key(index)
        cached = FEATURE_CACHE.get(key)
        if cached is None:
            try:
                cached = tir.extract_features(self.lowered(index))
            except Exception as exc:
                cached = _FailureMarker.of(exc)
            FEATURE_CACHE.put(key, cached)
        if isinstance(cached, _FailureMarker):
            raise cached.replay()
        return cached

    def feature_vector(self, index: int) -> np.ndarray:
        """Cost-model feature vector of the config at ``index`` (read-only)."""
        return self.features_of(index).vector()

    def __repr__(self) -> str:
        return (f"Task({self.name}, target={self.target.name}, "
                f"space={len(self.config_space)})")


def create_task(name: str, template: Callable, args: Sequence, target: Target,
                workload: Optional[str] = None) -> Task:
    """Create a tuning task from a template callable or registered name.

    ``workload`` optionally names the template for the shared evaluation
    caches; a registered template's name is used automatically, so identical
    workloads reached from differently-named tasks share cache entries.
    """
    if isinstance(template, str):
        if workload is None:
            workload = template
        template = get_template(template)
    return Task(name, template, tuple(args), target, workload=workload)
