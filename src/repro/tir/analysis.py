"""Loop-program feature extraction (paper Section 5.2, Figure 13).

The ML-based cost model "takes the lowered loop program as input and predicts
its running time".  The features extracted here follow the paper's
description of the gradient-boosted-tree model: memory access counts and
reuse ratios of each buffer at each loop level, plus one-hot style encodings
of loop annotations ("vectorize", "unroll", "parallel", thread bindings,
virtual threads).  The same features drive the analytic hardware models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..te.expr import BinaryOp, Call, Expr, Mul, Add, Sub, Div, expr_children
from .stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    Buffer,
    BufferLoad,
    BufferStore,
    DepPop,
    DepPush,
    Evaluate,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
    dtype_bytes,
)

__all__ = ["BufferAccess", "ProgramFeatures", "extract_features", "FEATURE_NAMES"]


@dataclass
class AccessRegion:
    """Per-access loop-level touch statistics.

    For one buffer access inside a loop nest, ``touched_bytes[i]`` is the
    number of distinct bytes touched by one iteration of the ``i``-th
    enclosing loop (deeper loops spanning their full extent), and
    ``trips_outside[i]`` is how many times that loop body executes in total.
    These are the paper's "memory access count and reuse ratio of each memory
    buffer at each loop level" features, and they drive the analytic cache
    model used by the CPU/GPU simulators.
    """

    buffer_name: str
    scope: str
    dtype: str
    is_store: bool
    touched_bytes: List[float]
    trips_outside: List[float]
    total_accesses: float

    def cache_traffic(self, cache_bytes: float) -> float:
        """Estimated DRAM traffic for this access given a cache of
        ``cache_bytes``: the outermost loop level whose touched region fits in
        the cache is streamed once per execution of the loops outside it."""
        if not self.touched_bytes:
            return self.total_accesses * dtype_bytes(self.dtype)
        best = self.total_accesses * dtype_bytes(self.dtype)
        for level in range(len(self.touched_bytes)):
            if self.touched_bytes[level] <= cache_bytes:
                best = min(best, self.trips_outside[level] * self.touched_bytes[level])
                break
        else:
            # Nothing fits: innermost level still benefits from spatial reuse.
            best = min(best, self.trips_outside[-1] * self.touched_bytes[-1])
        return max(best, dtype_bytes(self.dtype))


@dataclass
class BufferAccess:
    """Aggregate access statistics for one buffer."""

    buffer_name: str
    scope: str
    dtype: str
    unique_bytes: float = 0.0
    load_count: float = 0.0
    store_count: float = 0.0

    @property
    def total_bytes(self) -> float:
        return (self.load_count + self.store_count) * dtype_bytes(self.dtype)

    @property
    def reuse_ratio(self) -> float:
        if self.unique_bytes <= 0:
            return 0.0
        return self.total_bytes / self.unique_bytes


@dataclass
class ProgramFeatures:
    """Summary statistics of a lowered loop program."""

    flops: float = 0.0
    int_ops: float = 0.0
    intrinsic_calls: float = 0.0
    intrinsic_flops: float = 0.0
    #: per memory scope: total bytes moved and unique bytes resident
    scope_bytes: Dict[str, float] = field(default_factory=dict)
    scope_unique_bytes: Dict[str, float] = field(default_factory=dict)
    buffer_access: Dict[str, BufferAccess] = field(default_factory=dict)
    #: per-access loop-level touch regions (paper Figure 13 features)
    access_regions: List[AccessRegion] = field(default_factory=list)
    #: loop annotation aggregates
    vector_lanes: float = 1.0
    unroll_product: float = 1.0
    parallel_extent: float = 1.0
    thread_extents: Dict[str, float] = field(default_factory=dict)
    vthread_extent: float = 1.0
    barrier_count: float = 0.0
    dep_token_count: float = 0.0
    serial_trip_count: float = 1.0
    outer_loop_count: int = 0
    max_loop_depth: int = 0
    allocation_bytes: Dict[str, float] = field(default_factory=dict)
    store_count: float = 0.0

    # -- derived quantities ---------------------------------------------------
    @property
    def num_threads(self) -> float:
        """Threads per block (product of threadIdx extents)."""
        product = 1.0
        for tag, extent in self.thread_extents.items():
            if tag.startswith("threadIdx"):
                product *= extent
        return product

    @property
    def num_blocks(self) -> float:
        product = 1.0
        for tag, extent in self.thread_extents.items():
            if tag.startswith("blockIdx"):
                product *= extent
        return product

    @property
    def total_flops(self) -> float:
        return self.flops + self.intrinsic_flops

    def bytes_in_scope(self, scope: str) -> float:
        return self.scope_bytes.get(scope, 0.0)

    def unique_bytes_in_scope(self, scope: str) -> float:
        return self.scope_unique_bytes.get(scope, 0.0)

    @property
    def arithmetic_intensity(self) -> float:
        global_bytes = max(self.bytes_in_scope("global"), 1.0)
        return self.total_flops / global_bytes

    def working_set_bytes(self, scopes: Tuple[str, ...] = ("shared", "local",
                                                           "acc_buffer",
                                                           "inp_buffer",
                                                           "wgt_buffer")) -> float:
        return sum(self.allocation_bytes.get(s, 0.0) for s in scopes)

    def cache_aware_traffic(self, cache_bytes: float, scope: str = "global") -> float:
        """Estimated off-chip traffic for accesses to ``scope`` buffers given a
        hardware-managed cache of ``cache_bytes`` (CPU L1/L2, GPU L2)."""
        regions = [r for r in self.access_regions if r.scope == scope]
        if not regions:
            return self.bytes_in_scope(scope)
        return sum(r.cache_traffic(cache_bytes) for r in regions)

    # -- vectorisation for the ML cost model -----------------------------------
    def vector(self) -> "np.ndarray":
        """Memoized read-only ndarray form of :meth:`to_vector`.

        Feature vectors are re-read constantly on the tuning fast path (cost
        model scoring, training-set assembly, database records); the list is
        built and converted once per :class:`ProgramFeatures` instance.
        """
        import numpy as np

        vec = self.__dict__.get("_vector")
        if vec is None:
            vec = np.asarray(self.to_vector(), dtype=np.float64)
            vec.setflags(write=False)
            self.__dict__["_vector"] = vec
        return vec

    def to_vector(self) -> List[float]:
        def log1(x: float) -> float:
            return math.log(max(x, 0.0) + 1.0)

        vec = [
            log1(self.flops),
            log1(self.intrinsic_flops),
            log1(self.intrinsic_calls),
            log1(self.bytes_in_scope("global")),
            log1(self.unique_bytes_in_scope("global")),
            log1(self.bytes_in_scope("shared")),
            log1(self.unique_bytes_in_scope("shared")),
            log1(self.bytes_in_scope("local")),
            log1(self.bytes_in_scope("acc_buffer") + self.bytes_in_scope("inp_buffer")
                 + self.bytes_in_scope("wgt_buffer")),
            log1(self.vector_lanes),
            log1(self.unroll_product),
            log1(self.parallel_extent),
            log1(self.num_threads),
            log1(self.num_blocks),
            log1(self.vthread_extent),
            log1(self.barrier_count),
            log1(self.serial_trip_count),
            float(self.max_loop_depth),
            log1(self.arithmetic_intensity),
            log1(self.working_set_bytes()),
            log1(self.store_count),
            log1(sum(a.reuse_ratio for a in self.buffer_access.values())),
            log1(self.cache_aware_traffic(32 * 1024)),
            log1(self.cache_aware_traffic(256 * 1024)),
        ]
        # Per-buffer reuse features for up to 6 buffers (sorted by traffic).
        accesses = sorted(self.buffer_access.values(),
                          key=lambda a: -a.total_bytes)[:6]
        for access in accesses:
            vec.extend([log1(access.total_bytes), log1(access.unique_bytes),
                        log1(access.reuse_ratio)])
        while len(vec) < 24 + 6 * 3:
            vec.append(0.0)
        return vec


FEATURE_NAMES: List[str] = [
    "log_flops", "log_intrin_flops", "log_intrin_calls",
    "log_global_bytes", "log_global_unique", "log_shared_bytes",
    "log_shared_unique", "log_local_bytes", "log_accel_bytes",
    "log_vector_lanes", "log_unroll", "log_parallel", "log_threads",
    "log_blocks", "log_vthreads", "log_barriers", "log_serial_trip",
    "loop_depth", "log_arith_intensity", "log_working_set", "log_stores",
    "log_reuse_sum", "log_traffic_32k", "log_traffic_256k",
] + [f"buf{i}_{k}" for i in range(6) for k in ("bytes", "unique", "reuse")]


def _count_ops(expr: Expr) -> Tuple[int, int]:
    """Count (floating point ops, integer/index ops) in an expression."""
    flops = 0
    iops = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp):
            if node.dtype.startswith("float"):
                flops += 1
            else:
                iops += 1
        elif isinstance(node, Call):
            flops += 4  # transcendental calls cost several flops
        stack.extend(expr_children(node))
    return flops, iops


#: shared "fixed at zero" interval for bound queries
_ZERO_BOUNDS = (0, 0)

# ---------------------------------------------------------------------------
# Compiled interval evaluation
#
# ``te.expr.expr_bounds`` re-dispatches on node types recursively for every
# (access, loop level) query.  The extractor instead compiles each index
# expression once into a postorder program of (opcode, payload) steps and
# replays it with a value stack — performing the *same* arithmetic on the
# same values in the same order, so the resulting intervals are bit-identical.
# ---------------------------------------------------------------------------

_B_VAR, _B_CONST, _B_BINOP, _B_SELECT, _B_UNION = range(5)


def _bounds_add(a, b):
    return (a[0] + b[0], a[1] + b[1])


def _bounds_sub(a, b):
    return (a[0] - b[1], a[1] - b[0])


def _bounds_mul(a, b):
    candidates = (a[0] * b[0], a[0] * b[1], a[1] * b[0], a[1] * b[1])
    return (min(candidates), max(candidates))


def _bounds_div(a, b):
    divisors = [d for d in (b[0], b[1]) if d != 0]
    if not divisors:
        return a
    candidates = [a[0] / d for d in divisors] + [a[1] / d for d in divisors]
    return (min(candidates), max(candidates))


def _bounds_floordiv(a, b):
    divisors = [d for d in (b[0], b[1]) if d != 0]
    if not divisors:
        return a
    candidates = [math.floor(a[0] / d) for d in divisors] \
        + [math.floor(a[1] / d) for d in divisors]
    return (min(candidates), max(candidates))


def _bounds_mod(a, b):
    if b[0] == b[1] and b[0] > 0:
        divisor = b[0]
        if math.floor(a[0] / divisor) == math.floor(a[1] / divisor):
            return (a[0] % divisor, a[1] % divisor)
        return (0, divisor - 1)
    return (0, max(abs(b[0]), abs(b[1])) - 1)


def _bounds_min(a, b):
    return (min(a[0], b[0]), min(a[1], b[1]))


def _bounds_max(a, b):
    return (max(a[0], b[0]), max(a[1], b[1]))


def _compile_bounds(expr: Expr) -> Tuple[List, List[Tuple[int, object]]]:
    """Compile ``expr`` into ``(free vars, postorder program)``.

    The variable collection follows ``collect_vars`` exactly (identity-
    deduplicated, first-seen order, including select conditions and reduce
    axes) while the program mirrors ``expr_bounds``'s evaluation structure,
    so one traversal replaces the extractor's two per-index walks.
    """
    from ..te.expr import (Cast, Div, FloorDiv, FloatImm, IntImm, Max, Min,
                          Mod, Reduce, Select, Var)

    binops = {Add: _bounds_add, Sub: _bounds_sub, Mul: _bounds_mul,
              Div: _bounds_div, FloorDiv: _bounds_floordiv, Mod: _bounds_mod,
              Min: _bounds_min, Max: _bounds_max}
    program: List[Tuple[int, object]] = []
    seen_vars: List = []
    seen_ids: set = set()

    def add_var(var) -> None:
        if id(var) not in seen_ids:
            seen_ids.add(id(var))
            seen_vars.append(var)

    def walk_vars(node: Expr) -> None:
        """Var-only walk for subtrees the interval program never evaluates
        (select conditions) — mirrors ``collect_vars``."""
        if isinstance(node, Var):
            add_var(node)
            return
        for child in expr_children(node):
            walk_vars(child)
        if isinstance(node, Reduce):
            for iv in node.axis:
                add_var(iv.var)

    def emit(node: Expr) -> None:
        if isinstance(node, Var):
            add_var(node)
            program.append((_B_VAR, node))
            return
        if isinstance(node, (IntImm, FloatImm)):
            program.append((_B_CONST, (node.value, node.value)))
            return
        handler = binops.get(type(node))
        if handler is not None:
            emit(node.a)
            emit(node.b)
            program.append((_B_BINOP, handler))
            return
        if isinstance(node, Select):
            # expr_bounds unions the two value arms; the condition is never
            # evaluated (but its vars still count as free).
            walk_vars(node.condition)
            emit(node.true_value)
            emit(node.false_value)
            program.append((_B_SELECT, None))
            return
        if isinstance(node, Cast):
            emit(node.value)
            return
        children = expr_children(node)
        if not children:
            program.append((_B_CONST, (0, 0)))
            return
        for child in children:
            emit(child)
        if isinstance(node, Reduce):
            for iv in node.axis:
                add_var(iv.var)
        program.append((_B_UNION, len(children)))

    emit(expr)
    return seen_vars, program


def _eval_bounds(program: List[Tuple[int, object]], env: Dict) -> Tuple:
    """Replay a compiled bounds program against per-var intervals."""
    stack: List[Tuple] = []
    push = stack.append
    for code, payload in program:
        if code == _B_VAR:
            push(env[payload])
        elif code == _B_CONST:
            push(payload)
        elif code == _B_BINOP:
            b = stack.pop()
            a = stack.pop()
            push(payload(a, b))
        elif code == _B_SELECT:
            f = stack.pop()
            t = stack.pop()
            push((min(t[0], f[0]), max(t[1], f[1])))
        else:  # _B_UNION
            parts = stack[-payload:]
            del stack[-payload:]
            low, high = parts[0]
            for part in parts[1:]:
                low = min(low, part[0])
                high = max(high, part[1])
            push((low, high))
    return stack[-1]


class _FeatureExtractor:
    """Single-pass statement walker.

    The walker maintains the *effective* loop stack incrementally — the
    enclosing loops with re-bound thread tags deduplicated (outermost binding
    wins) and their extents pre-evaluated — instead of re-deriving it for
    every buffer access, and memoizes ``collect_vars`` per index expression.
    The features produced are bit-identical to a naive per-access recompute.
    """

    def __init__(self) -> None:
        self.features = ProgramFeatures()
        self._loop_stack: List[For] = []
        self._thread_tags: List[str] = []
        # Effective (tag-deduplicated) loop stack, maintained in _visit_for.
        self._eff_loops: List[For] = []
        self._eff_extents: List[float] = []     # float extent, 1.0 if symbolic
        self._eff_full: List[Tuple] = []        # (0, extent - 1) interval
        self._eff_level: Dict[object, int] = {} # loop_var -> eff stack index
        self._eff_added: List[bool] = []        # per _loop_stack entry
        self._active_tags: Set[str] = set()
        self._trip_products: List[float] = [1.0]  # prefix products of extents
        self._index_cache: Dict[int, Tuple[Expr, List, List]] = {}

    def _index_info(self, expr: Expr) -> Tuple[List, List]:
        """Memoized ``(free vars, compiled bounds program)`` of an index
        expression (the expr is pinned in the value to keep ids stable)."""
        cached = self._index_cache.get(id(expr))
        if cached is None:
            free, program = _compile_bounds(expr)
            cached = (expr, free, program)
            self._index_cache[id(expr)] = cached
        return cached[1], cached[2]

    # Effective iteration multiplier for the current loop nest.  Loops bound
    # to a thread tag already active in an enclosing loop re-use the same
    # hardware thread (cooperative fetching pattern) and therefore do not
    # multiply the per-thread trip count.
    def _trip_count(self) -> float:
        return self._trip_products[-1]

    def _effective_access_count(self, indices: List[Expr]) -> float:
        """Number of times this access actually reaches the memory system.

        The raw trip count of the enclosing loop nest overstates traffic
        because real code generators perform loop-invariant code motion and
        keep values loaded in unrolled/vectorized loops in registers (scalar
        replacement).  A loop therefore does not multiply the access count
        when the access is independent of its loop variable and either

        * every loop nested deeper is also independent (classic LICM hoists
          the access above it), or
        * the loop is unrolled or vectorized (the register allocator keeps
          the value live across its iterations).

        Thread-bound loops re-using an already bound tag are skipped exactly
        as in :meth:`_trip_count`.
        """
        index_vars = set()
        for index in indices:
            try:
                index_vars.update(self._index_info(index)[0])
            except Exception:
                return self._trip_count()

        count = 1.0
        all_deeper_independent = True
        for pos in range(len(self._eff_loops) - 1, -1, -1):
            loop = self._eff_loops[pos]
            extent = self._eff_extents[pos]
            independent = loop.loop_var not in index_vars
            registers_carry = loop.kind in (ForKind.UNROLLED, ForKind.VECTORIZED)
            if independent and (all_deeper_independent or registers_carry):
                pass  # hoisted or kept in registers: does not multiply traffic
            else:
                count *= max(extent, 1.0)
            all_deeper_independent = all_deeper_independent and independent
        return count

    def _record_region(self, buffer: Buffer, indices: List[Expr],
                       is_store: bool) -> None:
        """Record loop-level touch statistics for one buffer access."""
        loops = self._eff_loops
        extents = self._eff_extents
        n_loops = len(loops)

        # Per-index extent multiplier at each level.  The bounds of an index
        # only change at levels that fix one of its free loop vars, so the
        # compiled program runs once per (index, free loop) instead of per
        # level.
        per_index: List[List[float]] = []
        eff_level = self._eff_level
        eff_full = self._eff_full
        for index in indices:
            try:
                free, program = self._index_info(index)
            except Exception:
                per_index.append([1.0] * (n_loops + 1))
                continue
            # Resolve each free var's loop position once per access; bounds
            # only change at the levels that fix one of those loops.
            free_pos = [(v, eff_level.get(v)) for v in free]
            recompute = {pos + 1 for _v, pos in free_pos if pos is not None}
            vals: List[float] = []
            current = None
            for level in range(n_loops + 1):
                if current is None or level in recompute:
                    try:
                        env = {}
                        for v, pos in free_pos:
                            if pos is None or pos < level:
                                env[v] = _ZERO_BOUNDS
                            else:
                                env[v] = eff_full[pos]
                        low, high = _eval_bounds(program, env)
                        current = max(1.0, float(high - low + 1))
                    except Exception:
                        current = 1.0
                vals.append(current)
            per_index.append(vals)

        elem = dtype_bytes(buffer.dtype)
        size_bytes = float(buffer.size_bytes)
        touched: List[float] = []
        trips: List[float] = []
        trip = 1.0
        for level in range(n_loops + 1):
            region = elem
            for vals in per_index:
                region *= vals[level]
            touched.append(min(region, size_bytes))
            trips.append(trip)
            if level < n_loops:
                trip *= extents[level]

        total = trips[-1] if trips else 1.0
        self.features.access_regions.append(AccessRegion(
            buffer_name=buffer.name, scope=buffer.scope, dtype=buffer.dtype,
            is_store=is_store, touched_bytes=touched, trips_outside=trips,
            total_accesses=total))

    def _record_access(self, buffer: Buffer, count: float, is_store: bool) -> None:
        access = self.features.buffer_access.setdefault(
            buffer.name,
            BufferAccess(buffer.name, buffer.scope, buffer.dtype,
                         unique_bytes=float(buffer.size_bytes)))
        if is_store:
            access.store_count += count
        else:
            access.load_count += count
        bytes_moved = count * dtype_bytes(buffer.dtype)
        self.features.scope_bytes[buffer.scope] = (
            self.features.scope_bytes.get(buffer.scope, 0.0) + bytes_moved)
        self.features.scope_unique_bytes[buffer.scope] = max(
            self.features.scope_unique_bytes.get(buffer.scope, 0.0),
            float(buffer.size_bytes))

    def _visit_expr_loads(self, expr: Expr, count: float) -> None:
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, BufferLoad):
                effective = min(count, self._effective_access_count(node.indices))
                self._record_access(node.buffer, effective, is_store=False)
                self._record_region(node.buffer, node.indices, is_store=False)
            stack.extend(expr_children(node))

    # ------------------------------------------------------------------ walk
    def visit(self, stmt: Stmt) -> None:
        if isinstance(stmt, SeqStmt):
            for sub in stmt.stmts:
                self.visit(sub)
            return
        if isinstance(stmt, For):
            self._visit_for(stmt)
            return
        if isinstance(stmt, IfThenElse):
            self.visit(stmt.then_body)
            if stmt.else_body is not None:
                self.visit(stmt.else_body)
            return
        if isinstance(stmt, (Allocate, AttrStmt)):
            if isinstance(stmt, Allocate):
                scope = stmt.buffer.scope
                self.features.allocation_bytes[scope] = (
                    self.features.allocation_bytes.get(scope, 0.0)
                    + stmt.buffer.size_bytes)
            self.visit(stmt.body)
            return
        if isinstance(stmt, Barrier):
            self.features.barrier_count += self._trip_count()
            return
        if isinstance(stmt, (DepPush, DepPop)):
            self.features.dep_token_count += self._trip_count()
            return
        if isinstance(stmt, Evaluate):
            return
        if isinstance(stmt, BufferStore):
            count = self._trip_count()
            self.features.store_count += count
            effective = min(count, self._effective_access_count(stmt.indices))
            self._record_access(stmt.buffer, effective, is_store=True)
            self._record_region(stmt.buffer, stmt.indices, is_store=True)
            self._visit_expr_loads(stmt.value, count)
            for index in stmt.indices:
                _, iops = _count_ops(index)
                self.features.int_ops += iops * count
            flops, iops = _count_ops(stmt.value)
            self.features.flops += flops * count
            self.features.int_ops += iops * count
            return
        if isinstance(stmt, IntrinsicStmt):
            count = self._trip_count()
            self.features.intrinsic_calls += count
            self.features.intrinsic_flops += count * stmt.intrin.flop
            # Intrinsic reads its inputs and writes its output once per call.
            out_shape = stmt.intrin.output_shape
            out_elems = 1
            for dim in out_shape:
                out_elems *= dim
            self._record_access(stmt.output, count * out_elems, is_store=True)
            for decl_input, buffer in zip(stmt.intrin.inputs, stmt.inputs):
                elems = 1
                for dim in decl_input.shape_values():
                    elems *= dim
                self._record_access(buffer, count * elems, is_store=False)
            return
        raise TypeError(f"Unhandled statement in feature extraction: {stmt!r}")

    def _visit_for(self, loop: For) -> None:
        try:
            extent = loop.extent_value()
        except ValueError:
            extent = 1
        depth_before = len(self._loop_stack)
        if loop.kind == ForKind.VECTORIZED:
            self.features.vector_lanes = max(self.features.vector_lanes, float(extent))
        elif loop.kind == ForKind.UNROLLED:
            self.features.unroll_product *= float(extent)
        elif loop.kind == ForKind.PARALLEL:
            self.features.parallel_extent *= float(extent)
        elif loop.kind == ForKind.THREAD_BINDING and loop.thread_tag:
            if loop.thread_tag not in self._active_tags:
                current = self.features.thread_extents.get(loop.thread_tag, 1.0)
                self.features.thread_extents[loop.thread_tag] = current * float(extent)
        elif loop.kind == ForKind.VTHREAD:
            self.features.vthread_extent *= float(extent)
        else:
            if depth_before == 0:
                self.features.outer_loop_count += 1
            self.features.serial_trip_count *= float(max(extent, 1))

        # Push onto the effective (tag-deduplicated) stack unless an
        # enclosing loop already binds the same thread tag.
        added = not (loop.thread_tag and loop.thread_tag in self._active_tags)
        if added:
            ext = float(extent)
            if loop.thread_tag:
                self._active_tags.add(loop.thread_tag)
            self._eff_loops.append(loop)
            self._eff_extents.append(ext)
            self._eff_full.append((0, max(ext - 1, 0)))
            self._eff_level[loop.loop_var] = len(self._eff_loops) - 1
            self._trip_products.append(self._trip_products[-1] * ext)
        self._eff_added.append(added)

        self._loop_stack.append(loop)
        self.features.max_loop_depth = max(self.features.max_loop_depth,
                                           len(self._loop_stack))
        self.visit(loop.body)
        self._loop_stack.pop()
        if self._eff_added.pop():
            self._eff_loops.pop()
            self._eff_extents.pop()
            self._eff_full.pop()
            self._trip_products.pop()
            self._eff_level.pop(loop.loop_var, None)
            if loop.thread_tag:
                self._active_tags.discard(loop.thread_tag)


def extract_features(func_or_stmt) -> ProgramFeatures:
    """Extract :class:`ProgramFeatures` from a lowered function or statement."""
    extractor = _FeatureExtractor()
    if isinstance(func_or_stmt, LoweredFunc):
        for alloc in func_or_stmt.allocations:
            extractor.features.allocation_bytes[alloc.scope] = (
                extractor.features.allocation_bytes.get(alloc.scope, 0.0)
                + alloc.size_bytes)
        extractor.visit(func_or_stmt.body)
    else:
        extractor.visit(func_or_stmt)
    return extractor.features
