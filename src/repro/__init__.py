"""repro — a pure-Python reproduction of the TVM deep-learning compiler stack.

The package mirrors the paper's architecture (Figure 2):

* :mod:`repro.te` — declarative tensor expressions and schedules.
* :mod:`repro.tir` — the low-level loop program IR, lowering and transforms.
* :mod:`repro.topi` — the operator library built on tensor expressions.
* :mod:`repro.autotvm` — the ML-based automated schedule optimizer.
* :mod:`repro.graph` — the computational graph IR and high-level rewriting.
* :mod:`repro.hardware` — simulated CPU / GPU / accelerator back-ends.
* :mod:`repro.runtime` — NDArray, deployable modules, graph executor, RPC.
* :mod:`repro.frontend` — model builder and the model zoo used in evaluation.
* :mod:`repro.baselines` — simulated vendor libraries and framework baselines.
"""

from . import te, tir

__version__ = "0.1.0"

__all__ = ["te", "tir", "__version__"]
