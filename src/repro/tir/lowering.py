"""Lowering from scheduled tensor expressions to the loop IR.

This implements the "code lowering" step of Figure 6 in the paper: given a
:class:`~repro.te.schedule.Schedule` and the operator's argument tensors, it
performs bound inference, generates the nested loop structure dictated by the
schedule (splits, reorders, fusions, annotations, thread bindings), realises
cache stages at their ``compute_at`` attachment points with compact buffers,
inserts memory barriers after cooperative (shared scope) stages, and replaces
tensorized loop nests with hardware intrinsic calls.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..te.expr import (
    Expr,
    ExprMutator,
    IntImm,
    Interval,
    Reduce,
    TensorRead,
    Var,
    as_expr,
    expr_bounds,
    simplify,
    substitute,
)
from ..te.schedule import FuseRelation, Schedule, SplitRelation, Stage
from ..te.tensor import ComputeOp, IterVar, IterVarType, PlaceholderOp, Tensor
from .stmt import (
    Allocate,
    AttrStmt,
    Barrier,
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    ForKind,
    IfThenElse,
    IntrinsicStmt,
    LoweredFunc,
    SeqStmt,
    Stmt,
    seq,
)

__all__ = ["lower", "BufferBinding", "LoweringError"]


class LoweringError(RuntimeError):
    """Raised when a schedule cannot be lowered."""


class BufferBinding:
    """Associates a tensor with its backing buffer and per-dim offsets.

    Cache stages attached inside consumer loops get *compact* buffers sized
    to the region the consumer needs; ``offsets`` rebase global tensor
    coordinates into the compact buffer's coordinate system.
    """

    def __init__(self, buffer: Buffer, offsets: Optional[List[Expr]] = None):
        self.buffer = buffer
        self.offsets = offsets

    def rebase(self, indices: List[Expr]) -> List[Expr]:
        if self.offsets is None:
            return indices
        return [simplify(idx - off) for idx, off in zip(indices, self.offsets)]


_ANNOTATION_TO_KIND = {
    None: ForKind.SERIAL,
    "unroll": ForKind.UNROLLED,
    "vectorize": ForKind.VECTORIZED,
    "parallel": ForKind.PARALLEL,
    "thread_binding": ForKind.THREAD_BINDING,
    "vthread": ForKind.VTHREAD,
    "tensorize": ForKind.TENSORIZED,
}


class _Lowerer:
    def __init__(self, schedule: Schedule, args: Sequence[Tensor], name: str):
        self.schedule = schedule
        self.args = list(args)
        self.name = name
        self.bindings: Dict[Tensor, BufferBinding] = {}
        self.allocations: List[Buffer] = []
        self.arg_buffers: List[Buffer] = []
        # stages attached at (stage, itervar uid)
        self.attachments: Dict[Tuple[int, int], List[Stage]] = {}
        self.inline_stages: Dict[Tensor, ComputeOp] = {}
        self._used_names: Dict[str, int] = {}
        # Per attached stage: planned (root_extents, root_offsets) computed in
        # a pre-pass so compact buffers exist before consumer bodies are built.
        self._planned_regions: Dict[int, Tuple[Dict[int, int], Dict[int, Expr]]] = {}
        # Extents of loop vars bound to hardware thread indices; used to relax
        # thread dimensions when sizing cooperatively-filled shared buffers.
        self._thread_ranges: Dict[Var, Interval] = {}

    # ------------------------------------------------------------------ setup
    def run(self) -> LoweredFunc:
        self._bind_arguments()
        self._collect_attachments()
        root_stages: List[Stage] = []
        for stage in self.schedule.stages:
            if not isinstance(stage.op, ComputeOp):
                continue
            if stage.attach_type == "inline":
                self.inline_stages[stage.op.output(0)] = stage.op
                continue
            if stage.attach_type == "scope":
                continue  # generated at its attachment point
            self._ensure_binding(stage)
            root_stages.append(stage)
        # Planning pass: create compact buffers for all attached stages before
        # any consumer body is converted to buffer loads.
        for stage in root_stages:
            self._plan_stage(stage, None, None)
        body_parts = [self._build_stage(stage, outer_ranges={}) for stage in root_stages]
        body = seq(*body_parts)
        return LoweredFunc(self.name, self.arg_buffers, body, self.allocations)

    def _plan_stage(self, stage: Stage,
                    root_extents: Optional[Dict[int, int]],
                    root_offsets: Optional[Dict[int, Expr]]) -> None:
        """Recursively compute required regions of stages attached inside
        ``stage`` and create their (compact) buffer bindings."""
        op = stage.op
        assert isinstance(op, ComputeOp)
        dom_map = self._dom_map(stage, root_extents)
        value_map = self._leaf_value_map(stage, dom_map)
        if root_offsets:
            for axis in op.axis:
                offset = root_offsets.get(axis.uid)
                if offset is not None:
                    value_map[axis.var] = simplify(offset + value_map[axis.var])
        leaf_ranges = {iv.var: Interval(0, dom_map[iv.uid] - 1)
                       for iv in stage.leaf_iter_vars}
        for ivar in stage.leaf_iter_vars:
            bound = stage.bound_thread(ivar)
            if bound is not None and bound.thread_tag.startswith("threadIdx"):
                self._thread_ranges[ivar.var] = Interval(0, dom_map[ivar.uid] - 1)
        for ivar in stage.leaf_iter_vars:
            for producer_stage in self.attachments.get((id(op), ivar.uid), []):
                inner_vars = self._vars_inside(stage, ivar)
                region = self._required_region(producer_stage, stage, inner_vars,
                                               leaf_ranges, value_map)
                self._ensure_binding(producer_stage, region)
                extents = {iv.uid: extent
                           for iv, (_, extent) in zip(producer_stage.op.axis, region)}
                offsets = {iv.uid: offset
                           for iv, (offset, _) in zip(producer_stage.op.axis, region)}
                self._planned_regions[id(producer_stage.op)] = (extents, offsets)
                self._plan_stage(producer_stage, extents, offsets)

    def _unique(self, name: str) -> str:
        count = self._used_names.get(name, 0)
        self._used_names[name] = count + 1
        return name if count == 0 else f"{name}.{count}"

    def _bind_arguments(self) -> None:
        for tensor in self.args:
            shape = tensor.shape_values()
            buffer = Buffer(self._unique(tensor.name), shape, tensor.dtype, "global")
            self.bindings[tensor] = BufferBinding(buffer)
            self.arg_buffers.append(buffer)

    def _collect_attachments(self) -> None:
        for stage in self.schedule.stages:
            if stage.attach_type == "scope":
                if stage.attach_stage is None or stage.attach_ivar is None:
                    raise LoweringError(f"Stage {stage.name} attached without a location")
                key = (id(stage.attach_stage.op), stage.attach_ivar.uid)
                self.attachments.setdefault(key, []).append(stage)

    def _ensure_binding(self, stage: Stage,
                        region: Optional[List[Tuple[Expr, int]]] = None) -> BufferBinding:
        """Create (or return) the buffer binding for a stage's output tensor."""
        tensor = stage.op.output(0)
        if tensor in self.bindings and region is None:
            return self.bindings[tensor]
        if region is None:
            shape = tensor.shape_values()
            offsets = None
        else:
            shape = tuple(extent for _, extent in region)
            offsets = [offset for offset, _ in region]
        buffer = Buffer(self._unique(tensor.name), shape, tensor.dtype, stage.scope)
        binding = BufferBinding(buffer, offsets)
        self.bindings[tensor] = binding
        if not stage.is_output and tensor not in self.args:
            self.allocations.append(buffer)
        return binding

    # ----------------------------------------------------------- value mapping
    @staticmethod
    def _leaf_value_map(stage: Stage, dom_map: Dict[int, int]) -> Dict[Var, Expr]:
        """Map original iter vars to expressions over leaf loop vars."""
        value_map: Dict[Var, Expr] = {iv.var: iv.var for iv in stage.leaf_iter_vars}
        for relation in reversed(stage.relations):
            if isinstance(relation, SplitRelation):
                outer = value_map.get(relation.outer.var, relation.outer.var)
                inner = value_map.get(relation.inner.var, relation.inner.var)
                value_map[relation.parent.var] = simplify(outer * relation.factor + inner)
            elif isinstance(relation, FuseRelation):
                fused = value_map.get(relation.fused.var, relation.fused.var)
                # The inner extent may have been narrowed by region inference
                # when the stage is attached inside a consumer, so read it
                # from the per-lowering domain map rather than the schedule.
                inner_extent = dom_map.get(relation.inner.uid, relation.inner_extent)
                value_map[relation.outer.var] = simplify(fused // inner_extent)
                value_map[relation.inner.var] = simplify(fused % inner_extent)
        return value_map

    @staticmethod
    def _root_axes(stage: Stage) -> List[IterVar]:
        op = stage.op
        assert isinstance(op, ComputeOp)
        return list(op.axis) + list(op.reduce_axis)

    def _dom_map(self, stage: Stage,
                 root_extents: Optional[Dict[int, int]] = None) -> Dict[int, int]:
        """Extent of every iter var of the stage (root and derived)."""
        dom: Dict[int, int] = {}
        for ivar in self._root_axes(stage):
            if root_extents is not None and ivar.uid in root_extents:
                dom[ivar.uid] = root_extents[ivar.uid]
            else:
                dom[ivar.uid] = ivar.extent_value()
        for relation in stage.relations:
            if isinstance(relation, SplitRelation):
                parent = dom[relation.parent.uid]
                dom[relation.outer.uid] = max(1, math.ceil(parent / relation.factor))
                dom[relation.inner.uid] = min(relation.factor, parent)
            elif isinstance(relation, FuseRelation):
                dom[relation.fused.uid] = dom[relation.outer.uid] * dom[relation.inner.uid]
        return dom

    # ----------------------------------------------------------- expr rewriting
    def _convert_expr(self, expr: Expr, value_map: Dict[Var, Expr]) -> Expr:
        """Substitute iter vars and turn tensor reads into buffer loads."""
        expr = substitute(expr, value_map)
        return _ReadConverter(self).visit(expr)

    # ----------------------------------------------------------- stage building
    def _build_stage(self, stage: Stage, outer_ranges: Dict[Var, Interval],
                     root_extents: Optional[Dict[int, int]] = None,
                     root_offsets: Optional[Dict[int, Expr]] = None) -> Stmt:
        """Generate the loop nest for one stage.

        ``outer_ranges`` gives interval information for loop variables of
        enclosing stages (all treated as fixed points); ``root_extents`` and
        ``root_offsets`` restrict/rebase root axis domains when the stage is
        attached inside a consumer and only a sub-region is required.  The
        stage then computes global coordinates ``offset + local`` while its
        compact buffer is indexed by the local coordinate.
        """
        op = stage.op
        assert isinstance(op, ComputeOp)
        dom_map = self._dom_map(stage, root_extents)
        value_map = self._leaf_value_map(stage, dom_map)

        binding = self.bindings[op.output(0)]
        body_expr = op.body

        # Ranges for this stage's leaf vars (used when computing regions of
        # stages attached inside this one).
        leaf_ranges: Dict[Var, Interval] = {}
        for ivar in stage.leaf_iter_vars:
            leaf_ranges[ivar.var] = Interval(0, dom_map[ivar.uid] - 1)

        # Guard conditions produced by imperfect splits (computed on local
        # coordinates, before region offsets are applied).
        guards: List[Expr] = []
        for relation in stage.relations:
            if isinstance(relation, SplitRelation):
                parent_extent = dom_map[relation.parent.uid]
                if dom_map[relation.outer.uid] * relation.factor > parent_extent:
                    guards.append(value_map[relation.parent.var] < parent_extent)

        # Rebase root spatial axes to global coordinates for attached stages.
        if root_offsets:
            for axis in op.axis:
                offset = root_offsets.get(axis.uid)
                if offset is not None:
                    value_map[axis.var] = simplify(offset + value_map[axis.var])

        is_reduction = isinstance(body_expr, Reduce)
        reduce_uids = {iv.uid for iv in op.reduce_axis}

        def axis_indices() -> List[Expr]:
            raw = [value_map[iv.var] for iv in op.axis]
            return binding.rebase([simplify(i) for i in raw])

        def make_init() -> Stmt:
            assert isinstance(body_expr, Reduce)
            init_value = (self._convert_expr(body_expr.init, value_map)
                          if body_expr.init is not None
                          else as_expr(float(body_expr.identity)))
            return BufferStore(binding.buffer, axis_indices(), init_value)

        def make_update() -> Stmt:
            if is_reduction:
                source = self._convert_expr(body_expr.source, value_map)
                current = BufferLoad(binding.buffer, axis_indices())
                if body_expr.combiner == "sum":
                    value: Expr = current + source
                elif body_expr.combiner == "max":
                    from ..te.expr import Max

                    value = Max(current, source)
                else:
                    from ..te.expr import Min

                    value = Min(current, source)
            else:
                value = self._convert_expr(body_expr, value_map)
            store: Stmt = BufferStore(binding.buffer, axis_indices(), value)
            if stage.store_predicate is not None:
                store = IfThenElse(self._convert_expr(stage.store_predicate, value_map), store)
            for guard in guards:
                store = IfThenElse(self._convert_expr(guard, value_map), store)
            return store

        def is_reduce_leaf(ivar: IterVar) -> bool:
            return self._derives_from_reduce(stage, ivar, reduce_uids)

        def build(idx: int, init_done: bool) -> Stmt:
            if idx == len(stage.leaf_iter_vars):
                return make_update()
            ivar = stage.leaf_iter_vars[idx]

            # Tensorized loop: replace the remaining nest with an intrinsic.
            if ivar in stage.tensorize_map:
                return self._make_intrinsic(stage, idx, value_map, dom_map, binding)

            # Before entering the first reduction loop, initialise the output
            # over the remaining data-parallel axes (Figure 5's fill-zero).
            prefix: Optional[Stmt] = None
            if is_reduction and not init_done and is_reduce_leaf(ivar):
                init_done = True
                remaining_spatial = [iv for iv in stage.leaf_iter_vars[idx:]
                                     if not is_reduce_leaf(iv)]
                init_stmt: Stmt = make_init()
                for guard in guards:
                    init_stmt = IfThenElse(self._convert_expr(guard, value_map), init_stmt)
                for iv in reversed(remaining_spatial):
                    init_stmt = For(iv.var, 0, dom_map[iv.uid], init_stmt)
                prefix = init_stmt

            inner = build(idx + 1, init_done)
            inner = self._attach_producers(stage, ivar, inner, leaf_ranges, value_map)
            annotation = stage.annotation_of(ivar)
            kind = _ANNOTATION_TO_KIND.get(annotation, ForKind.SERIAL)
            thread = stage.bound_thread(ivar)
            thread_tag = thread.thread_tag if thread is not None else ""
            loop: Stmt = For(ivar.var, 0, dom_map[ivar.uid], inner, kind, thread_tag)
            for key, value in stage.pragmas.get(ivar, []):
                loop = AttrStmt("pragma_" + key, ivar, value, loop)
            return seq(prefix, loop) if prefix is not None else loop

        nest = build(0, False)
        if stage.double_buffer:
            nest = AttrStmt("double_buffer_scope", binding.buffer, 1, nest)
        if stage.scope != "global":
            nest = AttrStmt("storage_scope", binding.buffer, stage.scope, nest)
        return nest

    def _derives_from_reduce(self, stage: Stage, ivar: IterVar,
                             reduce_uids: set) -> bool:
        """True if a leaf iter var derives (via splits/fuses) from a reduce axis."""
        if ivar.uid in reduce_uids:
            return True
        for relation in stage.relations:
            if isinstance(relation, SplitRelation):
                if ivar in (relation.outer, relation.inner):
                    return self._derives_from_reduce(stage, relation.parent, reduce_uids)
            elif isinstance(relation, FuseRelation):
                if ivar is relation.fused:
                    return (self._derives_from_reduce(stage, relation.outer, reduce_uids)
                            or self._derives_from_reduce(stage, relation.inner, reduce_uids))
        return False

    # ----------------------------------------------------------- attachments
    def _attach_producers(self, consumer: Stage, ivar: IterVar, inner: Stmt,
                          leaf_ranges: Dict[Var, Interval],
                          value_map: Dict[Var, Expr]) -> Stmt:
        attached = self.attachments.get((id(consumer.op), ivar.uid), [])
        if not attached:
            return inner
        parts: List[Stmt] = []
        inner_vars = self._vars_inside(consumer, ivar)
        for producer_stage in attached:
            root_extents, root_offsets = self._planned_regions[id(producer_stage.op)]
            outer_ranges = {var: Interval(0, 0) for var in leaf_ranges}
            producer_nest = self._build_stage(producer_stage, outer_ranges,
                                              root_extents, root_offsets)
            parts.append(producer_nest)
            if producer_stage.scope == "shared":
                parts.append(Barrier("shared"))
        parts.append(inner)
        return seq(*parts)

    @staticmethod
    def _vars_inside(consumer: Stage, ivar: IterVar) -> List[Var]:
        index = consumer.leaf_iter_vars.index(ivar)
        return [iv.var for iv in consumer.leaf_iter_vars[index + 1:]]

    def _required_region(self, producer: Stage, consumer: Stage,
                         inner_vars: List[Var],
                         leaf_ranges: Dict[Var, Interval],
                         value_map: Dict[Var, Expr]) -> List[Tuple[Expr, int]]:
        """Compute, per output dimension of ``producer``, the (offset, extent)
        region required by ``consumer`` iterations below the attachment point."""
        producer_tensor = producer.op.output(0)
        reads = _collect_reads(consumer.op.body, producer_tensor)
        if not reads:
            raise LoweringError(
                f"Stage {producer.name} is attached inside {consumer.name} "
                "but never read by it")
        ndim = len(producer_tensor.shape)
        offsets: List[Expr] = []
        extents: List[int] = []
        inner_set = set(inner_vars)
        # A shared-scope producer is cooperatively filled by the whole thread
        # block: the region must cover every thread's slice, so thread-bound
        # consumer loops count as "inner" even above the attachment point.
        relax_ranges: Dict[Var, Interval] = {}
        if producer.scope == "shared":
            for leaf in consumer.leaf_iter_vars:
                bound = consumer.bound_thread(leaf)
                if bound is not None and bound.thread_tag.startswith("threadIdx"):
                    inner_set.add(leaf.var)
            # Thread-bound loops of enclosing stages (reached through region
            # offsets) also span the block for cooperatively-filled buffers.
            relax_ranges = dict(self._thread_ranges)
        from ..te.expr import collect_vars

        # Offset substitution: inner (and relaxed thread) vars pinned to
        # zero, outer vars stay symbolic.  Fixed across dims and reads.
        zero_map = {v: 0 for v in inner_set}
        zero_map.update({v: 0 for v in relax_ranges})
        for dim in range(ndim):
            dim_offset: Optional[Expr] = None
            dim_extent = 1
            for read in reads:
                index_expr = substitute(read.indices[dim], value_map)
                # Extent: inner vars span their ranges, everything else fixed.
                ranges: Dict[Var, Interval] = {}
                for var in collect_vars(index_expr):
                    if var in inner_set and var in leaf_ranges:
                        ranges[var] = leaf_ranges[var]
                    elif var in relax_ranges:
                        ranges[var] = relax_ranges[var]
                    else:
                        ranges[var] = Interval(0, 0)
                bounds = expr_bounds(index_expr, ranges)
                extent = int(bounds.extent)
                offset = simplify(substitute(index_expr, zero_map))
                if dim_offset is None:
                    dim_offset = offset
                dim_extent = max(dim_extent, extent)
            full = producer_tensor.shape_values()[dim]
            dim_extent = min(dim_extent, full)
            offsets.append(dim_offset if dim_offset is not None else as_expr(0))
            extents.append(dim_extent)
        return list(zip(offsets, extents))

    # ----------------------------------------------------------- tensorization
    def _make_intrinsic(self, stage: Stage, leaf_idx: int,
                        value_map: Dict[Var, Expr], dom_map: Dict[int, int],
                        binding: BufferBinding) -> Stmt:
        ivar = stage.leaf_iter_vars[leaf_idx]
        intrin = stage.tensorize_map[ivar]
        op = stage.op
        assert isinstance(op, ComputeOp)
        inner_vars = {iv.var for iv in stage.leaf_iter_vars[leaf_idx:]}
        zero_inner = {v: 0 for v in inner_vars}

        def offset_of(indices: List[Expr], tensor_binding: BufferBinding) -> List[Expr]:
            substituted = [simplify(substitute(substitute(idx, value_map), zero_inner))
                           for idx in indices]
            return tensor_binding.rebase(substituted)

        # Output offsets.
        out_indices = [value_map[iv.var] for iv in op.axis]
        out_offset = [simplify(substitute(idx, zero_inner)) for idx in out_indices]
        out_offset = binding.rebase(out_offset)

        # Input tensors read by the computation.
        body = op.body.source if isinstance(op.body, Reduce) else op.body
        input_buffers: List[Buffer] = []
        input_offsets: List[List[Expr]] = []
        for read in _collect_all_reads(body):
            tensor = read.tensor
            if not isinstance(tensor, Tensor) or tensor not in self.bindings:
                continue
            tensor_binding = self.bindings[tensor]
            input_buffers.append(tensor_binding.buffer)
            input_offsets.append(offset_of(read.indices, tensor_binding))

        # The reduction accumulates across outer reduce loops when some
        # reduce-derived leaf var lies outside the tensorized region.
        reduce_uids = {iv.uid for iv in op.reduce_axis}
        outer_leaves = stage.leaf_iter_vars[:leaf_idx]
        reduction_update = isinstance(op.body, Reduce) and any(
            self._derives_from_reduce(stage, iv, reduce_uids) for iv in outer_leaves)

        return IntrinsicStmt(
            name=intrin.name,
            intrin=intrin,
            inputs=input_buffers,
            output=binding.buffer,
            input_offsets=input_offsets,
            output_offset=out_offset,
            reduction_update=reduction_update,
        )


class _ReadConverter(ExprMutator):
    """Convert :class:`TensorRead` nodes to :class:`BufferLoad`, applying
    inline substitution and compact-buffer rebasing."""

    def __init__(self, lowerer: _Lowerer):
        self.lowerer = lowerer

    def visit_tensorread(self, expr: TensorRead) -> Expr:
        indices = [self.visit(i) for i in expr.indices]
        tensor = expr.tensor
        if isinstance(tensor, Tensor) and tensor in self.lowerer.inline_stages:
            op = self.lowerer.inline_stages[tensor]
            mapping = {iv.var: idx for iv, idx in zip(op.axis, indices)}
            return self.visit(substitute(op.body, mapping))
        if isinstance(tensor, Tensor):
            if tensor not in self.lowerer.bindings:
                # Intermediate tensor produced by a non-scheduled op: bind lazily.
                stage = self.lowerer.schedule.stage_map.get(tensor.op)
                if stage is None:
                    raise LoweringError(f"Tensor {tensor.name} has no stage or buffer")
                self.lowerer._ensure_binding(stage)
            binding = self.lowerer.bindings[tensor]
            return BufferLoad(binding.buffer,
                              [simplify(i) for i in binding.rebase(indices)])
        return TensorRead(tensor, indices)


def _collect_reads(expr: Expr, tensor: Tensor) -> List[TensorRead]:
    reads: List[TensorRead] = []

    def _walk(node: Expr) -> None:
        if isinstance(node, TensorRead) and isinstance(node.tensor, Tensor) \
                and node.tensor == tensor:
            reads.append(node)
        from ..te.expr import expr_children

        for child in expr_children(node):
            _walk(child)

    _walk(expr)
    return reads


def _collect_all_reads(expr: Expr) -> List[TensorRead]:
    reads: List[TensorRead] = []

    def _walk(node: Expr) -> None:
        if isinstance(node, TensorRead):
            reads.append(node)
        from ..te.expr import expr_children

        for child in expr_children(node):
            _walk(child)

    _walk(expr)
    return reads


def lower(schedule: Schedule, args: Sequence[Tensor], name: str = "main") -> LoweredFunc:
    """Lower a scheduled computation to a :class:`LoweredFunc`.

    Parameters
    ----------
    schedule:
        The schedule to lower.
    args:
        Argument tensors in calling order (inputs followed by outputs).
    name:
        Name of the generated function.
    """
    return _Lowerer(schedule, args, name).run()
