"""Parallel batch measurement (paper Section 5.4).

The paper's measurement pipeline splits candidate evaluation into a *builder*
(compile/lower the schedule, extract its program features) and a *runner*
(time the kernel on a device from the pool).  :class:`ParallelMeasurer`
reproduces that split over a thread pool: a batch of candidates is lowered
concurrently by the builder workers, then timed by the runner workers.

Because every measurement's noise stream is derived from ``(seed, task,
config index)`` (see :class:`~repro.autotvm.measure.LocalMeasurer`), results
are **bit-identical** to the serial path and independent of worker count or
completion order — a fixed seed yields the same tuning trajectory whether
measurements run on 1 worker or 16.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence

from ..hardware.base import MeasureResult
from .measure import LocalMeasurer, MeasureInput, MeasureResultRecord

__all__ = ["ParallelMeasurer"]


class ParallelMeasurer(LocalMeasurer):
    """Builder/runner split over a worker pool.

    ``n_parallel=1`` degenerates to the serial loop (no pool is created),
    which is also the fallback whenever a batch has a single candidate.
    """

    def __init__(self, n_parallel: int = 4, number: int = 3, seed: int = 0):
        super().__init__(number=number, seed=seed)
        if n_parallel <= 0:
            raise ValueError(f"n_parallel must be positive, got {n_parallel}")
        self.n_parallel = n_parallel

    def measure(self, inputs: Sequence[MeasureInput]) -> List[MeasureResultRecord]:
        inputs = list(inputs)
        if self.n_parallel == 1 or len(inputs) <= 1:
            return super().measure(inputs)

        workers = min(self.n_parallel, len(inputs))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Builder phase: lower + featurise every candidate concurrently.
            built = list(pool.map(self._build_checked, inputs))
            # Runner phase: time the successfully built candidates.
            records = list(pool.map(self._run_built, inputs, built))
        self.num_measured += len(inputs)
        return records

    # ------------------------------------------------------------- phases
    def _build_checked(self, inp: MeasureInput):
        """Builder worker: returns features, or the build error."""
        try:
            return self._build_one(inp)
        except Exception as exc:
            return exc

    def _run_built(self, inp: MeasureInput, built) -> MeasureResultRecord:
        """Runner worker: time one successfully built candidate."""
        if isinstance(built, Exception):
            return MeasureResultRecord(inp, float("inf"), None, error=str(built))
        model = inp.task.target.model
        result: MeasureResult = model.measure(built, number=self.number,
                                              rng=self._input_rng(inp))
        return MeasureResultRecord(inp, result.mean_time, built, error=result.error)
