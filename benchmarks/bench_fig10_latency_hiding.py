"""Figure 10: latency hiding on the VDLA accelerator (roofline).

Runs ResNet-18 convolution layers (as blocked GEMMs) through the VDLA DAE
pipeline simulator with and without virtual-thread latency hiding and reports
achieved GOPS and compute utilisation.  The paper reports peak compute
utilisation rising from 70% to 88% with latency hiding.
"""

import pytest

from common import emit_summary, print_series
from repro import tir
from repro.hardware import VDLAAccelerator, pynq_vdla_params
from repro.tir.transforms import inject_virtual_threads
from repro.topi.schedules import vdla as vdla_sched
from repro.workloads import RESNET_CONV_WORKLOADS


def _layer_times(workload, accel):
    m, n, k = vdla_sched.conv2d_as_gemm_workload(
        1, workload.in_channels, workload.height, workload.width,
        workload.out_channels, workload.kernel, workload.stride, workload.padding)
    results = {}
    for label, vthreads in (("no latency hiding", 1), ("latency hiding", 2)):
        schedule, tensors = vdla_sched.schedule_gemm_vdla(m, n, k, vthreads=vthreads)
        func = tir.lower(schedule, tensors, name=f"{workload.name}_{vthreads}")
        func = inject_virtual_threads(func)
        hiding = vthreads > 1
        results[label] = {
            "time": accel.estimate_func(func, latency_hiding=hiding),
            "util": accel.compute_utilization(func, latency_hiding=hiding),
        }
    return results


def _evaluate():
    accel = VDLAAccelerator(pynq_vdla_params())
    rows = []
    # The first layer stays on the CPU in the paper (shallow conv depth).
    for workload in RESNET_CONV_WORKLOADS[1:]:
        results = _layer_times(workload, accel)
        rows.append((workload.name, {
            "util w/o hiding %": results["no latency hiding"]["util"] * 100,
            "util w/ hiding %": results["latency hiding"]["util"] * 100,
            "speedup": (results["no latency hiding"]["time"]
                        / results["latency hiding"]["time"]),
        }))
    return rows


def test_fig10_latency_hiding_roofline(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 10: VDLA compute utilisation with/without latency hiding",
                 rows, unit="% / x")
    peak_without = max(e["util w/o hiding %"] for _n, e in rows)
    peak_with = max(e["util w/ hiding %"] for _n, e in rows)
    benchmark.extra_info["peak_util_no_hiding_pct"] = round(peak_without, 1)
    benchmark.extra_info["peak_util_hiding_pct"] = round(peak_with, 1)
    emit_summary("fig10_latency_hiding", {
        "peak_util_no_hiding_pct": round(peak_without, 1),
        "peak_util_hiding_pct": round(peak_with, 1),
        "speedup": {name: round(entry["speedup"], 3) for name, entry in rows}})
    # Latency hiding must improve every layer and raise peak utilisation
    # (paper: 70% -> 88%).
    for name, entry in rows:
        assert entry["speedup"] >= 1.0, f"latency hiding hurt {name}"
    assert peak_with > peak_without
