"""Serving a compiled model to concurrent clients (the deployment story).

Compiles a ResNet-18 variant once, exports it as a self-contained artifact,
then serves the *reloaded* artifact with ``repro.serve``: concurrent client
threads fire single requests, the engine coalesces them into batches along
the batch axis and round-robins the batches across two simulated GPUs.  Each
client's output is bit-identical to a solo execution, while the simulated
throughput benefits from batching and the device pool.

Run:  python examples/serve_model.py
"""

import tempfile
import threading
from pathlib import Path

import numpy as np

import repro
from repro.frontend import resnet18
from repro.runtime import Executor

N_CLIENTS = 4
REQUESTS_PER_CLIENT = 4


def main() -> None:
    # 1. Compile once, export the artifact, deploy by loading it back —
    #    no recompilation happens on the serving host.
    module = repro.compile(resnet18(batch=1, image_size=64, num_classes=100),
                           target="cuda")
    artifact = Path(tempfile.mkdtemp()) / "resnet18.repro"
    module.export(artifact)
    served = repro.load(artifact)
    print(f"Exported {artifact.name}: {len(served.kernels)} kernels, "
          f"estimated {served.total_time * 1e3:.3f} ms/request on "
          f"{served.target.name}")

    # 2. Start the engine: dynamic batching (up to 8 requests per batch,
    #    10 ms coalescing window) over a pool of two simulated GPUs.
    engine = repro.serve(served, devices=["gpu:0", "gpu:1"],
                         max_batch=8, timeout_ms=10.0)

    # 3. Concurrent clients, each making blocking single requests.
    rng = np.random.default_rng(0)
    inputs = [rng.random((1, 3, 64, 64)).astype("float32")
              for _ in range(N_CLIENTS * REQUESTS_PER_CLIENT)]
    solo = Executor(served)
    results = {}

    def client(index: int) -> None:
        for r in range(REQUESTS_PER_CLIENT):
            request = index * REQUESTS_PER_CLIENT + r
            results[request] = engine.infer(data=inputs[request], timeout=60)

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    engine.shutdown()

    # 4. Every served result is bit-identical to a solo execution.
    for request, outputs in results.items():
        expected = solo(inputs[request])[0].asnumpy()
        np.testing.assert_array_equal(outputs[0], expected)
    print(f"{len(results)} concurrent requests served, all outputs "
          f"bit-identical to solo execution.")

    # 5. Structured serving statistics.
    stats = engine.stats()
    sim = stats["simulated"]
    print(f"\nBatches: {stats['batches']} "
          f"(occupancy {stats['batch_occupancy']}, "
          f"mean {stats['mean_batch_occupancy']:.2f} requests/batch)")
    print(f"Simulated throughput: {sim['throughput_rps']:.0f} requests/s "
          f"(sequential baseline {1.0 / served.total_time:.0f} requests/s)")
    print(f"Simulated latency: p50 {sim['latency']['p50_ms']:.3f} ms, "
          f"p99 {sim['latency']['p99_ms']:.3f} ms")
    for device, busy in sim["busy_seconds_per_device"].items():
        print(f"  {device}: {busy * 1e3:.3f} ms simulated busy time")


if __name__ == "__main__":
    main()
