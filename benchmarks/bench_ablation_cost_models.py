"""Ablation: cost-model design choices (paper Section 5.2, Figure 13).

The paper compares two learned cost models — gradient-boosted trees over
loop-program features and a TreeRNN over the program AST — and reports that
they reach similar predictive quality while the boosted trees predict about
twice as fast, which is why they are the default.  This ablation regenerates
that comparison on a ResNet-18 conv2d schedule space: each model is trained
on measured configurations and evaluated by the Spearman rank correlation of
its predictions on held-out configurations, together with its prediction
latency.
"""

import random
import time

import numpy as np
import pytest

from common import conv_graph, emit_summary, get_target
from repro import tir
from repro.autotvm import (
    GradientBoostedTrees,
    NeuralCostModel,
    TreeRNNCostModel,
    extract_tasks,
    rank_correlation,
)
from repro.workloads import RESNET_CONV_WORKLOADS

N_TRAIN = 48
N_TEST = 32


def _collect_samples(target, n_samples, seed=0):
    """Lower a random sample of configurations and 'measure' them."""
    c7 = RESNET_CONV_WORKLOADS[6]
    graph = conv_graph(1, c7.in_channels, c7.height, c7.width, c7.out_channels,
                       c7.kernel, c7.stride, c7.padding)
    task, = extract_tasks(graph, target)
    rng = random.Random(seed)
    funcs, features, times = [], [], []
    for config in task.config_space.sample(n_samples, rng=rng):
        try:
            func = task.lower(config)
            feats = tir.extract_features(func)
            cost = target.model.estimate(feats)
        except Exception:
            continue
        if not np.isfinite(cost):
            continue
        funcs.append(func)
        features.append(feats.to_vector())
        times.append(cost)
    return funcs, np.asarray(features), np.asarray(times)


def _evaluate():
    target = get_target("cuda")
    funcs, features, times = _collect_samples(target, N_TRAIN + N_TEST, seed=7)
    throughput = 1.0 / np.maximum(times, 1e-12)
    throughput = throughput / throughput.max()
    split = min(N_TRAIN, len(funcs) - 8)
    results = {}

    gbt = GradientBoostedTrees(seed=0)
    gbt.fit(features[:split], throughput[:split])
    start = time.perf_counter()
    pred = gbt.predict(features[split:])
    gbt_time = (time.perf_counter() - start) / max(len(pred), 1)
    results["GBT (default)"] = {
        "rank_corr": rank_correlation(pred, throughput[split:]),
        "predict_ms": gbt_time * 1e3,
    }

    mlp = NeuralCostModel(seed=0)
    mlp.fit(features[:split], throughput[:split])
    start = time.perf_counter()
    pred = mlp.predict(features[split:])
    mlp_time = (time.perf_counter() - start) / max(len(pred), 1)
    results["MLP"] = {
        "rank_corr": rank_correlation(pred, throughput[split:]),
        "predict_ms": mlp_time * 1e3,
    }

    treernn = TreeRNNCostModel(seed=0, epochs=30)
    treernn.fit(funcs[:split], throughput[:split])
    start = time.perf_counter()
    pred = treernn.predict(funcs[split:])
    tree_time = (time.perf_counter() - start) / max(len(pred), 1)
    results["TreeRNN"] = {
        "rank_corr": rank_correlation(pred, throughput[split:]),
        "predict_ms": tree_time * 1e3,
    }
    return results


def test_ablation_cost_models(benchmark):
    results = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print("\n=== Ablation: cost model choice (ResNet-18 C7 schedule space) ===")
    print(f"{'model':<16}{'rank corr':>12}{'predict ms/config':>20}")
    for name, entry in results.items():
        print(f"{name:<16}{entry['rank_corr']:>12.3f}{entry['predict_ms']:>20.3f}")
        benchmark.extra_info[f"{name}_rank_corr"] = round(entry["rank_corr"], 3)
        benchmark.extra_info[f"{name}_predict_ms"] = round(entry["predict_ms"], 3)
    emit_summary("ablation_cost_models", {
        name: {"rank_corr": round(entry["rank_corr"], 3),
               "predict_ms": round(entry["predict_ms"], 3)}
        for name, entry in results.items()})
    # Paper: both learned models rank schedules usefully; the boosted trees
    # predict faster than the neural AST model (why they are the default).
    assert results["GBT (default)"]["rank_corr"] > 0.3
    assert results["TreeRNN"]["rank_corr"] > 0.1
    assert results["GBT (default)"]["predict_ms"] < results["TreeRNN"]["predict_ms"]
