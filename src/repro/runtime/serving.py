"""Dynamic-batching inference serving (``repro.serve``).

The paper's end-to-end claim is compile-once, serve-anywhere; this module
adds the serving half: :func:`serve` turns a compiled module (or an exported
artifact path) into an :class:`InferenceEngine` that

* queues concurrent requests from many client threads through a *bounded*
  admission queue with per-request deadlines and priorities — when the
  queue exceeds ``max_queue`` the engine sheds load (most-expired first,
  then lowest-priority/newest) with typed :class:`QueueFull` /
  :class:`DeadlineExceeded` rejections instead of admitting unboundedly,
* coalesces admitted requests along the graph's batch axis with dynamic
  batching (``max_batch`` requests per batch, waiting at most
  ``timeout_ms`` for the batch to fill; higher-priority requests pop
  first) — or, with ``max_batch="adaptive"``, picks each batch's size
  limit from the :class:`_BatchCostModel` latency estimates, the current
  queue depth, and the waiting requests' deadline headroom so estimated
  goodput is maximised under the ``p99_target_ms`` target,
* round-robins the batches across a pool of per-device
  :class:`~repro.runtime.executor.Executor` workers (multi-GPU or
  heterogeneous; workers can hold leases on a
  :class:`~repro.runtime.rpc.Tracker` device pool), and
* reports structured throughput / latency / batch-occupancy / SLO
  statistics (sheds, deadline violations, cancellations).

Clients that give up can :meth:`InferenceFuture.cancel` a request; a
cancelled request is never executed and never counted in the serving
statistics.  :meth:`InferenceEngine.shutdown` drains by default
(already-admitted requests are served) or rejects the backlog with
``drain=False``.

Latency accounting is simulated-consistent: a coalesced batch costs the
per-batch kernel estimates of the batched workload (what compiling the model
at that batch size would report), never the sum of per-request times.
Functional outputs, however, are computed per request on the native-batch
kernels so every request's result is bit-identical to a solo execution (the
NumPy BLAS kernels are not bitwise batch-invariant).
"""

from __future__ import annotations

import os
import queue
import tempfile
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..compiler.module import CompiledModule
from .executor import Executor
from .ndarray import Device, DeviceLike, device as as_device

__all__ = ["serve", "InferenceEngine", "InferenceFuture", "ServingError",
           "QueueFull", "DeadlineExceeded", "RequestCancelled"]

_SHUTDOWN = object()


class ServingError(RuntimeError):
    """Base error of the serving engine's admission/SLO machinery."""


class QueueFull(ServingError):
    """The bounded admission queue is full and this request lost the shed
    comparison (it is the lowest-priority/newest candidate)."""


class DeadlineExceeded(ServingError):
    """The request's ``deadline_ms`` passed before it executed; it was shed
    without running."""


class RequestCancelled(ServingError):
    """The caller cancelled the request before it started executing."""


# ---------------------------------------------------------------------------
# Batch cost model
# ---------------------------------------------------------------------------

class _BatchCostModel:
    """Simulated per-batch latency of the module at coalesced batch sizes.

    For the module's native batch size the recorded kernel times are used
    verbatim (including tuned provenance).  Larger coalesced batches are
    re-estimated by cloning the optimized graph, scaling the batch axis and
    asking the operator-level cost model for each fused kernel — i.e. exactly
    the per-batch estimate a compile at that batch size would produce (with
    the untuned fallback heuristic).  Results are memoised per batch size.
    """

    def __init__(self, module: CompiledModule, data_inputs: Sequence[str],
                 native_rows: int):
        from .artifact import graph_to_json

        self.module = module
        self._data_inputs = set(data_inputs)
        self.native_rows = native_rows
        self._graph_json = graph_to_json(module.graph)
        self._lock = threading.Lock()
        self._cache: Dict[int, Tuple[float, List[Tuple[str, float]]]] = {
            native_rows: (module.total_time,
                          [(k.name, k.time_seconds) for k in module.kernels]),
        }
        self._targets = {module.target.name: module.target}

    def _target_for(self, name: str):
        from ..hardware.target import create_target

        if name not in self._targets:
            self._targets[name] = create_target(name,
                                                seed=self.module.target.seed)
        return self._targets[name]

    def times_for(self, rows: int) -> Tuple[float, List[Tuple[str, float]]]:
        """``(total_seconds, [(kernel name, seconds)])`` at ``rows`` total
        batch rows across the coalesced requests."""
        with self._lock:
            if rows in self._cache:
                return self._cache[rows]
        total, per_kernel = self._estimate(rows)
        with self._lock:
            self._cache[rows] = (total, per_kernel)
        return total, per_kernel

    def _estimate(self, rows: int) -> Tuple[float, List[Tuple[str, float]]]:
        from ..compiler.driver import framework_overhead
        from ..graph.op_timing import kernel_time
        from .artifact import graph_from_json

        scale = rows // self.native_rows
        clone = graph_from_json(self._graph_json)
        for node in clone.input_nodes:
            if node.name in self._data_inputs:
                node.shape = (node.shape[0] * scale,) + tuple(node.shape[1:])
        clone.infer_shapes({})
        nodes_by_name = {node.name: node for node in clone.nodes}

        per_kernel: List[Tuple[str, float]] = []
        total = 0.0
        for kernel in self.module.kernels:
            target = self._target_for(kernel.device)
            master = nodes_by_name[kernel.group.master.name]
            seconds = kernel_time(master, target, fused=False).time
            for member in kernel.group.nodes:
                if member.name != master.name:
                    seconds += kernel_time(nodes_by_name[member.name], target,
                                           fused=True).time
            seconds += framework_overhead(target)
            per_kernel.append((kernel.name, seconds))
            total += seconds
        return total, per_kernel


# ---------------------------------------------------------------------------
# Requests and futures
# ---------------------------------------------------------------------------

class InferenceFuture:
    """Handle to one submitted request; resolves to the request's outputs.

    A caller that gives up (e.g. after :meth:`result` raised
    ``TimeoutError``) can :meth:`cancel` the request: if it has not started
    executing it never will, and it is not counted in the engine's serving
    statistics.
    """

    def __init__(self):
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._outputs: Optional[List[np.ndarray]] = None
        self._error: Optional[BaseException] = None
        self._cancelled = False
        self._claimed = False
        #: engine callback fired once on successful cancellation (stats)
        self._cancel_hook = None
        #: filled at completion: simulated seconds of the batch that served
        #: this request, its size in requests, and observed wall latency
        #: (split into admission-queue wait and batch execution)
        self.simulated_latency: Optional[float] = None
        self.batch_size: Optional[int] = None
        self.wall_latency: Optional[float] = None
        self.queue_wait: Optional[float] = None
        self.execute_latency: Optional[float] = None

    def done(self) -> bool:
        return self._event.is_set()

    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self) -> bool:
        """Cancel the request if it has not started executing.

        Returns ``True`` if the request is (now) cancelled — it will never
        execute and :meth:`result` raises :class:`RequestCancelled` — and
        ``False`` if it already started executing or completed.
        """
        with self._lock:
            if self._cancelled:
                return True
            if self._claimed or self._event.is_set():
                return False
            self._cancelled = True
        hook = self._cancel_hook
        if hook is not None:
            hook()
        self._reject(RequestCancelled(
            "request cancelled by the caller before execution"))
        return True

    def result(self, timeout: Optional[float] = None) -> List[np.ndarray]:
        if not self._event.wait(timeout):
            raise TimeoutError("Inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._outputs

    # -- engine side -----------------------------------------------------------
    def _claim(self) -> bool:
        """Mark execution as started; cancellation loses the race from here."""
        with self._lock:
            if self._cancelled or self._event.is_set():
                return False
            self._claimed = True
            return True

    def _resolve(self, outputs: List[np.ndarray]) -> None:
        self._outputs = outputs
        self._event.set()

    def _reject(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class _Request:
    __slots__ = ("inputs", "future", "enqueued_at", "deadline", "priority",
                 "seq")

    def __init__(self, inputs: Dict[str, np.ndarray],
                 deadline: Optional[float] = None, priority: int = 0):
        self.inputs = inputs
        self.future = InferenceFuture()
        self.enqueued_at = time.monotonic()
        self.deadline = deadline        #: absolute monotonic time, or None
        self.priority = priority        #: higher pops first; ties FIFO
        self.seq = -1                   #: admission order (set by the queue)

    def expired(self, now: Optional[float] = None) -> bool:
        return self.deadline is not None \
            and (time.monotonic() if now is None else now) >= self.deadline


class _AdmissionQueue:
    """Bounded, priority-ordered admission queue with load shedding.

    ``pop`` returns the highest-priority, earliest-admitted live request.
    When full, ``put`` sheds: expired requests first (most expired first),
    then the lowest-priority/newest candidate — which may be the incoming
    request itself, in which case :class:`QueueFull` propagates to the
    submitting caller.  Cancelled entries are dropped on sight; expired
    entries are rejected with :class:`DeadlineExceeded`.
    """

    def __init__(self, maxsize: int):
        self.maxsize = maxsize
        self._cond = threading.Condition()
        self._items: List[_Request] = []
        self._seq = 0
        self._closed = False
        self.shed_queue_full = 0
        self.shed_expired = 0

    # Caller holds the lock for every _-method below.
    def _purge(self, now: float) -> None:
        kept = []
        for request in self._items:
            if request.future.cancelled():
                continue
            if request.expired(now):
                self.shed_expired += 1
                request.future._reject(DeadlineExceeded(
                    f"deadline passed after "
                    f"{now - request.enqueued_at:.3f}s in the admission "
                    f"queue; the request was shed, not executed"))
                continue
            kept.append(request)
        self._items = kept

    def put(self, request: _Request) -> None:
        with self._cond:
            if self._closed:
                raise ServingError("InferenceEngine has been shut down")
            request.seq = self._seq
            self._seq += 1
            if len(self._items) >= self.maxsize:
                self._purge(time.monotonic())
            if len(self._items) >= self.maxsize:
                victim = min(self._items + [request],
                             key=lambda r: (r.priority, -r.seq))
                self.shed_queue_full += 1
                if victim is request:
                    raise QueueFull(
                        f"admission queue is full ({self.maxsize} queued) "
                        f"and every queued request has priority >= "
                        f"{request.priority}")
                self._items.remove(victim)
                victim.future._reject(QueueFull(
                    f"shed from a full admission queue ({self.maxsize} "
                    f"queued) by a higher-priority request"))
            self._items.append(request)
            self._cond.notify()

    def pop(self, timeout: Optional[float] = None):
        """The best live request, ``None`` on timeout, or the shutdown
        sentinel once closed and empty."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                now = time.monotonic()
                self._purge(now)
                if self._items:
                    best = max(self._items,
                               key=lambda r: (r.priority, -r.seq))
                    self._items.remove(best)
                    return best
                if self._closed:
                    return _SHUTDOWN
                remaining = None if deadline is None else deadline - now
                if remaining is not None and remaining <= 0:
                    return None
                self._cond.wait(remaining)

    def depth(self) -> int:
        with self._cond:
            return len(self._items)

    def deadline_headrooms(self, now: float) -> List[Optional[float]]:
        """Remaining seconds until each live queued request's deadline
        (``None`` = no deadline), in pop order — the adaptive batcher's
        view of how much slack the queue has."""
        with self._cond:
            live = [request for request in self._items
                    if not request.future.cancelled()
                    and not request.expired(now)]
        live.sort(key=lambda r: (-r.priority, r.seq))
        return [None if request.deadline is None else request.deadline - now
                for request in live]

    def note_expired(self, count: int = 1) -> None:
        """Record requests shed for expiry after they left the queue."""
        with self._cond:
            self.shed_expired += count

    def counters(self) -> Dict[str, int]:
        with self._cond:
            return {"shed_queue_full": self.shed_queue_full,
                    "shed_expired": self.shed_expired}

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain_rejecting(self, error: BaseException) -> None:
        with self._cond:
            items, self._items = self._items, []
        for request in items:
            if not request.future.done():
                request.future._reject(error)


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class InferenceEngine:
    """Queueing, dynamically batching, multi-device inference engine.

    Create one with :func:`serve`; submit work with :meth:`infer` (blocking)
    or :meth:`submit` (returns an :class:`InferenceFuture`); inspect
    :meth:`stats`; stop with :meth:`shutdown` or by using the engine as a
    context manager.
    """

    def __init__(self, module: CompiledModule, *,
                 devices: Union[None, int, Sequence[DeviceLike]] = None,
                 max_batch: Union[int, str] = 8, timeout_ms: float = 2.0,
                 max_queue: int = 1024,
                 p99_target_ms: Optional[float] = None,
                 adaptive_max_batch: int = 8,
                 tracker=None, rpc_key: Optional[str] = None,
                 lease_timeout: float = 10.0, pool: str = "thread",
                 bundle_path: Optional[str] = None):
        if isinstance(max_batch, str):
            if max_batch != "adaptive":
                raise ValueError(f"max_batch must be an int >= 1 or "
                                 f"'adaptive', got {max_batch!r}")
            if adaptive_max_batch < 1:
                raise ValueError(f"adaptive_max_batch must be >= 1, "
                                 f"got {adaptive_max_batch}")
            self._adaptive = True
            max_batch = adaptive_max_batch
        else:
            self._adaptive = False
            if max_batch < 1:
                raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if p99_target_ms is not None and p99_target_ms <= 0:
            raise ValueError(f"p99_target_ms must be > 0, "
                             f"got {p99_target_ms}")
        self.p99_target_s = None if p99_target_ms is None \
            else p99_target_ms / 1000.0
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        if pool not in ("thread", "process"):
            raise ValueError(f"pool must be 'thread' or 'process', "
                             f"got {pool!r}")
        if pool == "process" and tracker is not None:
            raise ValueError(
                "pool='process' workers own their devices directly and "
                "cannot hold tracker leases; serve with pool='thread' to "
                "combine dynamic batching with an RPC device pool")
        self.pool_kind = pool
        self.module = module
        self.devices = self._resolve_devices(module, devices)
        self.timeout_s = max(timeout_ms, 0.0) / 1000.0

        reference = Executor(module, self.devices[0])
        self._reference = reference
        specs = reference.input_specs
        batchable = (bool(specs)
                     and all(s.shape and len(s.shape) >= 1 for s in specs)
                     and len({s.shape[0] for s in specs}) == 1
                     and specs[0].shape[0] >= 1)
        if not batchable and max_batch > 1:
            if self._adaptive:
                # Adaptive sizing degrades gracefully: the policy can only
                # ever choose batches of one on a non-batchable graph.
                max_batch = 1
            else:
                raise ValueError(
                    "Dynamic batching needs every graph data input to share "
                    "one leading batch axis; this module's inputs are "
                    f"[{reference.describe_inputs()}] — serve with "
                    "max_batch=1")
        self.max_batch = max_batch
        self.native_batch = specs[0].shape[0] if batchable else 1
        self._cost = _BatchCostModel(module, [s.name for s in specs],
                                     self.native_batch if batchable else 1)
        if self._adaptive:
            # Adaptive sizing consults the cost model on every dispatch
            # decision; estimating a batch size is a one-off compile that
            # would otherwise stall the batcher loop (and expire queued
            # requests) the first time each size comes up.  Pay the whole
            # cost up front, while no request is waiting.
            for size in range(1, self.max_batch + 1):
                self._cost.times_for(size * self.native_batch)

        # Optional RPC leases: one exclusive device lease per worker.
        self._sessions = []
        if tracker is not None:
            if rpc_key is None:
                raise ValueError("serve(tracker=...) also needs rpc_key= (the "
                                 "device key registered with the tracker)")
            try:
                for _ in self.devices:
                    self._sessions.append(
                        tracker.request(rpc_key, timeout=lease_timeout))
            except Exception:
                for session in self._sessions:
                    session.release()
                raise

        # Execution back-end: per-device Executors on worker *threads*
        # (pool="thread"), or one worker *process* per device mapped onto a
        # shared-memory parameter arena (pool="process" — true parallelism
        # outside the GIL; see runtime/procpool/).
        self._procpool = None
        self._owned_bundle: Optional[str] = None
        if pool == "process":
            from .procpool import ModuleWorkerPool

            if bundle_path is None:
                # Workers boot from an exported artifact; when handed a live
                # module the engine exports (and owns) a temporary bundle.
                handle, bundle_path = tempfile.mkstemp(prefix="repro-serve-",
                                                       suffix=".module")
                os.close(handle)
                self._owned_bundle = bundle_path
                from .artifact import export_module

                try:
                    export_module(module, bundle_path)
                except BaseException:
                    os.unlink(bundle_path)
                    raise
            try:
                self._procpool = ModuleWorkerPool(module, bundle_path,
                                                  self.devices)
            except BaseException:
                if self._owned_bundle is not None:
                    os.unlink(self._owned_bundle)
                raise
            self._executors: List[Executor] = []
        else:
            self._executors = [Executor(module, dev) for dev in self.devices]
        self.max_queue = max_queue
        self._admission = _AdmissionQueue(max_queue)
        # Bounded worker queues (two batches each): backpressure from a slow
        # device propagates to the batcher and from there to the admission
        # queue, which is where shedding decisions belong.
        self._worker_queues = [queue.Queue(maxsize=2) for _ in self.devices]
        #: indices of worker threads that died (never dispatch to them) and
        #: the error that killed each — see _abandon_worker
        self._dead_workers: set = set()
        self._worker_errors: Dict[int, BaseException] = {}

        # -- statistics (guarded by _stats_lock) -------------------------------
        self._stats_lock = threading.Lock()
        self._n_requests = 0
        self._n_batches = 0
        self._n_cancelled = 0
        self._deadline_violations = 0
        self._occupancy: Dict[int, int] = {}
        self._wall_latencies: List[float] = []
        self._sim_latencies: List[float] = []
        self._queue_waits: List[float] = []
        self._exec_latencies: List[float] = []
        #: adaptive batcher decisions: chosen batch-size limit -> count
        self._adaptive_decisions: Dict[int, int] = {}
        self._device_busy = [0.0 for _ in self.devices]
        self._started_at = time.monotonic()
        self._stopped_at: Optional[float] = None

        self._closed = False
        #: orders submit() puts against the shutdown sentinel, so no request
        #: can land behind the sentinel and silently never resolve
        self._submit_lock = threading.Lock()
        self._workers = [
            threading.Thread(target=self._worker_loop, args=(i,), daemon=True,
                             name=f"repro-serve-worker-{self.devices[i]}")
            for i in range(len(self.devices))]
        for worker in self._workers:
            worker.start()
        self._batcher = threading.Thread(target=self._batcher_loop,
                                         daemon=True, name="repro-serve-batcher")
        self._batcher.start()

    # ------------------------------------------------------------------ setup
    @staticmethod
    def _resolve_devices(module: CompiledModule,
                         devices: Union[None, int, Sequence[DeviceLike]]
                         ) -> List[Device]:
        kind = module.target.device_type
        if devices is None:
            return [Device(kind, 0)]
        if isinstance(devices, int):
            if devices < 1:
                raise ValueError(f"devices must be >= 1, got {devices}")
            return [Device(kind, index) for index in range(devices)]
        resolved = [as_device(dev) for dev in devices]
        if not resolved:
            raise ValueError("devices must not be empty")
        return resolved

    # ------------------------------------------------------------------ client API
    def submit(self, inputs: Optional[Dict[str, np.ndarray]] = None, *,
               deadline_ms: Optional[float] = None, priority: int = 0,
               **named) -> InferenceFuture:
        """Enqueue one request; returns a future resolving to the outputs
        (a list of NumPy arrays, one per graph output).

        ``deadline_ms`` is an end-to-end SLO measured from this call: a
        request that has not *started executing* when it expires is shed
        (its future raises :class:`DeadlineExceeded`); one that merely
        finishes late still resolves but is counted as a deadline
        violation.  ``priority`` (higher = more important, default 0)
        orders the admission queue and decides who is shed when it is full
        — lowest-priority/newest first, with :class:`QueueFull` raised here
        when the incoming request is itself the best shed candidate.
        """
        if self._closed:
            raise RuntimeError("InferenceEngine has been shut down")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ValueError(f"deadline_ms must be > 0, got {deadline_ms}")
        merged = dict(inputs or {})
        merged.update(named)
        # Validate in the caller's thread so bad requests fail fast and never
        # poison a batch.  Inputs are copied: the batch executes later on a
        # worker thread, and a caller reusing its buffer must not corrupt an
        # in-flight request.
        validated = self._reference._validate(merged)
        for name, value in validated.items():
            validated[name] = np.array(self._reference._as_numpy(value))
        for spec in self._reference.input_specs:
            value = validated[spec.name]
            if spec.shape is not None and tuple(value.shape) != spec.shape:
                raise ValueError(
                    f"Input {spec.name!r} has shape {tuple(value.shape)}, "
                    f"expected {spec.shape} (one native-batch request); "
                    f"expected inputs: {self._reference.describe_inputs()}")
        deadline = None if deadline_ms is None \
            else time.monotonic() + deadline_ms / 1000.0
        request = _Request(validated, deadline=deadline, priority=priority)
        request.future._cancel_hook = self._note_cancelled
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("InferenceEngine has been shut down")
            self._admission.put(request)
        return request.future

    def _note_cancelled(self) -> None:
        with self._stats_lock:
            self._n_cancelled += 1

    def infer(self, inputs: Optional[Dict[str, np.ndarray]] = None,
              timeout: Optional[float] = None, *,
              deadline_ms: Optional[float] = None, priority: int = 0,
              **named) -> List[np.ndarray]:
        """Blocking inference: submit one request and wait for its outputs."""
        return self.submit(inputs, deadline_ms=deadline_ms,
                           priority=priority, **named).result(timeout)

    def infer_many(self, requests: Sequence[Dict[str, np.ndarray]],
                   timeout: Optional[float] = None) -> List[List[np.ndarray]]:
        """Submit many requests at once (letting them coalesce) and collect
        all results in order."""
        futures = [self.submit(request) for request in requests]
        return [future.result(timeout) for future in futures]

    # ------------------------------------------------------------------ batching
    def _choose_batch_size(self, first: _Request) -> int:
        """Adaptive sizing: the batch-size limit that maximises estimated
        goodput (deadline-meeting requests per simulated second).

        Consults :meth:`_BatchCostModel.times_for` for the per-batch latency
        estimate at each candidate size, the admission queue's current depth
        (never waits for requests that have not arrived), and each waiting
        request's deadline headroom (a request whose slack is smaller than
        the batch estimate cannot contribute goodput).  Candidates whose
        estimate exceeds the ``p99_target_ms`` knob are rejected outright —
        except size one, which is the only way to serve at all.
        """
        now = time.monotonic()
        headrooms = [None if first.deadline is None else first.deadline - now]
        headrooms.extend(self._admission.deadline_headrooms(now))
        cap = max(1, min(self.max_batch, len(headrooms)))
        best_size, best_goodput = 1, -1.0
        for size in range(1, cap + 1):
            try:
                batch_time, _ = self._cost.times_for(size * self.native_batch)
            except Exception:
                break           # un-estimable size: keep the best so far
            if self.p99_target_s is not None \
                    and batch_time > self.p99_target_s and size > 1:
                break           # estimates are monotone in rows; stop here
            served = sum(1 for headroom in headrooms[:size]
                         if headroom is None or headroom >= batch_time)
            goodput = served / batch_time if batch_time > 0 else float(served)
            if goodput > best_goodput:
                best_goodput, best_size = goodput, size
        with self._stats_lock:
            self._adaptive_decisions[best_size] = \
                self._adaptive_decisions.get(best_size, 0) + 1
        return best_size

    def _batcher_loop(self) -> None:
        while True:
            item = self._admission.pop()
            if item is _SHUTDOWN:
                break
            batch = [item]
            limit = self._choose_batch_size(item) if self._adaptive \
                else self.max_batch
            deadline = time.monotonic() + self.timeout_s
            stop = False
            while len(batch) < limit:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                nxt = self._admission.pop(timeout=remaining)
                if nxt is _SHUTDOWN:
                    stop = True
                    break
                if nxt is None:
                    break
                batch.append(nxt)
            # Cancelled while coalescing: never execute, never count.
            batch = [request for request in batch
                     if not request.future.cancelled()]
            if batch:
                self._dispatch(batch)
            if stop:
                break
        for index, worker_queue in enumerate(self._worker_queues):
            while True:
                with self._stats_lock:
                    dead = index in self._dead_workers
                if dead:
                    break       # its thread is gone; nothing to wake
                try:
                    worker_queue.put(_SHUTDOWN, timeout=0.2)
                    break
                except queue.Full:
                    continue    # worker still draining (or just died)

    def _dispatch(self, batch: List[_Request]) -> None:
        attempt = 0
        while True:
            with self._stats_lock:
                alive = [i for i in range(len(self._worker_queues))
                         if i not in self._dead_workers]
                index = alive[(self._n_batches + attempt) % len(alive)] \
                    if alive else -1
            if not alive:
                error = RuntimeError(
                    "every serving worker has died; the engine cannot serve "
                    f"(first failure: "
                    f"{next(iter(self._worker_errors.values()), None)!r})")
                for request in batch:
                    if not request.future.done():
                        request.future._reject(error)
                return
            try:
                # Bounded put: a full queue means the device is behind — try
                # the next alive worker, re-checking deaths each lap.
                self._worker_queues[index].put(batch, timeout=0.05)
            except queue.Full:
                attempt += 1
                continue
            break
        with self._stats_lock:
            self._n_batches += 1
            self._occupancy[len(batch)] = \
                self._occupancy.get(len(batch), 0) + 1
            # Close the dispatch/death race: the worker may have died
            # between the aliveness check and the put, leaving this batch
            # stranded.
            died = index in self._dead_workers
        if died:
            self._drain_rejecting(index)

    # ------------------------------------------------------------------ workers
    def _worker_loop(self, index: int) -> None:
        worker_queue = self._worker_queues[index]
        batch: Optional[List[_Request]] = None
        try:
            while True:
                batch = worker_queue.get()
                if batch is _SHUTDOWN:
                    batch = None
                    break
                try:
                    if self._sessions:
                        self._sessions[index].execute(self._run_batch, index,
                                                      batch)
                    else:
                        self._run_batch(index, batch)
                except Exception as exc:
                    for request in batch:
                        if not request.future.done():
                            request.future._reject(exc)
                batch = None
        except BaseException as exc:   # noqa: BLE001 — see _abandon_worker
            # The batch in flight when the thread died was already popped
            # from the queue — reject it here or its callers hang forever.
            if batch is not None:
                for request in batch:
                    if not request.future.done():
                        request.future._reject(exc)
            self._abandon_worker(index, exc)
            raise
        finally:
            # The worker owns its device lease: release only once no more
            # batches can reach it, so a shutdown(wait=False) can never yank
            # the session out from under a queued batch.
            if self._sessions:
                self._sessions[index].release()

    def _abandon_worker(self, index: int, error: BaseException) -> None:
        """A worker thread is dying: propagate failure, never hang clients.

        Every future already queued to the worker is rejected, and
        :meth:`_dispatch` stops routing new batches to it (rejecting
        immediately once no workers remain).  The process pool honours the
        same contract one level down — a worker *process* crash surfaces as
        an exception in :meth:`_run_batch`, resolving every pending future —
        so no failure mode leaves a caller blocked on ``future.result()``.
        """
        with self._stats_lock:
            self._dead_workers.add(index)
            self._worker_errors.setdefault(index, error)
        self._drain_rejecting(index)

    def _drain_rejecting(self, index: int) -> None:
        with self._stats_lock:
            cause = self._worker_errors.get(index)
        error = RuntimeError(
            f"serving worker for {self.devices[index]} died: {cause!r}")
        error.__cause__ = cause
        worker_queue = self._worker_queues[index]
        while True:
            try:
                batch = worker_queue.get_nowait()
            except queue.Empty:
                return
            if batch is _SHUTDOWN:
                continue
            for request in batch:
                if not request.future.done():
                    request.future._reject(error)

    def _run_batch(self, index: int, batch: List[_Request]) -> None:
        # Last line of defence before execution: shed requests whose
        # deadline passed while batched/queued, skip requests cancelled
        # since dispatch, and claim the rest so cancel() can no longer win.
        now = time.monotonic()
        runnable = []
        for request in batch:
            if request.expired(now):
                self._admission.note_expired()
                if not request.future.done():
                    request.future._reject(DeadlineExceeded(
                        f"deadline passed "
                        f"{now - request.deadline:.3f}s before execution; "
                        f"the request was shed, not executed"))
                continue
            if not request.future._claim():
                continue
            runnable.append(request)
        if not runnable:
            return
        batch = runnable
        rows = len(batch) * self.native_batch
        try:
            batch_time, _per_kernel = self._cost.times_for(rows)
        except Exception as exc:
            for request in batch:
                request.future._reject(exc)
            return
        exec_start = time.monotonic()
        if self._procpool is not None:
            # One round trip to worker process `index`: inputs and outputs
            # travel through a per-batch shm arena; each entry is the
            # request's output arrays or its per-request error.  Worker death
            # is respawned + retried inside the pool; an exhausted retry
            # raises and _worker_loop rejects the whole batch.
            outcomes = self._procpool.run_batch(
                index, [request.inputs for request in batch])
        else:
            executor = self._executors[index]
            outcomes = []
            for request in batch:
                try:
                    outcomes.append(executor._execute(request.inputs).outputs)
                except Exception as exc:
                    outcomes.append(exc)
        wall_latencies = []
        queue_waits = []
        exec_latencies = []
        violations = 0
        done_at = time.monotonic()
        for request, outcome in zip(batch, outcomes):
            future = request.future
            if isinstance(outcome, Exception):
                future._reject(outcome)
                continue
            future.simulated_latency = batch_time
            future.batch_size = len(batch)
            future.wall_latency = done_at - request.enqueued_at
            future.queue_wait = exec_start - request.enqueued_at
            future.execute_latency = done_at - exec_start
            wall_latencies.append(future.wall_latency)
            queue_waits.append(future.queue_wait)
            exec_latencies.append(future.execute_latency)
            # Finished late: the caller still gets the outputs (the work is
            # done), but the SLO miss is counted.
            if request.expired(done_at):
                violations += 1
            future._resolve(outcome)
        with self._stats_lock:
            self._n_requests += len(batch)
            self._device_busy[index] += batch_time
            self._sim_latencies.extend([batch_time] * len(batch))
            self._wall_latencies.extend(wall_latencies)
            self._queue_waits.extend(queue_waits)
            self._exec_latencies.extend(exec_latencies)
            self._deadline_violations += violations

    # ------------------------------------------------------------------ stats
    def estimated_batch_time(self, n_requests: int) -> float:
        """Simulated seconds of one coalesced batch of ``n_requests``."""
        return self._cost.times_for(n_requests * self.native_batch)[0]

    @staticmethod
    def _percentiles(samples: List[float]) -> Dict[str, float]:
        if not samples:
            return {"p50_ms": 0.0, "p99_ms": 0.0, "mean_ms": 0.0}
        data = np.asarray(samples)
        return {"p50_ms": float(np.percentile(data, 50) * 1e3),
                "p99_ms": float(np.percentile(data, 99) * 1e3),
                "mean_ms": float(np.mean(data) * 1e3)}

    def stats(self) -> Dict[str, object]:
        """Structured serving statistics.

        ``simulated`` timings come from the per-batch kernel estimates (the
        engine's simulated clock: each device's busy time is the sum of its
        batch times; the makespan is the busiest device); ``wall`` timings
        are host wall-clock observations of this Python process.
        """
        with self._stats_lock:
            requests = self._n_requests
            batches = self._n_batches
            occupancy = dict(sorted(self._occupancy.items()))
            busy = list(self._device_busy)
            wall = list(self._wall_latencies)
            sim = list(self._sim_latencies)
            queue_waits = list(self._queue_waits)
            exec_latencies = list(self._exec_latencies)
            decisions = dict(sorted(self._adaptive_decisions.items()))
            cancelled = self._n_cancelled
            violations = self._deadline_violations
            end = self._stopped_at or time.monotonic()
            duration = max(end - self._started_at, 1e-12)
        shed = self._admission.counters()
        makespan = max(busy) if busy else 0.0
        mean_occupancy = (sum(size * count for size, count in occupancy.items())
                          / batches) if batches else 0.0
        result = {
            "requests": requests,
            "batches": batches,
            "pool": self.pool_kind,
            "devices": [str(dev) for dev in self.devices],
            "max_batch": self.max_batch,
            "native_batch": self.native_batch,
            "batch_occupancy": occupancy,
            "mean_batch_occupancy": mean_occupancy,
            "simulated": {
                "busy_seconds_per_device": {str(dev): seconds for dev, seconds
                                            in zip(self.devices, busy)},
                "makespan_seconds": makespan,
                "throughput_rps": requests / makespan if makespan else 0.0,
                "latency": self._percentiles(sim),
            },
            "wall": {
                "duration_seconds": duration,
                "throughput_rps": requests / duration,
                "latency": self._percentiles(wall),
                # Honest latency breakdown: time spent waiting for admission
                # + coalescing vs time inside the batch execution itself.
                "queue_wait": self._percentiles(queue_waits),
                "execution": self._percentiles(exec_latencies),
            },
            "adaptive": {
                "enabled": self._adaptive,
                "p99_target_ms": None if self.p99_target_s is None
                else self.p99_target_s * 1e3,
                "decisions": decisions,
            },
            "slo": {
                "max_queue": self.max_queue,
                "queue_depth": self._admission.depth(),
                "shed_queue_full": shed["shed_queue_full"],
                "shed_expired": shed["shed_expired"],
                "shed_total": shed["shed_queue_full"] + shed["shed_expired"],
                "cancelled": cancelled,
                "deadline_violations": violations,
            },
        }
        if self._procpool is not None:
            result["process_workers"] = self._procpool.stats()
        return result

    # ------------------------------------------------------------------ lifecycle
    def shutdown(self, wait: bool = True, drain: bool = True) -> None:
        """Stop accepting requests, then stop the workers.

        With ``drain=True`` (default) already-admitted requests are still
        served before the workers exit; with ``drain=False`` the backlog is
        rejected with :class:`ServingError` and only in-flight batches
        finish.  Each worker releases its tracker lease (if any) as it
        exits; with ``wait=False`` that happens asynchronously once the
        queues drain.
        """
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            if not drain:
                self._admission.drain_rejecting(ServingError(
                    "engine shut down (drain=False) before this request "
                    "was served"))
            self._admission.close()
        if wait:
            self._batcher.join()
            for worker in self._workers:
                worker.join()
            self._finalize_pool()
        elif self._procpool is not None or self._owned_bundle is not None:
            threading.Thread(target=self._deferred_finalize, daemon=True,
                             name="repro-serve-finalize").start()
        with self._stats_lock:
            self._stopped_at = time.monotonic()

    def _deferred_finalize(self) -> None:
        self._batcher.join()
        for worker in self._workers:
            worker.join()
        self._finalize_pool()

    def _finalize_pool(self) -> None:
        """Stop the worker processes (if any), unlink every shm segment the
        pool created, and delete the engine-owned temporary bundle."""
        if self._procpool is not None:
            self._procpool.shutdown()
        if self._owned_bundle is not None:
            try:
                os.unlink(self._owned_bundle)
            except OSError:
                pass
            self._owned_bundle = None

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve(module_or_path: Union[CompiledModule, str], *,
          devices: Union[None, int, Sequence[DeviceLike]] = None,
          max_batch: Union[int, str] = 8, timeout_ms: float = 2.0,
          max_queue: int = 1024,
          p99_target_ms: Optional[float] = None,
          adaptive_max_batch: int = 8,
          tracker=None, rpc_key: Optional[str] = None,
          pool: str = "thread") -> InferenceEngine:
    """Start an inference engine over a compiled module or artifact path.

    Parameters
    ----------
    module_or_path:
        A :class:`CompiledModule`, or the path of an artifact bundle written
        by ``module.export(path)`` (loaded with no recompilation).
    devices:
        Device pool to round-robin batches across: a count (``2`` means
        ``gpu:0`` and ``gpu:1`` for a GPU module), an explicit list of
        devices / specs (``["gpu:0", "gpu:1"]``), or ``None`` for one device.
    max_batch / timeout_ms:
        Dynamic batching knobs: coalesce up to ``max_batch`` requests,
        waiting at most ``timeout_ms`` after the first request for the batch
        to fill.  ``max_batch="adaptive"`` replaces the fixed limit with a
        cost-model-driven policy: each batch's size limit is chosen to
        maximise estimated goodput given the current queue depth and the
        waiting requests' deadline headroom (capped at
        ``adaptive_max_batch``), so a lone request under light load
        dispatches immediately instead of idling out the coalescing window.
        With an integer ``max_batch`` the static path is byte-for-byte the
        pre-adaptive behaviour.
    p99_target_ms / adaptive_max_batch:
        Adaptive-policy knobs: candidate batch sizes whose estimated
        per-batch latency exceeds ``p99_target_ms`` are never chosen
        (except size one), and ``adaptive_max_batch`` caps the chosen size.
    max_queue:
        Admission-queue bound: beyond this many queued requests the engine
        sheds load (expired first, then lowest-priority/newest) instead of
        queueing unboundedly; see :meth:`InferenceEngine.submit`.
    tracker / rpc_key:
        Lease each worker's device exclusively from an
        :class:`~repro.runtime.rpc.Tracker` pool (the paper's remote device
        pool), releasing the leases on shutdown.
    pool:
        ``"thread"`` (default) runs one worker thread + Executor per device;
        ``"process"`` runs one worker *process* per device over a
        shared-memory parameter arena (true parallelism outside the GIL;
        outputs stay bit-identical).  Incompatible with ``tracker=``.
    """
    bundle_path: Optional[str] = None
    if isinstance(module_or_path, CompiledModule):
        module = module_or_path
    else:
        from .artifact import load_module

        module = load_module(module_or_path)
        # Process workers can boot straight from the caller's bundle — no
        # re-export needed.
        bundle_path = str(module_or_path)
    return InferenceEngine(module, devices=devices, max_batch=max_batch,
                           timeout_ms=timeout_ms, max_queue=max_queue,
                           p99_target_ms=p99_target_ms,
                           adaptive_max_batch=adaptive_max_batch,
                           tracker=tracker, rpc_key=rpc_key, pool=pool,
                           bundle_path=bundle_path)
