"""Chaos benchmark: serving and tuning under deterministic fault injection.

Runs the serving engine and the distributed tuning service through a seeded
:class:`repro.faults.FaultPlan` (worker SIGKILLs, torn/dropped frames, slow
RPC replies, transient connection refusals, a service killed mid-run) and
enforces the robustness contract as hard gates, writing
``BENCH_chaos.json`` next to this file:

* **zero hung futures** — every submitted request resolves or raises a
  *typed* error within the timeout; no caller is ever left blocked;
* **bit-identical survivors** — every response that does arrive is
  byte-for-byte equal to the fault-free run (kills and retries never
  corrupt or duplicate work);
* **bounded shedding** — only requests with deliberately tight deadlines
  (plus the explicitly cancelled ones) may be shed; overall failure rate
  stays under 50% even while workers are being SIGKILLed;
* **degraded tuning is exact** — a tuning session whose service dies
  mid-run (while frames are being dropped and replies stalled) completes
  with a report bit-identical to tuning with no service at all;
* **no leaks** — no ``/dev/shm`` segment, no stray thread, and no
  installed fault plan survives the run.

Usage::

    python benchmarks/bench_chaos.py            # full run
    python benchmarks/bench_chaos.py --smoke    # CI-sized (same gates)
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import sys
import threading
import time
from pathlib import Path

import numpy as np

import repro
from repro.autotvm import TuningOptions
from repro.autotvm.service import TuningService, connect
from repro.faults import FaultPlan, FaultSpec, active_plan
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import (DeadlineExceeded, Executor, InferenceEngine,
                           QueueFull, RequestCancelled, ServingError)
from repro.runtime.procpool import leaked_segments

from common import emit_summary

DEFAULT_OUTPUT = Path(__file__).resolve().parent / "BENCH_chaos.json"

RESULT_TIMEOUT_S = 180.0       #: per-future bound; anything slower is "hung"
TYPED_ERRORS = (DeadlineExceeded, QueueFull, RequestCancelled, ServingError,
                RuntimeError)


def _small_cnn():
    b = ModelBuilder("chaos-cnn", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


def _tuning_fingerprint(report) -> str:
    rows = {r.task_name: (r.best_config.index, r.estimate, tuple(r.curve))
            for r in report}
    return hashlib.sha256(
        json.dumps({k: list(map(repr, v)) for k, v in sorted(rows.items())},
                   sort_keys=True).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Scenario 1: serving under worker kills + torn pipe frames
# ---------------------------------------------------------------------------

def run_serve_chaos(module, n_requests: int) -> dict:
    rng = np.random.default_rng(0)
    inputs = [rng.random((1, 3, 16, 16)).astype("float32")
              for _ in range(n_requests)]
    solo = Executor(module)
    reference = [solo.run({"data": x}).outputs[0] for x in inputs]

    tight = set(range(7, n_requests, 8))       #: sacrificial 1ms deadlines
    to_cancel = {3, n_requests - 2} - tight

    plan = FaultPlan(seed=7, faults=[
        FaultSpec("worker_kill", at=[1, 4], max_count=2,
                  match={"pool": "repro-serve-pool"}),
        FaultSpec("frame_truncate", protocol="RPP1", after=6, max_count=2),
    ])
    engine = InferenceEngine(module, devices=2, max_batch=4, timeout_ms=50,
                             max_queue=256, pool="process")
    futures = []
    try:
        with plan:
            for i, x in enumerate(inputs):
                deadline_ms = 1.0 if i in tight else 120_000.0
                futures.append(engine.submit(
                    data=x, deadline_ms=deadline_ms, priority=i % 3))
            cancelled = sum(futures[i].cancel() for i in to_cancel)
            outcomes = []
            for future in futures:
                try:
                    outcomes.append(future.result(RESULT_TIMEOUT_S))
                except TimeoutError:
                    outcomes.append("HUNG")
                except TYPED_ERRORS as exc:
                    outcomes.append(exc)
                except BaseException as exc:  # noqa: BLE001 — gate: untyped
                    outcomes.append(("UNTYPED", exc))
    finally:
        engine.shutdown()

    hung = sum(1 for o in outcomes if o == "HUNG")
    untyped = sum(1 for o in outcomes
                  if isinstance(o, tuple) and o and o[0] == "UNTYPED")
    mismatched = resolved = failed = 0
    for i, outcome in enumerate(outcomes):
        if isinstance(outcome, list):
            resolved += 1
            if not np.array_equal(outcome[0], reference[i]):
                mismatched += 1
        elif isinstance(outcome, BaseException):
            failed += 1
    stats = engine.stats()
    respawns = sum(w["respawns"] for w in stats.get("process_workers", []))
    failure_rate = (n_requests - resolved) / n_requests
    gates = {
        "zero_hung_futures": hung == 0,
        "zero_untyped_errors": untyped == 0,
        "survivors_bit_identical": mismatched == 0,
        "failure_rate_bounded": failure_rate <= 0.5,
        "faults_actually_fired": plan.total_injected() >= 1,
        "killed_workers_respawned": respawns >= 1,
    }
    return {
        "scenario": "serve-chaos",
        "requests": n_requests,
        "tight_deadlines": len(tight),
        "cancelled": cancelled,
        "resolved": resolved,
        "failed_typed": failed,
        "hung": hung,
        "untyped_errors": untyped,
        "mismatched_outputs": mismatched,
        "failure_rate": round(failure_rate, 4),
        "respawns": respawns,
        "slo": stats["slo"],
        "fault_plan": plan.stats(),
        "gates": gates,
        "passed": all(gates.values()),
    }


# ---------------------------------------------------------------------------
# Scenario 2: tuning while the service degrades and then dies
# ---------------------------------------------------------------------------

def run_tune_chaos(model, trials: int, kill_after_s: float) -> dict:
    options = dict(trials=trials, seed=0, batch_size=4)
    local = repro.autotune(model, target=cuda(),
                           options=TuningOptions(**options))
    local_fp = _tuning_fingerprint(local)

    service = TuningService().start()
    # A client with tight timeouts keeps dropped frames cheap; the session
    # borrows it (TuningOptions accepts a connected ServiceClient).
    client = connect(service.address, timeout=5.0, rpc_timeout=1.0,
                     rpc_retries=2, connect_retries=2,
                     backoff_s=0.02, backoff_max_s=0.1)
    killer = threading.Timer(kill_after_s, service.stop)
    plan = FaultPlan(seed=11, faults=[
        FaultSpec("frame_drop", protocol="RTS1", probability=0.25,
                  max_count=3),
        FaultSpec("slow_response", delay_s=0.5, after=2, max_count=2),
    ])
    start = time.perf_counter()
    try:
        killer.start()
        with plan:
            chaos = repro.autotune(model, target=cuda(),
                                   options=TuningOptions(service=client,
                                                         **options))
    finally:
        killer.cancel()
        killer.join()
        service.stop()
        client_stats = client.client_stats()
        client.close()
    elapsed = time.perf_counter() - start
    chaos_fp = _tuning_fingerprint(chaos)
    gates = {
        "completed_despite_faults": True,
        "bit_identical_to_local": chaos_fp == local_fp,
        "faults_actually_fired": plan.total_injected() >= 1,
    }
    return {
        "scenario": "tune-chaos",
        "trials": trials,
        "service_killed_after_s": kill_after_s,
        "chaos_elapsed_s": round(elapsed, 2),
        "local_fingerprint": local_fp[:16],
        "chaos_fingerprint": chaos_fp[:16],
        "client": client_stats,
        "fault_plan": plan.stats(),
        "gates": gates,
        "passed": all(gates.values()),
    }


# ---------------------------------------------------------------------------
# Scenario 3: transient connection refusals on the way to the service
# ---------------------------------------------------------------------------

def run_reconnect_chaos() -> dict:
    plan = FaultPlan(seed=3, faults=[FaultSpec("connect_refused",
                                               max_count=2)])
    with TuningService() as service:
        with plan:
            client = connect(service.address, connect_retries=3,
                             backoff_s=0.02, backoff_max_s=0.1)
        server_connections = client.stats()["connections"]
        client.close()
    gates = {
        "refusals_injected": plan.total_injected() == 2,
        "connected_after_refusals": server_connections >= 1,
    }
    return {
        "scenario": "connect-chaos",
        "refusals": plan.total_injected(),
        "server_connections": server_connections,
        "gates": gates,
        "passed": all(gates.values()),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run (fewer requests/trials, same "
                             "gates); writes BENCH_chaos_smoke.json")
    parser.add_argument("--requests", type=int, default=None,
                        help="serving requests (default 48; 16 with --smoke)")
    parser.add_argument("--trials", type=int, default=None,
                        help="tuning trials per task (default 10; 6 with "
                             "--smoke)")
    parser.add_argument("--budget", type=float, default=None,
                        help="fail if the run exceeds this many seconds "
                             "(default 420 with --smoke)")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)
    n_requests = args.requests or (16 if args.smoke else 48)
    trials = args.trials or (6 if args.smoke else 10)
    budget = args.budget or (420.0 if args.smoke else None)
    output = args.output or (DEFAULT_OUTPUT.with_name("BENCH_chaos_smoke.json")
                             if args.smoke else DEFAULT_OUTPUT)

    threads_before = {t.name for t in threading.enumerate()}
    suite_start = time.perf_counter()
    model = _small_cnn()
    print("Compiling the chaos workload ...")
    module = repro.compile(_small_cnn(), target=cuda())

    print(f"serve-chaos: {n_requests} requests, 2 worker processes, "
          f"SIGKILLs + torn RPP1 frames ...")
    scenarios = [run_serve_chaos(module, n_requests)]
    print(f"  resolved {scenarios[-1]['resolved']}/{n_requests}, "
          f"hung {scenarios[-1]['hung']}, respawns "
          f"{scenarios[-1]['respawns']}, injected "
          f"{scenarios[-1]['fault_plan']['total_injected']}")

    print(f"tune-chaos: {trials} trials/task, dropped RTS1 frames + stalled "
          f"replies + service killed mid-run ...")
    scenarios.append(run_tune_chaos(model, trials, kill_after_s=0.75))
    print(f"  fingerprints {'match' if scenarios[-1]['gates']['bit_identical_to_local'] else 'DIFFER'}, "
          f"injected {scenarios[-1]['fault_plan']['total_injected']}, "
          f"rpc_failures {scenarios[-1]['client']['rpc_failures']}")

    print("connect-chaos: transient ECONNREFUSED x2 on a fresh client ...")
    scenarios.append(run_reconnect_chaos())
    print(f"  refused {scenarios[-1]['refusals']}x, then connected")

    # ----------------------------------------------------------------- audits
    leaked = leaked_segments()
    lingering = []
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        lingering = sorted({t.name for t in threading.enumerate()}
                           - threads_before)
        if not lingering:
            break
        time.sleep(0.05)
    audits = {
        "scenario": "audits",
        "gates": {
            "no_shm_leaks": not leaked,
            "no_thread_leaks": not lingering,
            "no_plan_left_installed": active_plan() is None,
        },
        "leaked_segments": leaked,
        "lingering_threads": lingering,
        "passed": None,
    }
    audits["passed"] = all(audits["gates"].values())
    scenarios.append(audits)

    elapsed = time.perf_counter() - suite_start
    passed = all(s["passed"] for s in scenarios)
    results = {
        "suite": "chaos",
        "smoke": bool(args.smoke),
        "requests": n_requests,
        "trials": trials,
        "python": platform.python_version(),
        "scenarios": scenarios,
        "elapsed_s": round(elapsed, 2),
        "passed": passed,
    }
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nWrote {output}")
    for scenario in scenarios:
        flags = "".join(f"\n    {name}: {'PASS' if ok else 'FAIL'}"
                        for name, ok in scenario["gates"].items())
        print(f"{scenario['scenario']}: "
              f"{'PASS' if scenario['passed'] else 'FAIL'}{flags}")
    emit_summary("chaos", {
        "requests": n_requests,
        "trials": trials,
        "serve_resolved": scenarios[0]["resolved"],
        "serve_hung": scenarios[0]["hung"],
        "serve_respawns": scenarios[0]["respawns"],
        "tune_bit_identical": scenarios[1]["gates"]["bit_identical_to_local"],
        "faults_injected": sum(
            s.get("fault_plan", {}).get("total_injected", 0)
            for s in scenarios),
        "passed": passed,
        "elapsed_s": round(elapsed, 1),
    })

    if not passed:
        print("FAIL: chaos gate not met", file=sys.stderr)
        return 1
    if budget is not None and elapsed > budget:
        print(f"FAIL: exceeded wall-clock budget ({elapsed:.1f}s > "
              f"{budget:.0f}s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
