"""Single-kernel workloads from Table 2 of the paper.

C1-C12 are all conv2d operators appearing in ResNet-18; D1-D9 are all
depthwise conv2d operators appearing in MobileNet.  All operators use "SAME"
padding and depthwise operators have channel multiplier 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Conv2DWorkload", "DepthwiseWorkload", "RESNET_CONV_WORKLOADS",
           "MOBILENET_DEPTHWISE_WORKLOADS", "all_workloads"]


@dataclass(frozen=True)
class Conv2DWorkload:
    """One row of Table 2 (conv2d section)."""

    name: str
    height: int
    width: int
    in_channels: int
    out_channels: int
    kernel: int
    stride: int

    @property
    def padding(self) -> int:
        """'SAME' padding for the given kernel size."""
        return self.kernel // 2

    @property
    def gflops(self) -> float:
        out_h = (self.height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (self.width + 2 * self.padding - self.kernel) // self.stride + 1
        return (2.0 * out_h * out_w * self.out_channels * self.in_channels
                * self.kernel * self.kernel) / 1e9


@dataclass(frozen=True)
class DepthwiseWorkload:
    """One row of Table 2 (depthwise conv2d section)."""

    name: str
    height: int
    width: int
    channels: int
    kernel: int
    stride: int

    @property
    def padding(self) -> int:
        return self.kernel // 2

    @property
    def gflops(self) -> float:
        out_h = (self.height + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (self.width + 2 * self.padding - self.kernel) // self.stride + 1
        return (2.0 * out_h * out_w * self.channels * self.kernel * self.kernel) / 1e9


#: Table 2, upper half: all conv2d operators in ResNet-18.
RESNET_CONV_WORKLOADS: List[Conv2DWorkload] = [
    Conv2DWorkload("C1", 224, 224, 3, 64, 7, 2),
    Conv2DWorkload("C2", 56, 56, 64, 64, 3, 1),
    Conv2DWorkload("C3", 56, 56, 64, 64, 1, 1),
    Conv2DWorkload("C4", 56, 56, 64, 128, 3, 2),
    Conv2DWorkload("C5", 56, 56, 64, 128, 1, 2),
    Conv2DWorkload("C6", 28, 28, 128, 128, 3, 1),
    Conv2DWorkload("C7", 28, 28, 128, 256, 3, 2),
    Conv2DWorkload("C8", 28, 28, 128, 256, 1, 2),
    Conv2DWorkload("C9", 14, 14, 256, 256, 3, 1),
    Conv2DWorkload("C10", 14, 14, 256, 512, 3, 2),
    Conv2DWorkload("C11", 14, 14, 256, 512, 1, 2),
    Conv2DWorkload("C12", 7, 7, 512, 512, 3, 1),
]

#: Table 2, lower half: all depthwise conv2d operators in MobileNet.
MOBILENET_DEPTHWISE_WORKLOADS: List[DepthwiseWorkload] = [
    DepthwiseWorkload("D1", 112, 112, 32, 3, 1),
    DepthwiseWorkload("D2", 112, 112, 64, 3, 2),
    DepthwiseWorkload("D3", 56, 56, 128, 3, 1),
    DepthwiseWorkload("D4", 56, 56, 128, 3, 2),
    DepthwiseWorkload("D5", 28, 28, 256, 3, 1),
    DepthwiseWorkload("D6", 28, 28, 256, 3, 2),
    DepthwiseWorkload("D7", 14, 14, 512, 3, 1),
    DepthwiseWorkload("D8", 14, 14, 512, 3, 2),
    DepthwiseWorkload("D9", 7, 7, 1024, 3, 1),
]


def all_workloads() -> Dict[str, object]:
    """Name -> workload mapping for every Table 2 entry."""
    table: Dict[str, object] = {}
    for workload in RESNET_CONV_WORKLOADS:
        table[workload.name] = workload
    for workload in MOBILENET_DEPTHWISE_WORKLOADS:
        table[workload.name] = workload
    return table
