"""End-to-end graph compilation (the ``t.compiler.build`` call in Section 2).

``build`` applies the high-level graph optimizations (constant folding,
operator fusion, data layout selection, static memory planning), then
generates one compiled kernel per fused group: a NumPy executor closure for
the functional semantics plus an estimated latency on the chosen target from
the operator-level compiler.  The result is a deployable module executed by
:class:`repro.runtime.graph_executor.GraphExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..autotvm.database import TuningDatabase
from ..hardware.target import Target
from .ir import Graph, Node
from .op_timing import estimate_node_time
from .ops import OP_REGISTRY
from .passes import FusedGroup, MemoryPlan, alter_layout, fold_constants, fuse_ops, plan_memory
from .simplify import simplify_inference

__all__ = ["CompiledKernel", "CompiledModule", "build"]


@dataclass
class CompiledKernel:
    """One fused group compiled for the target."""

    group: FusedGroup
    time_seconds: float
    device: str

    @property
    def name(self) -> str:
        return self.group.name

    def run(self, tensors: Dict[str, np.ndarray]) -> None:
        """Execute the group's operators with NumPy semantics.

        ``tensors`` maps node names to arrays; results are stored back by
        node name.
        """
        for node in self.group.nodes:
            inputs = [tensors[p.name] for p in node.inputs]
            spec = OP_REGISTRY[node.op]
            tensors[node.name] = spec.compute(*inputs, node.attrs)


@dataclass
class CompiledModule:
    """A deployable module: optimized graph + kernels + parameters."""

    graph: Graph
    kernels: List[CompiledKernel]
    params: Dict[str, np.ndarray]
    target: Target
    memory_plan: MemoryPlan
    opt_level: int
    layout_transforms: int = 0

    @property
    def total_time(self) -> float:
        return sum(k.time_seconds for k in self.kernels)

    def time_by_operator(self) -> Dict[str, float]:
        """Aggregate estimated time per operator type (for breakdowns)."""
        breakdown: Dict[str, float] = {}
        for kernel in self.kernels:
            op = kernel.group.master.op
            breakdown[op] = breakdown.get(op, 0.0) + kernel.time_seconds
        return breakdown

    def __repr__(self) -> str:
        return (f"CompiledModule(target={self.target.name}, kernels={len(self.kernels)}, "
                f"est_time={self.total_time * 1e3:.3f} ms)")


def _framework_overhead(target: Target) -> float:
    """Per-kernel dispatch overhead of the TVM runtime (small)."""
    return 2e-6


def build(graph: Graph, target: Target, params: Dict[str, np.ndarray],
          opt_level: int = 2, tuning_db: Optional[TuningDatabase] = None,
          heterogeneous_targets: Optional[Dict[str, Target]] = None
          ) -> Tuple[Graph, CompiledModule, Dict[str, np.ndarray]]:
    """Compile a computational graph for a target.

    Parameters mirror the paper's ``compiler.build(graph, target, params)``.

    ``opt_level`` controls graph rewriting: 0 disables fusion and constant
    folding ("TVM w/o graph opt" in the evaluation), 1 enables constant
    folding, 2 additionally enables operator fusion and layout selection.

    ``heterogeneous_targets`` optionally maps operator names to a different
    target (used for the CPU+FPGA offloading experiment, Figure 21).
    """
    input_shapes = {n.name: n.shape for n in graph.input_nodes if n.shape is not None}
    graph.infer_shapes(input_shapes)

    layout_transforms = 0
    if opt_level >= 1:
        graph, params = fold_constants(graph, params)
        graph.infer_shapes(input_shapes)
    if opt_level >= 2:
        graph, params, _folded_bns = simplify_inference(graph, params)
        graph.infer_shapes(input_shapes)
        graph, layout_transforms = alter_layout(graph, target.device_type)
        graph.infer_shapes(input_shapes)

    groups = fuse_ops(graph, enabled=opt_level >= 2)
    memory_plan = plan_memory(graph)

    kernels: List[CompiledKernel] = []
    for group in groups:
        node_target = target
        if heterogeneous_targets and group.master.op in heterogeneous_targets:
            node_target = heterogeneous_targets[group.master.op]
        master_time = estimate_node_time(group.master, node_target,
                                         tuning_db=tuning_db, fused=False)
        fused_time = sum(
            estimate_node_time(node, node_target, tuning_db=tuning_db, fused=True)
            for node in group.nodes if node is not group.master)
        total = master_time + fused_time + _framework_overhead(node_target)
        kernels.append(CompiledKernel(group, total, node_target.name))

    module = CompiledModule(graph, kernels, params, target, memory_plan,
                            opt_level, layout_transforms)
    return graph, module, params
