"""Tests for the candidate-evaluation fast path (PR 3).

Covers the shared lowering/featurisation LRU service on :class:`Task`, its
transparency (same results with a warm cache as from a cold start), the
vectorized cost models' bit-equality against their retained reference
implementations, and the batch scoring APIs.
"""

import math
import threading

import numpy as np
import pytest

from repro import autotvm, tir
from repro.autotvm import (
    FEATURE_CACHE,
    LOWERED_CACHE,
    GradientBoostedTrees,
    LocalMeasurer,
    MeasureInput,
    ModelBasedTuner,
    RegressionTree,
    clear_eval_caches,
    configure_eval_caches,
    eval_cache_stats,
)
from repro.autotvm.eval_cache import LRUCache
from repro.graph import clear_timing_cache
from repro.graph.ir import Graph, Node
from repro.graph.op_timing import fallback_search, kernel_time, make_task_for_node
from repro.graph.ops import OP_REGISTRY
from repro.hardware import arm_cpu, cuda
from repro.tir.analysis import FEATURE_NAMES


def conv_graph(ci=16, hw=16, co=16, kernel=3, stride=1, padding=1):
    data = Node("null", "data")
    data.shape = (1, ci, hw, hw)
    data.dtype = "float32"
    weight = Node("null", "weight")
    weight.shape = (co, ci, kernel, kernel)
    weight.dtype = "float32"
    conv = Node("conv2d", "conv", [data, weight],
                {"strides": stride, "padding": padding})
    conv.dtype = "float32"
    conv.shape = OP_REGISTRY["conv2d"].infer_shape(
        [data.shape, weight.shape], conv.attrs)
    return Graph([conv])


@pytest.fixture
def fresh_caches():
    clear_timing_cache()
    yield
    clear_timing_cache()


@pytest.fixture
def small_task(fresh_caches):
    task, = autotvm.extract_tasks(conv_graph(), cuda())
    return task


# ---------------------------------------------------------------------------
# The LRU cache itself
# ---------------------------------------------------------------------------

class TestLRUCache:
    def test_put_get_and_stats(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert len(cache) == 1 and "a" in cache

    def test_evicts_one_least_recently_used_entry(self):
        cache = LRUCache(3)
        for key in "abc":
            cache.put(key, key.upper())
        cache.get("a")                   # refresh a; b is now the oldest
        cache.put("d", "D")
        assert "b" not in cache          # single-entry eviction, not a wipe
        assert all(k in cache for k in "acd")
        assert len(cache) == 3

    def test_resize_and_disable(self):
        cache = LRUCache(8)
        for i in range(8):
            cache.put(i, i)
        cache.resize(2)
        assert len(cache) == 2
        assert cache.get(7) == 7         # newest entries survive
        cache.resize(0)
        cache.put("x", 1)
        assert "x" not in cache          # maxsize 0 disables caching

    def test_thread_safety_smoke(self):
        cache = LRUCache(64)

        def worker(base):
            for i in range(500):
                cache.put((base, i % 80), i)
                cache.get((base, (i * 7) % 80))

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 64


# ---------------------------------------------------------------------------
# Task-level memoized service
# ---------------------------------------------------------------------------

class TestTaskEvalCache:
    def test_features_match_direct_lowering(self, small_task):
        config = small_task.config_space.get(3)
        direct = tir.extract_features(small_task.lower(config))
        cached = small_task.features_of(3)
        assert direct.to_vector() == cached.to_vector()
        assert direct.total_flops == cached.total_flops

    def test_second_read_is_a_hit(self, small_task):
        small_task.features_of(5)
        before = eval_cache_stats()["features"]["hits"]
        small_task.features_of(5)
        assert eval_cache_stats()["features"]["hits"] == before + 1

    def test_shared_across_task_instances(self, small_task):
        twin, = autotvm.extract_tasks(conv_graph(), cuda())
        assert twin is not small_task and twin.name == small_task.name
        small_task.features_of(2)
        misses = eval_cache_stats()["features"]["misses"]
        twin.features_of(2)              # same workload+target+index: a hit
        assert eval_cache_stats()["features"]["misses"] == misses

    def test_same_name_different_args_do_not_collide(self, fresh_caches):
        from repro.autotvm import create_task
        from repro.topi import nn as topi_nn
        from repro.topi.schedules import gpu as gpu_sched
        from repro import te

        def matmul_template(cfg, m, n, k):
            a = te.placeholder((m, k), name="A")
            b = te.placeholder((k, n), name="B")
            c = topi_nn.matmul(a, b)
            return gpu_sched.matmul_gpu_template(cfg, a, b, c)

        small = create_task("clash", matmul_template, (8, 8, 8), cuda())
        large = create_task("clash", matmul_template, (64, 64, 64), cuda())
        assert small.flop != large.flop
        assert small.features_of(0).total_flops \
            != large.features_of(0).total_flops

    def test_different_names_same_workload_share_entries(self, fresh_caches):
        # Cache keys are normalised on the *workload* (template identity +
        # args + target), not the task name, so identically-shaped tasks
        # registered under different names share one lowering/featurisation.
        from repro.autotvm import create_task
        from repro.topi import nn as topi_nn
        from repro.topi.schedules import gpu as gpu_sched
        from repro import te

        def matmul_template(cfg, m, n, k):
            a = te.placeholder((m, k), name="A")
            b = te.placeholder((k, n), name="B")
            c = topi_nn.matmul(a, b)
            return gpu_sched.matmul_gpu_template(cfg, a, b, c)

        alpha = create_task("alpha_mm", matmul_template, (8, 8, 8), cuda())
        beta = create_task("beta_mm", matmul_template, (8, 8, 8), cuda())
        assert alpha.name != beta.name
        assert alpha.workload == beta.workload
        alpha.features_of(1)
        stats = eval_cache_stats()
        misses = stats["features"]["misses"]
        hits = stats["features"]["hits"]
        beta.features_of(1)              # different name, same workload: hit
        stats = eval_cache_stats()
        assert stats["features"]["misses"] == misses
        assert stats["features"]["hits"] == hits + 1

    def test_cached_failure_traceback_does_not_grow(self, small_task):
        original = small_task.template
        small_task.template = lambda cfg, *args: (_ for _ in ()).throw(
            RuntimeError("nope"))
        try:
            lengths = []
            for _ in range(3):
                try:
                    small_task.features_of(9)
                except RuntimeError as exc:
                    depth = 0
                    tb = exc.__traceback__
                    while tb is not None:
                        depth += 1
                        tb = tb.tb_next
                    lengths.append(depth)
            assert len(set(lengths)) == 1, f"traceback grew: {lengths}"
        finally:
            small_task.template = original

    def test_lowered_memoized(self, small_task):
        func_a = small_task.lowered(1)
        func_b = small_task.lowered(1)
        assert func_a is func_b
        assert isinstance(func_a, tir.LoweredFunc)

    def test_flop_computed_once_and_stable(self, small_task):
        flop_first = small_task.flop
        misses = eval_cache_stats()["lowered"]["misses"]
        for _ in range(10):
            assert small_task.flop == flop_first
        assert eval_cache_stats()["lowered"]["misses"] == misses
        assert flop_first > 0

    def test_failure_cached_and_replayed(self, small_task):
        original = small_task.template

        calls = {"n": 0}

        def exploding(cfg, *args):
            calls["n"] += 1
            raise RuntimeError("no schedule for you")

        small_task.template = exploding
        try:
            with pytest.raises(RuntimeError, match="no schedule for you"):
                small_task.features_of(7)
            with pytest.raises(RuntimeError, match="no schedule for you"):
                small_task.features_of(7)
            assert calls["n"] == 1       # the failing lowering ran only once
        finally:
            small_task.template = original

    def test_configure_eval_caches(self, fresh_caches):
        configure_eval_caches(features=10, lowered=5)
        try:
            assert FEATURE_CACHE.maxsize == 10
            assert LOWERED_CACHE.maxsize == 5
        finally:
            configure_eval_caches(features=50_000, lowered=2_048)

    def test_clear_shared_features_alias(self, small_task):
        small_task.features_of(0)
        assert len(FEATURE_CACHE) > 0
        ModelBasedTuner.clear_shared_features()
        assert len(FEATURE_CACHE) == 0 and len(LOWERED_CACHE) == 0


# ---------------------------------------------------------------------------
# Cache transparency: warm caches must never change results
# ---------------------------------------------------------------------------

class TestCacheTransparency:
    def test_kernel_time_identical_cold_vs_warm(self, fresh_caches):
        graph = conv_graph()
        node = graph.op_nodes[-1]
        target = cuda()
        cold = kernel_time(node, target)
        warm = kernel_time(node, target)                 # memoised estimate
        clear_timing_cache()
        recold = kernel_time(node, target)               # fully recomputed
        assert cold == warm == recold

    def test_fallback_search_identical_cold_vs_warm(self, fresh_caches):
        graph = conv_graph()
        node = graph.op_nodes[-1]
        target = arm_cpu()
        task = make_task_for_node(node, target)
        first = fallback_search(task, target, n_random=12, climb_rounds=2, seed=3)
        warm = fallback_search(task, target, n_random=12, climb_rounds=2, seed=3)
        clear_timing_cache()
        fresh_task = make_task_for_node(node, target)
        fresh = fallback_search(fresh_task, target, n_random=12,
                                climb_rounds=2, seed=3)
        assert first == warm == fresh

    def test_tuning_results_identical_cold_vs_warm(self, fresh_caches):
        def run_session():
            report = autotvm.autotune(conv_graph(), cuda(), trials=16,
                                      tuner="model")
            result, = report.results
            return (result.best_config.index, tuple(result.curve),
                    result.best_time)

        cold = run_session()
        warm = run_session()             # shared caches fully primed
        clear_timing_cache()
        recold = run_session()
        assert cold == warm == recold

    def test_measurer_results_identical_cold_vs_warm(self, small_task):
        inputs = [MeasureInput(small_task, cfg)
                  for cfg in small_task.config_space.sample(4)]
        measurer = LocalMeasurer(number=2, seed=0)
        cold = [(r.mean_time, r.error) for r in measurer.measure(inputs)]
        warm = [(r.mean_time, r.error) for r in measurer.measure(inputs)]
        clear_timing_cache()
        recold = [(r.mean_time, r.error) for r in measurer.measure(inputs)]
        assert cold == warm == recold


# ---------------------------------------------------------------------------
# Vectorized cost models vs retained references
# ---------------------------------------------------------------------------

class TestVectorizedCostModels:
    @pytest.mark.parametrize("loss", ["rank", "reg"])
    def test_gbt_bit_identical_to_reference(self, loss):
        rng = np.random.default_rng(11)
        for trial in range(6):
            n = int(rng.integers(8, 120))
            d = int(rng.integers(3, 48))
            x = rng.normal(size=(n, d))
            if trial % 2:
                x = np.round(x * 2) / 2          # heavy ties
            y = rng.normal(size=n) ** 2
            fast = GradientBoostedTrees(num_rounds=10, loss=loss, seed=trial)
            slow = GradientBoostedTrees(num_rounds=10, loss=loss, seed=trial,
                                        reference=True)
            fast.fit(x, y)
            slow.fit(x, y)
            queries = rng.normal(size=(64, d))
            assert np.array_equal(fast.predict(queries), slow.predict(queries))
            assert np.array_equal(fast.predict(x[0]), slow.predict(x[0]))

    def test_tree_predict_matches_reference_walk(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(80, 12))
        y = rng.normal(size=80)
        tree = RegressionTree(max_depth=5).fit(x, y)
        queries = rng.normal(size=(256, 12))
        assert np.array_equal(tree.predict(queries),
                              tree.predict_reference(queries))

    def test_tree_structure_identical_to_reference_build(self):
        rng = np.random.default_rng(9)
        x = np.round(rng.normal(size=(60, 8)) * 2) / 2
        y = rng.normal(size=60)
        fast = RegressionTree(max_depth=4).fit(x, y)
        slow = RegressionTree(max_depth=4, reference=True).fit(x, y)
        assert fast.tree_ == slow.tree_

    def test_rank_gradient_identical_to_reference(self):
        rng = np.random.default_rng(2)
        y = rng.normal(size=50) ** 2
        pred = rng.normal(size=50)
        fast = GradientBoostedTrees(seed=123)
        slow = GradientBoostedTrees(seed=123, reference=True)
        assert np.array_equal(fast._negative_gradient(y, pred),
                              slow._negative_gradient_reference(y, pred))

    def test_stacked_predict_matches_per_tree_loop(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(40, 10))
        y = rng.normal(size=40) ** 2
        model = GradientBoostedTrees(num_rounds=15, seed=0).fit(x, y)
        queries = rng.normal(size=(128, 10))
        stacked = model.predict(queries)
        model._stacked = None            # force the per-tree fallback loop
        per_tree = model.predict(queries)
        assert np.array_equal(stacked, per_tree)


# ---------------------------------------------------------------------------
# Batch APIs and satellite fixes
# ---------------------------------------------------------------------------

class TestBatchScoring:
    def test_estimate_batch_matches_scalar(self, small_task):
        features = [small_task.features_of(i) for i in range(4)]
        model = small_task.target.model
        batch = model.estimate_batch(features)
        scalar = [model.estimate(f) for f in features]
        assert batch.tolist() == scalar

    def test_estimate_batch_failures_score_inf(self, small_task):
        features = small_task.features_of(0)
        model = small_task.target.model
        batch = model.estimate_batch([features, None])
        assert math.isfinite(batch[0])
        assert math.isinf(batch[1])

    def test_failed_lowering_placeholder_uses_feature_schema(self, small_task):
        tuner = ModelBasedTuner(small_task, seed=0)
        original = small_task.template

        def exploding(cfg, *args):
            raise RuntimeError("boom")

        small_task.template = exploding
        try:
            vector = tuner._features_of(0)
        finally:
            small_task.template = original
        assert vector.shape == (len(FEATURE_NAMES),)
        assert not vector.any()

    def test_flat_index_matches_index_of(self, small_task):
        space = small_task.config_space
        for index in (0, 1, len(space) // 2, len(space) - 1):
            knobs = space.knob_indices(index)
            assert space.flat_index(knobs) == index
            assert space.index_of(dict(zip(space.knob_names, knobs))) == index

    def test_program_features_vector_memoized(self, small_task):
        features = small_task.features_of(0)
        vec_a = features.vector()
        vec_b = features.vector()
        assert vec_a is vec_b
        assert not vec_a.flags.writeable
        assert vec_a.tolist() == features.to_vector()
