"""Simulated hardware back-ends standing in for the paper's physical devices."""

from .base import HardwareModel, HardwareParams, MeasureResult
from .cpu import CPUParams, EmbeddedCPU, arm_a53_params, cortex_a9_params
from .gpu import GPUParams, MobileGPU, ServerGPU, mali_t860_params, titan_x_params
from .target import (
    SCHEDULE_PRIMITIVE_SUPPORT,
    Target,
    arm_cpu,
    create_target,
    cuda,
    known_targets,
    mali,
    pynq_cpu,
    target_from_spec,
    vdla,
)
from .vdla import (
    VDLAAccelerator,
    VDLAInstruction,
    VDLAParams,
    build_instruction_trace,
    pynq_vdla_params,
)

__all__ = [
    "CPUParams",
    "EmbeddedCPU",
    "GPUParams",
    "HardwareModel",
    "HardwareParams",
    "MeasureResult",
    "MobileGPU",
    "SCHEDULE_PRIMITIVE_SUPPORT",
    "ServerGPU",
    "Target",
    "VDLAAccelerator",
    "VDLAInstruction",
    "VDLAParams",
    "arm_a53_params",
    "arm_cpu",
    "build_instruction_trace",
    "cortex_a9_params",
    "create_target",
    "cuda",
    "known_targets",
    "mali",
    "mali_t860_params",
    "pynq_cpu",
    "pynq_vdla_params",
    "target_from_spec",
    "titan_x_params",
    "vdla",
]
