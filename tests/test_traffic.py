"""Tests for repro.runtime.traffic: deterministic trace generation, JSONL
round-trips, and trace replay against the serving engine (satellite #4:
same seed -> byte-identical trace and identical replay outcome counts,
including composed with a FaultPlan from repro.faults)."""

import json

import numpy as np
import pytest

import repro
from repro.faults import FaultPlan, FaultSpec
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import Executor, InferenceEngine
from repro.runtime.traffic import (OUTCOMES, Trace, TraceError, TraceReplayer,
                                   TraceRequest, TraceSpec, load_trace)


def _small_cnn():
    b = ModelBuilder("traffic-small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


@pytest.fixture(scope="module")
def module():
    return repro.compile(_small_cnn(), target=cuda())


# ---------------------------------------------------------------------------
# Spec validation
# ---------------------------------------------------------------------------

class TestTraceSpecValidation:
    def test_rejects_malformed_specs(self):
        good = dict(family="poisson", rate_rps=10.0, duration_s=1.0)
        with pytest.raises(TraceError, match="family"):
            TraceSpec(**{**good, "family": "sawtooth"})
        with pytest.raises(TraceError, match="rate_rps"):
            TraceSpec(**{**good, "rate_rps": 0.0})
        with pytest.raises(TraceError, match="duration_s"):
            TraceSpec(**{**good, "duration_s": -1.0})
        with pytest.raises(TraceError, match="deadline_ms"):
            TraceSpec(**{**good, "deadline_ms": 0.0})
        with pytest.raises(TraceError, match="deadline_jitter"):
            TraceSpec(**{**good, "deadline_ms": 100.0, "deadline_jitter": 1.0})
        with pytest.raises(TraceError, match="priorities"):
            TraceSpec(**{**good, "priorities": ()})
        with pytest.raises(TraceError, match="models"):
            TraceSpec(**{**good, "models": {"a": 0.0}})
        with pytest.raises(TraceError, match="diurnal_amplitude"):
            TraceSpec(**{**good, "family": "diurnal",
                         "diurnal_amplitude": 1.5})
        with pytest.raises(TraceError, match="burst_factor"):
            TraceSpec(**{**good, "family": "burst", "burst_factor": 0.5})
        with pytest.raises(TraceError, match="burst"):
            TraceSpec(**{**good, "family": "burst", "burst_every_s": 0.1,
                         "burst_duration_s": 0.5})
        with pytest.raises(TraceError, match="max_requests"):
            TraceSpec(**{**good, "max_requests": 0})


# ---------------------------------------------------------------------------
# Generation
# ---------------------------------------------------------------------------

class TestTraceGeneration:
    def test_same_seed_is_byte_identical(self):
        spec = TraceSpec(family="burst", rate_rps=80.0, duration_s=2.0,
                         seed=42, deadline_ms=100.0, deadline_jitter=0.2,
                         priorities=(0, 1, 5),
                         models={"resnet-18": 3.0, "mobilenet": 1.0})
        assert spec.generate().to_jsonl() == spec.generate().to_jsonl()

    def test_different_seed_differs(self):
        base = dict(family="poisson", rate_rps=50.0, duration_s=2.0)
        one = TraceSpec(seed=1, **base).generate()
        two = TraceSpec(seed=2, **base).generate()
        assert one.to_jsonl() != two.to_jsonl()

    def test_arrivals_sorted_in_horizon_and_indexed(self):
        trace = TraceSpec(family="diurnal", rate_rps=60.0, duration_s=2.0,
                          seed=3).generate()
        arrivals = [r.arrival_s for r in trace]
        assert arrivals == sorted(arrivals)
        assert all(0.0 <= t < 2.0 for t in arrivals)
        assert [r.index for r in trace] == list(range(len(trace)))

    def test_poisson_count_tracks_rate(self):
        trace = TraceSpec(family="poisson", rate_rps=200.0, duration_s=2.0,
                          seed=7).generate()
        assert 0.8 * 400 <= len(trace) <= 1.2 * 400

    def test_diurnal_concentrates_in_the_high_half(self):
        # period == duration: sin is positive on the first half, negative on
        # the second, so with amplitude 0.9 arrivals pile into the first.
        trace = TraceSpec(family="diurnal", rate_rps=60.0, duration_s=2.0,
                          seed=5, diurnal_period_s=2.0,
                          diurnal_amplitude=0.9).generate()
        first = sum(1 for r in trace if r.arrival_s < 1.0)
        assert first > 2 * (len(trace) - first)

    def test_burst_windows_are_denser(self):
        spec = TraceSpec(family="burst", rate_rps=30.0, duration_s=4.0,
                         seed=9, burst_every_s=1.0, burst_duration_s=0.25,
                         burst_factor=6.0)
        trace = spec.generate()
        in_burst = sum(1 for r in trace
                       if (r.arrival_s % 1.0) < 0.25)
        out_burst = len(trace) - in_burst
        # Burst windows cover 1/4 of the horizon at 6x the rate: they should
        # hold well over half of all arrivals (6/(6+3) = 2/3 in expectation).
        assert in_burst > out_burst

    def test_mixed_models_deadlines_and_priorities(self):
        spec = TraceSpec(family="poisson", rate_rps=150.0, duration_s=2.0,
                         seed=11, deadline_ms=100.0, deadline_jitter=0.3,
                         priorities=(0, 7),
                         models={"a": 3.0, "b": 1.0})
        trace = spec.generate()
        assert trace.model_names() == ["a", "b"]
        counts = {"a": 0, "b": 0}
        for request in trace:
            counts[request.model] += 1
            assert 70.0 <= request.deadline_ms <= 130.0
            assert request.priority in (0, 7)
        assert counts["a"] > counts["b"]
        assert len({r.deadline_ms for r in trace}) > 1
        assert {r.priority for r in trace} == {0, 7}

    def test_max_requests_caps_generation(self):
        trace = TraceSpec(family="poisson", rate_rps=1000.0, duration_s=10.0,
                          seed=1, max_requests=50).generate()
        assert len(trace) == 50


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------

class TestTraceJsonl:
    SPEC = TraceSpec(family="burst", rate_rps=40.0, duration_s=1.0, seed=13,
                     deadline_ms=250.0, priorities=(0, 2),
                     models={"x": 1.0, "y": 2.0})

    def test_save_load_round_trip_is_byte_identical(self, tmp_path):
        trace = self.SPEC.generate()
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = load_trace(path)
        assert loaded.to_jsonl() == trace.to_jsonl()
        assert loaded.spec == trace.spec
        assert loaded.requests == trace.requests

    def test_two_saves_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self.SPEC.generate().save(a)
        self.SPEC.generate().save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_load_rejects_non_trace_files(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with pytest.raises(TraceError, match="empty"):
            Trace.load(empty)
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json at all\n")
        with pytest.raises(TraceError, match="not a trace file"):
            Trace.load(garbage)
        wrong = tmp_path / "wrong.jsonl"
        wrong.write_text(json.dumps({"magic": "NOPE"}) + "\n")
        with pytest.raises(TraceError, match="bad trace header"):
            Trace.load(wrong)


# ---------------------------------------------------------------------------
# Replay (engine-backed)
# ---------------------------------------------------------------------------

def _input_pool(n=4):
    pool = []
    for slot in range(n):
        rng = np.random.default_rng(slot)
        pool.append({"data": rng.random((1, 3, 16, 16)).astype("float32")})
    return pool


class TestReplay:
    def test_replayer_validates_knobs(self, module):
        trace = TraceSpec(family="poisson", rate_rps=5.0, duration_s=0.2,
                          seed=1).generate()
        engine = repro.serve(module, max_batch=1)
        try:
            with pytest.raises(TraceError, match="time_scale"):
                TraceReplayer(engine, trace, time_scale=0.0)
            with pytest.raises(TraceError, match="giveup_ms"):
                TraceReplayer(engine, trace, giveup_ms=0.0)
            with pytest.raises(TraceError, match="input_pool"):
                TraceReplayer(engine, trace, input_pool=0)
        finally:
            engine.shutdown()

    def test_engine_mapping_must_cover_trace_models(self, module):
        trace = TraceSpec(family="poisson", rate_rps=50.0, duration_s=0.5,
                          seed=2, models={"a": 1.0, "b": 1.0}).generate()
        engine = repro.serve(module, max_batch=1)
        try:
            with pytest.raises(TraceError, match="model streams"):
                TraceReplayer({"a": engine}, trace)
        finally:
            engine.shutdown()

    def test_replay_outcomes_deterministic_and_bit_identical(self, module):
        # Generous deadlines on a healthy engine: every request is served,
        # so outcome counts are exactly reproducible run over run, and every
        # served output equals a solo execution of the same input.
        trace = TraceSpec(family="burst", rate_rps=40.0, duration_s=1.0,
                          seed=17, deadline_ms=30_000.0).generate()
        pool = _input_pool()
        solo = Executor(module)
        reference = [[np.asarray(o) for o in solo.run(inputs).outputs]
                     for inputs in pool]

        def run_once():
            engine = repro.serve(module, max_batch=4, timeout_ms=5)
            try:
                replayer = TraceReplayer(
                    engine, trace, store_outputs=True,
                    inputs_for=lambda r: pool[r.index % len(pool)])
                return replayer.replay()
            finally:
                engine.shutdown()

        first, second = run_once(), run_once()
        assert first.counts() == second.counts() == {
            "served": len(trace), "shed": 0, "expired": 0,
            "cancelled": 0, "failed": 0, "hung": 0}
        for report in (first, second):
            for record in report.records:
                assert record["outcome"] in OUTCOMES
                assert record["deadline_met"]
                assert record["wall_ms"] is not None
                assert record["queue_wait_ms"] is not None
                assert record["execute_ms"] is not None
                outs = report.outputs[record["index"]]
                want = reference[record["index"] % len(pool)]
                for got, ref in zip(outs, want):
                    np.testing.assert_array_equal(np.asarray(got), ref)

    def test_report_aggregates(self, module):
        trace = TraceSpec(family="poisson", rate_rps=30.0, duration_s=1.0,
                          seed=19, deadline_ms=30_000.0).generate()
        engine = repro.serve(module, max_batch=4, timeout_ms=5)
        try:
            report = TraceReplayer(engine, trace).replay()
        finally:
            engine.shutdown()
        assert report.served_ok == len(trace)
        assert report.served_late == 0
        assert report.violation_rate == 0.0
        assert report.goodput_rps == pytest.approx(len(trace) / 1.0)
        windows = report.windowed_goodput(0.25)
        assert sum(w["served_ok"] for w in windows) == len(trace)
        assert sum(w["offered"] for w in windows) == len(trace)
        split = report.latency_split_ms()
        assert split["queue_wait_mean_ms"] >= 0.0
        assert split["execute_mean_ms"] > 0.0
        summary = report.summary()
        assert summary["goodput_rps"] == report.goodput_rps
        assert summary["outcomes"] == report.counts()

    def test_giveup_cancels_stuck_requests(self, module):
        import threading

        trace = TraceSpec(family="poisson", rate_rps=30.0, duration_s=0.3,
                          seed=23).generate()
        engine = repro.serve(module, max_batch=1, timeout_ms=1)
        gate = threading.Event()
        entered = threading.Event()
        original = engine._executors[0]._execute

        def gated(inputs):
            entered.set()
            gate.wait(30)
            return original(inputs)

        engine._executors[0]._execute = gated
        try:
            report = TraceReplayer(engine, trace, giveup_ms=50.0,
                                   result_timeout_s=2.0).replay()
        finally:
            gate.set()
            engine.shutdown()
        counts = report.counts()
        # The single device is wedged for the whole replay: exactly the one
        # claimed (hence uncancellable) request is reported hung, everything
        # behind it is given up on and cancelled, and nothing executes.
        assert counts["served"] == 0
        assert counts["hung"] == 1
        assert counts["cancelled"] == len(trace) - 1
        for record in report.records:
            if record["outcome"] == "cancelled":
                assert not record["deadline_met"]

    def test_mixed_model_traces_route_to_their_engines(self, module):
        trace = TraceSpec(family="poisson", rate_rps=60.0, duration_s=0.5,
                          seed=29, models={"a": 1.0, "b": 1.0}).generate()
        engine_a = repro.serve(module, max_batch=2, timeout_ms=5)
        engine_b = repro.serve(module, max_batch=2, timeout_ms=5)
        try:
            report = TraceReplayer({"a": engine_a, "b": engine_b},
                                   trace).replay()
            stats_a, stats_b = engine_a.stats(), engine_b.stats()
        finally:
            engine_a.shutdown()
            engine_b.shutdown()
        assert report.counts()["served"] == len(trace)
        n_a = sum(1 for r in trace if r.model == "a")
        assert stats_a["requests"] == n_a
        assert stats_b["requests"] == len(trace) - n_a


class TestReplayUnderChaos:
    def test_outcome_counts_reproducible_under_fault_plan(self, module):
        # Chaos + traffic compose: a worker kill mid-replay is healed by the
        # pool (respawn + retry), so with generous deadlines both runs still
        # serve everything and the outcome counts stay identical.
        trace = TraceSpec(family="poisson", rate_rps=40.0, duration_s=0.8,
                          seed=31, deadline_ms=60_000.0).generate()
        pool = _input_pool()
        solo = Executor(module)
        reference = [[np.asarray(o) for o in solo.run(inputs).outputs]
                     for inputs in pool]

        def run_once():
            plan = FaultPlan(seed=7, faults=[
                FaultSpec("worker_kill", at=[1], max_count=1,
                          match={"pool": "repro-serve-pool"}),
            ])
            engine = InferenceEngine(module, devices=2, max_batch=4,
                                     timeout_ms=5, max_queue=256,
                                     pool="process")
            try:
                with plan:
                    replayer = TraceReplayer(
                        engine, trace, store_outputs=True,
                        result_timeout_s=180.0,
                        inputs_for=lambda r: pool[r.index % len(pool)])
                    return replayer.replay()
            finally:
                engine.shutdown()

        first, second = run_once(), run_once()
        assert first.counts() == second.counts()
        assert first.counts()["served"] == len(trace)
        assert first.counts()["hung"] == 0
        for report in (first, second):
            for record in report.records:
                outs = report.outputs[record["index"]]
                want = reference[record["index"] % len(pool)]
                for got, ref in zip(outs, want):
                    np.testing.assert_array_equal(np.asarray(got), ref)
