"""Framed, pickle-free message protocol between the pool and its workers.

Every message is one raw byte frame on a ``multiprocessing`` pipe
(``send_bytes``/``recv_bytes`` — the object-pickling layer is never used):

``[4s magic "RPP1"][u8 message type][u32 payload length][payload]``

Framing, payload (de)serialisation, truncation handling and fault injection
all live in the shared :mod:`repro.runtime.framing` codec (the tuning
service's ``RTS1`` protocol rides the same implementation); this module
contributes only the ``RPP1`` magic and the message vocabulary.  The
payload is UTF-8 JSON encoded through the artifact codec, so tuple-valued
fields — e.g. tuning-task workload args, whose ``repr`` seeds deterministic
fallback configs — survive the trip exactly.  Tensors never appear in a
frame: they travel through :class:`~.shm.ShmArena` segments and frames
carry only the arena spec (segment name + slot table).

A peer dying mid-frame surfaces as
:class:`~repro.runtime.framing.TruncatedFrameError` — a
:class:`ProtocolError` naming bytes-expected/bytes-got.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..artifact import _decode_attr, _encode_attr
from ..framing import FrameCodec, ProtocolError, TruncatedFrameError

__all__ = ["MSG", "ProtocolError", "TruncatedFrameError", "send_msg",
           "recv_msg", "encode_value", "decode_value"]

#: refuse absurd frames (tensor data must go through shm, not the pipe)
_MAX_PAYLOAD = 32 * 1024 * 1024


class MSG:
    """Message types (u8 on the wire)."""

    HELLO = 1       #: worker -> pool: boot complete (pid, boot timing)
    PING = 2        #: pool -> worker: heartbeat probe
    PONG = 3        #: worker -> pool: heartbeat reply
    EXEC = 4        #: pool -> worker: execute a batch (arena spec + layout)
    RESULT = 5      #: worker -> pool: batch done (per-request status, timings)
    MEASURE = 6     #: pool -> worker: measure tuning configs (task def inline)
    MEASURED = 7    #: worker -> pool: measured times (floats, no features)
    SHUTDOWN = 8    #: pool -> worker: exit cleanly
    BYE = 9         #: worker -> pool: acknowledging shutdown
    ERROR = 10      #: worker -> pool: request failed (message + traceback)

    _NAMES = {1: "HELLO", 2: "PING", 3: "PONG", 4: "EXEC", 5: "RESULT",
              6: "MEASURE", 7: "MEASURED", 8: "SHUTDOWN", 9: "BYE",
              10: "ERROR"}

    @classmethod
    def name(cls, kind: int) -> str:
        return cls._NAMES.get(kind, f"?{kind}")


#: the one RPP1 codec instance (and fault-injection point) of this protocol
CODEC = FrameCodec(b"RPP1", error=ProtocolError, max_payload=_MAX_PAYLOAD,
                   name_of=MSG.name)


def encode_value(value):
    """Artifact-codec encode (tuples survive as ``{"py/tuple": [...]}``)."""
    return _encode_attr(value)


def decode_value(value):
    return _decode_attr(value)


def send_msg(conn, kind: int, payload: Dict) -> None:
    """Send one framed message (header + JSON payload, no pickling)."""
    CODEC.send_pipe(conn, kind, payload)


def recv_msg(conn) -> Tuple[int, Dict]:
    """Receive one framed message (blocking); ``(kind, payload)``."""
    return CODEC.recv_pipe(conn)
