"""Quickstart: the end-user flow from Section 2 of the paper.

Take a model from the frontend, compile it for a target with
``compiler.build``, deploy it with the graph runtime, and inspect both the
numerical output and the simulated latency.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import runtime
from repro.frontend import resnet18
from repro.graph import build
from repro.hardware import cuda


def main() -> None:
    # 1. Import a model (the paper uses t.frontend.from_keras; here the model
    #    zoo provides the graph + parameters directly).
    graph, params, input_shapes = resnet18(batch=1, image_size=64, num_classes=100)
    print(f"Imported ResNet-18 variant: {len(graph.op_nodes)} operators, "
          f"{len(params)} parameter tensors")

    # 2. Compile for a target.
    target = cuda()
    graph, lib, params = build(graph, target, params, opt_level=2)
    print(f"Compiled module: {len(lib.kernels)} fused kernels, "
          f"estimated latency {lib.total_time * 1e3:.3f} ms on {target.name}")
    print(f"Static memory planning reuse: {lib.memory_plan.reuse_ratio:.2f}x "
          f"({lib.memory_plan.naive_bytes / 1e6:.1f} MB -> "
          f"{lib.memory_plan.planned_bytes / 1e6:.1f} MB)")

    # 3. Deploy with the graph runtime.
    module = runtime.create(lib, runtime.gpu(0))
    module.set_input(**params)
    data = np.random.rand(*input_shapes["data"]).astype("float32")
    module.run(data=data)
    output = runtime.empty((1, 100), ctx=runtime.gpu(0))
    module.get_output(0, output)

    probabilities = output.asnumpy()
    print(f"Output shape: {probabilities.shape}, "
          f"sum of probabilities: {probabilities.sum():.4f}")
    print("Top-5 classes:", np.argsort(probabilities[0])[::-1][:5].tolist())
    print("\nPer-kernel breakdown (top 5 by time):")
    for name, seconds in sorted(module.profile(), key=lambda kv: -kv[1])[:5]:
        print(f"  {name:<45s} {seconds * 1e6:9.1f} us")


if __name__ == "__main__":
    main()
