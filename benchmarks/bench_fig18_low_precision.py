"""Figure 18: ultra low-precision (2-bit activation, 1-bit weight) conv2d.

Single- and multi-threaded TVM bit-serial kernels versus the hand-optimized
single-threaded Caffe2 ultra-low-precision baseline on the ARM A53, for the
ResNet conv layers C2-C12.  The paper highlights C5/C8/C11 (1x1, stride 2)
where the baseline library is not optimized.
"""

import pytest

from common import emit_summary, get_target, print_series
from repro import tir
from repro.autotvm.space import ConfigSpace
from repro.baselines import CAFFE2_ULP_PROFILE, VendorLibrary
from repro.topi.bitserial import bitserial_conv2d_packed
from repro.topi.schedules.cpu import bitserial_conv2d_cpu_template
from repro.workloads import RESNET_CONV_WORKLOADS


def _tvm_bitserial_time(workload, target, parallel: bool) -> float:
    data, weight, out = bitserial_conv2d_packed(
        1, workload.in_channels, workload.height, workload.width,
        workload.out_channels, workload.kernel, workload.stride,
        workload.padding, activation_bits=2, weight_bits=1)
    cfg = ConfigSpace()
    schedule, tensors = bitserial_conv2d_cpu_template(
        cfg, data, weight, out, use_tensorize=True, use_parallel=parallel)
    func = tir.lower(schedule, tensors, name=f"bitserial_{workload.name}")
    return target.model.estimate(tir.extract_features(func))


def _evaluate():
    target = get_target("arm_cpu")
    caffe2 = VendorLibrary(CAFFE2_ULP_PROFILE, target, single_threaded=True)
    rows = []
    for workload in RESNET_CONV_WORKLOADS[1:]:      # C2..C12 as in the paper
        baseline = caffe2.bitserial_conv2d_time(
            1, workload.in_channels, workload.height, workload.width,
            workload.out_channels, workload.kernel, workload.stride,
            workload.padding, activation_bits=2, weight_bits=1)
        single = _tvm_bitserial_time(workload, target, parallel=False)
        multi = _tvm_bitserial_time(workload, target, parallel=True)
        rows.append((workload.name, {
            "Hand optimized": 1.0,
            "TVM single-threaded": baseline / single,
            "TVM multi-threaded": baseline / multi,
        }))
    return rows


def test_fig18_low_precision_speedups(benchmark):
    rows = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    print_series("Figure 18: low-precision conv2d speedup vs Caffe2 ULP baseline",
                 rows, unit="x")
    single = {n: e["TVM single-threaded"] for n, e in rows}
    multi = {n: e["TVM multi-threaded"] for n, e in rows}
    emit_summary("fig18_low_precision", {
        "single_speedup_vs_caffe2": {n: round(v, 3) for n, v in single.items()},
        "multi_speedup_vs_caffe2": {n: round(v, 3) for n, v in multi.items()}})
    # Multi-threading should help (except possibly the low-intensity 1x1 layers),
    # and the 1x1 stride-2 layers (C5, C8, C11) should show the largest wins
    # because the baseline library is not optimized for them.
    assert sum(multi[n] >= single[n] for n in multi) >= len(multi) - 3
    regular = [v for n, v in single.items() if n not in ("C5", "C8", "C11")]
    unusual = [v for n, v in single.items() if n in ("C5", "C8", "C11")]
    assert min(unusual) > sum(regular) / len(regular) * 0.8
