"""Tests for the deployable runtime API: devices, the stateless Executor,
module artifacts (export / repro.load) and the legacy-shim behaviour."""

import threading
import zipfile

import numpy as np
import pytest

import repro
from repro import runtime
from repro.frontend import ModelBuilder, resnet18
from repro.hardware import arm_cpu, create_target, cuda, vdla
from repro.runtime import (ArtifactError, Context, Device, Executor, NDArray,
                           device, load_module)
from repro.runtime.artifact import graph_from_json, graph_to_json


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


@pytest.fixture(scope="module")
def cnn_module():
    return repro.compile(_small_cnn(), target=cuda())


@pytest.fixture()
def cnn_input():
    return np.random.default_rng(7).random((1, 3, 16, 16)).astype("float32")


# ---------------------------------------------------------------------------
# Device abstraction
# ---------------------------------------------------------------------------

class TestDevice:
    def test_parse_forms(self):
        assert device("gpu") == Device("gpu", 0)
        assert device("gpu:1") == Device("gpu", 1)
        assert device("cpu:3") == Device("cpu", 3)
        dev = Device("mali", 2)
        assert device(dev) is dev

    def test_parse_errors(self):
        with pytest.raises(ValueError, match="tpu"):
            device("tpu:0")
        with pytest.raises(ValueError, match="index"):
            device("gpu:one")
        with pytest.raises(TypeError):
            device(3)
        with pytest.raises(ValueError):
            Device("gpu", -1)

    def test_context_is_device_alias(self):
        # The seed-era name keeps working and compares equal.
        assert Context is Device
        assert runtime.gpu(1) == Device("gpu", 1)
        assert repr(Device("gpu", 1)) == "gpu:1"
        assert hash(Device("cpu", 0)) == hash(runtime.cpu())

    def test_seed_era_ctx_keyword_still_accepted(self):
        data = np.zeros((2, 2), "float32")
        assert runtime.array(data, ctx=runtime.gpu(0)).device == Device("gpu", 0)
        assert NDArray(data, ctx=runtime.cpu(1)).device == Device("cpu", 1)
        assert runtime.empty((2, 2), ctx=runtime.gpu(2)).device == Device("gpu", 2)

    def test_ndarray_device_and_cross_device_copyto(self):
        data = np.random.default_rng(0).random((2, 3)).astype("float32")
        array = runtime.array(data, runtime.gpu(0))
        assert array.device == Device("gpu", 0)
        assert array.ctx == array.device  # deprecated alias
        moved = array.copyto("cpu:1")
        assert isinstance(moved, NDArray)
        assert moved.device == Device("cpu", 1)
        np.testing.assert_array_equal(moved.asnumpy(), data)
        # in-place copy into an existing array still works
        out = runtime.empty((2, 3))
        array.copyto(out)
        np.testing.assert_array_equal(out.asnumpy(), data)


# ---------------------------------------------------------------------------
# Stateless Executor
# ---------------------------------------------------------------------------

class TestExecutor:
    def test_call_forms_agree(self, cnn_module, cnn_input):
        executor = Executor(cnn_module)
        by_dict = executor({"data": cnn_input})
        by_pos = executor(cnn_input)
        by_kw = executor(data=cnn_input)
        assert isinstance(by_dict, list) and len(by_dict) == 1
        assert by_dict[0].device == Device("gpu", 0)
        np.testing.assert_array_equal(by_dict[0].asnumpy(), by_pos[0].asnumpy())
        np.testing.assert_array_equal(by_dict[0].asnumpy(), by_kw[0].asnumpy())

    def test_matches_graph_executor(self, cnn_module, cnn_input):
        legacy = cnn_module.executor()
        legacy.set_input(**cnn_module.params)
        legacy.run(data=cnn_input)
        stateless = Executor(cnn_module)(cnn_input)
        np.testing.assert_array_equal(legacy.get_output(0).asnumpy(),
                                      stateless[0].asnumpy())

    def test_missing_input_lists_specs(self, cnn_module):
        executor = Executor(cnn_module)
        with pytest.raises(ValueError) as exc:
            executor({})
        message = str(exc.value)
        assert "data" in message
        assert "(1, 3, 16, 16)" in message
        assert "float32" in message

    def test_unknown_input_lists_specs(self, cnn_module, cnn_input):
        executor = Executor(cnn_module)
        with pytest.raises(ValueError) as exc:
            executor(data=cnn_input, imag=cnn_input)
        assert "imag" in str(exc.value)
        assert "data" in str(exc.value)

    def test_too_many_positional(self, cnn_module, cnn_input):
        with pytest.raises(ValueError, match="positional"):
            Executor(cnn_module)(cnn_input, cnn_input)

    def test_explicit_device_placement(self, cnn_module, cnn_input):
        executor = Executor(cnn_module, "gpu:3")
        assert executor.device == Device("gpu", 3)
        assert executor(cnn_input)[0].device == Device("gpu", 3)

    def test_thread_safety(self, cnn_module):
        executor = Executor(cnn_module)
        rng = np.random.default_rng(3)
        inputs = [rng.random((1, 3, 16, 16)).astype("float32")
                  for _ in range(8)]
        expected = [executor(x)[0].asnumpy() for x in inputs]
        results = [None] * len(inputs)

        def work(i):
            results[i] = executor(inputs[i])[0].asnumpy()

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(len(inputs))]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got, want)


# ---------------------------------------------------------------------------
# Parameter aliasing regression (satellite #1)
# ---------------------------------------------------------------------------

class TestParamProtection:
    def test_tensor_map_never_aliases_params(self, cnn_input):
        module = repro.compile(_small_cnn(), target=cuda())
        before = {name: value.copy() for name, value in module.params.items()}
        legacy = module.executor()
        legacy.run(data=cnn_input)
        first = legacy.get_output(0).asnumpy()

        # A caller (or an in-place kernel) mutating a tensor-map entry that
        # names a parameter must raise, not corrupt the module's weights.
        param_name = next(node.name for node in module.graph.input_nodes
                          if node.name in module.params)
        held = legacy.get_node_output(param_name)
        with pytest.raises(ValueError):
            held += 1.0
        for name, value in module.params.items():
            np.testing.assert_array_equal(value, before[name])

        legacy.run(data=cnn_input)
        np.testing.assert_array_equal(legacy.get_output(0).asnumpy(), first)

    def test_graph_executor_missing_input_message(self):
        module = repro.compile(_small_cnn(), target=cuda())
        legacy = module.executor()
        with pytest.raises(ValueError) as exc:
            legacy.run()
        assert "data" in str(exc.value)
        assert "(1, 3, 16, 16)" in str(exc.value)


# ---------------------------------------------------------------------------
# Graph JSON codec
# ---------------------------------------------------------------------------

class TestGraphCodec:
    def test_round_trip_preserves_structure_and_attr_types(self, cnn_module):
        graph = cnn_module.graph
        clone = graph_from_json(graph_to_json(graph))
        assert [n.name for n in clone.nodes] == [n.name for n in graph.nodes]
        assert [n.op for n in clone.nodes] == [n.op for n in graph.nodes]
        for old, new in zip(graph.nodes, clone.nodes):
            assert new.shape == old.shape
            assert new.dtype == old.dtype
            assert new.attrs == old.attrs
            # tuple-ness must survive: the fallback-config seed hashes repr()
            for key, value in old.attrs.items():
                assert type(new.attrs[key]) is type(value)

    def test_clone_is_independent(self, cnn_module):
        clone = graph_from_json(graph_to_json(cnn_module.graph))
        clone.nodes[0].shape = (999,)
        assert cnn_module.graph.nodes[0].shape != (999,)


# ---------------------------------------------------------------------------
# Artifact export / load round trips (satellite #4)
# ---------------------------------------------------------------------------

class TestArtifactRoundTrip:
    @pytest.mark.parametrize("make_target", [cuda, arm_cpu, vdla],
                             ids=["cuda", "arm_cpu", "vdla"])
    def test_resnet18_round_trip_all_targets(self, make_target, tmp_path):
        model = resnet18(batch=1, image_size=32, num_classes=10)
        module = repro.compile(model, target=make_target())
        path = tmp_path / "resnet18.repro"
        module.export(path)
        loaded = repro.load(path)

        # No recompilation: exact latency table and provenance round-trip.
        assert loaded.total_time == module.total_time
        assert [k.time_seconds for k in loaded.kernels] == \
            [k.time_seconds for k in module.kernels]
        assert [k.name for k in loaded.kernels] == \
            [k.name for k in module.kernels]
        assert loaded.target.name == module.target.name
        assert loaded.target.device_type == module.target.device_type
        assert loaded.opt_level == module.opt_level
        assert loaded.memory_plan.planned_bytes == module.memory_plan.planned_bytes

        data = np.random.default_rng(11).random((1, 3, 32, 32)).astype("float32")
        np.testing.assert_array_equal(Executor(module)(data)[0].asnumpy(),
                                      Executor(loaded)(data)[0].asnumpy())

    def test_provenance_round_trip(self, cnn_module, tmp_path):
        # Mark kernels as tuned and check provenance survives the bundle.
        module = repro.compile(_small_cnn(), target=cuda())
        module.kernels[0].tuned = True
        module.kernels[0].config_index = 1234
        path = tmp_path / "tuned.repro"
        module.export(path)
        loaded = repro.load(path)
        assert loaded.kernels[0].tuned is True
        assert loaded.kernels[0].config_index == 1234
        assert loaded.tuned_kernels == module.tuned_kernels

    def test_pass_records_round_trip(self, cnn_module, tmp_path):
        path = tmp_path / "records.repro"
        cnn_module.export(path)
        loaded = repro.load(path)
        assert [r.name for r in loaded.pass_records] == \
            [r.name for r in cnn_module.pass_records]


class TestArtifactErrors:
    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.repro"
        path.write_bytes(b"this is not an artifact")
        with pytest.raises(ArtifactError, match="export"):
            repro.load(path)

    def test_foreign_zip(self, tmp_path):
        path = tmp_path / "foreign.zip"
        with zipfile.ZipFile(path, "w") as bundle:
            bundle.writestr("random.txt", "hello")
        with pytest.raises(ArtifactError, match="missing"):
            repro.load(path)

    def test_newer_schema_rejected_with_upgrade_hint(self, cnn_module, tmp_path):
        import json

        path = tmp_path / "future.repro"
        cnn_module.export(path)
        rewritten = tmp_path / "future2.repro"
        with zipfile.ZipFile(path) as src, \
                zipfile.ZipFile(rewritten, "w") as dst:
            for entry in src.namelist():
                payload = src.read(entry)
                if entry == "MANIFEST.json":
                    manifest = json.loads(payload)
                    manifest["schema_version"] = 99
                    payload = json.dumps(manifest)
                dst.writestr(entry, payload)
        with pytest.raises(ArtifactError, match="v99"):
            repro.load(rewritten)

    def test_unknown_target_lists_known(self, cnn_module, tmp_path):
        import json

        path = tmp_path / "target.repro"
        cnn_module.export(path)
        rewritten = tmp_path / "target2.repro"
        with zipfile.ZipFile(path) as src, \
                zipfile.ZipFile(rewritten, "w") as dst:
            for entry in src.namelist():
                payload = src.read(entry)
                if entry == "MANIFEST.json":
                    manifest = json.loads(payload)
                    manifest["target"]["name"] = "tpu-v9"
                    payload = json.dumps(manifest)
                dst.writestr(entry, payload)
        with pytest.raises(ArtifactError, match="known targets"):
            repro.load(rewritten)

    def test_corrupt_manifest_json(self, cnn_module, tmp_path):
        path = tmp_path / "corrupt.repro"
        cnn_module.export(path)
        rewritten = tmp_path / "corrupt2.repro"
        with zipfile.ZipFile(path) as src, \
                zipfile.ZipFile(rewritten, "w") as dst:
            for entry in src.namelist():
                payload = src.read(entry)
                if entry == "MANIFEST.json":
                    payload = b"{ not json"
                dst.writestr(entry, payload)
        with pytest.raises(ArtifactError, match="corrupt"):
            repro.load(rewritten)


# ---------------------------------------------------------------------------
# Legacy shims and target helpers
# ---------------------------------------------------------------------------

class TestLegacyShims:
    def test_save_load_deprecated_but_working(self, cnn_module, tmp_path,
                                              cnn_input):
        path = tmp_path / "legacy.repro"
        with pytest.warns(DeprecationWarning):
            cnn_module.save(path)
        with pytest.warns(DeprecationWarning):
            loaded = repro.CompiledModule.load(path)
        assert loaded.total_time == cnn_module.total_time
        np.testing.assert_array_equal(Executor(loaded)(cnn_input)[0].asnumpy(),
                                      Executor(cnn_module)(cnn_input)[0].asnumpy())

    def test_create_target_canonical_names(self):
        for factory in (cuda, arm_cpu, vdla):
            target = factory()
            rebuilt = create_target(target.name)
            assert rebuilt.name == target.name
            assert rebuilt.device_type == target.device_type
        # The pynq host CPU must not degrade to the generic arm profile.
        from repro.hardware import pynq_cpu

        pynq = pynq_cpu()
        rebuilt = create_target(pynq.name)
        assert rebuilt.model.params.name == pynq.model.params.name
