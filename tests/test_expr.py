"""Unit tests for the scalar expression IR."""

import pytest

from repro import te
from repro.te.expr import (
    Add,
    FloatImm,
    IntImm,
    Interval,
    Mul,
    Select,
    Sub,
    Var,
    collect_vars,
    expr_bounds,
    simplify,
    structural_equal,
    substitute,
)
from repro.tir.interpreter import evaluate_expr


def test_const_types():
    assert isinstance(te.const(3), IntImm)
    assert isinstance(te.const(3.5), FloatImm)
    assert te.const(3).value == 3
    assert te.const(3.5).value == 3.5


def test_operator_overloading_builds_tree():
    x = Var("x")
    expr = x * 2 + 1
    assert isinstance(expr, Add)
    assert isinstance(expr.a, Mul)


def test_as_expr_rejects_unknown():
    with pytest.raises(TypeError):
        te.as_expr(object())


def test_bool_conversion_raises():
    x = Var("x")
    with pytest.raises(TypeError):
        bool(x < 3)


def test_simplify_constant_folding():
    expr = simplify(te.const(2) * 3 + 4)
    assert isinstance(expr, IntImm)
    assert expr.value == 10


def test_simplify_identities():
    x = Var("x")
    assert simplify(x + 0) is x
    assert simplify(x * 1) is x
    assert simplify(x - 0) is x
    zero = simplify(x * 0)
    assert isinstance(zero, IntImm) and zero.value == 0


def test_simplify_self_subtraction_cancels():
    x = Var("x")
    expr = simplify((x * 4 + 3) - (x * 4 + 3))
    assert isinstance(expr, IntImm)
    assert expr.value == 0


def test_simplify_add_offset_cancellation():
    x = Var("x")
    expr = simplify(Sub(Add(x * 8, Var("i")), x * 8))
    assert isinstance(expr, Var)


def test_structural_equal():
    x = Var("x")
    assert structural_equal(x * 2 + 1, x * 2 + 1)
    assert not structural_equal(x * 2 + 1, x * 2 + 2)
    assert not structural_equal(x * 2, Var("x") * 2)  # different variables


def test_substitute():
    x, y = Var("x"), Var("y")
    expr = substitute(x * 2 + y, {x: te.const(3)})
    value = evaluate_expr(expr, {y: 4})
    assert value == 10


def test_collect_vars():
    x, y = Var("x"), Var("y")
    found = collect_vars(x * 2 + y * x)
    assert set(v.name for v in found) == {"x", "y"}


def test_collect_vars_includes_reduce_axis():
    k = te.reduce_axis((0, 4), "k")
    expr = te.sum(k.var * 1, axis=k)
    names = {v.name for v in collect_vars(expr)}
    assert "k" in names


def test_select_evaluation():
    x = Var("x")
    expr = Select(x > 2, te.const(1.0), te.const(0.0))
    assert evaluate_expr(expr, {x: 5}) == 1.0
    assert evaluate_expr(expr, {x: 1}) == 0.0


def test_math_intrinsic_evaluation():
    x = Var("x", "float32")
    expr = te.Call("exp", [x])
    assert abs(evaluate_expr(expr, {x: 0.0}) - 1.0) < 1e-9


def test_expr_bounds_affine():
    x, y = Var("x"), Var("y")
    bounds = expr_bounds(x * 8 + y, {x: Interval(0, 3), y: Interval(0, 7)})
    assert bounds.low == 0
    assert bounds.high == 31
    assert bounds.extent == 32


def test_expr_bounds_subtraction_and_mul():
    x = Var("x")
    bounds = expr_bounds(10 - x * 2, {x: Interval(0, 3)})
    assert bounds.low == 4
    assert bounds.high == 10


def test_expr_bounds_floordiv_mod():
    x = Var("x")
    div = expr_bounds(x // 4, {x: Interval(0, 15)})
    assert div.low == 0 and div.high == 3
    mod = expr_bounds(x % 4, {x: Interval(0, 15)})
    assert mod.low == 0 and mod.high == 3


def test_expr_bounds_missing_var_raises():
    x = Var("x")
    with pytest.raises(KeyError):
        expr_bounds(x + 1, {})


def test_range_from_extent():
    rng = te.Range.from_extent(16)
    assert simplify(rng.extent).value == 16
    assert simplify(rng.min).value == 0


def test_evaluate_floor_division_returns_int():
    x = Var("x")
    assert evaluate_expr(x // 4, {x: 13}) == 3
    assert evaluate_expr(x % 4, {x: 13}) == 1
