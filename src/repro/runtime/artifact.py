"""Versioned, self-contained module artifacts (``export`` / ``repro.load``).

The paper's deployment story is compile-once, deploy-anywhere: the compiled
module travels to the serving host as an artifact and runs there without the
compiler.  :func:`export_module` writes a single zip bundle holding

* ``MANIFEST.json`` — schema version, target spec, per-kernel latency table
  with tuned-config provenance, memory plan and pass records;
* ``graph.json`` — the optimized computational graph;
* ``params.npz`` — the bound parameter tensors.

:func:`load_module` restores a :class:`~repro.compiler.module.CompiledModule`
from such a bundle without recompiling anything, failing loudly (with
actionable messages) on corrupt files, schema-version skew and target
mismatches.
"""

from __future__ import annotations

import io
import json
import zipfile
from typing import Dict, List

import numpy as np

from ..compiler.module import CompiledKernel, CompiledModule
from ..graph.ir import Graph, Node
from ..graph.passes import (FusedGroup, MemoryPlan,
                            ensure_layout_transform_registered)
from ..hardware.target import target_from_spec

__all__ = ["ArtifactError", "export_module", "load_module",
           "graph_to_json", "graph_from_json", "FORMAT_NAME", "SCHEMA_VERSION"]

FORMAT_NAME = "repro-module-artifact"
SCHEMA_VERSION = 1

_MANIFEST = "MANIFEST.json"
_GRAPH = "graph.json"
_PARAMS = "params.npz"
_REQUIRED_ENTRIES = (_MANIFEST, _GRAPH, _PARAMS)


class ArtifactError(ValueError):
    """A module artifact could not be read or does not match this build."""


# ---------------------------------------------------------------------------
# Graph <-> JSON
# ---------------------------------------------------------------------------

def _encode_attr(value):
    """JSON-encode one attribute value, preserving tuple-ness.

    Tuples must survive the round trip exactly: workload cache keys and the
    fallback-search seed hash over ``repr`` of attribute values, so a tuple
    silently becoming a list would change the deterministic fallback configs
    (and therefore the reloaded module's estimated times).
    """
    if isinstance(value, tuple):
        return {"py/tuple": [_encode_attr(v) for v in value]}
    if isinstance(value, list):
        return [_encode_attr(v) for v in value]
    if isinstance(value, dict):
        return {"py/dict": {k: _encode_attr(v) for k, v in value.items()}}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ArtifactError(f"Cannot serialise graph attribute of type "
                        f"{type(value).__name__}: {value!r}")


def _decode_attr(value):
    if isinstance(value, dict):
        if set(value) == {"py/tuple"}:
            return tuple(_decode_attr(v) for v in value["py/tuple"])
        if set(value) == {"py/dict"}:
            return {k: _decode_attr(v) for k, v in value["py/dict"].items()}
        return {k: _decode_attr(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_attr(v) for v in value]
    return value


def graph_to_json(graph: Graph) -> Dict:
    """Serialise a graph to a JSON-compatible dict (topological node list)."""
    index_of = {id(node): i for i, node in enumerate(graph.nodes)}
    nodes = []
    for node in graph.nodes:
        nodes.append({
            "op": node.op,
            "name": node.name,
            "inputs": [index_of[id(p)] for p in node.inputs],
            "attrs": {k: _encode_attr(v) for k, v in node.attrs.items()},
            "shape": list(node.shape) if node.shape is not None else None,
            "dtype": node.dtype,
        })
    return {"nodes": nodes,
            "outputs": [index_of[id(out)] for out in graph.outputs]}


def graph_from_json(payload: Dict) -> Graph:
    """Rebuild a graph from :func:`graph_to_json` output (also used as a
    cheap deep-clone by the serving engine's batch-latency estimator)."""
    nodes: List[Node] = []
    for entry in payload["nodes"]:
        node = Node(entry["op"], entry["name"],
                    inputs=[nodes[i] for i in entry["inputs"]],
                    attrs={k: _decode_attr(v)
                           for k, v in entry.get("attrs", {}).items()})
        shape = entry.get("shape")
        node.shape = tuple(shape) if shape is not None else None
        node.dtype = entry.get("dtype", "float32")
        nodes.append(node)
    if any(node.op == "layout_transform" for node in nodes):
        ensure_layout_transform_registered()
    return Graph([nodes[i] for i in payload["outputs"]])


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------

def export_module(module: CompiledModule, path) -> str:
    """Write ``module`` as a self-contained versioned bundle at ``path``.

    Returns the path written.  The bundle restores through
    :func:`load_module` / ``repro.load`` with no recompilation: kernel
    latencies (and their tuned-config provenance) are recorded verbatim.
    """
    from .. import __version__

    manifest = {
        "format": FORMAT_NAME,
        "schema_version": SCHEMA_VERSION,
        "repro_version": __version__,
        "target": module.target.spec(),
        "opt_level": module.opt_level,
        "layout_transforms": module.layout_transforms,
        "kernels": [{
            "nodes": [n.name for n in kernel.group.nodes],
            "master": kernel.group.master.name,
            "time_seconds": kernel.time_seconds,
            "device": kernel.device,
            "tuned": bool(getattr(kernel, "tuned", False)),
            "config_index": getattr(kernel, "config_index", None),
        } for kernel in module.kernels],
        "memory_plan": {
            "storage_of": module.memory_plan.storage_of,
            "token_bytes": {str(token): size for token, size
                            in module.memory_plan.token_bytes.items()},
            "naive_bytes": module.memory_plan.naive_bytes,
        },
        "pass_records": [{
            "name": r.name, "seconds": r.seconds,
            "nodes_before": r.nodes_before, "nodes_after": r.nodes_after,
            "params_before": r.params_before, "params_after": r.params_after,
        } for r in module.pass_records],
        "provenance": {
            "tuned_kernels": module.tuned_kernels,
            "total_time": module.total_time,
        },
    }

    params_buffer = io.BytesIO()
    np.savez_compressed(params_buffer, **module.params)

    with zipfile.ZipFile(path, "w", compression=zipfile.ZIP_DEFLATED) as bundle:
        bundle.writestr(_MANIFEST, json.dumps(manifest, indent=1))
        bundle.writestr(_GRAPH, json.dumps(graph_to_json(module.graph)))
        bundle.writestr(_PARAMS, params_buffer.getvalue())
    return str(path)


# ---------------------------------------------------------------------------
# Load
# ---------------------------------------------------------------------------

def _read_json(bundle: zipfile.ZipFile, entry: str, path) -> Dict:
    try:
        payload = json.loads(bundle.read(entry).decode("utf-8"))
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"Module artifact {path!s} is corrupt: entry "
                            f"{entry!r} is not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise ArtifactError(f"Module artifact {path!s} is corrupt: entry "
                            f"{entry!r} does not hold a JSON object")
    return payload


def load_module(path, *, params=None) -> CompiledModule:
    """Load a module artifact written by :func:`export_module`.

    This is the implementation behind ``repro.load``.  ``params`` overrides
    the bundle's ``params.npz`` with an externally supplied mapping of
    parameter arrays — the process-pool workers pass zero-copy shared-memory
    views here so N workers share one physical copy of the weights.
    """
    from ..compiler.instruments import PassRecord

    if not zipfile.is_zipfile(path):
        raise ArtifactError(
            f"{path!s} is not a module artifact (expected a bundle written "
            f"by CompiledModule.export(); legacy pickle files load through "
            f"CompiledModule.load())")
    with zipfile.ZipFile(path) as bundle:
        present = set(bundle.namelist())
        missing = [entry for entry in _REQUIRED_ENTRIES if entry not in present]
        if missing:
            raise ArtifactError(
                f"Module artifact {path!s} is incomplete: missing "
                f"{missing}; expected entries {list(_REQUIRED_ENTRIES)}")

        manifest = _read_json(bundle, _MANIFEST, path)
        if manifest.get("format") != FORMAT_NAME:
            raise ArtifactError(
                f"{path!s} is not a module artifact: format is "
                f"{manifest.get('format')!r}, expected {FORMAT_NAME!r}")
        version = manifest.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise ArtifactError(f"Module artifact {path!s} has an invalid "
                                f"schema version {version!r}")
        if version > SCHEMA_VERSION:
            raise ArtifactError(
                f"Module artifact {path!s} uses schema v{version} but this "
                f"build supports up to v{SCHEMA_VERSION}; upgrade repro or "
                f"re-export the module with this version")

        graph = graph_from_json(_read_json(bundle, _GRAPH, path))
        if params is None:
            with np.load(io.BytesIO(bundle.read(_PARAMS)),
                         allow_pickle=False) as archive:
                params = {name: archive[name] for name in archive.files}
        else:
            params = dict(params)

    target = _load_target(manifest, path)
    nodes_by_name = {node.name: node for node in graph.nodes}
    kernels = []
    for entry in manifest.get("kernels", []):
        try:
            group_nodes = [nodes_by_name[name] for name in entry["nodes"]]
            master = nodes_by_name[entry["master"]]
        except KeyError as exc:
            raise ArtifactError(
                f"Module artifact {path!s} is corrupt: kernel references "
                f"unknown graph node {exc.args[0]!r}") from None
        kernels.append(CompiledKernel(
            FusedGroup(group_nodes, master),
            float(entry["time_seconds"]),
            entry["device"],
            tuned=bool(entry.get("tuned", False)),
            config_index=entry.get("config_index"),
        ))

    plan = manifest.get("memory_plan", {})
    memory_plan = MemoryPlan(
        storage_of=dict(plan.get("storage_of", {})),
        token_bytes={int(token): int(size) for token, size
                     in plan.get("token_bytes", {}).items()},
        naive_bytes=int(plan.get("naive_bytes", 0)),
    )
    pass_records = [PassRecord(**record)
                    for record in manifest.get("pass_records", [])]

    return CompiledModule(
        graph=graph,
        kernels=kernels,
        params=params,
        target=target,
        memory_plan=memory_plan,
        opt_level=int(manifest.get("opt_level", 2)),
        layout_transforms=int(manifest.get("layout_transforms", 0)),
        pass_records=pass_records,
    )


def _load_target(manifest: Dict, path):
    spec = manifest.get("target")
    if not isinstance(spec, dict):
        raise ArtifactError(f"Module artifact {path!s} is corrupt: missing "
                            f"target spec in manifest")
    try:
        return target_from_spec(spec)
    except ValueError as exc:
        raise ArtifactError(
            f"Module artifact {path!s} cannot run on this build: {exc}") from exc
