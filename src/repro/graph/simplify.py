"""Inference-time graph simplification passes (paper Section 3).

The paper's high-level graph rewriting covers more than fusion and constant
folding: frameworks also canonicalise the graph for inference before
operator-level code generation.  This module implements the passes that do
that canonicalisation:

* :func:`simplify_inference` — folds ``batch_norm`` layers into the weights
  and bias of the convolution / dense producer feeding them (inference-time
  batch norm is an affine transform per output channel), and removes
  inference no-ops such as ``dropout``.
* :func:`eliminate_common_subexpr` — merges operator nodes that apply the
  same operator with the same attributes to the same inputs.
* :func:`dead_code_elimination` — removes operator nodes whose results can
  never reach a graph output.

Each pass returns a rewritten :class:`~repro.graph.ir.Graph` (and, where
parameters change, an updated parameter dictionary) plus a small count of the
rewrites applied so callers and tests can verify the pass fired.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .ir import Graph, Node

__all__ = ["simplify_inference", "eliminate_common_subexpr",
           "dead_code_elimination"]

#: operators whose weights batch norm can be folded into
_FOLDABLE_PRODUCERS = ("conv2d", "depthwise_conv2d", "dense")
#: operators that are identity functions at inference time
_INFERENCE_NOOPS = ("dropout",)


def _clone_nodes(graph: Graph) -> Dict[int, Node]:
    """Structural copy of every node so passes never mutate the input graph."""
    clones: Dict[int, Node] = {}
    for node in graph.nodes:
        clone = Node(node.op, node.name, [], dict(node.attrs))
        clone.shape = node.shape
        clone.dtype = node.dtype
        clones[id(node)] = clone
    for node in graph.nodes:
        clones[id(node)].inputs = [clones[id(p)] for p in node.inputs]
    return clones


def _bn_scale_shift(params: Dict[str, np.ndarray], bn: Node,
                    epsilon: float = 1e-5
                    ) -> Optional[Tuple[np.ndarray, np.ndarray]]:
    """Per-channel (scale, shift) implementing the batch norm at inference."""
    if len(bn.inputs) < 5:
        return None
    gamma, beta, mean, var = (bn.inputs[1], bn.inputs[2], bn.inputs[3], bn.inputs[4])
    names = [gamma.name, beta.name, mean.name, var.name]
    if not all(name in params for name in names):
        return None
    gamma_v, beta_v, mean_v, var_v = (params[name] for name in names)
    scale = gamma_v / np.sqrt(var_v + epsilon)
    shift = beta_v - mean_v * scale
    return scale.astype(gamma_v.dtype), shift.astype(beta_v.dtype)


def _scale_weight(weight: np.ndarray, scale: np.ndarray, op: str) -> np.ndarray:
    """Scale the producer's weight along its output-channel axis."""
    if op == "dense":
        return weight * scale[:, None]
    # conv2d weights are (O, I, KH, KW); depthwise weights are (C, 1, KH, KW).
    return weight * scale[:, None, None, None]


def simplify_inference(graph: Graph, params: Dict[str, np.ndarray],
                       epsilon: float = 1e-5
                       ) -> Tuple[Graph, Dict[str, np.ndarray], int]:
    """Fold batch norms into producers and drop inference no-ops.

    A ``batch_norm`` whose data input is a convolution or dense operator with
    parameter weights (and which is that producer's only consumer) is folded
    into the producer: the weights are scaled per output channel and the
    shift becomes a ``bias_add``.  Remaining batch norms (e.g. ones following
    an ``add``) are left untouched.  The input graph is never mutated; a
    rewritten copy is returned.  Returns ``(graph, params, rewrites)``.
    """
    params = dict(params)
    consumer_counts = {key: len(values) for key, values in graph.consumers().items()}
    clones = _clone_nodes(graph)
    cloned_ops = [clones[id(n)] for n in graph.op_nodes]
    # Consumer counts keyed by the cloned producer nodes.
    consumers = {id(clones[key_id]): count
                 for key_id, count in
                 ((id(n), consumer_counts[id(n)]) for n in graph.nodes)}
    replacement: Dict[int, Node] = {}
    rewrites = 0

    for node in cloned_ops:
        node.inputs = [replacement.get(id(p), p) for p in node.inputs]

        if node.op in _INFERENCE_NOOPS:
            replacement[id(node)] = node.inputs[0]
            rewrites += 1
            continue

        if node.op != "batch_norm":
            continue
        producer = node.inputs[0]
        if producer.op not in _FOLDABLE_PRODUCERS:
            continue
        if consumers.get(id(producer), 0) != 1:
            continue
        weight_node = producer.inputs[1] if len(producer.inputs) > 1 else None
        if weight_node is None or weight_node.name not in params:
            continue
        scale_shift = _bn_scale_shift(params, node, epsilon)
        if scale_shift is None:
            continue
        scale, shift = scale_shift

        folded_weight_name = f"{weight_node.name}_bnfold"
        params[folded_weight_name] = _scale_weight(params[weight_node.name],
                                                   scale, producer.op)
        folded_weight = Node("null", folded_weight_name)
        folded_weight.shape = weight_node.shape
        folded_weight.dtype = weight_node.dtype
        producer.inputs[1] = folded_weight

        bias_name = f"{node.name}_bnfold_bias"
        params[bias_name] = shift
        bias_node = Node("null", bias_name)
        bias_node.shape = tuple(shift.shape)
        bias_node.dtype = node.dtype
        bias_add = Node("bias_add", f"{node.name}_folded", [producer, bias_node], {})
        bias_add.shape = node.shape
        bias_add.dtype = node.dtype

        replacement[id(node)] = bias_add
        rewrites += 1

    if not rewrites:
        return graph, params, 0

    outputs = [replacement.get(id(clones[id(o)]), clones[id(o)])
               for o in graph.outputs]
    new_graph = Graph(outputs)
    for node in new_graph.op_nodes:
        node.inputs = [replacement.get(id(p), p) for p in node.inputs]
    new_graph.refresh()
    return new_graph, params, rewrites


def eliminate_common_subexpr(graph: Graph) -> Tuple[Graph, int]:
    """Merge operator nodes that are structurally identical.

    Two nodes are merged when they apply the same operator with equal
    attributes to the same input nodes.  The input graph is never mutated.
    Returns ``(graph, merged_count)``.
    """
    clones = _clone_nodes(graph)
    seen: Dict[Tuple, Node] = {}
    replacement: Dict[int, Node] = {}
    merged = 0
    for original in graph.op_nodes:
        node = clones[id(original)]
        node.inputs = [replacement.get(id(p), p) for p in node.inputs]
        key = (node.op, tuple(id(p) for p in node.inputs),
               tuple(sorted((k, repr(v)) for k, v in node.attrs.items())))
        if key in seen:
            replacement[id(node)] = seen[key]
            merged += 1
        else:
            seen[key] = node
    if not merged:
        return graph, 0
    outputs = [replacement.get(id(clones[id(o)]), clones[id(o)])
               for o in graph.outputs]
    new_graph = Graph(outputs)
    for node in new_graph.op_nodes:
        node.inputs = [replacement.get(id(p), p) for p in node.inputs]
    new_graph.refresh()
    return new_graph, merged


def dead_code_elimination(graph: Graph) -> Tuple[Graph, int]:
    """Drop operator nodes that do not contribute to any output.

    The graph's node list is rebuilt from its outputs, so any node that was
    only reachable from dropped consumers disappears.  Returns the rewritten
    graph and the number of removed operator nodes.
    """
    before = len(graph.op_nodes)
    new_graph = Graph(list(graph.outputs))
    removed = before - len(new_graph.op_nodes)
    return new_graph, removed
