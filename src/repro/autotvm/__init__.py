"""ML-based automated schedule optimizer (paper Section 5).

The front door is :func:`repro.autotune` (re-exported here as
:func:`autotune`): extract tasks -> tune with a registered tuner over the
parallel measurer -> record bests in a :class:`TuningDatabase` -> compile
under :class:`ApplyHistoryBest`.
"""

from .apply_history import ApplyHistoryBest
from .eval_cache import (
    FEATURE_CACHE,
    LOWERED_CACHE,
    clear_eval_caches,
    configure_eval_caches,
    eval_cache_stats,
)
from .cost_model import (
    GradientBoostedTrees,
    NeuralCostModel,
    RegressionTree,
    rank_correlation,
)
from .database import DatabaseWriteConflictError, TuningDatabase, TuningLogEntry
from .measure import LocalMeasurer, MeasureInput, MeasureResultRecord, RPCMeasurer
from .options import ProgressEvent, TuningOptions
from .parallel import ParallelMeasurer, ProcessMeasurer, shutdown_measure_pools
from .registry import TUNER_REGISTRY, get_tuner, list_tuners, register_tuner
from .session import (
    TaskTuningResult,
    TuningReport,
    autotune,
    extract_tasks,
    tune_tasks,
)
from .service import ServiceClient, TuningService, schedule_zoo
from .space import ConfigEntity, ConfigSpace, OtherEntity, SplitEntity
from .task import TEMPLATE_REGISTRY, Task, create_task, get_template, register_template
from .treernn import ASTNode, TreeRNNCostModel, build_ast
from .tuner import (
    GATuner,
    GridSearchTuner,
    ModelBasedTuner,
    RandomTuner,
    SimulatedAnnealingOptimizer,
    Tuner,
    TuningRecord,
)

__all__ = [
    "ApplyHistoryBest",
    "ConfigEntity",
    "ConfigSpace",
    "DatabaseWriteConflictError",
    "FEATURE_CACHE",
    "LOWERED_CACHE",
    "clear_eval_caches",
    "configure_eval_caches",
    "eval_cache_stats",
    "GATuner",
    "GradientBoostedTrees",
    "GridSearchTuner",
    "LocalMeasurer",
    "MeasureInput",
    "MeasureResultRecord",
    "ModelBasedTuner",
    "NeuralCostModel",
    "OtherEntity",
    "ParallelMeasurer",
    "ProcessMeasurer",
    "ProgressEvent",
    "RPCMeasurer",
    "RandomTuner",
    "RegressionTree",
    "ServiceClient",
    "SimulatedAnnealingOptimizer",
    "SplitEntity",
    "TEMPLATE_REGISTRY",
    "TUNER_REGISTRY",
    "Task",
    "TaskTuningResult",
    "TreeRNNCostModel",
    "ASTNode",
    "build_ast",
    "Tuner",
    "TuningDatabase",
    "TuningLogEntry",
    "TuningOptions",
    "TuningRecord",
    "TuningReport",
    "TuningService",
    "autotune",
    "create_task",
    "extract_tasks",
    "get_template",
    "get_tuner",
    "list_tuners",
    "rank_correlation",
    "register_template",
    "register_tuner",
    "schedule_zoo",
    "shutdown_measure_pools",
    "tune_tasks",
]
