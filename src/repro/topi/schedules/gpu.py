"""GPU schedule templates (server-class and mobile GPUs).

These templates encode the paper's GPU optimizations: block/thread tiling
through ``bind``, cooperative fetching of input tiles into ``shared`` memory
(Section 4.2), thread-local accumulators, unrolling and vectorization.  Each
template exposes its tiling and unrolling choices as autotvm knobs.
"""

from __future__ import annotations

from typing import List, Tuple

from ... import te
from ...autotvm.space import ConfigSpace

__all__ = [
    "schedule_matmul_gpu",
    "schedule_conv2d_gpu",
    "schedule_depthwise_conv2d_gpu",
    "schedule_dense_gpu",
    "schedule_injective_gpu",
    "matmul_gpu_template",
    "conv2d_gpu_template",
    "depthwise_conv2d_gpu_template",
    "dense_gpu_template",
]


def _bind_block_thread(stage, fused, num_threads: int):
    """Split a fused spatial loop into (block, thread) and bind both."""
    block, thread = stage.split(fused, factor=num_threads)
    stage.bind(block, te.thread_axis("blockIdx.x"))
    stage.bind(thread, te.thread_axis("threadIdx.x"))
    return block, thread


def schedule_injective_gpu(out: te.Tensor, num_threads: int = 256) -> te.Schedule:
    """Schedule an elementwise/injective operator: flatten and bind."""
    s = te.create_schedule(out.op)
    stage = s[out]
    axes = list(stage.op.axis)
    fused = axes[0]
    for axis in axes[1:]:
        fused = stage.fuse(fused, axis)
    _bind_block_thread(stage, fused, num_threads)
    return s


# ---------------------------------------------------------------------------
# Matrix multiplication (used for Figure 7 and the dense layers)
# ---------------------------------------------------------------------------

def matmul_gpu_template(cfg: ConfigSpace, A: te.Tensor, B: te.Tensor, C: te.Tensor,
                        use_shared: bool = True) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Tunable GPU matmul schedule with optional cooperative shared fetching."""
    s = te.create_schedule(C.op)
    m, n = [int(te.simplify(d).value) for d in C.shape]
    k_extent = int(C.op.reduce_axis[0].extent_value())

    tile_y = cfg.define_split("tile_y", m, num_outputs=3)
    tile_x = cfg.define_split("tile_x", n, num_outputs=3)
    tile_k = cfg.define_split("tile_k", k_extent, num_outputs=2)
    unroll = cfg.define_knob("auto_unroll", [0, 1])

    CL = s.cache_write(C, "local")

    y, x = s[C].op.axis
    by, ty, yi = tile_y.apply(s[C], y)
    bx, tx, xi = tile_x.apply(s[C], x)
    s[C].reorder(by, bx, ty, tx, yi, xi)
    s[C].bind(by, te.thread_axis("blockIdx.y"))
    s[C].bind(bx, te.thread_axis("blockIdx.x"))
    s[C].bind(ty, te.thread_axis("threadIdx.y"))
    s[C].bind(tx, te.thread_axis("threadIdx.x"))

    s[CL].compute_at(s[C], tx)
    k_axis = s[CL].op.reduce_axis[0]
    ko, ki = tile_k.apply(s[CL], k_axis)
    yl, xl = s[CL].op.axis
    s[CL].reorder(ko, ki, yl, xl)
    if unroll.val:
        s[CL].unroll(ki)
        s[CL].unroll(yl)

    if use_shared:
        AS = s.cache_read(A, "shared", [CL])
        BS = s.cache_read(B, "shared", [CL])
        for shared_stage in (AS, BS):
            s[shared_stage].compute_at(s[CL], ko)
            ax0, ax1 = s[shared_stage].op.axis
            fused = s[shared_stage].fuse(ax0, ax1)
            tthread = min(tile_y.size[1] * tile_x.size[1], 512)
            outer, inner = s[shared_stage].split(fused, factor=max(tthread, 1))
            s[shared_stage].bind(inner, te.thread_axis("threadIdx.x"))
    return s, [A, B, C]


def schedule_matmul_gpu(A: te.Tensor, B: te.Tensor, C: te.Tensor,
                        use_shared: bool = True,
                        tile: int = 8, threads: int = 8) -> te.Schedule:
    """Fixed (non-tuned) GPU matmul schedule used by examples and baselines."""
    cfg = ConfigSpace()
    m, n = [int(te.simplify(d).value) for d in C.shape]
    k_extent = int(C.op.reduce_axis[0].extent_value())
    cfg.define_split("tile_y", m, num_outputs=3,
                     candidate_sizes=[[max(m // (tile * threads), 1), threads, tile]])
    cfg.define_split("tile_x", n, num_outputs=3,
                     candidate_sizes=[[max(n // (tile * threads), 1), threads, tile]])
    cfg.define_split("tile_k", k_extent, num_outputs=2,
                     candidate_sizes=[[max(k_extent // 8, 1), min(8, k_extent)]])
    cfg.define_knob("auto_unroll", [1])
    s, _ = matmul_gpu_template(cfg, A, B, C, use_shared=use_shared)
    return s


# ---------------------------------------------------------------------------
# conv2d (direct) — Figure 15 / Figure 14 workloads
# ---------------------------------------------------------------------------

def conv2d_gpu_template(cfg: ConfigSpace, data: te.Tensor, kernel: te.Tensor,
                        conv: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Tunable direct conv2d schedule for GPUs.

    Output channels and spatial positions are tiled over (block, thread,
    inner) loops; the padded input and the weights are cooperatively staged
    into shared memory at the outer reduction loop.
    """
    s = te.create_schedule(conv.op)
    n, f, y, x = s[conv].op.axis
    out_channels = f.extent_value()
    out_h = y.extent_value()
    out_w = x.extent_value()
    rc, ry, rx = s[conv].op.reduce_axis

    tile_f = cfg.define_split("tile_f", out_channels, num_outputs=3)
    tile_yx = cfg.define_split("tile_yx", out_h * out_w, num_outputs=3)
    tile_rc = cfg.define_split("tile_rc", rc.extent_value(), num_outputs=2)
    unroll = cfg.define_knob("auto_unroll", [0, 1])
    use_shared = cfg.define_knob("use_shared", [1, 0])

    # Keep the padding stage as a separate (fused-in by the graph pass later)
    # producer; find it among the inputs.
    # The padded-input producer keeps "_pad" in its (uniquified) name,
    # e.g. "conv2d_pad" or "conv2d_pad_3".
    pad_tensor = None
    for inp in conv.op.input_tensors():
        if "_pad" in inp.op.name:
            pad_tensor = inp

    OL = s.cache_write(conv, "local")

    # cache_write rewrites the output stage into a copy with fresh axes.
    n, f, y, x = s[conv].op.axis
    bf, tf, fi = tile_f.apply(s[conv], f)
    yx = s[conv].fuse(y, x)
    byx, tyx, yxi = tile_yx.apply(s[conv], yx)
    s[conv].reorder(n, bf, byx, tf, tyx, fi, yxi)
    s[conv].bind(bf, te.thread_axis("blockIdx.y"))
    s[conv].bind(byx, te.thread_axis("blockIdx.x"))
    s[conv].bind(tf, te.thread_axis("threadIdx.y"))
    s[conv].bind(tyx, te.thread_axis("threadIdx.x"))

    s[OL].compute_at(s[conv], tyx)
    rc_axis, ry_axis, rx_axis = s[OL].op.reduce_axis
    rco, rci = tile_rc.apply(s[OL], rc_axis)
    ol_axes = list(s[OL].op.axis)
    s[OL].reorder(rco, ry_axis, rx_axis, rci, *ol_axes[1:])
    if unroll.val:
        # Fully unroll the per-thread output tile (register tiling) so every
        # staged input value is reused across the unrolled output loops.
        s[OL].unroll(rci)
        for axis in ol_axes[1:]:
            s[OL].unroll(axis)

    if use_shared.val:
        readers = [OL]
        sources = [kernel] if pad_tensor is None else [pad_tensor, kernel]
        threads = max(tile_f.size[1] * tile_yx.size[1], 1)
        for source in sources:
            cache = s.cache_read(source, "shared", readers)
            s[cache].compute_at(s[OL], rco)
            axes = list(s[cache].op.axis)
            fused = axes[0]
            for axis in axes[1:]:
                fused = s[cache].fuse(fused, axis)
            outer, inner = s[cache].split(fused, factor=min(threads, 256))
            s[cache].bind(inner, te.thread_axis("threadIdx.x"))
    return s, [data, kernel, conv]


def schedule_conv2d_gpu(data: te.Tensor, kernel: te.Tensor, conv: te.Tensor) -> te.Schedule:
    """Reasonable fixed conv2d GPU schedule (fallback when no tuning log exists)."""
    cfg = ConfigSpace()
    s, _ = conv2d_gpu_template(cfg, data, kernel, conv)
    return s


# ---------------------------------------------------------------------------
# depthwise conv2d
# ---------------------------------------------------------------------------

def depthwise_conv2d_gpu_template(cfg: ConfigSpace, data: te.Tensor, kernel: te.Tensor,
                                  conv: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Tunable depthwise conv2d schedule: channel/spatial tiling, no reduction
    over channels so shared-memory staging is per-channel."""
    s = te.create_schedule(conv.op)
    n, c, y, x = s[conv].op.axis
    channels = c.extent_value()
    out_h = y.extent_value()
    out_w = x.extent_value()

    tile_c = cfg.define_split("tile_c", channels, num_outputs=3)
    tile_yx = cfg.define_split("tile_yx", out_h * out_w, num_outputs=3)
    unroll = cfg.define_knob("auto_unroll", [0, 1])

    OL = s.cache_write(conv, "local")

    n, c, y, x = s[conv].op.axis
    bc, tc, ci = tile_c.apply(s[conv], c)
    yx = s[conv].fuse(y, x)
    byx, tyx, yxi = tile_yx.apply(s[conv], yx)
    s[conv].reorder(n, bc, byx, tc, tyx, ci, yxi)
    s[conv].bind(bc, te.thread_axis("blockIdx.y"))
    s[conv].bind(byx, te.thread_axis("blockIdx.x"))
    s[conv].bind(tc, te.thread_axis("threadIdx.y"))
    s[conv].bind(tyx, te.thread_axis("threadIdx.x"))

    s[OL].compute_at(s[conv], tyx)
    ry_axis, rx_axis = s[OL].op.reduce_axis
    if unroll.val:
        s[OL].unroll(ry_axis)
        s[OL].unroll(rx_axis)
    return s, [data, kernel, conv]


def schedule_depthwise_conv2d_gpu(data: te.Tensor, kernel: te.Tensor,
                                  conv: te.Tensor) -> te.Schedule:
    cfg = ConfigSpace()
    s, _ = depthwise_conv2d_gpu_template(cfg, data, kernel, conv)
    return s


# ---------------------------------------------------------------------------
# dense
# ---------------------------------------------------------------------------

def dense_gpu_template(cfg: ConfigSpace, data: te.Tensor, weight: te.Tensor,
                       out: te.Tensor) -> Tuple[te.Schedule, List[te.Tensor]]:
    s = te.create_schedule(out.op)
    i, j = s[out].op.axis
    out_dim = j.extent_value()
    k_extent = int(s[out].op.reduce_axis[0].extent_value())

    tile_j = cfg.define_split("tile_j", out_dim, num_outputs=3)
    tile_k = cfg.define_split("tile_k", k_extent, num_outputs=2)
    unroll = cfg.define_knob("auto_unroll", [0, 1])

    OL = s.cache_write(out, "local")
    i, j = s[out].op.axis
    bj, tj, ji = tile_j.apply(s[out], j)
    s[out].reorder(i, bj, tj, ji)
    s[out].bind(bj, te.thread_axis("blockIdx.x"))
    s[out].bind(tj, te.thread_axis("threadIdx.x"))
    s[OL].compute_at(s[out], tj)
    ko, ki = tile_k.apply(s[OL], s[OL].op.reduce_axis[0])
    if unroll.val:
        s[OL].unroll(ki)
    WS = s.cache_read(weight, "shared", [OL])
    s[WS].compute_at(s[OL], ko)
    return s, [data, weight, out]


def schedule_dense_gpu(data: te.Tensor, weight: te.Tensor, out: te.Tensor) -> te.Schedule:
    cfg = ConfigSpace()
    s, _ = dense_gpu_template(cfg, data, weight, out)
    return s
