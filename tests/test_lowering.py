"""Integration tests: lowering schedules to loop programs and executing them.

Every test checks the lowered program's numerical output against NumPy,
verifying that schedule primitives preserve the program's semantics
(the paper's core requirement for schedule transformations).
"""

import numpy as np
import pytest

from repro import te, tir


def _run(schedule, args, *arrays):
    func = tir.lower(schedule, args)
    tir.run_lowered(func, *arrays)
    return func


def test_elementwise_lowering():
    A = te.placeholder((6, 7), name="A")
    B = te.compute((6, 7), lambda i, j: A[i, j] * 2.0 + 1.0, name="B")
    s = te.create_schedule(B.op)
    a = np.random.rand(6, 7).astype("float32")
    b = np.zeros((6, 7), dtype="float32")
    _run(s, [A, B], a, b)
    np.testing.assert_allclose(b, a * 2 + 1, rtol=1e-6)


def test_matmul_default_schedule():
    M, N, K = 9, 5, 7
    A = te.placeholder((M, K), name="A")
    B = te.placeholder((K, N), name="B")
    k = te.reduce_axis((0, K), name="k")
    C = te.compute((M, N), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k), name="C")
    s = te.create_schedule(C.op)
    a = np.random.rand(M, K).astype("float32")
    b = np.random.rand(K, N).astype("float32")
    c = np.zeros((M, N), dtype="float32")
    _run(s, [A, B, C], a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-5)


def test_matmul_tiled_reordered_unrolled_vectorized():
    M, N, K = 12, 10, 8
    A = te.placeholder((M, K), name="A")
    B = te.placeholder((K, N), name="B")
    k = te.reduce_axis((0, K), name="k")
    C = te.compute((M, N), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k), name="C")
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    io, jo, ii, ji = s[C].tile(i, j, 4, 5)
    ko, ki = s[C].split(k, factor=4)
    s[C].reorder(io, jo, ko, ii, ji, ki)
    s[C].unroll(ki)
    s[C].vectorize(ji)
    a = np.random.rand(M, K).astype("float32")
    b = np.random.rand(K, N).astype("float32")
    c = np.zeros((M, N), dtype="float32")
    _run(s, [A, B, C], a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-5)


def test_imperfect_split_guard():
    """A split that does not divide the extent must still produce correct results."""
    A = te.placeholder((10,), name="A")
    B = te.compute((10,), lambda i: A[i] + 1.0, name="B")
    s = te.create_schedule(B.op)
    outer, inner = s[B].split(s[B].op.axis[0], factor=4)   # 10 = 3*4 with guard
    a = np.arange(10, dtype="float32")
    b = np.zeros(10, dtype="float32")
    _run(s, [A, B], a, b)
    np.testing.assert_allclose(b, a + 1)


def test_fuse_then_split_lowering():
    A = te.placeholder((6, 8), name="A")
    B = te.compute((6, 8), lambda i, j: A[i, j] * 3.0, name="B")
    s = te.create_schedule(B.op)
    i, j = s[B].op.axis
    fused = s[B].fuse(i, j)
    outer, inner = s[B].split(fused, factor=5)   # imperfect split of fused loop
    a = np.random.rand(6, 8).astype("float32")
    b = np.zeros((6, 8), dtype="float32")
    _run(s, [A, B], a, b)
    np.testing.assert_allclose(b, a * 3, rtol=1e-6)


def test_compute_inline():
    A = te.placeholder((4, 4), name="A")
    B = te.compute((4, 4), lambda i, j: A[i, j] + 1.0, name="B")
    C = te.compute((4, 4), lambda i, j: B[i, j] * 2.0, name="C")
    s = te.create_schedule(C.op)
    s[B].compute_inline()
    func = tir.lower(s, [A, C])
    # The inlined stage must not allocate an intermediate buffer.
    assert all("B" != alloc.name for alloc in func.allocations)
    a = np.random.rand(4, 4).astype("float32")
    c = np.zeros((4, 4), dtype="float32")
    tir.run_lowered(func, a, c)
    np.testing.assert_allclose(c, (a + 1) * 2, rtol=1e-6)


def test_cache_write_and_compute_at():
    A = te.placeholder((8, 16), name="A")
    B = te.placeholder((8, 12), name="B")
    k = te.reduce_axis((0, 8), name="k")
    C = te.compute((16, 12), lambda y, x: te.sum(A[k, y] * B[k, x], axis=k), name="C")
    s = te.create_schedule(C.op)
    CL = s.cache_write(C, "local")
    y, x = s[C].op.axis
    yo, yi = s[C].split(y, factor=4)
    xo, xi = s[C].split(x, factor=4)
    s[C].reorder(yo, xo, yi, xi)
    s[CL].compute_at(s[C], xo)
    a = np.random.rand(8, 16).astype("float32")
    b = np.random.rand(8, 12).astype("float32")
    c = np.zeros((16, 12), dtype="float32")
    _run(s, [A, B, C], a, b, c)
    np.testing.assert_allclose(c, a.T @ b, rtol=1e-5)


def test_cache_read_shared_with_barrier():
    A = te.placeholder((8, 16), name="A")
    B = te.placeholder((8, 12), name="B")
    k = te.reduce_axis((0, 8), name="k")
    C = te.compute((16, 12), lambda y, x: te.sum(A[k, y] * B[k, x], axis=k), name="C")
    s = te.create_schedule(C.op)
    CL = s.cache_write(C, "local")
    y, x = s[C].op.axis
    yo, yi = s[C].split(y, factor=4)
    xo, xi = s[C].split(x, factor=4)
    s[C].reorder(yo, xo, yi, xi)
    s[CL].compute_at(s[C], xo)
    AA = s.cache_read(A, "shared", [CL])
    BB = s.cache_read(B, "shared", [CL])
    ko, ki = s[CL].split(s[CL].op.reduce_axis[0], factor=4)
    yl, xl = s[CL].op.axis
    s[CL].reorder(ko, yl, xl, ki)
    s[AA].compute_at(s[CL], ko)
    s[BB].compute_at(s[CL], ko)
    func = tir.lower(s, [A, B, C])
    counts = tir.count_statements(func.body)
    assert counts.get("Barrier", 0) >= 1            # inserted after shared stages
    a = np.random.rand(8, 16).astype("float32")
    b = np.random.rand(8, 12).astype("float32")
    c = np.zeros((16, 12), dtype="float32")
    tir.run_lowered(func, a, b, c)
    np.testing.assert_allclose(c, a.T @ b, rtol=1e-5)


def test_gpu_cooperative_matmul_schedule_correct():
    from repro.topi import nn
    from repro.topi.schedules import gpu as gpu_sched

    A = te.placeholder((32, 32), name="A")
    B = te.placeholder((32, 32), name="B")
    C = nn.matmul(A, B)
    s = gpu_sched.schedule_matmul_gpu(A, B, C, use_shared=True, tile=4, threads=4)
    func = tir.lower(s, [A, B, C])
    features = tir.extract_features(func)
    assert features.num_threads > 1
    assert features.bytes_in_scope("shared") > 0
    a = np.random.rand(32, 32).astype("float32")
    b = np.random.rand(32, 32).astype("float32")
    c = np.zeros((32, 32), dtype="float32")
    tir.run_lowered(func, a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-4)


def test_max_reduction():
    A = te.placeholder((5, 9), name="A")
    k = te.reduce_axis((0, 9), name="k")
    B = te.compute((5,), lambda i: te.max(A[i, k], axis=k), name="B")
    s = te.create_schedule(B.op)
    a = np.random.rand(5, 9).astype("float32")
    b = np.zeros((5,), dtype="float32")
    _run(s, [A, B], a, b)
    np.testing.assert_allclose(b, a.max(axis=1), rtol=1e-6)


def test_tensorize_gemm_intrinsic():
    """Tensorized matmul must match the untensorized result (Section 4.3)."""
    from repro.topi.schedules.vdla import declare_gemm_intrin

    size, tile = 8, 4
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    k = te.reduce_axis((0, size), name="k")
    C = te.compute((size, size), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k),
                   name="C")
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    io, ii = s[C].split(i, factor=tile)
    jo, ji = s[C].split(j, factor=tile)
    ko, ki = s[C].split(k, factor=tile)
    s[C].reorder(io, jo, ko, ii, ji, ki)
    s[C].tensorize(ii, declare_gemm_intrin(tile))
    func = tir.lower(s, [A, B, C])
    assert tir.count_statements(func.body).get("IntrinsicStmt", 0) > 0
    a = np.random.rand(size, size).astype("float32")
    b = np.random.rand(size, size).astype("float32")
    c = np.zeros((size, size), dtype="float32")
    tir.run_lowered(func, a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-4)


def test_virtual_thread_lowering_preserves_semantics():
    A = te.placeholder((8, 8), name="A")
    B = te.compute((8, 8), lambda i, j: A[i, j] + 5.0, name="B")
    s = te.create_schedule(B.op)
    i, j = s[B].op.axis
    vt, ii = s[B].split(i, nparts=2)
    s[B].bind(vt, te.thread_axis("vthread"))
    func = tir.lower(s, [A, B])
    expanded = tir.inject_virtual_threads(func)
    a = np.random.rand(8, 8).astype("float32")
    b = np.zeros((8, 8), dtype="float32")
    tir.run_lowered(expanded, a, b)
    np.testing.assert_allclose(b, a + 5, rtol=1e-6)


def test_lower_rejects_wrong_argument_count():
    A = te.placeholder((4,), name="A")
    B = te.compute((4,), lambda i: A[i] * 2.0, name="B")
    s = te.create_schedule(B.op)
    func = tir.lower(s, [A, B])
    with pytest.raises(ValueError):
        tir.run_lowered(func, np.zeros(4, dtype="float32"))
