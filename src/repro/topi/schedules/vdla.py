"""VDLA accelerator schedule templates (paper Sections 4.3, 4.4 and 6.4).

Accelerator schedules use the two TVM-specific primitives the paper
introduces for TPU-like hardware: ``tensorize`` (mapping a 16x16x16 block of
the computation onto the GEMM core) and virtual threading (exposing pipeline
parallelism that the DAE hardware recovers through explicit dependence
tokens).  Operands are staged through the accelerator's specialised memory
scopes (``inp_buffer`` / ``wgt_buffer`` / ``acc_buffer``).
"""

from __future__ import annotations

from typing import List, Tuple

from ... import te
from ...autotvm.space import ConfigSpace

__all__ = ["declare_gemm_intrin", "gemm_vdla_template", "schedule_gemm_vdla",
           "conv2d_as_gemm_workload"]


def declare_gemm_intrin(size: int = 16) -> te.TensorIntrin:
    """Declare the VDLA ``gemm16x16`` tensor intrinsic (Figure 5's vdla.gemm8x8,
    scaled to the PYNQ prototype's 16x16 unit)."""
    a = te.placeholder((size, size), name="a_tile")
    b = te.placeholder((size, size), name="b_tile")
    k = te.reduce_axis((0, size), name="k")
    c = te.compute((size, size),
                   lambda i, j: te.sum(a[i, k] * b[k, j], axis=k),
                   name="gemm_tile")

    def lower_rule(inputs, outputs):
        aa, bb = inputs
        cc = outputs[0]
        compute = te.hardware_intrin("vdla_gemm", aa.name, bb.name, cc.name)
        reset = te.hardware_intrin("vdla_fill_zero", cc.name)
        update = te.hardware_intrin("vdla_gemm_update", aa.name, bb.name, cc.name)
        return compute, reset, update

    return te.decl_tensor_intrin(c.op, lower_rule, name=f"vdla_gemm{size}x{size}")


def conv2d_as_gemm_workload(batch: int, in_channels: int, height: int, width: int,
                            out_channels: int, kernel: int, stride: int,
                            padding: int) -> Tuple[int, int, int]:
    """Map a conv2d layer to the (M, N, K) GEMM the VDLA executes.

    The accelerator consumes convolutions in an im2col-style blocked layout
    (the paper's "blocked 3-dimensional tensors"); the equivalent GEMM has
    M = output channels, N = output pixels, K = in_channels * kernel^2.
    """
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    m = out_channels
    n = batch * out_h * out_w
    k = in_channels * kernel * kernel
    return m, n, k


def _round_up(value: int, multiple: int) -> int:
    return ((value + multiple - 1) // multiple) * multiple


def gemm_vdla_template(cfg: ConfigSpace, m: int, n: int, k: int,
                       tile: int = 16,
                       acc_buffer_bytes: int = 128 << 10
                       ) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Tunable GEMM schedule for the VDLA.

    The output is blocked into ``(row_block x col_block)`` macro-tiles that
    live in the 128 kB accumulator buffer; for each reduction step a
    ``tile x col_block`` slice of the data matrix and a ``row_block x tile``
    slice of the weights are DMA-ed into the on-chip input/weight buffers and
    consumed by tensorized 16x16x16 GEMM-core invocations.  Large column
    blocks are what give the accelerator its operand reuse; virtual threads
    over the column-block loop expose pipeline parallelism for latency hiding
    (Section 4.4).
    """
    m_pad, n_pad, k_pad = (_round_up(m, tile), _round_up(n, tile), _round_up(k, tile))
    A = te.placeholder((m_pad, k_pad), name="A", dtype="int8")
    B = te.placeholder((k_pad, n_pad), name="B", dtype="int8")
    kk = te.reduce_axis((0, k_pad), name="k")
    C = te.compute((m_pad, n_pad),
                   lambda i, j: te.sum(A[i, kk] * B[kk, j], axis=kk),
                   name="C", dtype="int32")

    vthreads = cfg.define_knob("vthread", [2, 1, 4])
    row_choice = cfg.define_knob("row_block", [64, 32, 16])

    # Keep the accumulator macro-tile within the on-chip accumulator storage.
    row_block = min(int(row_choice.val), m_pad)
    row_block = max(tile, (row_block // tile) * tile)
    max_cols = max(tile, (acc_buffer_bytes // (4 * row_block) // tile) * tile)
    col_block = min(n_pad, max_cols)

    s = te.create_schedule(C.op)
    CL = s.cache_write(C, "acc_buffer")
    AL = s.cache_read(A, "wgt_buffer", [CL])   # weights
    BL = s.cache_read(B, "inp_buffer", [CL])   # im2col activations

    i, j = s[C].op.axis
    io, ii = s[C].split(i, factor=row_block)
    jo, ji = s[C].split(j, factor=col_block)
    s[C].reorder(io, jo, ii, ji)

    num_vthreads = int(vthreads.val)
    if num_vthreads > 1 and jo.extent_value() >= num_vthreads:
        jv, jo = s[C].split(jo, nparts=num_vthreads)
        s[C].bind(jv, te.thread_axis("vthread"))
        s[C].reorder(io, jv, jo, ii, ji)
    attach_axis = jo

    s[CL].compute_at(s[C], attach_axis)
    k_axis = s[CL].op.reduce_axis[0]
    ko, ki = s[CL].split(k_axis, factor=tile)
    yl, xl = s[CL].op.axis
    ylo, yli = s[CL].split(yl, factor=tile)
    xlo, xli = s[CL].split(xl, factor=tile)
    s[CL].reorder(ko, ylo, xlo, yli, xli, ki)
    s[AL].compute_at(s[CL], ko)
    s[BL].compute_at(s[CL], ko)

    intrin = declare_gemm_intrin(tile)
    s[CL].tensorize(yli, intrin)
    return s, [A, B, C]


def schedule_gemm_vdla(m: int, n: int, k: int, vthreads: int = 2,
                       tile: int = 16) -> Tuple[te.Schedule, List[te.Tensor]]:
    """Fixed VDLA GEMM schedule with an explicit virtual-thread count."""
    cfg = ConfigSpace()
    cfg.define_knob("vthread", [vthreads])
    cfg.define_split("tile_n", max(_round_up(n, tile) // tile, 1), num_outputs=2)
    return gemm_vdla_template(cfg, m, n, k, tile)
