"""Tests for the Keras- and ONNX-style frontend importers."""

import numpy as np
import pytest

from repro.frontend import (
    KerasConversionError,
    ONNXConversionError,
    from_keras,
    from_onnx,
)
from repro.graph import build
from repro.hardware import arm_cpu, cuda
from repro.runtime import graph_executor


def _keras_cnn_layers():
    return [
        {"class_name": "Conv2D", "filters": 8, "kernel_size": 3,
         "padding": "same", "activation": "relu"},
        {"class_name": "BatchNormalization"},
        {"class_name": "MaxPooling2D", "pool_size": 2},
        {"class_name": "GlobalAveragePooling2D"},
        {"class_name": "Dense", "units": 5, "activation": "softmax"},
    ]


class TestFromKeras:
    def test_basic_cnn_structure(self):
        graph, params = from_keras(_keras_cnn_layers(), input_shape=(3, 16, 16))
        ops = [n.op for n in graph.op_nodes]
        assert "conv2d" in ops
        assert "batch_norm" in ops
        assert "max_pool2d" in ops
        assert "dense" in ops
        assert "softmax" in ops

    def test_output_shape_is_classifier(self):
        graph, _params = from_keras(_keras_cnn_layers(), input_shape=(3, 16, 16))
        assert graph.outputs[0].shape == (1, 5)

    def test_batch_dimension_respected(self):
        graph, _params = from_keras(_keras_cnn_layers(), input_shape=(3, 16, 16),
                                    batch=4)
        assert graph.input_nodes[0].shape[0] == 4
        assert graph.outputs[0].shape[0] == 4

    def test_parameters_are_materialised(self):
        _graph, params = from_keras(_keras_cnn_layers(), input_shape=(3, 16, 16))
        assert params
        assert all(isinstance(v, np.ndarray) for v in params.values())

    def test_model_dict_form(self):
        model = {"name": "cnn", "layers": _keras_cnn_layers(),
                 "input_shape": (3, 16, 16)}
        graph, _params = from_keras(model)
        assert graph.outputs[0].shape == (1, 5)

    def test_same_padding(self):
        layers = [{"class_name": "Conv2D", "filters": 4, "kernel_size": 3,
                   "padding": "same"}]
        graph, _params = from_keras(layers, input_shape=(3, 10, 10))
        conv = [n for n in graph.op_nodes if n.op == "conv2d"][0]
        assert conv.shape[2:] == (10, 10)

    def test_valid_padding(self):
        layers = [{"class_name": "Conv2D", "filters": 4, "kernel_size": 3,
                   "padding": "valid"}]
        graph, _params = from_keras(layers, input_shape=(3, 10, 10))
        conv = [n for n in graph.op_nodes if n.op == "conv2d"][0]
        assert conv.shape[2:] == (8, 8)

    def test_strided_conv(self):
        layers = [{"class_name": "Conv2D", "filters": 4, "kernel_size": 3,
                   "strides": 2, "padding": "same"}]
        graph, _params = from_keras(layers, input_shape=(3, 16, 16))
        conv = [n for n in graph.op_nodes if n.op == "conv2d"][0]
        assert conv.shape[2:] == (8, 8)

    def test_depthwise_layer(self):
        layers = [{"class_name": "DepthwiseConv2D", "kernel_size": 3,
                   "padding": "same"}]
        graph, _params = from_keras(layers, input_shape=(6, 8, 8))
        ops = [n.op for n in graph.op_nodes]
        assert "depthwise_conv2d" in ops

    def test_conv_transpose_layer(self):
        layers = [{"class_name": "Conv2DTranspose", "filters": 4,
                   "kernel_size": 4, "strides": 2, "padding": 1}]
        graph, _params = from_keras(layers, input_shape=(8, 7, 7))
        assert any(n.op == "conv2d_transpose" for n in graph.op_nodes)

    def test_dense_auto_flattens_4d_input(self):
        layers = [{"class_name": "Dense", "units": 3}]
        graph, _params = from_keras(layers, input_shape=(2, 4, 4))
        ops = [n.op for n in graph.op_nodes]
        assert "flatten" in ops and "dense" in ops

    def test_use_bias_false_skips_bias(self):
        layers = [{"class_name": "Conv2D", "filters": 4, "kernel_size": 1,
                   "use_bias": False}]
        graph, _params = from_keras(layers, input_shape=(3, 8, 8))
        assert not any(n.op == "bias_add" for n in graph.op_nodes)

    def test_activation_layer(self):
        layers = [{"class_name": "Dense", "units": 4},
                  {"class_name": "Activation", "activation": "tanh"}]
        graph, _params = from_keras(layers, input_shape=(6,))
        assert any(n.op == "tanh" for n in graph.op_nodes)

    def test_leaky_relu_layer(self):
        layers = [{"class_name": "Conv2D", "filters": 4, "kernel_size": 1},
                  {"class_name": "LeakyReLU", "alpha": 0.1}]
        graph, _params = from_keras(layers, input_shape=(3, 8, 8))
        leaky = [n for n in graph.op_nodes if n.op == "leaky_relu"]
        assert leaky and leaky[0].attrs["alpha"] == pytest.approx(0.1)

    def test_dropout_becomes_noop_operator(self):
        layers = [{"class_name": "Dense", "units": 4},
                  {"class_name": "Dropout", "rate": 0.5}]
        graph, _params = from_keras(layers, input_shape=(6,))
        assert any(n.op == "dropout" for n in graph.op_nodes)

    def test_average_pooling(self):
        layers = [{"class_name": "AveragePooling2D", "pool_size": 2}]
        graph, _params = from_keras(layers, input_shape=(3, 8, 8))
        assert any(n.op == "avg_pool2d" for n in graph.op_nodes)

    def test_reshape_layer(self):
        layers = [{"class_name": "Reshape", "target_shape": (1, 3, 64)}]
        graph, _params = from_keras(layers, input_shape=(3, 8, 8))
        assert any(n.op == "reshape" for n in graph.op_nodes)

    def test_missing_input_shape_raises(self):
        with pytest.raises(KerasConversionError):
            from_keras(_keras_cnn_layers())

    def test_unknown_layer_raises(self):
        with pytest.raises(KerasConversionError):
            from_keras([{"class_name": "LSTM", "units": 8}], input_shape=(4,))

    def test_unknown_activation_raises(self):
        layers = [{"class_name": "Dense", "units": 4, "activation": "swish"}]
        with pytest.raises(KerasConversionError):
            from_keras(layers, input_shape=(6,))

    def test_layer_without_class_name_raises(self):
        with pytest.raises(KerasConversionError):
            from_keras([{"filters": 8}], input_shape=(3, 8, 8))

    def test_imported_model_compiles_and_runs(self):
        graph, params = from_keras(_keras_cnn_layers(), input_shape=(3, 16, 16))
        graph, module, params = build(graph, cuda(), params, opt_level=2)
        executor = graph_executor.create(module)
        executor.set_input(**params)
        executor.run(data=np.random.rand(1, 3, 16, 16).astype("float32"))
        out = executor.get_output(0).asnumpy()
        assert out.shape == (1, 5)
        assert np.allclose(out.sum(), 1.0, atol=1e-4)   # softmax output


def _onnx_mlp():
    return {
        "inputs": {"data": (1, 16)},
        "initializers": {"w0": (32, 16), "b0": (32,), "w1": (4, 32)},
        "nodes": [
            {"op_type": "Gemm", "inputs": ["data", "w0", "b0"], "outputs": ["h"]},
            {"op_type": "Relu", "inputs": ["h"], "outputs": ["hr"]},
            {"op_type": "Gemm", "inputs": ["hr", "w1"], "outputs": ["out"]},
        ],
        "outputs": ["out"],
    }


class TestFromONNX:
    def test_mlp_structure(self):
        graph, params = from_onnx(_onnx_mlp())
        ops = [n.op for n in graph.op_nodes]
        assert ops.count("dense") == 2
        assert "relu" in ops
        assert "bias_add" in ops            # Gemm bias becomes bias_add
        assert set(params) == {"w0", "b0", "w1"}

    def test_output_shape(self):
        graph, _params = from_onnx(_onnx_mlp())
        assert graph.outputs[0].shape == (1, 4)

    def test_initializer_arrays_are_used_verbatim(self):
        description = _onnx_mlp()
        weight = np.ones((32, 16), dtype="float32")
        description["initializers"]["w0"] = weight
        _graph, params = from_onnx(description)
        assert np.array_equal(params["w0"], weight)

    def test_conv_node_with_padding_and_stride(self):
        description = {
            "inputs": {"x": (1, 3, 16, 16)},
            "initializers": {"w": (8, 3, 3, 3)},
            "nodes": [{"op_type": "Conv", "inputs": ["x", "w"], "outputs": ["y"],
                       "attrs": {"strides": 2, "pads": 1}}],
            "outputs": ["y"],
        }
        graph, _params = from_onnx(description)
        assert graph.outputs[0].shape == (1, 8, 8, 8)

    def test_grouped_conv_becomes_depthwise(self):
        description = {
            "inputs": {"x": (1, 8, 8, 8)},
            "initializers": {"w": (8, 1, 3, 3)},
            "nodes": [{"op_type": "Conv", "inputs": ["x", "w"], "outputs": ["y"],
                       "attrs": {"pads": 1, "group": 8}}],
            "outputs": ["y"],
        }
        graph, _params = from_onnx(description)
        assert any(n.op == "depthwise_conv2d" for n in graph.op_nodes)

    def test_identity_is_aliased_away(self):
        description = {
            "inputs": {"x": (1, 4)},
            "initializers": {"w": (4, 4)},
            "nodes": [
                {"op_type": "Identity", "inputs": ["x"], "outputs": ["xi"]},
                {"op_type": "Gemm", "inputs": ["xi", "w"], "outputs": ["y"]},
            ],
            "outputs": ["y"],
        }
        graph, _params = from_onnx(description)
        assert not any(n.op == "identity" for n in graph.op_nodes)

    def test_pool_attrs_translated(self):
        description = {
            "inputs": {"x": (1, 2, 8, 8)},
            "initializers": {},
            "nodes": [{"op_type": "MaxPool", "inputs": ["x"], "outputs": ["y"],
                       "attrs": {"kernel_shape": 2, "strides": 2}}],
            "outputs": ["y"],
        }
        graph, _params = from_onnx(description)
        assert graph.outputs[0].shape == (1, 2, 4, 4)

    def test_batch_override(self):
        graph, _params = from_onnx(_onnx_mlp(), batch=8)
        assert graph.input_nodes[0].shape[0] == 8

    def test_missing_inputs_raises(self):
        with pytest.raises(ONNXConversionError):
            from_onnx({"nodes": [{"op_type": "Relu", "inputs": ["x"],
                                  "outputs": ["y"]}], "outputs": ["y"]})

    def test_empty_nodes_raises(self):
        with pytest.raises(ONNXConversionError):
            from_onnx({"inputs": {"x": (1, 4)}, "nodes": [], "outputs": []})

    def test_unknown_operator_raises(self):
        description = {
            "inputs": {"x": (1, 4)},
            "nodes": [{"op_type": "Einsum", "inputs": ["x"], "outputs": ["y"]}],
            "outputs": ["y"],
        }
        with pytest.raises(ONNXConversionError):
            from_onnx(description)

    def test_undefined_value_raises(self):
        description = {
            "inputs": {"x": (1, 4)},
            "nodes": [{"op_type": "Relu", "inputs": ["missing"], "outputs": ["y"]}],
            "outputs": ["y"],
        }
        with pytest.raises(ONNXConversionError):
            from_onnx(description)

    def test_missing_output_raises(self):
        description = _onnx_mlp()
        description["outputs"] = ["never_produced"]
        with pytest.raises(ONNXConversionError):
            from_onnx(description)

    def test_imported_model_compiles_on_cpu(self):
        graph, params = from_onnx(_onnx_mlp())
        _graph, module, params = build(graph, arm_cpu(), params, opt_level=2)
        executor = graph_executor.create(module)
        executor.set_input(**params)
        executor.run(data=np.random.rand(1, 16).astype("float32"))
        assert executor.get_output(0).asnumpy().shape == (1, 4)
        assert module.total_time > 0
