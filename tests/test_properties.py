"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import autotvm, te, tir
from repro.graph.passes import plan_memory
from repro.frontend.builder import ModelBuilder
from repro.te.expr import Var, simplify, substitute
from repro.tir.interpreter import evaluate_expr


@settings(max_examples=40, deadline=None)
@given(a=st.integers(-50, 50), b=st.integers(-50, 50), c=st.integers(1, 20))
def test_simplify_preserves_value(a, b, c):
    """Simplification never changes the value of an expression."""
    x = Var("x")
    expr = (x + a) * b + (x * c - x * c) + (a - a)
    env = {x: 7}
    assert evaluate_expr(simplify(expr), env) == evaluate_expr(expr, env)


@settings(max_examples=30, deadline=None)
@given(value=st.integers(0, 100), offset=st.integers(-20, 20))
def test_substitute_then_evaluate(value, offset):
    x, y = Var("x"), Var("y")
    expr = x * 3 + y
    substituted = substitute(expr, {x: te.const(value)})
    assert evaluate_expr(substituted, {y: offset}) == value * 3 + offset


@settings(max_examples=15, deadline=None)
@given(m=st.integers(2, 12), n=st.integers(2, 12), k=st.integers(2, 10),
       tile_m=st.integers(1, 6), tile_n=st.integers(1, 6))
def test_split_reorder_preserve_matmul_semantics(m, n, k, tile_m, tile_n):
    """Any split/reorder combination preserves the program's meaning."""
    A = te.placeholder((m, k), name="A")
    B = te.placeholder((k, n), name="B")
    kk = te.reduce_axis((0, k), name="kk")
    C = te.compute((m, n), lambda i, j: te.sum(A[i, kk] * B[kk, j], axis=kk),
                   name="C")
    s = te.create_schedule(C.op)
    i, j = s[C].op.axis
    io, ii = s[C].split(i, factor=min(tile_m, m))
    jo, ji = s[C].split(j, factor=min(tile_n, n))
    s[C].reorder(jo, io, ji, ii, s[C].op.reduce_axis[0])
    func = tir.lower(s, [A, B, C])
    a = np.random.rand(m, k).astype("float32")
    b = np.random.rand(k, n).astype("float32")
    c = np.zeros((m, n), dtype="float32")
    tir.run_lowered(func, a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-5)


@settings(max_examples=20, deadline=None)
@given(extent=st.integers(1, 64), parts=st.integers(2, 3))
def test_config_space_split_candidates_multiply_to_extent(extent, parts):
    space = autotvm.ConfigSpace()
    space.define_split("tile", extent, num_outputs=parts)
    for candidate in space._candidates["tile"]:
        product = 1
        for size in candidate.size:
            product *= size
        assert product == extent
        assert len(candidate.size) == parts


@settings(max_examples=20, deadline=None)
@given(index=st.integers(0, 10_000))
def test_config_space_index_bijection(index):
    space = autotvm.ConfigSpace()
    space.define_split("a", 32, num_outputs=2)
    space.define_split("b", 24, num_outputs=2)
    space.define_knob("c", [0, 1, 2])
    index = index % len(space)
    cfg = space.get(index)
    knobs = space.knob_indices(index)
    assert space.index_of(dict(zip(space.knob_names, knobs))) == index
    assert cfg.index == index


@settings(max_examples=10, deadline=None)
@given(layers=st.integers(2, 6), channels=st.integers(4, 16), seed=st.integers(0, 100))
def test_memory_plan_never_overlaps_live_tensors(layers, channels, seed):
    """The static memory planner must never assign two simultaneously-live
    tensors to the same storage token."""
    b = ModelBuilder("prop", seed=seed)
    data = b.input("data", (1, channels, 8, 8))
    net = data
    for i in range(layers):
        net = b.relu(b.conv2d(net, channels, 3, 1, 1, name=f"conv{i}"))
    graph, _params = b.finalize(net)
    graph.infer_shapes({"data": (1, channels, 8, 8)})
    plan = plan_memory(graph)

    consumers = graph.consumers()
    order = {id(n): i for i, n in enumerate(graph.nodes)}
    live_ranges = {}
    for node in graph.op_nodes:
        last = max([order[id(u)] for u in consumers[id(node)]],
                   default=order[id(node)])
        live_ranges[node.name] = (order[id(node)], last)
    names = list(live_ranges)
    for i, first in enumerate(names):
        for second in names[i + 1:]:
            if plan.storage_of[first] != plan.storage_of[second]:
                continue
            s1, e1 = live_ranges[first]
            s2, e2 = live_ranges[second]
            assert e1 < s2 or e2 < s1, \
                f"{first} and {second} overlap but share storage"
    assert plan.planned_bytes <= plan.naive_bytes


@settings(max_examples=20, deadline=None)
@given(values=st.lists(st.floats(1e-6, 1e3, allow_nan=False), min_size=3, max_size=20))
def test_rank_correlation_bounds(values):
    from repro.autotvm.cost_model import rank_correlation

    scores = np.asarray(values)
    corr = rank_correlation(scores, scores)
    assert -1.0 <= corr <= 1.0 + 1e-9
    if len(set(values)) > 1:
        assert corr > 0.99
