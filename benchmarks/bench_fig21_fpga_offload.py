"""Figure 21: offloading ResNet-18 convolutions to the FPGA accelerator.

Breaks ResNet-18 inference time into convolution and other operators for a
CPU-only build and a CPU+VDLA heterogeneous build.  In the paper the
offloaded convolutions see a 40x speedup while the end-to-end gain is limited
by the layers that stay on the CPU (Amdahl's law).
"""

import pytest

import repro
from common import build_model, emit_summary, get_target, print_series


def _evaluate():
    # The FPGA platform's host CPU is the PYNQ board's dual-core Cortex A9
    # (Section 6.4), not the Cortex A53 used in the embedded-CPU experiments.
    cpu_target = get_target("pynq_cpu")
    cpu_module = repro.compile(build_model("resnet-18"), target=cpu_target)

    het_module = repro.compile(
        build_model("resnet-18"), target=cpu_target,
        heterogeneous_targets={"conv2d": get_target("vdla")})
    return cpu_module, het_module


def _breakdown(module):
    conv = 0.0
    other = 0.0
    for kernel in module.kernels:
        if kernel.group.master.op == "conv2d":
            conv += kernel.time_seconds
        else:
            other += kernel.time_seconds
    return conv, other


def test_fig21_fpga_offload(benchmark):
    cpu_module, het_module = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    cpu_conv, cpu_other = _breakdown(cpu_module)
    het_conv, het_other = _breakdown(het_module)
    rows = [
        ("TVM ARM", {"conv (ms)": cpu_conv * 1e3, "other (ms)": cpu_other * 1e3,
                     "total (ms)": (cpu_conv + cpu_other) * 1e3}),
        ("TVM ARM+FPGA", {"conv (ms)": het_conv * 1e3, "other (ms)": het_other * 1e3,
                          "total (ms)": (het_conv + het_other) * 1e3}),
    ]
    print_series("Figure 21: ResNet-18 inference time breakdown", rows)
    conv_speedup = cpu_conv / het_conv
    total_speedup = (cpu_conv + cpu_other) / (het_conv + het_other)
    print(f"convolution speedup from offloading: {conv_speedup:.1f}x, "
          f"end-to-end: {total_speedup:.2f}x")
    benchmark.extra_info["conv_offload_speedup"] = round(conv_speedup, 1)
    benchmark.extra_info["end_to_end_speedup"] = round(total_speedup, 2)
    emit_summary("fig21_fpga_offload", {
        "conv_offload_speedup": round(conv_speedup, 2),
        "end_to_end_speedup": round(total_speedup, 3)})
    # Offloaded convolutions should speed up by a large factor (paper: 40x)
    # while the end-to-end gain is bounded by the CPU-resident layers.
    assert conv_speedup > 5.0
    assert total_speedup < conv_speedup
    assert total_speedup > 1.0
