"""Tests for targets, simulated hardware models and the Table 2 workloads."""

import math

import numpy as np
import pytest

from repro import te, tir
from repro.hardware import (
    SCHEDULE_PRIMITIVE_SUPPORT,
    EmbeddedCPU,
    MobileGPU,
    ServerGPU,
    arm_a53_params,
    arm_cpu,
    cortex_a9_params,
    create_target,
    cuda,
    mali,
    mali_t860_params,
    pynq_cpu,
    titan_x_params,
    vdla,
)
from repro.topi import nn as topi_nn
from repro.topi.schedules.cpu import conv2d_cpu_template, dense_cpu_template
from repro.topi.schedules.gpu import schedule_matmul_gpu
from repro.workloads import (
    MOBILENET_DEPTHWISE_WORKLOADS,
    RESNET_CONV_WORKLOADS,
    all_workloads,
)


class TestTargets:
    @pytest.mark.parametrize("name,device_type", [
        ("cuda", "gpu"), ("arm_cpu", "cpu"), ("mali", "mali"),
        ("vdla", "vdla"), ("pynq_cpu", "cpu"),
    ])
    def test_create_target_by_name(self, name, device_type):
        assert create_target(name).device_type == device_type

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            create_target("tpu_v4")

    def test_primitive_support_matches_figure6(self):
        """Figure 6: memory scopes for GPU/accel, latency hiding only on accel."""
        assert SCHEDULE_PRIMITIVE_SUPPORT["cpu"]["special_memory_scope"] is False
        assert SCHEDULE_PRIMITIVE_SUPPORT["gpu"]["special_memory_scope"] is True
        assert SCHEDULE_PRIMITIVE_SUPPORT["gpu"]["latency_hiding"] is False
        assert SCHEDULE_PRIMITIVE_SUPPORT["accel"]["latency_hiding"] is True
        for backend in SCHEDULE_PRIMITIVE_SUPPORT.values():
            assert backend["loop_transformations"] is True
            assert backend["tensorization"] is True

    def test_target_properties(self):
        assert cuda().max_threads_per_block == 1024
        assert arm_cpu().num_cores == 4
        assert pynq_cpu().num_cores == 2

    def test_device_parameters_are_distinct(self):
        assert titan_x_params().peak_flops > mali_t860_params().peak_flops
        assert arm_a53_params().peak_flops > cortex_a9_params().peak_flops


def _matmul_features(size=1024, use_shared=True, tile=8, threads=8):
    A = te.placeholder((size, size), name="A")
    B = te.placeholder((size, size), name="B")
    C = topi_nn.matmul(A, B)
    schedule = schedule_matmul_gpu(A, B, C, use_shared=use_shared, tile=tile,
                                   threads=threads)
    func = tir.lower(schedule, [A, B, C], name="mm")
    return tir.extract_features(func)


class TestServerGPUModel:
    def test_cooperative_fetching_helps(self):
        """Figure 7's mechanism: shared-memory staging beats shared-nothing."""
        model = ServerGPU()
        coop = model.estimate(_matmul_features(use_shared=True))
        nothing = model.estimate(_matmul_features(use_shared=False))
        assert coop < nothing

    def test_excessive_shared_memory_is_invalid(self):
        from repro.tir.analysis import ProgramFeatures

        features = ProgramFeatures(flops=1e6)
        features.allocation_bytes["shared"] = 1 << 20   # 1 MB > 48 kB limit
        assert math.isinf(ServerGPU().estimate(features))

    def test_too_many_threads_per_block_is_invalid(self):
        from repro.tir.analysis import ProgramFeatures

        features = ProgramFeatures(flops=1e6)
        features.thread_extents["threadIdx.x"] = 4096.0
        assert math.isinf(ServerGPU().estimate(features))

    def test_mobile_gpu_slower_than_server(self):
        features = _matmul_features()
        assert MobileGPU().estimate(features) > ServerGPU().estimate(features)

    def test_measurement_noise_is_bounded(self):
        model = ServerGPU()
        features = _matmul_features()
        base = model.estimate(features)
        result = model.measure(features, number=5)
        assert result.valid
        assert 0.5 * base <= result.mean_time <= 1.5 * base


def _conv_cpu_features():
    from repro.autotvm.space import ConfigSpace

    data = te.placeholder((1, 16, 28, 28), name="data")
    kernel = te.placeholder((32, 16, 3, 3), name="kernel")
    conv = topi_nn.conv2d_nchw(data, kernel, 1, 1)
    schedule, tensors = conv2d_cpu_template(ConfigSpace(), data, kernel, conv)
    func = tir.lower(schedule, tensors, name="conv_cpu")
    return tir.extract_features(func)


class TestEmbeddedCPUModel:
    def test_parallel_extent_speeds_up(self):
        """Multi-core ``parallel`` annotations lower the simulated latency."""
        import copy

        model = EmbeddedCPU()
        serial = _conv_cpu_features()
        serial.parallel_extent = 1.0
        parallel = copy.deepcopy(serial)
        parallel.parallel_extent = 4.0
        assert model.estimate(parallel) < model.estimate(serial)

    def test_vector_lanes_speed_up(self):
        import copy

        model = EmbeddedCPU()
        scalar = _conv_cpu_features()
        scalar.vector_lanes = 1.0
        vectorized = copy.deepcopy(scalar)
        vectorized.vector_lanes = 4.0
        assert model.estimate(vectorized) < model.estimate(scalar)

    def test_cortex_a9_slower_than_a53(self):
        features = _conv_cpu_features()
        a53 = EmbeddedCPU(arm_a53_params()).estimate(features)
        a9 = EmbeddedCPU(cortex_a9_params()).estimate(features)
        assert a9 > a53


class TestTable2Workloads:
    def test_counts_match_paper(self):
        assert len(RESNET_CONV_WORKLOADS) == 12
        assert len(MOBILENET_DEPTHWISE_WORKLOADS) == 9

    def test_c1_is_the_stem_conv(self):
        c1 = RESNET_CONV_WORKLOADS[0]
        assert (c1.height, c1.width) == (224, 224)
        assert (c1.in_channels, c1.out_channels) == (3, 64)
        assert (c1.kernel, c1.stride) == (7, 2)

    def test_c7_matches_paper_row(self):
        c7 = RESNET_CONV_WORKLOADS[6]
        assert (c7.height, c7.in_channels, c7.out_channels, c7.kernel, c7.stride) \
            == (28, 128, 256, 3, 2)

    def test_depthwise_channels_grow_as_resolution_shrinks(self):
        d1 = MOBILENET_DEPTHWISE_WORKLOADS[0]
        d9 = MOBILENET_DEPTHWISE_WORKLOADS[-1]
        assert d1.height > d9.height
        assert d1.channels < d9.channels

    def test_all_workloads_index(self):
        table = all_workloads()
        assert "C1" in table and "D9" in table
        assert len(table) == 21

    @pytest.mark.parametrize("workload", RESNET_CONV_WORKLOADS)
    def test_conv_workloads_use_same_padding(self, workload):
        """Table 2: every operator uses 'SAME' padding."""
        assert workload.padding == workload.kernel // 2
