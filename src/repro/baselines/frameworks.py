"""Simulated framework baselines (TensorFlow, TF-XLA, MXNet, TFLite, ACL).

A framework executes the *unfused* graph operator-by-operator, calling the
vendor library for each kernel and paying per-operator dispatch overhead.
TensorFlow-XLA additionally fuses element-wise chains (its JIT) but relies on
its own, slightly less tuned code generation for the heavy operators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..graph.ir import Graph, Node
from ..graph.ops import OP_REGISTRY, OpPattern
from ..graph.passes import fuse_ops
from ..hardware.target import Target, arm_cpu, cuda, mali
from .profiles import (
    ACL_PROFILE,
    CUDNN_PROFILE,
    FRAMEWORK_OVERHEADS,
    MXNET_KERNEL_PROFILE,
    TFLITE_PROFILE,
    LibraryProfile,
)
from .vendor import VendorLibrary

__all__ = ["FrameworkResult", "FrameworkSim", "TensorFlowSim", "TensorFlowXLASim",
           "MXNetSim", "TFLiteSim", "ACLSim", "framework_for"]


@dataclass
class FrameworkResult:
    """End-to-end estimate of a framework executing a graph."""

    name: str
    total_time: float
    kernel_time: float
    overhead_time: float
    num_kernels: int


class FrameworkSim:
    """Base class: unfused execution through a vendor library."""

    name = "framework"
    overhead_key = "tensorflow"
    supports_fusion = False
    #: operator types the framework/baseline cannot run at all (paper notes
    #: DCGAN/LSTM are unsupported by TFLite and ACL).
    unsupported_ops: Tuple[str, ...] = ()

    def __init__(self, target: Optional[Target] = None,
                 profile: Optional[LibraryProfile] = None):
        self.target = target or cuda()
        self.profile = profile or CUDNN_PROFILE
        self.library = VendorLibrary(self.profile, self.target)

    # ------------------------------------------------------------------ api
    def supports(self, graph: Graph) -> bool:
        return not any(node.op in self.unsupported_ops for node in graph.op_nodes)

    def run_estimate(self, graph: Graph,
                     input_shapes: Dict[str, Tuple[int, ...]],
                     dtype: str = "float32") -> FrameworkResult:
        graph.infer_shapes(input_shapes)
        if not self.supports(graph):
            raise NotImplementedError(
                f"{self.name} does not support this workload "
                f"(unsupported operators: {self.unsupported_ops})")
        overhead_per_op = FRAMEWORK_OVERHEADS[self.overhead_key]
        kernel_time = 0.0
        num_kernels = 0
        if self.supports_fusion:
            groups = fuse_ops(graph, enabled=True)
            for group in groups:
                kernel_time += self.library.op_time(group.master, dtype)
                for node in group.nodes:
                    if node is group.master:
                        continue
                    # fused element-wise work is almost free
                    spec = OP_REGISTRY[node.op]
                    flops = spec.flops([tuple(p.shape) for p in node.inputs],
                                       tuple(node.shape), node.attrs)
                    kernel_time += flops / self.target.model.params.peak_flops * 2.0
                num_kernels += 1
        else:
            for node in graph.op_nodes:
                kernel_time += self.library.op_time(node, dtype)
                num_kernels += 1
        overhead = overhead_per_op * num_kernels
        return FrameworkResult(self.name, kernel_time + overhead, kernel_time,
                               overhead, num_kernels)


class TensorFlowSim(FrameworkSim):
    """TensorFlow v1.7 + cuDNN v7 / cuBLAS v8 on the server GPU."""

    name = "TensorFlow"
    overhead_key = "tensorflow"


class TensorFlowXLASim(FrameworkSim):
    """TensorFlow XLA: JIT fusion of element-wise chains, own codegen for
    heavy operators (slightly below cuDNN on common convolutions)."""

    name = "TensorFlow-XLA"
    overhead_key = "tensorflow-xla"
    supports_fusion = True

    def __init__(self, target: Optional[Target] = None):
        # XLA's JIT generates its own convolution kernels rather than calling
        # cuDNN; at the paper's timeframe that codegen trailed cuDNN on the
        # common shapes while handling unusual shapes about as poorly.
        profile = LibraryProfile(
            name="XLA",
            conv2d=CUDNN_PROFILE.conv2d * 0.65,
            conv2d_1x1=CUDNN_PROFILE.conv2d_1x1 * 0.7,
            conv2d_unusual=CUDNN_PROFILE.conv2d_unusual * 0.9,
            depthwise=CUDNN_PROFILE.depthwise * 1.1,
            dense=CUDNN_PROFILE.dense * 0.9,
            elementwise=CUDNN_PROFILE.elementwise,
            conv2d_transpose=CUDNN_PROFILE.conv2d_transpose * 0.9,
        )
        super().__init__(target or cuda(), profile)


class MXNetSim(FrameworkSim):
    """MXNet v1.1 + cuDNN/cuBLAS, with its own depthwise kernels."""

    name = "MXNet"
    overhead_key = "mxnet"

    def __init__(self, target: Optional[Target] = None):
        super().__init__(target or cuda(), MXNET_KERNEL_PROFILE)


class TFLiteSim(FrameworkSim):
    """TensorFlow Lite on the ARM Cortex A53 (Figure 16/17 baseline)."""

    name = "TensorFlow Lite"
    overhead_key = "tflite"
    unsupported_ops = ("conv2d_transpose", "sigmoid")   # no DCGAN / LSTM support

    def __init__(self, target: Optional[Target] = None):
        super().__init__(target or arm_cpu(), TFLITE_PROFILE)


class ACLSim(FrameworkSim):
    """ARM Compute Library v18.03 on the Mali GPU (Figure 19 baseline)."""

    name = "ARM ComputeLib"
    overhead_key = "arm-compute-lib"
    unsupported_ops = ("conv2d_transpose", "sigmoid")   # no DCGAN / LSTM support

    def __init__(self, target: Optional[Target] = None):
        super().__init__(target or mali(), ACL_PROFILE)


def framework_for(name: str, target: Optional[Target] = None) -> FrameworkSim:
    """Factory for framework baselines by name."""
    table = {
        "tensorflow": TensorFlowSim,
        "tensorflow-xla": TensorFlowXLASim,
        "mxnet": MXNetSim,
        "tflite": TFLiteSim,
        "acl": ACLSim,
    }
    key = name.lower()
    if key not in table:
        raise KeyError(f"Unknown framework {name!r}; available: {sorted(table)}")
    return table[key](target)
