"""Ultra low-precision (bit-serial) convolution declarations (Section 6.2).

Low-precision inference packs quantized activations/weights into standard
integer words and replaces multiplication with AND + popcount reductions.
The declaration below mirrors that structure so its lowered loop program has
the right operation counts and memory traffic for the cost models; numerical
results come from :func:`repro.topi.reference.bitserial_conv2d_nchw`.
"""

from __future__ import annotations

import math
from typing import Tuple

from .. import te

__all__ = ["bitserial_conv2d_packed", "packed_shape"]


def packed_shape(channels: int, word_bits: int = 32) -> int:
    """Number of machine words needed to pack ``channels`` 1-bit lanes."""
    return max(1, math.ceil(channels / word_bits))


def bitserial_conv2d_packed(batch: int, in_channels: int, height: int, width: int,
                            out_channels: int, kernel: int, stride: int,
                            padding: int, activation_bits: int = 2,
                            weight_bits: int = 1, word_bits: int = 32,
                            name: str = "bitserial_conv2d"
                            ) -> Tuple[te.Tensor, te.Tensor, te.Tensor]:
    """Declare a packed bit-serial conv2d.

    Returns ``(data_packed, kernel_packed, output)`` where the packed inputs
    have the per-bit-plane layout ``(N, AB, C_words, H, W)`` /
    ``(F, WB, C_words, KH, KW)``.
    """
    c_words = packed_shape(in_channels, word_bits)
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1

    data = te.placeholder((batch, activation_bits, c_words, height + 2 * padding,
                           width + 2 * padding), dtype="int32", name=f"{name}_data")
    weight = te.placeholder((out_channels, weight_bits, c_words, kernel, kernel),
                            dtype="int32", name=f"{name}_weight")

    ab = te.reduce_axis((0, activation_bits), name="ab")
    wb = te.reduce_axis((0, weight_bits), name="wb")
    ry = te.reduce_axis((0, kernel), name="ry")
    rx = te.reduce_axis((0, kernel), name="rx")
    rcw = te.reduce_axis((0, c_words), name="rcw")

    out = te.compute(
        (batch, out_channels, out_h, out_w),
        lambda n, f, y, x: te.sum(
            te.Call("popcount",
                    [data[n, ab, rcw, y * stride + ry, x * stride + rx]
                     * weight[f, wb, rcw, ry, rx]], dtype="int32")
            * (1 << 0),
            axis=[ab, wb, ry, rx, rcw]),
        name=name, dtype="int32")
    return data, weight, out
