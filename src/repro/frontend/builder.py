"""Symbolic model builder (the role played by ``t.frontend.from_keras`` etc.).

The paper imports models from existing frameworks; this reproduction provides
a small Keras-like builder that produces the same artefact — a computational
:class:`~repro.graph.ir.Graph` plus a parameter dictionary with randomly
initialised weights — for the evaluation workloads.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.ir import Graph, Node

__all__ = ["ModelBuilder"]

IntPair = Union[int, Tuple[int, int]]


class ModelBuilder:
    """Builds graphs layer by layer, creating parameters as it goes."""

    def __init__(self, name: str = "model", seed: int = 0, dtype: str = "float32"):
        self.name = name
        self.dtype = dtype
        self.params: Dict[str, np.ndarray] = {}
        self.rng = np.random.default_rng(seed)
        self._counter: Dict[str, int] = {}

    # ------------------------------------------------------------------ helpers
    def _unique(self, prefix: str) -> str:
        count = self._counter.get(prefix, 0)
        self._counter[prefix] = count + 1
        return f"{prefix}{count}"

    def _param(self, name: str, shape: Sequence[int], scale: float = 0.1) -> Node:
        array = (self.rng.standard_normal(tuple(shape)) * scale).astype(self.dtype)
        self.params[name] = array
        node = Node("null", name)
        node.shape = tuple(shape)
        node.dtype = self.dtype
        return node

    def _op(self, op: str, inputs: List[Node], attrs: Optional[Dict] = None,
            name: Optional[str] = None) -> Node:
        node = Node(op, name or self._unique(op), inputs, attrs or {})
        # Infer the output shape eagerly so later layers can size their
        # parameters (the graph pass re-checks shapes after rewriting).
        from ..graph.ops import OP_REGISTRY

        spec = OP_REGISTRY[node.op]
        node.shape = spec.infer_shape([tuple(p.shape) for p in inputs], node.attrs)
        node.dtype = self.dtype
        return node

    # ------------------------------------------------------------------ layers
    def input(self, name: str, shape: Sequence[int]) -> Node:
        node = Node("null", name)
        node.shape = tuple(shape)
        node.dtype = self.dtype
        return node

    def conv2d(self, data: Node, out_channels: int, kernel: IntPair,
               stride: IntPair = 1, padding: IntPair = 0,
               name: Optional[str] = None) -> Node:
        name = name or self._unique("conv")
        k_h, k_w = (kernel, kernel) if isinstance(kernel, int) else kernel
        in_channels = data.shape[1] if data.shape else 0
        weight = self._param(f"{name}_weight", (out_channels, in_channels, k_h, k_w))
        return self._op("conv2d", [data, weight],
                        {"strides": stride, "padding": padding}, name)

    def depthwise_conv2d(self, data: Node, kernel: IntPair, stride: IntPair = 1,
                         padding: IntPair = 0, name: Optional[str] = None) -> Node:
        name = name or self._unique("dwconv")
        k_h, k_w = (kernel, kernel) if isinstance(kernel, int) else kernel
        channels = data.shape[1]
        weight = self._param(f"{name}_weight", (channels, 1, k_h, k_w))
        return self._op("depthwise_conv2d", [data, weight],
                        {"strides": stride, "padding": padding}, name)

    def conv2d_transpose(self, data: Node, out_channels: int, kernel: IntPair,
                         stride: IntPair = 2, padding: IntPair = 1,
                         name: Optional[str] = None) -> Node:
        name = name or self._unique("deconv")
        k_h, k_w = (kernel, kernel) if isinstance(kernel, int) else kernel
        in_channels = data.shape[1]
        weight = self._param(f"{name}_weight", (in_channels, out_channels, k_h, k_w))
        return self._op("conv2d_transpose", [data, weight],
                        {"strides": stride, "padding": padding}, name)

    def dense(self, data: Node, units: int, name: Optional[str] = None) -> Node:
        name = name or self._unique("dense")
        in_dim = data.shape[-1]
        weight = self._param(f"{name}_weight", (units, in_dim))
        return self._op("dense", [data, weight], {}, name)

    def bias_add(self, data: Node, name: Optional[str] = None) -> Node:
        name = name or self._unique("bias")
        channels = data.shape[1]
        bias = self._param(f"{name}_b", (channels,), scale=0.01)
        return self._op("bias_add", [data, bias], {}, name)

    def batch_norm(self, data: Node, name: Optional[str] = None) -> Node:
        name = name or self._unique("bn")
        channels = data.shape[1]
        gamma = self._param(f"{name}_gamma", (channels,), scale=0.0)
        self.params[f"{name}_gamma"] += 1.0
        beta = self._param(f"{name}_beta", (channels,), scale=0.01)
        mean = self._param(f"{name}_mean", (channels,), scale=0.01)
        var = self._param(f"{name}_var", (channels,), scale=0.0)
        self.params[f"{name}_var"] += 1.0
        return self._op("batch_norm", [data, gamma, beta, mean, var], {}, name)

    def relu(self, data: Node) -> Node:
        return self._op("relu", [data])

    def leaky_relu(self, data: Node, alpha: float = 0.2) -> Node:
        return self._op("leaky_relu", [data], {"alpha": alpha})

    def sigmoid(self, data: Node) -> Node:
        return self._op("sigmoid", [data])

    def tanh(self, data: Node) -> Node:
        return self._op("tanh", [data])

    def add(self, lhs: Node, rhs: Node) -> Node:
        return self._op("add", [lhs, rhs])

    def multiply(self, lhs: Node, rhs: Node) -> Node:
        return self._op("multiply", [lhs, rhs])

    def softmax(self, data: Node) -> Node:
        return self._op("softmax", [data])

    def flatten(self, data: Node) -> Node:
        return self._op("flatten", [data])

    def reshape(self, data: Node, newshape: Sequence[int]) -> Node:
        return self._op("reshape", [data], {"newshape": tuple(newshape)})

    def max_pool2d(self, data: Node, pool_size: IntPair = 2, stride: IntPair = 2,
                   padding: IntPair = 0) -> Node:
        return self._op("max_pool2d", [data], {"pool_size": pool_size,
                                               "strides": stride,
                                               "padding": padding})

    def avg_pool2d(self, data: Node, pool_size: IntPair = 2, stride: IntPair = 2,
                   padding: IntPair = 0) -> Node:
        return self._op("avg_pool2d", [data], {"pool_size": pool_size,
                                               "strides": stride,
                                               "padding": padding})

    def global_avg_pool2d(self, data: Node) -> Node:
        return self._op("global_avg_pool2d", [data])

    # ------------------------------------------------------------------ composites
    def conv_bn_relu(self, data: Node, out_channels: int, kernel: IntPair,
                     stride: IntPair = 1, padding: IntPair = 0,
                     name: Optional[str] = None) -> Node:
        conv = self.conv2d(data, out_channels, kernel, stride, padding, name)
        return self.relu(self.batch_norm(conv))

    def lstm_cell(self, data: Node, hidden_prev: Node, cell_prev: Node,
                  hidden_size: int, name: Optional[str] = None
                  ) -> Tuple[Node, Node]:
        """One LSTM cell step built from dense + element-wise ops."""
        name = name or self._unique("lstm")
        gates_x = self.dense(data, 4 * hidden_size, f"{name}_x")
        gates_h = self.dense(hidden_prev, 4 * hidden_size, f"{name}_h")
        gates = self.add(gates_x, gates_h)
        i_gate = self.sigmoid(self._slice_gate(gates, hidden_size, 0, name))
        f_gate = self.sigmoid(self._slice_gate(gates, hidden_size, 1, name))
        g_gate = self.tanh(self._slice_gate(gates, hidden_size, 2, name))
        o_gate = self.sigmoid(self._slice_gate(gates, hidden_size, 3, name))
        cell = self.add(self.multiply(f_gate, cell_prev), self.multiply(i_gate, g_gate))
        hidden = self.multiply(o_gate, self.tanh(cell))
        return hidden, cell

    def _slice_gate(self, gates: Node, hidden_size: int, index: int,
                    name: str) -> Node:
        """Project one gate out of the fused 4H gate activation (modelled as a
        dense projection so it stays within the registered operator set)."""
        weight_name = f"{name}_gate{index}_sel"
        if weight_name not in self.params:
            selector = np.zeros((hidden_size, 4 * hidden_size), dtype=self.dtype)
            selector[:, index * hidden_size:(index + 1) * hidden_size] = np.eye(hidden_size)
            self.params[weight_name] = selector
        node = Node("null", weight_name)
        node.shape = (hidden_size, 4 * hidden_size)
        node.dtype = self.dtype
        return self._op("dense", [gates, node], {}, f"{name}_gate{index}")

    # ------------------------------------------------------------------ finish
    def finalize(self, outputs: Union[Node, Sequence[Node]]
                 ) -> Tuple[Graph, Dict[str, np.ndarray]]:
        if isinstance(outputs, Node):
            outputs = [outputs]
        graph = Graph(list(outputs))
        return graph, dict(self.params)
