"""Table 1: comparison of automation methods.

A qualitative table in the paper (data cost, model bias, need for hardware
info, ability to learn from history).  The benchmark verifies the claims
empirically on a small conv2d task: the ML-based model needs far fewer
measurements than blackbox auto-tuning to reach a comparable configuration,
and unlike a predefined cost model it needs no hardware description.
"""

import pytest

from common import emit_summary, get_target, print_series
from repro import autotvm
from repro.graph.op_timing import _conv2d_template


def _evaluate():
    target = get_target("cuda")
    args = (1, 64, 28, 28, 64, 3, 3, 1, 1, "float32")

    def best_after(tuner_cls, trials):
        task = autotvm.Task(f"table1_{tuner_cls.__name__}_{trials}",
                            _conv2d_template(target), args, target)
        tuner = tuner_cls(task, seed=7)
        tuner.tune(n_trial=trials, batch_size=8)
        return tuner.best_time

    blackbox_large = best_after(autotvm.RandomTuner, 48)
    ml_small = best_after(autotvm.ModelBasedTuner, 24)
    return blackbox_large, ml_small


def test_table1_automation_methods(benchmark):
    blackbox_large, ml_small = benchmark.pedantic(_evaluate, rounds=1, iterations=1)
    rows = [
        ("blackbox autotuning", {"trials": 48, "best_us": blackbox_large * 1e6}),
        ("ML based cost model", {"trials": 24, "best_us": ml_small * 1e6}),
    ]
    print_series("Table 1: data cost of automation methods (empirical check)",
                 rows, unit="trials / us")
    qualitative = {
        "blackbox auto-tuning": {"data cost": "high", "model bias": "none",
                                 "need hardware info": "no", "learn from history": "no"},
        "predefined cost model": {"data cost": "none", "model bias": "high",
                                  "need hardware info": "yes", "learn from history": "no"},
        "ML based cost model": {"data cost": "low", "model bias": "low",
                                "need hardware info": "no", "learn from history": "yes"},
    }
    print("\nTable 1 (qualitative):")
    for method, attrs in qualitative.items():
        print(f"  {method:24s} " + ", ".join(f"{k}={v}" for k, v in attrs.items()))
    benchmark.extra_info["ml_vs_blackbox_ratio"] = round(ml_small / blackbox_large, 3)
    emit_summary("table1_methods", {
        "blackbox_48_best_us": round(blackbox_large * 1e6, 3),
        "ml_24_best_us": round(ml_small * 1e6, 3),
        "ml_vs_blackbox_ratio": round(ml_small / blackbox_large, 3)})
    # With half the measurement budget the ML-guided search should land within
    # ~30% of (or better than) the blackbox result.
    assert ml_small <= blackbox_large * 1.3
