"""Simulated GPU back-ends (server-class Titan X and mobile Mali, Sections 6.1/6.3).

The model reproduces the mechanisms the paper's GPU schedules exploit:

* massive thread-level parallelism — blocks × threads must be large enough to
  occupy the streaming multiprocessors, otherwise utilisation collapses;
* cooperative fetching through ``shared`` memory scopes — data staged into
  shared memory by a thread block is charged at on-chip bandwidth, while
  global traffic is reduced structurally by the cache stages in the IR
  (Figure 7);
* thread-local registers (``local`` scope) for accumulators;
* synchronisation barriers between cooperative stages;
* resource limits (shared memory per block, threads per block, register
  usage) that invalidate over-aggressive schedules, exactly the way real
  measurement on hardware would fail or slow down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from ..tir.analysis import ProgramFeatures
from .base import HardwareModel, HardwareParams

__all__ = ["GPUParams", "ServerGPU", "MobileGPU", "titan_x_params", "mali_t860_params"]


@dataclass
class GPUParams(HardwareParams):
    """GPU-specific capability description."""

    num_sms: int = 28
    max_threads_per_block: int = 1024
    max_shared_per_block: float = 48 << 10
    max_registers_per_thread: int = 255
    shared_bandwidth: float = 5e12
    #: sustained bandwidth of the hardware-managed cache path (L2/texture);
    #: much lower than shared-memory bandwidth, which is why cooperative
    #: fetching matters (Figure 7)
    l2_bandwidth: float = 1.0e12
    l2_bytes: float = 3 << 20
    warp_size: int = 32
    #: total resident threads needed to keep the SMs busy; ~4 warps per SM is
    #: enough once the inner loops expose instruction-level parallelism
    target_occupancy_threads: float = 3584.0
    fp16_multiplier: float = 2.0


def titan_x_params() -> GPUParams:
    """Parameters approximating an NVIDIA Titan X (Pascal)."""
    return GPUParams(
        name="nvidia-titan-x",
        peak_flops=6.1e12,
        dram_bandwidth=336e9,
        onchip_bandwidth=5e12,
        shared_bandwidth=5e12,
        cache_bytes=3 << 20,
        l2_bytes=3 << 20,
        l1_bytes=48 << 10,
        num_sms=28,
        l2_bandwidth=1.5e12,
        launch_overhead=6e-6,
        target_occupancy_threads=3584.0,
        noise_std=0.03,
    )


def mali_t860_params() -> GPUParams:
    """Parameters approximating an ARM Mali-T860MP4 mobile GPU."""
    return GPUParams(
        name="arm-mali-t860mp4",
        peak_flops=47e9,
        dram_bandwidth=6.4e9,
        onchip_bandwidth=60e9,
        shared_bandwidth=60e9,
        cache_bytes=256 << 10,
        l2_bytes=256 << 10,
        l1_bytes=16 << 10,
        num_sms=4,
        l2_bandwidth=30e9,
        max_threads_per_block=256,
        max_shared_per_block=32 << 10,
        launch_overhead=40e-6,
        target_occupancy_threads=512.0,
        fp16_multiplier=2.0,
        noise_std=0.05,
    )


class ServerGPU(HardwareModel):
    """Analytic model of a server-class GPU."""

    device_type = "gpu"

    def __init__(self, params: Optional[GPUParams] = None, seed: int = 0):
        super().__init__(params or titan_x_params(), seed)
        self.gpu: GPUParams = self.params  # type: ignore[assignment]

    # ------------------------------------------------------------------ model
    def estimate(self, features: ProgramFeatures) -> float:
        gpu = self.gpu
        threads_per_block = max(features.num_threads, 1.0)
        num_blocks = max(features.num_blocks, 1.0)
        total_threads = threads_per_block * num_blocks

        # --- resource limits -> invalid schedule --------------------------------
        shared_per_block = features.allocation_bytes.get("shared", 0.0)
        if shared_per_block > gpu.max_shared_per_block:
            return float("inf")
        if threads_per_block > gpu.max_threads_per_block:
            return float("inf")
        local_bytes = features.allocation_bytes.get("local", 0.0)
        registers_per_thread = local_bytes / 4.0
        register_spill = 1.0
        if registers_per_thread > gpu.max_registers_per_thread:
            register_spill = 1.0 + (registers_per_thread
                                    / gpu.max_registers_per_thread - 1.0) * 2.0

        # --- occupancy / utilisation --------------------------------------------
        if total_threads <= 1.0:
            occupancy = 1.0 / gpu.target_occupancy_threads
        else:
            occupancy = min(1.0, total_threads / gpu.target_occupancy_threads)
        # Poor block granularity: fewer blocks than SMs leaves SMs idle.
        if num_blocks < gpu.num_sms:
            occupancy *= max(num_blocks / gpu.num_sms, 1.0 / gpu.num_sms)

        ilp = 0.55 + 0.45 * min(features.unroll_product, 8.0) / 8.0
        # Half precision doubles peak arithmetic throughput when the bulk of
        # the traffic is fp16 (Figure 19's float16 experiments).
        fp16_traffic = sum(a.total_bytes for a in features.buffer_access.values()
                           if a.dtype == "float16")
        all_traffic = sum(a.total_bytes for a in features.buffer_access.values())
        dtype_boost = gpu.fp16_multiplier if all_traffic and \
            fp16_traffic / all_traffic > 0.5 else 1.0

        effective_flops = gpu.peak_flops * occupancy * ilp * dtype_boost
        effective_flops = max(effective_flops, gpu.peak_flops * 1e-5)
        compute_time = (features.flops + features.intrinsic_flops) \
            / effective_flops * register_spill

        # --- memory system --------------------------------------------------------
        global_bytes = features.bytes_in_scope("global")
        cached_traffic = features.cache_aware_traffic(gpu.l2_bytes, "global")
        dram_traffic = min(global_bytes, cached_traffic) if global_bytes else cached_traffic
        # Without cooperative fetching every thread issues its own global
        # loads; coalescing is worse when no vectorize/unroll of the inner dim.
        coalesce = 0.75 if features.vector_lanes > 1 or features.unroll_product >= 4 else 0.55
        dram_time = dram_traffic / (gpu.dram_bandwidth * coalesce)

        shared_bytes = features.bytes_in_scope("shared")
        shared_time = shared_bytes / gpu.shared_bandwidth
        local_time = features.bytes_in_scope("local") / (gpu.shared_bandwidth * 4.0)

        barrier_time = features.barrier_count * 1.5e-8 / max(num_blocks, 1.0)

        # All global accesses (hits or misses) go through the L2/cache path,
        # whose bandwidth is far below shared memory: staging reused tiles in
        # shared memory therefore pays off even when the working set fits in L2.
        l2_time = global_bytes / gpu.l2_bandwidth
        memory_time = max(dram_time, l2_time) + shared_time * 0.5 + local_time * 0.25
        busy = max(compute_time, memory_time)
        total = gpu.launch_overhead + busy + 0.15 * min(compute_time, memory_time)
        total += barrier_time
        return total


class MobileGPU(ServerGPU):
    """Mobile GPU (Mali) — same mechanics, mobile parameters, fp16 support."""

    device_type = "mali"

    def __init__(self, params: Optional[GPUParams] = None, seed: int = 0):
        super().__init__(params or mali_t860_params(), seed)
