"""Simulated vendor libraries and framework baselines used in the evaluation."""

from .frameworks import (
    ACLSim,
    FrameworkResult,
    FrameworkSim,
    MXNetSim,
    TFLiteSim,
    TensorFlowSim,
    TensorFlowXLASim,
    framework_for,
)
from .profiles import (
    ACL_PROFILE,
    CAFFE2_ULP_PROFILE,
    CUDNN_PROFILE,
    FRAMEWORK_OVERHEADS,
    MXNET_KERNEL_PROFILE,
    TFLITE_PROFILE,
    LibraryProfile,
)
from .vendor import VendorLibrary, conv_class_of

__all__ = [
    "ACLSim",
    "ACL_PROFILE",
    "CAFFE2_ULP_PROFILE",
    "CUDNN_PROFILE",
    "FRAMEWORK_OVERHEADS",
    "FrameworkResult",
    "FrameworkSim",
    "LibraryProfile",
    "MXNET_KERNEL_PROFILE",
    "MXNetSim",
    "TFLiteSim",
    "TFLITE_PROFILE",
    "TensorFlowSim",
    "TensorFlowXLASim",
    "VendorLibrary",
    "conv_class_of",
    "framework_for",
]
