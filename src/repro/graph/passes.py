"""High-level graph rewriting passes (paper Section 3).

* :func:`fuse_ops` — operator fusion using the paper's four-category rules:
  injective chains merge, reductions fuse their injective inputs,
  complex-out-fusable operators (conv2d, dense, ...) absorb element-wise
  consumers, opaque operators stay alone.
* :func:`fold_constants` — pre-computes sub-graphs that depend only on
  parameters.
* :func:`plan_memory` — static memory planning: liveness analysis plus greedy
  storage-token reuse for intermediate tensors.
* :func:`alter_layout` — data layout transformation: marks operators with a
  back-end-preferred layout and inserts explicit ``layout_transform`` nodes
  where producer and consumer disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .ir import Graph, Node
from .ops import OP_REGISTRY, OpPattern

__all__ = ["FusedGroup", "fuse_ops", "fold_constants", "plan_memory",
           "MemoryPlan", "alter_layout", "ensure_layout_transform_registered"]


# ---------------------------------------------------------------------------
# Operator fusion
# ---------------------------------------------------------------------------

@dataclass
class FusedGroup:
    """A set of graph nodes executed as one kernel."""

    nodes: List[Node]
    master: Node               # the most expensive / anchoring operator

    @property
    def name(self) -> str:
        return "fused_" + "_".join(n.op for n in self.nodes)

    @property
    def pattern(self) -> str:
        return OP_REGISTRY[self.master.op].pattern

    def __repr__(self) -> str:
        return f"FusedGroup([{', '.join(n.name for n in self.nodes)}], master={self.master.name})"


def fuse_ops(graph: Graph, enabled: bool = True) -> List[FusedGroup]:
    """Partition operator nodes into fused execution groups.

    With ``enabled=False`` every operator becomes its own group (the
    "TVM w/o graph opt" baseline of Figures 14/16/19).
    """
    consumers = graph.consumers()
    groups: List[FusedGroup] = []
    assigned: Dict[int, FusedGroup] = {}

    def single_consumer(node: Node) -> Optional[Node]:
        outs = consumers[id(node)]
        return outs[0] if len(outs) == 1 else None

    for node in graph.op_nodes:
        if id(node) in assigned:
            continue
        spec = OP_REGISTRY[node.op]
        group = FusedGroup([node], node)
        assigned[id(node)] = group
        groups.append(group)
        if not enabled:
            continue
        pattern = spec.pattern
        if pattern == OpPattern.OPAQUE:
            continue
        # Greedily absorb a chain of element-wise consumers: valid for both
        # injective chains and complex-out-fusable anchors; reductions may
        # also fuse following injective ops (e.g. avg_pool -> scale).
        current = node
        while True:
            consumer = single_consumer(current)
            if consumer is None or consumer.is_variable or id(consumer) in assigned:
                break
            consumer_pattern = OP_REGISTRY[consumer.op].pattern
            if consumer_pattern != OpPattern.INJECTIVE:
                break
            # Only absorb the consumer if its other operands are already
            # available when this kernel runs: graph inputs, members of this
            # group, or nodes assigned to an earlier kernel.  Without this
            # check a residual add is pulled into the first branch's kernel
            # and executes before the second branch has produced its input
            # (TVM performs the equivalent dominance analysis).
            if not all(p.is_variable or id(p) in assigned
                       for p in consumer.inputs):
                break
            group.nodes.append(consumer)
            assigned[id(consumer)] = group
            current = consumer
        # Choose the master node: the highest-FLOP member.
        def node_flops(n: Node) -> float:
            sp = OP_REGISTRY[n.op]
            ins = [tuple(p.shape) for p in n.inputs]
            return sp.flops(ins, tuple(n.shape), n.attrs)

        group.master = max(group.nodes, key=node_flops)
    return groups


# ---------------------------------------------------------------------------
# Constant folding
# ---------------------------------------------------------------------------

def fold_constants(graph: Graph, params: Dict[str, np.ndarray]
                   ) -> Tuple[Graph, Dict[str, np.ndarray]]:
    """Evaluate operator nodes whose inputs are all parameters.

    Returns a rewritten graph and an updated parameter dictionary in which
    folded sub-graphs are replaced by new constant inputs.
    """
    params = dict(params)
    constant_nodes: Dict[int, np.ndarray] = {}
    for node in graph.nodes:
        if node.is_variable and node.name in params:
            constant_nodes[id(node)] = params[node.name]

    replacement: Dict[int, Node] = {}
    fold_count = 0
    for node in graph.op_nodes:
        inputs = [replacement.get(id(p), p) for p in node.inputs]
        if all(id(p) in constant_nodes for p in inputs) and inputs:
            spec = OP_REGISTRY[node.op]
            arrays = [constant_nodes[id(p)] for p in inputs]
            value = spec.compute(*arrays, node.attrs)
            const_name = f"{node.name}_folded"
            const_node = Node("null", const_name)
            const_node.shape = tuple(value.shape)
            const_node.dtype = str(value.dtype)
            params[const_name] = value
            constant_nodes[id(const_node)] = value
            replacement[id(node)] = const_node
            fold_count += 1
        elif any(id(p) != id(q) for p, q in zip(node.inputs, inputs)):
            node.inputs = inputs

    if not replacement:
        return graph, params

    # Rewire consumers of folded nodes.
    for node in graph.nodes:
        node.inputs = [replacement.get(id(p), p) for p in node.inputs]
    outputs = [replacement.get(id(o), o) for o in graph.outputs]
    new_graph = Graph(outputs)
    for node in new_graph.nodes:
        if node.shape is None and id(node) in constant_nodes:
            node.shape = tuple(constant_nodes[id(node)].shape)
    new_graph.attrs = getattr(graph, "attrs", {})
    new_graph.fold_count = fold_count  # type: ignore[attr-defined]
    return new_graph, params


# ---------------------------------------------------------------------------
# Static memory planning
# ---------------------------------------------------------------------------

@dataclass
class MemoryPlan:
    """Result of static memory planning."""

    storage_of: Dict[str, int]          # node name -> storage token
    token_bytes: Dict[int, int]         # storage token -> bytes
    naive_bytes: int

    @property
    def planned_bytes(self) -> int:
        return sum(self.token_bytes.values())

    @property
    def reuse_ratio(self) -> float:
        if self.planned_bytes == 0:
            return 1.0
        return self.naive_bytes / self.planned_bytes


def plan_memory(graph: Graph, dtype_bytes: Optional[int] = None) -> MemoryPlan:
    """Greedy storage reuse for intermediate tensors (liveness based).

    ``dtype_bytes=None`` (the default) sizes every tensor from its node's
    inferred dtype, so fp16/int8 graphs get correctly-sized storage tokens;
    passing an integer forces a uniform element size (the legacy behaviour,
    ``dtype_bytes=4``).
    """
    from ..tir.stmt import dtype_bytes as _elem_bytes

    consumers = graph.consumers()
    order = {id(n): i for i, n in enumerate(graph.nodes)}
    last_use: Dict[int, int] = {}
    for node in graph.nodes:
        uses = consumers[id(node)]
        last_use[id(node)] = max([order[id(u)] for u in uses], default=order[id(node)])

    free_tokens: List[Tuple[int, int]] = []   # (bytes, token)
    token_bytes: Dict[int, int] = {}
    storage_of: Dict[str, int] = {}
    next_token = 0
    naive = 0
    active: Dict[int, Tuple[int, int]] = {}   # node id -> (token, release step)

    for step, node in enumerate(graph.nodes):
        # Release tokens whose producing tensor is dead.
        dead = [nid for nid, (_tok, release) in active.items() if release < step]
        for nid in dead:
            token, _ = active.pop(nid)
            free_tokens.append((token_bytes[token], token))
        if node.is_variable:
            continue
        elem = dtype_bytes if dtype_bytes is not None else _elem_bytes(node.dtype)
        size = int(np.prod(node.shape)) * elem
        naive += size
        # Best-fit reuse of a free token.
        free_tokens.sort()
        chosen = None
        for i, (bytes_avail, token) in enumerate(free_tokens):
            if bytes_avail >= size:
                chosen = token
                free_tokens.pop(i)
                break
        if chosen is None:
            chosen = next_token
            next_token += 1
            token_bytes[chosen] = size
        storage_of[node.name] = chosen
        active[id(node)] = (chosen, last_use[id(node)])
    return MemoryPlan(storage_of, token_bytes, naive)


# ---------------------------------------------------------------------------
# Data layout transformation
# ---------------------------------------------------------------------------

_PREFERRED_LAYOUT = {
    "cpu": "NCHW",
    "gpu": "NCHW",
    "mali": "NCHW",
    "vdla": "NCHW16c",       # tiled layout matching the 16x16 tensor core
}


def ensure_layout_transform_registered() -> None:
    """Register the ``layout_transform`` operator on first use.

    Called by :func:`alter_layout` and by the artifact loader, which may
    deserialise a graph containing transform nodes before any layout pass ran
    in this process.
    """
    if "layout_transform" not in OP_REGISTRY:
        from .ops import register_op

        register_op("layout_transform", OpPattern.INJECTIVE,
                    lambda ins, attrs: tuple(ins[0]),
                    lambda data, attrs: data)


def alter_layout(graph: Graph, device_type: str) -> Tuple[Graph, int]:
    """Annotate operators with the back-end preferred data layout and insert
    ``layout_transform`` nodes between producers and consumers that disagree.

    Returns the rewritten graph and the number of transform nodes inserted.
    """
    preferred = _PREFERRED_LAYOUT.get(device_type, "NCHW")
    inserted = 0
    if preferred == "NCHW":
        for node in graph.op_nodes:
            if node.op in ("conv2d", "depthwise_conv2d", "conv2d_transpose"):
                node.attrs.setdefault("data_layout", "NCHW")
        return graph, 0

    ensure_layout_transform_registered()

    # Insert transforms around convolution-like nodes only (the tensor-core
    # layout applies to their inputs/outputs).
    consumers = graph.consumers()
    for node in list(graph.op_nodes):
        if node.op not in ("conv2d", "depthwise_conv2d"):
            continue
        node.attrs["data_layout"] = preferred
        new_inputs = []
        for parent in node.inputs:
            if parent.is_variable or parent.attrs.get("data_layout") == preferred:
                new_inputs.append(parent)
                continue
            transform = Node("layout_transform", f"{parent.name}_to_{preferred}",
                             [parent], {"src_layout": "NCHW", "dst_layout": preferred})
            transform.shape = parent.shape
            transform.dtype = parent.dtype
            new_inputs.append(transform)
            inserted += 1
        node.inputs = new_inputs
    graph.refresh()
    return graph, inserted
