"""Named tuner registry.

Tuners register under short names (``"model"``, ``"random"``, ``"ga"``,
``"grid"``) so the tuning session, benchmarks and CLI examples select them by
string.  Unknown names fail loudly with the list of valid choices — the same
contract the pass registry and the target/model registries follow.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

__all__ = ["TUNER_REGISTRY", "register_tuner", "get_tuner", "list_tuners"]

#: name -> Tuner subclass
TUNER_REGISTRY: Dict[str, type] = {}


def register_tuner(name: str, cls: Optional[type] = None,
                   override: bool = False) -> Callable:
    """Register a :class:`~repro.autotvm.tuner.Tuner` subclass under ``name``.

    Usable as a decorator::

        @register_tuner("annealing")
        class AnnealingTuner(Tuner): ...
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"tuner name must be a non-empty string, got {name!r}")

    def _register(tuner_cls: type) -> type:
        if name in TUNER_REGISTRY and not override:
            raise ValueError(
                f"Tuner {name!r} already registered to "
                f"{TUNER_REGISTRY[name].__name__}; pass override=True to replace")
        TUNER_REGISTRY[name] = tuner_cls
        return tuner_cls

    if cls is not None:
        return _register(cls)
    return _register


def get_tuner(name: str) -> type:
    """Look up a tuner class by its registered name (loud on typos)."""
    if name not in TUNER_REGISTRY:
        raise ValueError(
            f"Unknown tuner {name!r}; registered tuners: {sorted(TUNER_REGISTRY)}")
    return TUNER_REGISTRY[name]


def list_tuners() -> List[str]:
    return sorted(TUNER_REGISTRY)
