"""ML-based automated schedule optimizer (paper Section 5)."""

from .cost_model import (
    GradientBoostedTrees,
    NeuralCostModel,
    RegressionTree,
    rank_correlation,
)
from .database import TuningDatabase, TuningLogEntry
from .measure import LocalMeasurer, MeasureInput, MeasureResultRecord, RPCMeasurer
from .space import ConfigEntity, ConfigSpace, OtherEntity, SplitEntity
from .task import TEMPLATE_REGISTRY, Task, create_task, get_template, register_template
from .treernn import ASTNode, TreeRNNCostModel, build_ast
from .tuner import (
    GATuner,
    GridSearchTuner,
    ModelBasedTuner,
    RandomTuner,
    SimulatedAnnealingOptimizer,
    Tuner,
    TuningRecord,
)

__all__ = [
    "ConfigEntity",
    "ConfigSpace",
    "GATuner",
    "GradientBoostedTrees",
    "GridSearchTuner",
    "LocalMeasurer",
    "MeasureInput",
    "MeasureResultRecord",
    "ModelBasedTuner",
    "NeuralCostModel",
    "OtherEntity",
    "RPCMeasurer",
    "RandomTuner",
    "RegressionTree",
    "SimulatedAnnealingOptimizer",
    "SplitEntity",
    "TEMPLATE_REGISTRY",
    "Task",
    "TreeRNNCostModel",
    "ASTNode",
    "build_ast",
    "Tuner",
    "TuningDatabase",
    "TuningLogEntry",
    "TuningRecord",
    "create_task",
    "get_template",
    "rank_correlation",
    "register_template",
]
