"""Legacy whole-graph autotuning helpers (deprecated shims).

The loose ``extract_tasks`` / ``tune_tasks`` / ``tune_graph`` functions of
early revisions have been replaced by the unified tuning session in
:mod:`repro.autotvm.session`: :func:`repro.autotune` accepts the same model
forms as :func:`repro.compile`, tunes every heavy workload with a registered
tuner over the parallel measurer, and returns a
:class:`~repro.autotvm.session.TuningReport` whose database feeds
history-based compilation through ``report.apply_history_best()``.

``tune_graph`` / ``tune_tasks`` remain for backward compatibility: they
delegate to the session and return the legacy :class:`TuningDatabase`,
emitting a :class:`DeprecationWarning`.  ``extract_tasks`` forwards to the
session implementation without a warning; note that unlike the original it
also extracts ``conv2d_transpose`` workloads (as their equivalent unit-stride
convolutions) and skips vdla convolutions, matching exactly the set of tasks
history-based compilation will look up.
"""

from __future__ import annotations

import logging
import warnings
from typing import Dict, List, Optional, Tuple

from ..autotvm.database import TuningDatabase
from ..autotvm.options import TuningOptions
from ..autotvm.session import extract_tasks as _extract_tasks
from ..autotvm.session import tune_tasks as _tune_tasks
from ..autotvm.task import Task
from ..hardware.target import Target
from .ir import Graph

__all__ = ["extract_tasks", "tune_graph", "tune_tasks"]


def extract_tasks(graph: Graph, target: Target,
                  input_shapes: Optional[Dict[str, Tuple[int, ...]]] = None
                  ) -> List[Task]:
    """Unique tuning tasks for the heavy operators of a graph."""
    return _extract_tasks(graph, target, input_shapes=input_shapes)


def _legacy_options(n_trial: int, tuner: str, seed: int,
                    verbose: bool) -> TuningOptions:
    # Match the legacy helpers' measurement settings: serial, number=2, no
    # fallback-floor validation, no warm start.  (Recorded mean_time values
    # are now the deterministic model estimate of the best config rather
    # than its noisy measured time — the database only uses them to rank.)
    if verbose:
        # The old helpers printed progress; route the equivalent through the
        # repro.autotvm logger without clobbering an existing setup.
        logger = logging.getLogger("repro.autotvm")
        if logger.level in (logging.NOTSET, logging.WARNING) \
                or logger.level > logging.INFO:
            logger.setLevel(logging.INFO)
        if not logger.handlers and not logging.getLogger().handlers:
            logger.addHandler(logging.StreamHandler())
    return TuningOptions(trials=n_trial, tuner=tuner, seed=seed, batch_size=8,
                         measure_number=2, n_parallel=1, warm_start=False,
                         ensure_no_regression=False)


def tune_tasks(tasks: List[Task], n_trial: int = 48, tuner: str = "model",
               database: Optional[TuningDatabase] = None,
               seed: int = 0, verbose: bool = False) -> TuningDatabase:
    """Deprecated: use :func:`repro.autotune` (or
    :func:`repro.autotvm.tune_tasks`, which returns the full report)."""
    warnings.warn(
        "repro.graph.tune_tasks() is deprecated; use repro.autotune(model, "
        "target=..., trials=...) which returns a TuningReport",
        DeprecationWarning, stacklevel=2)
    report = _tune_tasks(tasks, options=_legacy_options(n_trial, tuner, seed, verbose),
                         database=database)
    return report.database


def tune_graph(graph: Graph, target: Target,
               input_shapes: Dict[str, Tuple[int, ...]],
               n_trial: int = 48, tuner: str = "model",
               database: Optional[TuningDatabase] = None,
               seed: int = 0, verbose: bool = False) -> TuningDatabase:
    """Deprecated: use :func:`repro.autotune` instead."""
    warnings.warn(
        "repro.graph.tune_graph() is deprecated; use repro.autotune(model, "
        "target=..., trials=...) which returns a TuningReport",
        DeprecationWarning, stacklevel=2)
    tasks = _extract_tasks(graph, target, input_shapes=input_shapes)
    report = _tune_tasks(tasks, options=_legacy_options(n_trial, tuner, seed, verbose),
                         database=database)
    return report.database
