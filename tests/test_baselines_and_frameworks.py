"""Tests for the simulated vendor libraries and framework baselines."""

import numpy as np
import pytest

from repro.baselines import (
    ACL_PROFILE,
    CAFFE2_ULP_PROFILE,
    CUDNN_PROFILE,
    MXNET_KERNEL_PROFILE,
    TFLITE_PROFILE,
    VendorLibrary,
)
from repro.baselines.frameworks import (
    ACLSim,
    MXNetSim,
    TFLiteSim,
    TensorFlowSim,
    TensorFlowXLASim,
    framework_for,
)
from repro.baselines.vendor import conv_class_of
from repro.frontend import dcgan_generator, mobilenet, resnet18
from repro.hardware import arm_cpu, cuda, mali


class TestConvClassification:
    def test_1x1_is_its_own_class(self):
        assert conv_class_of((1, 1), (1, 1)) == "conv2d_1x1"
        assert conv_class_of((1, 1), (2, 2)) == "conv2d_1x1"

    def test_common_kernels_are_conv2d(self):
        for k in (3, 5, 7):
            assert conv_class_of((k, k), (1, 1)) == "conv2d"
            assert conv_class_of((k, k), (2, 2)) == "conv2d"

    def test_unusual_kernel_detected(self):
        assert conv_class_of((4, 4), (2, 2)) == "conv2d_unusual"
        assert conv_class_of((3, 3), (4, 4)) == "conv2d_unusual"


class TestVendorLibrary:
    def test_conv_time_positive_and_finite(self):
        library = VendorLibrary(CUDNN_PROFILE, cuda())
        time = library.conv2d_time(1, 64, 56, 56, 64, 3, 1, 1)
        assert 0 < time < 1.0

    def test_unusual_conv_is_relatively_slower(self):
        """cuDNN handles the DQN's 4x4-stride-2 conv poorly (Section 6.1)."""
        library = VendorLibrary(CUDNN_PROFILE, cuda())
        common = library.conv2d_time(1, 64, 28, 28, 64, 3, 1, 1)
        unusual = library.conv2d_time(1, 64, 28, 28, 64, 4, 2, 1)
        common_flops = 28 * 28 * 64 * 64 * 9
        unusual_flops = 14 * 14 * 64 * 64 * 16
        assert unusual / unusual_flops > common / common_flops

    def test_depthwise_uses_depthwise_efficiency(self):
        fast = VendorLibrary(CUDNN_PROFILE, cuda())
        # Same arithmetic, but depthwise efficiency is far lower than conv2d.
        dense_time = fast.conv2d_time(1, 32, 28, 28, 32, 3, 1, 1)
        dw_time = fast.conv2d_time(1, 32, 28, 28, 32, 3, 1, 1, depthwise=True)
        assert dw_time != dense_time

    def test_single_threaded_library_is_slower(self):
        multi = VendorLibrary(CAFFE2_ULP_PROFILE, arm_cpu())
        single = VendorLibrary(CAFFE2_ULP_PROFILE, arm_cpu(), single_threaded=True)
        assert single.conv2d_time(1, 64, 56, 56, 64, 3, 1, 1) > \
            multi.conv2d_time(1, 64, 56, 56, 64, 3, 1, 1)

    def test_fp16_is_faster_on_gpu(self):
        library = VendorLibrary(ACL_PROFILE, mali())
        fp32 = library.conv2d_time(1, 64, 56, 56, 64, 3, 1, 1, dtype="float32")
        fp16 = library.conv2d_time(1, 64, 56, 56, 64, 3, 1, 1, dtype="float16")
        assert fp16 < fp32

    def test_gemm_time_scales_with_size(self):
        library = VendorLibrary(CUDNN_PROFILE, cuda())
        assert library.gemm_time(2048, 2048, 2048) > library.gemm_time(512, 512, 512)

    def test_bitserial_baseline_penalises_1x1(self):
        """Figure 18: the ULP baseline is not optimised for 1x1 stride-2."""
        library = VendorLibrary(CAFFE2_ULP_PROFILE, arm_cpu(), single_threaded=True)
        regular = library.bitserial_conv2d_time(1, 64, 56, 56, 128, 3, 1, 1)
        unusual = library.bitserial_conv2d_time(1, 64, 56, 56, 128, 1, 2, 0)
        regular_work = 56 * 56 * 128 * 64 * 9
        unusual_work = 28 * 28 * 128 * 64
        assert unusual / unusual_work > regular / regular_work

    def test_elementwise_fallback_class(self):
        from repro.graph.ir import Node

        data = Node("null", "x")
        data.shape = (1, 64, 28, 28)
        relu = Node("relu", "r", [data], {})
        relu.shape = data.shape
        library = VendorLibrary(CUDNN_PROFILE, cuda())
        assert library.op_time(relu) > 0


class TestFrameworkSims:
    def _shapes(self, model):
        graph, _params, shapes = model(batch=1)
        return graph, shapes

    def test_tensorflow_slower_than_sum_of_kernels(self):
        graph, shapes = self._shapes(resnet18)
        result = TensorFlowSim().run_estimate(graph, shapes)
        assert result.total_time > result.kernel_time
        assert result.overhead_time > 0
        assert result.num_kernels == len(graph.op_nodes)

    def test_xla_fuses_and_reduces_kernel_count(self):
        graph, shapes = self._shapes(resnet18)
        plain = TensorFlowSim().run_estimate(graph, shapes)
        graph, shapes = self._shapes(resnet18)
        xla = TensorFlowXLASim().run_estimate(graph, shapes)
        assert xla.num_kernels < plain.num_kernels

    def test_mxnet_uses_gpu_target_by_default(self):
        assert MXNetSim().target.device_type == "gpu"

    def test_tflite_rejects_dcgan(self):
        """The paper's footnote: TFLite cannot run DCGAN / LSTM."""
        graph, _params, shapes = dcgan_generator(batch=1)
        with pytest.raises(NotImplementedError):
            TFLiteSim().run_estimate(graph, shapes)

    def test_acl_rejects_dcgan(self):
        graph, _params, shapes = dcgan_generator(batch=1)
        with pytest.raises(NotImplementedError):
            ACLSim().run_estimate(graph, shapes)

    def test_tflite_runs_mobilenet(self):
        graph, _params, shapes = mobilenet(batch=1)
        result = TFLiteSim().run_estimate(graph, shapes)
        assert result.total_time > 0

    def test_factory_lookup(self):
        assert isinstance(framework_for("tensorflow"), TensorFlowSim)
        assert isinstance(framework_for("tflite"), TFLiteSim)
        with pytest.raises(KeyError):
            framework_for("caffe")

    def test_framework_overheads_ordering(self):
        """TVM's runtime dispatch is cheaper than the frameworks' (Section 6.1)."""
        from repro.baselines.profiles import FRAMEWORK_OVERHEADS

        assert FRAMEWORK_OVERHEADS["tvm"] < min(
            v for k, v in FRAMEWORK_OVERHEADS.items() if k != "tvm")


class TestProfiles:
    @pytest.mark.parametrize("profile", [CUDNN_PROFILE, TFLITE_PROFILE, ACL_PROFILE,
                                         CAFFE2_ULP_PROFILE, MXNET_KERNEL_PROFILE])
    def test_efficiencies_are_fractions(self, profile):
        for field in ("conv2d", "conv2d_1x1", "conv2d_unusual", "depthwise",
                      "dense", "elementwise"):
            value = getattr(profile, field)
            assert 0.0 < value <= 1.0

    def test_cudnn_strongest_on_common_convs(self):
        """The paper's premise: vendor libraries shine on conventional layers
        and fall behind on depthwise / unusual operators."""
        assert CUDNN_PROFILE.conv2d > CUDNN_PROFILE.conv2d_unusual
        assert CUDNN_PROFILE.conv2d > CUDNN_PROFILE.depthwise
