"""Tuning log database (the "database" box in Figure 11).

Records every measurement so that (a) the cost model can be warm-started from
the history of related workloads, and (b) the graph compiler can pick the
best known configuration for each operator workload when building a model
end-to-end.  Records can be persisted to a JSON-lines file.

Entries are keyed by ``(task, target, config)``: recording the same
configuration again keeps only the best time, and :meth:`TuningDatabase.load`
dedupes whatever it reads, so repeated append/reload cycles neither bloat
memory nor (via :meth:`compact`) the on-disk log.  An entry may carry the
feature vector of its lowered program, which lets a later session warm-start
its cost model from history of the *same operator* even when the exact
workload (and hence the configuration space) differs.

Concurrency: one JSONL log has exactly one writer.  The first persisting
write takes an exclusive ``flock`` on a ``<path>.lock`` sidecar, so a second
process (or a second instance in this process) that tries to write the same
path fails loudly with :class:`DatabaseWriteConflictError` instead of
silently interleaving appends.  Appends are flushed and fsynced, and
:meth:`compact` rewrites through a temp file + atomic rename, so readers
never observe a torn log.  The sanctioned multi-writer path is the tuning
service (:mod:`repro.autotvm.service`), which funnels every client through
the single database its server owns.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX: no inter-process write locking
    fcntl = None

__all__ = ["TuningLogEntry", "TuningDatabase", "DatabaseWriteConflictError",
           "operator_of"]


class DatabaseWriteConflictError(RuntimeError):
    """Two writers opened the same tuning log for writing.

    Concurrent sessions must not append to one JSONL path directly — run a
    :class:`repro.autotvm.service.TuningService` over the file and point the
    sessions at it instead.
    """


def operator_of(task_name: str) -> str:
    """Operator family of a task/workload name (``conv2d_(...)`` ->
    ``conv2d``).  The single parser of the ``kind_(args)`` name format used
    by tasks, log entries and the compiler's history lookups."""
    return task_name.split("_(")[0]


@dataclass
class TuningLogEntry:
    """One (workload, target, config, time) record."""

    task_name: str
    target_name: str
    config_index: int
    config_dict: Dict[str, object]
    mean_time: float
    #: optional loop-program feature vector (for transfer learning)
    features: Optional[List[float]] = None

    @property
    def operator(self) -> str:
        """Operator family of the workload (``conv2d_(...)`` -> ``conv2d``)."""
        return operator_of(self.task_name)

    @property
    def key(self) -> Tuple[str, str, int]:
        return (self.task_name, self.target_name, self.config_index)

    def to_json(self) -> str:
        obj = {
            "task": self.task_name,
            "target": self.target_name,
            "config_index": self.config_index,
            "config": self.config_dict,
            "time": self.mean_time,
        }
        if self.features is not None:
            obj["features"] = list(self.features)
        return json.dumps(obj)

    @staticmethod
    def from_json(line: str) -> "TuningLogEntry":
        obj = json.loads(line)
        return TuningLogEntry(obj["task"], obj["target"], obj["config_index"],
                              obj["config"], obj["time"],
                              features=obj.get("features"))


class TuningDatabase:
    """In-memory + optional on-disk store of tuning results."""

    def __init__(self, path: Optional[str] = None):
        self.path = path
        self._by_key: Dict[Tuple[str, str, int], TuningLogEntry] = {}
        # best entry per (task, target) — kernel_time queries this on every
        # templated node of every compile, so it must stay O(1)
        self._best: Dict[Tuple[str, str], TuningLogEntry] = {}
        self._lock_fd: Optional[int] = None
        if path and os.path.exists(path):
            self.load(path)

    # ------------------------------------------------------------ writer lock
    def _acquire_write_lock(self) -> None:
        """Take the exclusive writer lock for ``self.path`` (idempotent).

        Raises :class:`DatabaseWriteConflictError` when another database —
        in this process or any other — already writes to the same path.
        """
        if self._lock_fd is not None or not self.path or fcntl is None:
            return
        fd = os.open(self.path + ".lock", os.O_RDWR | os.O_CREAT, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            os.close(fd)
            raise DatabaseWriteConflictError(
                f"Tuning log {self.path!r} already has a writer (lock file "
                f"{self.path + '.lock'!r} is held). Two sessions appending to "
                f"one JSONL would corrupt it — run a tuning service over the "
                f"file (repro.autotvm.service.TuningService) and pass "
                f"TuningOptions(service=...) to the sessions instead.")
        os.ftruncate(fd, 0)
        os.write(fd, f"{os.getpid()}\n".encode())
        self._lock_fd = fd

    def close(self) -> None:
        """Release the on-disk writer lock (if held)."""
        if self._lock_fd is not None:
            try:
                os.close(self._lock_fd)     # closing the fd drops the flock
            finally:
                self._lock_fd = None

    def __enter__(self) -> "TuningDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    def _index(self, entry: TuningLogEntry) -> None:
        best_key = (entry.task_name, entry.target_name)
        best = self._best.get(best_key)
        if best is None or entry.mean_time < best.mean_time:
            self._best[best_key] = entry

    def add(self, entry: TuningLogEntry) -> bool:
        """Insert an entry; duplicates keep the best time.

        Returns ``True`` when the entry was new information (no identical
        ``(task, target, config)`` record with an equal-or-better time was
        already present) — only then is it appended to the on-disk log.
        """
        existing = self._by_key.get(entry.key)
        if existing is not None and existing.mean_time <= entry.mean_time:
            if entry.features is not None and existing.features is None:
                existing.features = list(entry.features)
            return False
        self._by_key[entry.key] = entry
        self._index(entry)
        if self.path:
            self._acquire_write_lock()
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(entry.to_json() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
        return True

    def record(self, task, config, mean_time: float,
               features: Optional[Sequence[float]] = None) -> TuningLogEntry:
        entry = TuningLogEntry(task.name, task.target.name, config.index,
                               config.to_dict(), mean_time,
                               features=list(features) if features is not None
                               else None)
        self.add(entry)
        return entry

    def load(self, path: str) -> None:
        """Read a JSONL log, deduping identical ``(task, target, config)``
        entries (keeping the best time).  Binds this database to ``path`` so
        later :meth:`add` calls persist there."""
        self.path = path
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                entry = TuningLogEntry.from_json(line)
                existing = self._by_key.get(entry.key)
                if existing is None or entry.mean_time < existing.mean_time:
                    self._by_key[entry.key] = entry
                    self._index(entry)
                elif entry.features is not None and existing.features is None:
                    existing.features = list(entry.features)

    def compact(self) -> None:
        """Rewrite the on-disk log with exactly the deduped in-memory entries.

        The rewrite is atomic (temp file + rename into place), so a reader —
        or a crash mid-compaction — never observes a half-written log.
        """
        if not self.path:
            return
        self._acquire_write_lock()
        tmp_path = f"{self.path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for entry in self._by_key.values():
                    handle.write(entry.to_json() + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)

    def best(self, task_name: str, target_name: Optional[str] = None
             ) -> Optional[TuningLogEntry]:
        if target_name is not None:             # O(1): the compiler's hot path
            return self._best.get((task_name, target_name))
        candidates = [e for e in self._best.values() if e.task_name == task_name]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.mean_time)

    def entries_for(self, task_name: str) -> List[TuningLogEntry]:
        return [e for e in self._by_key.values() if e.task_name == task_name]

    def entries_for_operator(self, operator: str) -> List[TuningLogEntry]:
        """All entries whose workload belongs to an operator family."""
        return [e for e in self._by_key.values() if e.operator == operator]

    def __len__(self) -> int:
        return len(self._by_key)

    def __iter__(self) -> Iterator[TuningLogEntry]:
        return iter(self._by_key.values())
