"""Tests for the inference-simplification graph passes."""

import numpy as np
import pytest

from repro.frontend import ModelBuilder, resnet18
from repro.graph import build
from repro.graph.ir import Graph, Node
from repro.graph.simplify import (
    dead_code_elimination,
    eliminate_common_subexpr,
    simplify_inference,
)
from repro.hardware import cuda
from repro.runtime import graph_executor


def _conv_bn_relu_model(channels=4, size=8):
    builder = ModelBuilder("m", seed=3)
    data = builder.input("data", (1, 3, size, size))
    net = builder.conv2d(data, channels, 3, stride=1, padding=1, name="conv")
    net = builder.batch_norm(net, name="bn")
    net = builder.relu(net)
    graph, params = builder.finalize(net)
    return graph, params


def _run(graph, params, data):
    graph, module, params = build(graph, cuda(), params, opt_level=0)
    executor = graph_executor.create(module)
    executor.set_input(**params)
    executor.run(data=data)
    return executor.get_output(0).asnumpy()


class TestSimplifyInference:
    def test_batch_norm_is_folded(self):
        graph, params = _conv_bn_relu_model()
        new_graph, _new_params, count = simplify_inference(graph, params)
        assert count == 1
        assert not any(n.op == "batch_norm" for n in new_graph.op_nodes)
        assert any(n.op == "bias_add" for n in new_graph.op_nodes)

    def test_folding_preserves_numerics(self):
        graph, params = _conv_bn_relu_model()
        data = np.random.default_rng(0).random((1, 3, 8, 8)).astype("float32")
        reference = _run(graph, dict(params), data)
        graph2, params2 = _conv_bn_relu_model()
        folded_graph, folded_params, count = simplify_inference(graph2, params2)
        assert count == 1
        folded = _run(folded_graph, folded_params, data)
        np.testing.assert_allclose(folded, reference, rtol=1e-3, atol=1e-4)

    def test_new_parameters_are_created(self):
        graph, params = _conv_bn_relu_model()
        _new_graph, new_params, _count = simplify_inference(graph, params)
        added = set(new_params) - set(params)
        assert any(name.endswith("_bnfold") for name in added)
        assert any(name.endswith("_bnfold_bias") for name in added)

    def test_dropout_removed(self):
        builder = ModelBuilder("m", seed=0)
        data = builder.input("data", (1, 8))
        net = builder.dense(data, 4)
        net = builder._op("dropout", [net], {"rate": 0.5})
        net = builder.relu(net)
        graph, params = builder.finalize(net)
        new_graph, _params, count = simplify_inference(graph, params)
        assert count == 1
        assert not any(n.op == "dropout" for n in new_graph.op_nodes)

    def test_bn_without_foldable_producer_is_kept(self):
        builder = ModelBuilder("m", seed=0)
        data = builder.input("data", (1, 4, 8, 8))
        net = builder.relu(data)
        net = builder.batch_norm(net)
        graph, params = builder.finalize(net)
        new_graph, _params, count = simplify_inference(graph, params)
        assert count == 0
        assert any(n.op == "batch_norm" for n in new_graph.op_nodes)

    def test_bn_with_shared_producer_is_kept(self):
        builder = ModelBuilder("m", seed=0)
        data = builder.input("data", (1, 3, 8, 8))
        conv = builder.conv2d(data, 4, 3, padding=1)
        bn = builder.batch_norm(conv)
        other = builder.relu(conv)            # second consumer of the conv
        out = builder.add(bn, other)
        graph, params = builder.finalize(out)
        _new_graph, _params, count = simplify_inference(graph, params)
        assert count == 0

    def test_resnet_folding_scales(self):
        graph, params, _shapes = resnet18(batch=1, image_size=32, num_classes=10)
        _new_graph, _new_params, count = simplify_inference(graph, params)
        assert count >= 10    # every conv+bn pair folds

    def test_idempotent(self):
        graph, params = _conv_bn_relu_model()
        graph1, params1, first = simplify_inference(graph, params)
        graph2, _params2, second = simplify_inference(graph1, params1)
        assert first == 1 and second == 0
        assert len(graph2.op_nodes) == len(graph1.op_nodes)


class TestCSE:
    def _duplicate_relu_graph(self):
        data = Node("null", "data")
        data.shape = (1, 4)
        r1 = Node("relu", "r1", [data], {})
        r2 = Node("relu", "r2", [data], {})
        out = Node("add", "sum", [r1, r2], {})
        graph = Graph([out])
        graph.infer_shapes({"data": (1, 4)})
        return graph

    def test_identical_nodes_are_merged(self):
        graph = self._duplicate_relu_graph()
        new_graph, merged = eliminate_common_subexpr(graph)
        assert merged == 1
        assert sum(1 for n in new_graph.op_nodes if n.op == "relu") == 1

    def test_add_inputs_are_rewired_to_survivor(self):
        graph = self._duplicate_relu_graph()
        new_graph, _merged = eliminate_common_subexpr(graph)
        add_node = [n for n in new_graph.op_nodes if n.op == "add"][0]
        assert add_node.inputs[0] is add_node.inputs[1]

    def test_different_attrs_are_not_merged(self):
        data = Node("null", "data")
        data.shape = (1, 4)
        a = Node("leaky_relu", "a", [data], {"alpha": 0.1})
        b = Node("leaky_relu", "b", [data], {"alpha": 0.2})
        out = Node("add", "sum", [a, b], {})
        graph = Graph([out])
        graph.infer_shapes({"data": (1, 4)})
        _new_graph, merged = eliminate_common_subexpr(graph)
        assert merged == 0

    def test_no_rewrites_returns_same_graph(self):
        data = Node("null", "data")
        data.shape = (1, 4)
        out = Node("relu", "r", [data], {})
        graph = Graph([out])
        new_graph, merged = eliminate_common_subexpr(graph)
        assert merged == 0 and new_graph is graph


class TestDCE:
    def test_unreachable_ops_removed(self):
        data = Node("null", "data")
        data.shape = (1, 4)
        used = Node("relu", "used", [data], {})
        graph = Graph([used])
        # Manually append a dangling node to the node list.
        dangling = Node("tanh", "dangling", [data], {})
        graph.nodes.append(dangling)
        new_graph, removed = dead_code_elimination(graph)
        assert removed == 1
        assert all(n.name != "dangling" for n in new_graph.nodes)

    def test_fully_live_graph_unchanged(self):
        data = Node("null", "data")
        data.shape = (1, 4)
        out = Node("relu", "r", [data], {})
        graph = Graph([out])
        new_graph, removed = dead_code_elimination(graph)
        assert removed == 0
        assert len(new_graph.op_nodes) == 1


class TestBuildIntegration:
    def test_opt_level2_folds_batch_norms(self):
        graph, params = _conv_bn_relu_model()
        new_graph, module, _params = build(graph, cuda(), params, opt_level=2)
        assert not any(n.op == "batch_norm" for n in new_graph.op_nodes)
        assert module.total_time > 0

    def test_opt_levels_agree_numerically(self):
        data = np.random.default_rng(1).random((1, 3, 8, 8)).astype("float32")
        outputs = []
        for level in (0, 2):
            graph, params = _conv_bn_relu_model()
            _g, module, params = build(graph, cuda(), params, opt_level=level)
            executor = graph_executor.create(module)
            executor.set_input(**params)
            executor.run(data=data)
            outputs.append(executor.get_output(0).asnumpy())
        np.testing.assert_allclose(outputs[0], outputs[1], rtol=1e-3, atol=1e-4)
