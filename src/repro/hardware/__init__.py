"""Simulated hardware back-ends standing in for the paper's physical devices."""

from .base import HardwareModel, HardwareParams, MeasureResult
from .cpu import CPUParams, EmbeddedCPU, arm_a53_params, cortex_a9_params
from .gpu import GPUParams, MobileGPU, ServerGPU, mali_t860_params, titan_x_params
from .target import (
    SCHEDULE_PRIMITIVE_SUPPORT,
    Target,
    arm_cpu,
    create_target,
    cuda,
    mali,
    pynq_cpu,
    vdla,
)
from .vdla import (
    VDLAAccelerator,
    VDLAInstruction,
    VDLAParams,
    build_instruction_trace,
    pynq_vdla_params,
)

__all__ = [
    "CPUParams",
    "EmbeddedCPU",
    "GPUParams",
    "HardwareModel",
    "HardwareParams",
    "MeasureResult",
    "MobileGPU",
    "SCHEDULE_PRIMITIVE_SUPPORT",
    "ServerGPU",
    "Target",
    "VDLAAccelerator",
    "VDLAInstruction",
    "VDLAParams",
    "arm_a53_params",
    "arm_cpu",
    "build_instruction_trace",
    "cortex_a9_params",
    "create_target",
    "cuda",
    "mali",
    "mali_t860_params",
    "pynq_cpu",
    "pynq_vdla_params",
    "titan_x_params",
    "vdla",
]
