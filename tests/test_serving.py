"""Tests for repro.serve(): dynamic batching, the device pool, simulated
latency accounting, and the RPC tracker paths it leans on (satellite #3)."""

import threading
import time

import numpy as np
import pytest

import repro
from repro.frontend import ModelBuilder
from repro.hardware import cuda
from repro.runtime import (DeadlineExceeded, Executor, QueueFull,
                           RequestCancelled, RPCServer, ServingError, Tracker)
from repro.runtime.serving import _AdmissionQueue, _Request


def _small_cnn():
    b = ModelBuilder("small", seed=0)
    data = b.input("data", (1, 3, 16, 16))
    net = b.relu(b.batch_norm(b.conv2d(data, 8, 3, 1, 1, name="conv0")))
    net = b.max_pool2d(net, 2, 2)
    net = b.flatten(net)
    net = b.softmax(b.dense(net, 10, "fc"))
    graph, params = b.finalize(net)
    return graph, params, {"data": (1, 3, 16, 16)}


@pytest.fixture(scope="module")
def module():
    return repro.compile(_small_cnn(), target=cuda())


@pytest.fixture(scope="module")
def requests_and_expected(module):
    rng = np.random.default_rng(5)
    inputs = [rng.random((1, 3, 16, 16)).astype("float32") for _ in range(8)]
    solo = Executor(module)
    expected = [solo(x)[0].asnumpy() for x in inputs]
    return inputs, expected


# ---------------------------------------------------------------------------
# Engine behaviour
# ---------------------------------------------------------------------------

class TestInferenceEngine:
    def test_outputs_bit_identical_to_solo_execution(self, module,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        with repro.serve(module, max_batch=4, timeout_ms=200) as engine:
            results = engine.infer_many([{"data": x} for x in inputs],
                                        timeout=30)
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got[0], want)

    def test_dynamic_batching_coalesces(self, module, requests_and_expected):
        inputs, _ = requests_and_expected
        engine = repro.serve(module, max_batch=4, timeout_ms=500)
        futures = [engine.submit(data=x) for x in inputs]
        for future in futures:
            future.result(30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == len(inputs)
        assert stats["batches"] < len(inputs)
        assert stats["mean_batch_occupancy"] > 1.0
        assert sum(size * count for size, count
                   in stats["batch_occupancy"].items()) == len(inputs)

    def test_batched_time_is_per_batch_estimate_not_per_request_sum(self, module):
        engine = repro.serve(module, max_batch=4, timeout_ms=500)
        try:
            single = module.total_time
            batched = engine.estimated_batch_time(4)
            # The coalesced batch costs the batch-4 kernel estimates: more
            # than one request, far less than four independent requests.
            assert single < batched < 4 * single
            futures = [engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
                       for _ in range(4)]
            for future in futures:
                future.result(30)
            full = [f for f in futures if f.batch_size == 4]
            assert full, "expected at least one coalesced batch of 4"
            for future in full:
                assert future.simulated_latency == pytest.approx(batched)
        finally:
            engine.shutdown()
        stats = engine.stats()
        sim = stats["simulated"]
        assert sim["makespan_seconds"] < 4 * single
        assert sim["throughput_rps"] > 1.0 / single

    def test_max_batch_one_matches_sequential_accounting(self, module):
        with repro.serve(module, max_batch=1) as engine:
            future = engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
            future.result(30)
            assert future.batch_size == 1
            assert future.simulated_latency == pytest.approx(module.total_time)

    def test_round_robin_across_devices(self, module, requests_and_expected):
        inputs, _ = requests_and_expected
        engine = repro.serve(module, devices=["gpu:0", "gpu:1"],
                             max_batch=4, timeout_ms=500)
        engine.infer_many([{"data": x} for x in inputs], timeout=30)
        engine.shutdown()
        stats = engine.stats()
        busy = stats["simulated"]["busy_seconds_per_device"]
        assert set(busy) == {"gpu:0", "gpu:1"}
        assert all(seconds > 0 for seconds in busy.values())
        # Two batches in parallel: the makespan is the busiest device, not
        # the sum over devices.
        assert stats["simulated"]["makespan_seconds"] == pytest.approx(
            max(busy.values()))

    def test_serve_from_artifact_path(self, module, tmp_path,
                                      requests_and_expected):
        inputs, expected = requests_and_expected
        path = tmp_path / "served.repro"
        module.export(path)
        with repro.serve(str(path), max_batch=2, timeout_ms=50) as engine:
            result = engine.infer(data=inputs[0], timeout=30)
        np.testing.assert_array_equal(result[0], expected[0])

    def test_submit_after_shutdown_raises(self, module):
        engine = repro.serve(module, max_batch=2)
        engine.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))

    def test_bad_request_shapes_fail_fast(self, module):
        with repro.serve(module, max_batch=2) as engine:
            with pytest.raises(ValueError, match="native-batch"):
                engine.submit(data=np.zeros((2, 3, 16, 16), "float32"))
            with pytest.raises(ValueError, match="data"):
                engine.submit(wrong=np.zeros((1, 3, 16, 16), "float32"))

    def test_submit_copies_inputs(self, module):
        # A client reusing its input buffer must not corrupt in-flight
        # requests: the engine snapshots inputs at submit time.
        rng = np.random.default_rng(9)
        first = rng.random((1, 3, 16, 16)).astype("float32")
        second = rng.random((1, 3, 16, 16)).astype("float32")
        expected = Executor(module)(first)[0].asnumpy()
        buffer = first.copy()
        with repro.serve(module, max_batch=4, timeout_ms=200) as engine:
            future = engine.submit(data=buffer)
            buffer[...] = second
            got = future.result(30)
        np.testing.assert_array_equal(got[0], expected)

    def test_async_shutdown_still_serves_queued_requests(self, module):
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        engine = repro.serve(module, max_batch=2, timeout_ms=50,
                             tracker=tracker, rpc_key="titan-x")
        futures = [engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
                   for _ in range(4)]
        engine.shutdown(wait=False)
        # Queued requests still resolve, and the worker releases its lease
        # only after it has drained them.
        for future in futures:
            assert len(future.result(30)) == 1
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if tracker.summary()["titan-x"]["free"] == 1:
                break
            time.sleep(0.01)
        assert tracker.summary()["titan-x"]["free"] == 1

    def test_engine_validates_knobs(self, module):
        with pytest.raises(ValueError, match="max_batch"):
            repro.serve(module, max_batch=0)
        with pytest.raises(ValueError, match="devices"):
            repro.serve(module, devices=0)


# ---------------------------------------------------------------------------
# Tracker-backed serving
# ---------------------------------------------------------------------------

class TestTrackerServing:
    def test_leases_counted_and_released_on_shutdown(self, module,
                                                     requests_and_expected):
        inputs, expected = requests_and_expected
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=2)
        engine = repro.serve(module, devices=2, max_batch=4, timeout_ms=500,
                             tracker=tracker, rpc_key="titan-x")
        during = tracker.summary()["titan-x"]
        assert during["free"] == 0  # both devices exclusively leased
        results = engine.infer_many([{"data": x} for x in inputs], timeout=30)
        engine.shutdown()
        for got, want in zip(results, expected):
            np.testing.assert_array_equal(got[0], want)
        summary = tracker.summary()["titan-x"]
        assert summary["total"] == 2
        assert summary["free"] == 2  # released back to the pool
        assert summary["requests"] == engine.stats()["batches"]

    def test_pool_exhaustion_fails_and_releases_partial_leases(self, module):
        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        with pytest.raises(TimeoutError):
            repro.serve(module, devices=2, tracker=tracker, rpc_key="titan-x")
        # the one successful lease must have been released again
        assert tracker.summary()["titan-x"]["free"] == 1

    def test_tracker_requires_key(self, module):
        with pytest.raises(ValueError, match="rpc_key"):
            repro.serve(module, tracker=Tracker())

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_lease_released_when_worker_dies_mid_request(self, module):
        # The worker thread owns its lease; even a BaseException that kills
        # the thread mid-request must release it back to the pool (and
        # reject the in-flight future rather than hang the caller).
        class _WorkerThreadDeath(BaseException):
            pass

        tracker = Tracker()
        tracker.register_device("titan-x", cuda().model, count=1)
        engine = repro.serve(module, max_batch=1, tracker=tracker,
                             rpc_key="titan-x")
        assert tracker.summary()["titan-x"]["free"] == 0

        def boom(inputs):
            raise _WorkerThreadDeath("simulated executor death")

        engine._executors[0]._execute = boom
        future = engine.submit(data=np.zeros((1, 3, 16, 16), "float32"))
        with pytest.raises(_WorkerThreadDeath):
            future.result(30)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if tracker.summary()["titan-x"]["free"] == 1:
                break
            time.sleep(0.01)
        assert tracker.summary()["titan-x"]["free"] == 1
        assert 0 in engine._dead_workers
        engine.shutdown()


# ---------------------------------------------------------------------------
# rpc.Tracker.request paths (satellite #3)
# ---------------------------------------------------------------------------

class TestTrackerRequest:
    def test_timeout_on_exhausted_pool(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        start = time.monotonic()
        with pytest.raises(TimeoutError, match="board"):
            tracker.request("board", timeout=0.05)
        assert time.monotonic() - start < 5.0
        session.release()

    def test_unknown_key_lists_known(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model)
        with pytest.raises(KeyError, match="board"):
            tracker.request("nonexistent")

    def test_release_notifies_blocked_request(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        first = tracker.request("board")
        acquired = []

        def blocked():
            session = tracker.request("board", timeout=10.0)
            acquired.append(session)
            session.release()

        thread = threading.Thread(target=blocked)
        thread.start()
        time.sleep(0.05)
        assert not acquired  # still blocked while the lease is held
        first.release()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert len(acquired) == 1
        assert tracker.summary()["board"]["free"] == 1

    def test_double_release_is_idempotent(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        session.release()
        session.release()
        assert tracker.summary()["board"]["free"] == 1

    def test_execute_counts_and_refuses_after_release(self):
        tracker = Tracker()
        tracker.register_device("board", cuda().model, count=1)
        session = tracker.request("board")
        assert session.execute(lambda a, b: a + b, 2, 3) == 5
        session.release()
        with pytest.raises(RuntimeError, match="released"):
            session.execute(lambda: None)
        assert tracker.summary()["board"]["requests"] == 1


# ---------------------------------------------------------------------------
# SLO machinery: deadlines, priorities, shedding, cancellation
# ---------------------------------------------------------------------------

def _gated_engine(module, **kwargs):
    """An engine whose single executor blocks on ``gate``; ``entered`` is
    set the moment a batch reaches execution (i.e. after it was claimed)."""
    engine = repro.serve(module, **kwargs)
    gate = threading.Event()
    entered = threading.Event()
    original = engine._executors[0]._execute

    def gated(inputs):
        entered.set()
        gate.wait(30)
        return original(inputs)

    engine._executors[0]._execute = gated
    return engine, gate, entered


class TestSLO:
    X = np.zeros((1, 3, 16, 16), "float32")

    def test_knob_validation(self, module):
        with pytest.raises(ValueError, match="max_queue"):
            repro.serve(module, max_queue=0)
        with repro.serve(module, max_batch=1) as engine:
            with pytest.raises(ValueError, match="deadline_ms"):
                engine.submit(data=self.X, deadline_ms=0)

    def test_deadline_expired_in_window_is_shed(self, module):
        # A 400ms coalescing window outlives a 50ms deadline: the expired
        # request is shed before execution, its batchmate is unaffected.
        engine = repro.serve(module, max_batch=8, timeout_ms=400)
        keep = engine.submit(data=self.X)
        drop = engine.submit(data=self.X, deadline_ms=50)
        assert len(keep.result(30)) == 1
        with pytest.raises(DeadlineExceeded, match="shed, not executed"):
            drop.result(30)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == 1
        assert stats["slo"]["shed_expired"] == 1
        assert stats["slo"]["shed_total"] == 1

    def test_result_timeout_then_cancel_skips_execution(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        try:
            first = engine.submit(data=self.X)
            assert entered.wait(10)
            second = engine.submit(data=self.X)   # queued behind the gate
            with pytest.raises(TimeoutError):
                second.result(0.05)
            assert second.cancel() is True
            assert second.cancel() is True        # idempotent
            assert second.cancelled()
        finally:
            gate.set()
        assert len(first.result(30)) == 1
        assert first.cancel() is False            # too late: already done
        with pytest.raises(RequestCancelled):
            second.result(30)
        engine.shutdown()
        stats = engine.stats()
        # The cancelled request was never executed and never counted.
        assert stats["requests"] == 1
        assert stats["slo"]["cancelled"] == 1

    def test_cancel_in_window_never_dispatches(self, module):
        engine = repro.serve(module, max_batch=8, timeout_ms=500)
        future = engine.submit(data=self.X)
        time.sleep(0.05)          # let the batcher pop it into the window
        assert future.cancel() is True
        with pytest.raises(RequestCancelled):
            future.result(5)
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == 0
        assert stats["batches"] == 0
        assert stats["slo"]["cancelled"] == 1

    def test_queue_full_sheds_lowest_priority_newest(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1, max_queue=2)
        futures, full_raises = [], 0
        try:
            futures.append(engine.submit(data=self.X))
            assert entered.wait(10)
            # Saturate the pipeline (1 executing + bounded worker queue +
            # the batcher's blocked dispatch) and then the admission queue.
            # Among equal priorities the *incoming* request is always the
            # shed victim, so queued futures are never evicted here.
            for _ in range(100):
                try:
                    futures.append(engine.submit(data=self.X))
                except QueueFull:
                    full_raises += 1
                if full_raises >= 3 \
                        and engine.stats()["slo"]["queue_depth"] == 2:
                    break
            assert full_raises >= 3
            assert engine.stats()["slo"]["queue_depth"] == 2
            # A high-priority arrival is admitted by evicting the newest
            # queued low-priority request.
            vip = engine.submit(data=self.X, priority=10)
        finally:
            gate.set()
        assert len(vip.result(30)) == 1
        served, shed = 0, 0
        for future in futures:
            try:
                future.result(30)
                served += 1
            except QueueFull:
                shed += 1
        assert shed == 1                  # exactly the future vip evicted
        assert served == len(futures) - 1
        engine.shutdown()
        stats = engine.stats()
        assert stats["requests"] == served + 1
        assert stats["slo"]["shed_queue_full"] == full_raises + 1

    def test_late_completion_counts_deadline_violation(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        try:
            future = engine.submit(data=self.X, deadline_ms=150)
            assert entered.wait(10)       # claimed before the deadline
            time.sleep(0.3)               # ... but finishes after it
        finally:
            gate.set()
        assert len(future.result(30)) == 1    # late work still delivered
        engine.shutdown()
        slo = engine.stats()["slo"]
        assert slo["deadline_violations"] == 1
        assert slo["shed_expired"] == 0

    def test_shutdown_drain_false_rejects_backlog(self, module):
        engine, gate, entered = _gated_engine(module, max_batch=1,
                                              timeout_ms=1)
        futures = [engine.submit(data=self.X) for _ in range(8)]
        assert entered.wait(10)
        engine.shutdown(wait=False, drain=False)
        gate.set()
        served, rejected = 0, 0
        for future in futures:
            try:
                future.result(30)
                served += 1
            except ServingError:
                rejected += 1
        assert served >= 1                # in-flight batches still finish
        assert rejected >= 1              # the backlog is rejected, not hung
        engine._batcher.join(10)
        assert not engine._batcher.is_alive()

    def test_admission_queue_orders_and_sheds(self):
        q = _AdmissionQueue(3)
        low_old = _Request({}, priority=0)
        high = _Request({}, priority=5)
        low_new = _Request({}, priority=0)
        for request in (low_old, high, low_new):
            q.put(request)
        # Incoming equal-priority request is itself the newest low: rejected.
        with pytest.raises(QueueFull):
            q.put(_Request({}, priority=0))
        # A higher-priority arrival evicts the newest queued low instead.
        mid = _Request({}, priority=1)
        q.put(mid)
        assert low_new.future.done()
        with pytest.raises(QueueFull):
            low_new.future.result(0)
        assert [q.pop(0.5) for _ in range(3)] == [high, mid, low_old]
        assert q.pop(0.01) is None
        assert q.counters() == {"shed_queue_full": 2, "shed_expired": 0}
