"""Client side of the tuning service: connection + dedup measurer.

:class:`ServiceClient` is the thin connection a tuning session holds to a
:class:`~repro.autotvm.service.server.TuningService`; sessions normally get
one implicitly by passing ``TuningOptions(service="host:port")``.
:class:`ServiceDedupMeasurer` wraps the session's ordinary batch measurer
and consults the service before measuring: candidates any client in the
fleet already measured are answered from the service's trial store, fresh
measurements are pushed back for everyone else.

Because local measurement is deterministic per ``(seed, task, config)``
(see :class:`~repro.autotvm.measure.LocalMeasurer`), a dedup hit returns
exactly the value this session would have measured itself — so skipping the
work cannot change the tuning trajectory of identically-seeded sessions.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from ..cost_model import GradientBoostedTrees
from ..database import TuningLogEntry
from ..measure import MeasureInput, MeasureResultRecord
from .protocol import MSG, ServiceProtocolError, recv_frame, send_frame

__all__ = ["ServiceClient", "ServiceDedupMeasurer", "connect"]

#: (task name, target name, config index) — the dedup key of one trial
TrialKey = Tuple[str, str, int]


def _parse_address(address: str) -> Tuple[str, int]:
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"Service address must be 'host:port', got {address!r}")
    return host, int(port)


class ServiceClient:
    """A connection to a running tuning service.

    Thread-safe: one request-reply exchange holds the connection lock, so a
    session's measurer and its progress callbacks may share one client.
    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, address: str, timeout: float = 30.0):
        self.address = address
        host, port = _parse_address(address)
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._lock = threading.Lock()
        self._closed = False
        welcome = self._request(MSG.HELLO, {"pid": os.getpid()},
                                expect=MSG.WELCOME)
        self.server_entries = int(welcome.get("entries", 0))

    # ------------------------------------------------------------ transport
    def _request(self, kind: int, payload: Dict, expect: int) -> Dict:
        with self._lock:
            if self._closed:
                raise ServiceProtocolError(
                    f"Client for {self.address} is closed")
            send_frame(self._sock, kind, payload)
            reply_kind, reply = recv_frame(self._sock)
        if reply_kind == MSG.ERROR:
            raise ServiceProtocolError(
                f"{MSG.name(kind)} failed on {self.address}: "
                f"{reply.get('message')}")
        if reply_kind != expect:
            raise ServiceProtocolError(
                f"Expected {MSG.name(expect)} reply to {MSG.name(kind)}, "
                f"got {MSG.name(reply_kind)}")
        return reply

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------ trial store
    def lookup(self, keys: Sequence[TrialKey]) -> List[Optional[Dict]]:
        """Per key: ``{"time", "error"}`` if any client measured it, else
        ``None`` (aligned with ``keys``)."""
        if not keys:
            return []
        reply = self._request(MSG.LOOKUP, {"keys": [list(k) for k in keys]},
                              expect=MSG.FOUND)
        return reply["results"]

    def push_trials(self, records: Sequence[Dict]) -> int:
        """Publish raw trial measurements (dicts with ``task``, ``target``,
        ``config_index``, ``time``, optional ``error``); returns how many
        were new to the service."""
        if not records:
            return 0
        reply = self._request(MSG.PUSH, {"records": list(records)},
                              expect=MSG.ACK)
        return int(reply.get("new", 0))

    # ------------------------------------------------------------ best store
    def record_best(self, entry: TuningLogEntry) -> bool:
        """Publish a session's floored best entry to the shared database."""
        from .server import _entry_payload

        reply = self._request(MSG.RECORD, {"entry": _entry_payload(entry)},
                              expect=MSG.ACK)
        return bool(reply.get("new", 0))

    def best_for(self, task_name: str, target_name: Optional[str] = None
                 ) -> Optional[TuningLogEntry]:
        """Best known entry for a workload across every session so far."""
        from .server import entry_from_payload

        reply = self._request(MSG.BEST, {"task": task_name,
                                         "target": target_name},
                              expect=MSG.ENTRIES)
        entries = reply.get("entries", [])
        return entry_from_payload(entries[0]) if entries else None

    def warm_entries(self, operator: str, target_name: Optional[str] = None
                     ) -> List[TuningLogEntry]:
        """All shared entries of an operator family, in recording order —
        transfer-learning food for
        :meth:`~repro.autotvm.tuner.ModelBasedTuner.warm_start`."""
        from .server import entry_from_payload

        reply = self._request(MSG.WARM, {"operator": operator,
                                         "target": target_name},
                              expect=MSG.ENTRIES)
        return [entry_from_payload(p) for p in reply.get("entries", [])]

    def pretrained_model(self, operator: str, target_name: str
                         ) -> Optional[GradientBoostedTrees]:
        """The service's startup-pretrained cost model for an operator
        family on a target, or ``None`` when it has none."""
        reply = self._request(MSG.MODEL, {"operator": operator,
                                          "target": target_name},
                              expect=MSG.MODEL_SPEC)
        spec = reply.get("model")
        return GradientBoostedTrees.from_spec(spec) if spec else None

    # ------------------------------------------------------------ control
    def stats(self) -> Dict[str, int]:
        """Service-side counters (dedup hits, trials stored, clients...)."""
        return self._request(MSG.STATS, {}, expect=MSG.STATS_REPLY)

    def shutdown_service(self) -> None:
        """Ask the service to stop (its owner still joins threads via
        :meth:`~repro.autotvm.service.server.TuningService.stop`)."""
        self._request(MSG.SHUTDOWN, {}, expect=MSG.BYE)


def connect(address: str, timeout: float = 30.0) -> ServiceClient:
    """Connect to a tuning service at ``"host:port"``."""
    return ServiceClient(address, timeout=timeout)


class ServiceDedupMeasurer:
    """Batch measurer that skips candidates the fleet already measured.

    Wraps the session's real measurer: each batch is first looked up on the
    service; hits become :class:`MeasureResultRecord`\\ s directly (features
    ``None`` — consumers refeaturise through the shared evaluation cache),
    misses are measured locally and pushed back for other clients.  Results
    come back in input order, so the tuner cannot tell the difference.
    """

    def __init__(self, base, client: ServiceClient):
        self.base = base
        self.client = client
        self.dedup_hits = 0         #: measurements skipped thanks to the fleet

    @property
    def number(self) -> int:
        return self.base.number

    @property
    def seed(self) -> int:
        return self.base.seed

    @property
    def num_measured(self) -> int:
        return self.base.num_measured

    def measure(self, inputs: Sequence[MeasureInput]
                ) -> List[MeasureResultRecord]:
        keys = [(inp.task.name, inp.task.target.name, inp.config.index)
                for inp in inputs]
        hits = self.client.lookup(keys)
        results: List[Optional[MeasureResultRecord]] = [None] * len(inputs)
        misses: List[MeasureInput] = []
        positions: List[int] = []
        for i, (inp, hit) in enumerate(zip(inputs, hits)):
            if hit is None:
                misses.append(inp)
                positions.append(i)
            else:
                self.dedup_hits += 1
                results[i] = MeasureResultRecord(inp, float(hit["time"]),
                                                 None, error=hit.get("error"))
        if misses:
            measured = self.base.measure(misses)
            self.client.push_trials([
                {"task": rec.input.task.name,
                 "target": rec.input.task.target.name,
                 "config_index": rec.input.config.index,
                 "time": rec.mean_time, "error": rec.error,
                 # feature vectors ride along so the service can pretrain its
                 # cost models on every trial the fleet ever measured
                 "features": ([float(v) for v in rec.features.vector()]
                              if rec.features is not None else None)}
                for rec in measured])
            for pos, rec in zip(positions, measured):
                results[pos] = rec
        return results
