"""Graph runtime (the ``runtime.create`` / ``module.run`` API of Section 2).

:class:`GraphExecutor` is the seed-era stateful ``set_input`` / ``run`` /
``get_output`` interface, kept as a compatibility wrapper over the stateless
:class:`~repro.runtime.executor.Executor`: functional results come from the
NumPy kernels, while the reported latency is the sum of the per-kernel
estimates produced by the simulated target during compilation (plus runtime
dispatch overhead).  New code should use :class:`Executor` directly (or
``module.executor()``), which is thread-safe and validates inputs up front.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..compiler.module import CompiledModule
from .executor import Executor
from .ndarray import Device, NDArray, cpu

__all__ = ["GraphExecutor", "create"]


class GraphExecutor:
    """Executes a :class:`~repro.compiler.module.CompiledModule`.

    Stateful compatibility interface; one instance must not be shared across
    threads (use :class:`~repro.runtime.executor.Executor` for that).  Module
    parameters are never aliased into the live tensor map — they enter as
    read-only views, so in-place mutation of a tensor obtained from
    :meth:`get_node_output` raises instead of corrupting the module's weights
    across runs.
    """

    def __init__(self, module: CompiledModule, ctx: Optional[Device] = None):
        self.module = module
        self.ctx = ctx or cpu()
        self._executor = Executor(module, self.ctx)
        self._inputs: Dict[str, np.ndarray] = {}
        self._tensors: Dict[str, np.ndarray] = {}
        self._last_run_time: float = 0.0
        self._per_kernel_times: List[Tuple[str, float]] = []

    # ------------------------------------------------------------------ inputs
    def set_input(self, key: Optional[str] = None, value=None, **params) -> None:
        """Set a named input and/or a batch of parameters (``**params``)."""
        if key is not None:
            self._inputs[key] = self._as_numpy(value)
        for name, array in params.items():
            self._inputs[name] = self._as_numpy(array)

    @staticmethod
    def _as_numpy(value) -> np.ndarray:
        if isinstance(value, NDArray):
            return value.asnumpy()
        return np.asarray(value)

    # ------------------------------------------------------------------ execution
    def run(self, **inputs) -> None:
        """Execute the whole graph once."""
        for name, value in inputs.items():
            self._inputs[name] = self._as_numpy(value)
        result = self._executor._execute(self._inputs)
        self._tensors = result.tensors
        self._last_run_time = result.total_time
        self._per_kernel_times = result.per_kernel

    # ------------------------------------------------------------------ outputs
    def get_output(self, index: int, out: Optional[NDArray] = None) -> NDArray:
        node = self.module.graph.outputs[index]
        value = self._tensors[node.name]
        if out is not None:
            return out.copyfrom(value)
        return NDArray(value, self.ctx)

    def get_node_output(self, name: str) -> np.ndarray:
        return self._tensors[name]

    # ------------------------------------------------------------------ profiling
    @property
    def last_run_time(self) -> float:
        """Simulated end-to-end latency of the last ``run`` call (seconds)."""
        return self._last_run_time

    def profile(self) -> List[Tuple[str, float]]:
        """Per-kernel (name, seconds) breakdown of the last run."""
        return list(self._per_kernel_times)

    def benchmark(self, repeat: int = 3) -> float:
        """Mean simulated latency over ``repeat`` runs (inputs must be set)."""
        times = []
        for _ in range(repeat):
            self.run()
            times.append(self._last_run_time)
        return float(np.mean(times))


def create(module: CompiledModule, ctx: Optional[Device] = None) -> GraphExecutor:
    """Create a graph executor (``runtime.create(graph, lib, ctx)`` in the paper)."""
    return GraphExecutor(module, ctx)
